#include "accounting/rdp_accountant.h"

#include <cmath>

#include <gtest/gtest.h>

#include "accounting/mechanism_rdp.h"

namespace smm::accounting {
namespace {

TEST(RdpToDpTest, MatchesHandComputedFormula) {
  // alpha = 10, tau = 0.5, delta = 1e-5:
  // eps = 0.5 + (log(1e5) + 9 log(0.9) - log 10) / 9.
  const double expected =
      0.5 + (std::log(1e5) + 9.0 * std::log(0.9) - std::log(10.0)) / 9.0;
  auto eps = RdpToDpEpsilon(10, 0.5, 1e-5);
  ASSERT_TRUE(eps.ok());
  EXPECT_NEAR(*eps, expected, 1e-12);
}

TEST(RdpToDpTest, RejectsInvalidInputs) {
  EXPECT_FALSE(RdpToDpEpsilon(1, 0.5, 1e-5).ok());
  EXPECT_FALSE(RdpToDpEpsilon(10, -0.1, 1e-5).ok());
  EXPECT_FALSE(RdpToDpEpsilon(10, 0.5, 0.0).ok());
  EXPECT_FALSE(RdpToDpEpsilon(10, 0.5, 1.0).ok());
}

TEST(SubsampledRdpTest, ZeroRateGivesZero) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 1.0);
  auto tau = PoissonSubsampledRdp(0.0, 8, curve);
  ASSERT_TRUE(tau.ok());
  EXPECT_EQ(*tau, 0.0);
}

TEST(SubsampledRdpTest, FullRateEqualsBaseCurve) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 2.0);
  auto tau = PoissonSubsampledRdp(1.0, 8, curve);
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, 8.0 / (2.0 * 4.0), 1e-12);
}

TEST(SubsampledRdpTest, SubsamplingAmplifiesPrivacy) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 1.0);
  auto full = PoissonSubsampledRdp(1.0, 4, curve);
  auto sub = PoissonSubsampledRdp(0.01, 4, curve);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sub.ok());
  EXPECT_LT(*sub, *full);
  EXPECT_GT(*sub, 0.0);
}

TEST(SubsampledRdpTest, MonotoneInSamplingRate) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 2.0);
  double prev = 0.0;
  for (double q : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    auto tau = PoissonSubsampledRdp(q, 6, curve);
    ASSERT_TRUE(tau.ok());
    EXPECT_GE(*tau, prev);
    prev = *tau;
  }
}

TEST(ComputeDpEpsilonTest, GaussianFullBatchSanity) {
  // One release of N(0, sigma^2) with sensitivity 1: for sigma = 4 and
  // delta = 1e-5 the classic bound gives eps well below 2 and above 0.5.
  const RdpCurve curve = GaussianRdpCurve(1.0, 4.0);
  auto g = ComputeDpEpsilon(curve, 1.0, 1, 1e-5);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->epsilon, 0.5);
  EXPECT_LT(g->epsilon, 2.0);
  EXPECT_GE(g->best_alpha, 2);
}

TEST(ComputeDpEpsilonTest, MatchesKnownDpSgdRegime) {
  // Subsampled Gaussian with q = 0.01, sigma (noise multiplier) = 1.0,
  // T = 1000, delta = 1e-5: the moments accountant gives eps ~ 3 (the
  // classic DPSGD setting); accept a generous band.
  const RdpCurve curve = GaussianRdpCurve(1.0, 1.0);
  auto g = ComputeDpEpsilon(curve, 0.01, 1000, 1e-5);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->epsilon, 1.5);
  EXPECT_LT(g->epsilon, 5.0);
}

TEST(ComputeDpEpsilonTest, EpsilonDecreasesWithNoise) {
  double prev = 1e100;
  for (double sigma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto g = ComputeDpEpsilon(GaussianRdpCurve(1.0, sigma), 0.05, 100, 1e-5);
    ASSERT_TRUE(g.ok());
    EXPECT_LT(g->epsilon, prev);
    prev = g->epsilon;
  }
}

TEST(ComputeDpEpsilonTest, EpsilonIncreasesWithSteps) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 2.0);
  auto g1 = ComputeDpEpsilon(curve, 0.05, 10, 1e-5);
  auto g2 = ComputeDpEpsilon(curve, 0.05, 1000, 1e-5);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_LT(g1->epsilon, g2->epsilon);
}

TEST(ComputeDpEpsilonTest, FailsWhenNoOrderFeasible) {
  const RdpCurve always_invalid = [](int) -> StatusOr<double> {
    return OutOfRangeError("never feasible");
  };
  EXPECT_FALSE(ComputeDpEpsilon(always_invalid, 1.0, 1, 1e-5).ok());
}

TEST(ComputeDpEpsilonTest, RejectsBadArguments) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 1.0);
  EXPECT_FALSE(ComputeDpEpsilon(curve, 0.5, 0, 1e-5).ok());
  AccountantOptions bad;
  bad.min_alpha = 1;
  EXPECT_FALSE(ComputeDpEpsilon(curve, 0.5, 1, 1e-5, bad).ok());
}

}  // namespace
}  // namespace smm::accounting
