// The AVX2 half of the runtime-dispatched kernel layer (see simd.h). This
// translation unit is the only one compiled with -mavx2 (CMake sets the flag
// per-source), so the rest of the library keeps its portable baseline and
// the AVX2 instructions execute only after the cpuid probe in
// Avx2KernelsIfSupported passes.
//
// Every kernel here must be bit-identical to the scalar reference in
// simd.cc. The double kernels use only IEEE-exact operations (add, sub,
// mul, div, floor), which vector and scalar units round identically. The
// integer kernels take a division-free fast path on in-range lanes — the
// arithmetic on those lanes is exactly the value the `% m` reference
// computes — and spill the rare out-of-range lane to the same scalar
// arithmetic the reference runs. Deliberate uint64 lane wraps (the unsigned
// wrap trick behind the branchless compare-and-correct) happen only inside
// intrinsics, which sanitizers do not instrument; the scalar spill paths
// stay wrap-free.
#include "common/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

#include "common/math_util.h"

namespace smm::simd {

namespace {

inline __m256i LoadU(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

inline void StoreU(void* p, __m256i v) {
  _mm256_storeu_si256(static_cast<__m256i*>(p), v);
}

/// Unsigned 64-bit per-lane a > b, via the sign-flip trick (AVX2 only has
/// the signed compare).
inline __m256i UGt(__m256i a, __m256i b) {
  const __m256i sign = _mm256_set1_epi64x(INT64_MIN);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                            _mm256_xor_si256(b, sign));
}

/// The 4 per-lane predicate bits of a 64-bit comparison mask.
inline int LaneMask(__m256i mask) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(mask));
}

void Avx2ScaleInPlace(double* v, size_t n, double factor) {
  const __m256d f = _mm256_set1_pd(factor);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(v + j, _mm256_mul_pd(_mm256_loadu_pd(v + j), f));
  }
  for (; j < n; ++j) v[j] *= factor;
}

void Avx2UnscaleInPlace(double* v, size_t n, double factor) {
  const __m256d f = _mm256_set1_pd(factor);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(v + j, _mm256_div_pd(_mm256_loadu_pd(v + j), f));
  }
  for (; j < n; ++j) v[j] /= factor;
}

void Avx2WhtButterflyPass(double* v, size_t n, size_t h) {
  if (h < 4) {
    // Sub-vector spans (only reachable for transforms shorter than the
    // radix-4 first pass handles): the scalar reference loop.
    for (size_t i = 0; i < n; i += h << 1) {
      double* a = v + i;
      double* b = v + i + h;
      for (size_t j = 0; j < h; ++j) {
        const double x = a[j];
        const double y = b[j];
        a[j] = x + y;
        b[j] = x - y;
      }
    }
    return;
  }
  for (size_t i = 0; i < n; i += h << 1) {
    double* a = v + i;
    double* b = v + i + h;
    for (size_t j = 0; j < h; j += 4) {
      const __m256d x = _mm256_loadu_pd(a + j);
      const __m256d y = _mm256_loadu_pd(b + j);
      _mm256_storeu_pd(a + j, _mm256_add_pd(x, y));
      _mm256_storeu_pd(b + j, _mm256_sub_pd(x, y));
    }
  }
}

void Avx2FloorFractScaled(const double* x, size_t n, double scale,
                          double* flr, double* frac) {
  const __m256d s = _mm256_set1_pd(scale);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d g = _mm256_mul_pd(_mm256_loadu_pd(x + j), s);
    const __m256d f = _mm256_floor_pd(g);
    _mm256_storeu_pd(flr + j, f);
    _mm256_storeu_pd(frac + j, _mm256_sub_pd(g, f));
  }
  for (; j < n; ++j) {
    const double g = x[j] * scale;
    const double f = std::floor(g);
    flr[j] = f;
    frac[j] = g - f;
  }
}

size_t Avx2WrapCenteredInto(const int64_t* values, size_t n, uint64_t m,
                            uint64_t* out) {
  const int64_t lo = -static_cast<int64_t>(m / 2);
  const int64_t hi = static_cast<int64_t>((m - 1) / 2);
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  const __m256i vm = _mm256_set1_epi64x(static_cast<int64_t>(m));
  const __m256i zero = _mm256_setzero_si256();
  size_t overflow = 0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v = LoadU(values + j);
    // Out-of-window accounting: signed compares, since lo/hi/v are int64.
    const __m256i oob = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, v),
                                        _mm256_cmpgt_epi64(v, vhi));
    overflow += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(LaneMask(oob))));
    // Division-free wrap for lanes with -m <= v < m (always true when
    // m >= 2^63, and overwhelmingly true otherwise — out-of-range values
    // are the rare overflow events):
    //   v >= 0: result is v itself iff (uint64)v < m;
    //   v <  0: (uint64)v + m wraps 2^64 exactly when v >= -m, and the
    //           wrapped sum v + m is the reduced value.
    const __m256i neg = _mm256_cmpgt_epi64(zero, v);
    const __m256i w = _mm256_add_epi64(v, vm);  // (uint64)v + m, mod 2^64.
    const __m256i wrapped = UGt(v, w);          // Wrap occurred.
    const __m256i ultm = UGt(vm, v);            // (uint64)v < m.
    const __m256i fast = _mm256_blendv_epi8(ultm, wrapped, neg);
    const __m256i rfast = _mm256_blendv_epi8(v, w, neg);
    const int fast_lanes = LaneMask(fast);
    if (fast_lanes == 0xF) {
      StoreU(out + j, rfast);
    } else {
      alignas(32) uint64_t r[4];
      alignas(32) int64_t raw[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(r), rfast);
      _mm256_store_si256(reinterpret_cast<__m256i*>(raw), v);
      for (int lane = 0; lane < 4; ++lane) {
        if (((fast_lanes >> lane) & 1) == 0) {
          r[lane] = ModReduceScalarI64(raw[lane], m);
        }
      }
      StoreU(out + j, LoadU(r));
    }
  }
  for (; j < n; ++j) {
    const int64_t v = values[j];
    if (v < lo || v > hi) ++overflow;
    out[j] = ModReduceScalarI64(v, m);
  }
  return overflow;
}

void Avx2CenterLiftInto(const uint64_t* values, size_t n, uint64_t m,
                        int64_t* out) {
  const uint64_t threshold = (m - 1) / 2;
  const __m256i vthr = _mm256_set1_epi64x(static_cast<int64_t>(threshold));
  const __m256i vm = _mm256_set1_epi64x(static_cast<int64_t>(m));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v = LoadU(values + j);
    const __m256i is_neg = UGt(v, vthr);
    // v - m in two's complement is exactly the negative representative
    // -(m - v); the lane wrap is deliberate and confined to the intrinsic.
    const __m256i shifted = _mm256_sub_epi64(v, vm);
    StoreU(out + j, _mm256_blendv_epi8(v, shifted, is_neg));
  }
  for (; j < n; ++j) {
    const uint64_t v = values[j];
    out[j] = v > threshold ? -static_cast<int64_t>(m - v)
                           : static_cast<int64_t>(v);
  }
}

void Avx2ModReduceInto(const uint64_t* values, size_t n, uint64_t m,
                       uint64_t* out) {
  const __m256i vm = _mm256_set1_epi64x(static_cast<int64_t>(m));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i v = LoadU(values + j);
    const int reduced_lanes = LaneMask(UGt(vm, v));  // v < m per lane.
    if (reduced_lanes != 0xF) {
      alignas(32) uint64_t tmp[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
      for (int lane = 0; lane < 4; ++lane) {
        if (((reduced_lanes >> lane) & 1) == 0) tmp[lane] %= m;
      }
      v = LoadU(tmp);
    }
    StoreU(out + j, v);
  }
  for (; j < n; ++j) out[j] = values[j] % m;
}

/// Loads b[j..j+4), reducing any lane >= m with the scalar `%` the
/// reference runs (rare: every secagg producer hands over pre-reduced
/// residues; the `%` is defensive).
inline __m256i LoadReduced(const uint64_t* b, uint64_t m, __m256i vm) {
  __m256i vb = LoadU(b);
  const int reduced_lanes = LaneMask(UGt(vm, vb));
  if (reduced_lanes != 0xF) {
    alignas(32) uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vb);
    for (int lane = 0; lane < 4; ++lane) {
      if (((reduced_lanes >> lane) & 1) == 0) tmp[lane] %= m;
    }
    vb = LoadU(tmp);
  }
  return vb;
}

void Avx2AddModVec(uint64_t* acc, const uint64_t* b, size_t n, uint64_t m) {
  const __m256i vm = _mm256_set1_epi64x(static_cast<int64_t>(m));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i vb = LoadReduced(b + j, m, vm);
    const __m256i va = LoadU(acc + j);
    // Branchless compare-and-correct: with a, b < m, m - b never wraps, and
    // the select between a + b (no-overflow lanes) and a - (m - b)
    // (overflow lanes) never *uses* a lane whose uint64 arithmetic wrapped
    // — that is why the result is exact for every m < 2^64 even though
    // a + b itself can exceed 2^64.
    const __m256i mb = _mm256_sub_epi64(vm, vb);         // m - b.
    const __m256i no_over = UGt(mb, va);                 // a + b < m.
    const __m256i apb = _mm256_add_epi64(va, vb);        // Exact iff no_over.
    const __m256i corrected = _mm256_sub_epi64(va, mb);  // a + b - m.
    StoreU(acc + j, _mm256_blendv_epi8(corrected, apb, no_over));
  }
  for (; j < n; ++j) acc[j] = smm::AddMod(acc[j], b[j] % m, m);
}

void Avx2SubModVec(uint64_t* acc, const uint64_t* b, size_t n, uint64_t m) {
  const __m256i vm = _mm256_set1_epi64x(static_cast<int64_t>(m));
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i vb = LoadReduced(b + j, m, vm);
    const __m256i va = LoadU(acc + j);
    const __m256i borrow = UGt(vb, va);             // a < b.
    const __m256i diff = _mm256_sub_epi64(va, vb);  // Exact iff !borrow.
    const __m256i folded = _mm256_add_epi64(diff, vm);  // a - b + m.
    StoreU(acc + j, _mm256_blendv_epi8(diff, folded, borrow));
  }
  for (; j < n; ++j) acc[j] = smm::SubMod(acc[j], b[j] % m, m);
}

void Avx2AddI64InPlace(int64_t* v, const int64_t* delta, size_t n) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    StoreU(v + j, _mm256_add_epi64(LoadU(v + j), LoadU(delta + j)));
  }
  for (; j < n; ++j) v[j] += delta[j];
}

constexpr Kernels kAvx2Kernels = {
    "avx2",
    Avx2ScaleInPlace,
    Avx2UnscaleInPlace,
    Avx2WhtButterflyPass,
    Avx2FloorFractScaled,
    Avx2WrapCenteredInto,
    Avx2CenterLiftInto,
    Avx2ModReduceInto,
    Avx2AddModVec,
    Avx2SubModVec,
    Avx2AddI64InPlace,
};

}  // namespace

const Kernels* Avx2KernelTableForBuild() { return &kAvx2Kernels; }

}  // namespace smm::simd

#else  // !defined(__AVX2__)

namespace smm::simd {

// Compiled without AVX2 support (non-x86 target, or a compiler without
// -mavx2): dispatch falls through to the scalar reference.
const Kernels* Avx2KernelTableForBuild() { return nullptr; }

}  // namespace smm::simd

#endif  // defined(__AVX2__)
