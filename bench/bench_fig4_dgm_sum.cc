// Reproduces Figure 4 (Appendix B.3): distributed sum estimation comparing
// SMM against the Discrete Gaussian Mixture (DGM) at bitwidths
// m in {2^10, 2^14, 2^18} (gamma in {4, 64, 1024}), plus the continuous
// Gaussian reference.
//
// Expected shape (paper): DGM tracks SMM at moderate/large bitwidths; at the
// smallest bitwidth DGM is worse (integer-rounded sigma and the tau_n
// divergence of summed discrete Gaussians).
//
// Every integer-mechanism run goes over the wire: encode -> ContributionMsg
// frame -> AggregationSession -> streaming sum (see RunDistributedSum), so
// resident memory is one participant tile, independent of n.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "sum_experiment.h"

namespace smm::bench {
namespace {

void Run(Scale scale) {
  const int n = scale == Scale::kFull ? 100 : 50;
  const size_t d = scale == Scale::kFull ? 65536 : 4096;
  const std::vector<double> epsilons =
      scale == Scale::kFast ? std::vector<double>{1.0, 3.0, 5.0}
                            : std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0};

  std::printf("Figure 4: SMM vs DGM distributed sum, per-dimension MSE\n");
  std::printf("scale=%s  n=%d  d=%zu  delta=1e-5\n\n", ScaleName(scale), n,
              d);

  RandomGenerator data_rng(4321);
  const auto inputs = data::SampleSphereDataset(n, d, 1.0, data_rng);

  struct Setting {
    int log2_m;
    double gamma;
  };
  const std::vector<Setting> settings = {{10, 4.0}, {14, 64.0}, {18, 1024.0}};

  std::vector<std::string> heads;
  for (double e : epsilons) heads.push_back(FormatSci(e));
  PrintRow("method \\ eps", heads, 18, 12);

  {
    std::vector<std::string> cells;
    for (double eps : epsilons) {
      SumExperimentConfig cfg;
      cfg.epsilon = eps;
      RandomGenerator rng(55 + static_cast<uint64_t>(eps));
      cells.push_back(FormatSci(RunSumGaussian(inputs, cfg, rng)));
    }
    PrintRow("Gaussian", cells, 18, 12);
  }

  for (const Setting& s : settings) {
    SumExperimentConfig cfg;
    cfg.gamma = s.gamma;
    cfg.modulus = 1ULL << s.log2_m;
    std::vector<std::string> smm_cells, dgm_cells;
    for (double eps : epsilons) {
      cfg.epsilon = eps;
      RandomGenerator rng(99 + static_cast<uint64_t>(eps * 7) +
                          static_cast<uint64_t>(s.log2_m));
      const double smm_mse = RunSumSmm(inputs, cfg, rng);
      const double dgm_mse = RunSumDgm(inputs, cfg, rng);
      smm_cells.push_back(smm_mse < 0 ? "n/a" : FormatSci(smm_mse));
      dgm_cells.push_back(dgm_mse < 0 ? "n/a" : FormatSci(dgm_mse));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "SMM %d bits", s.log2_m);
    PrintRow(label, smm_cells, 18, 12);
    std::snprintf(label, sizeof(label), "DGM %d bits", s.log2_m);
    PrintRow(label, dgm_cells, 18, 12);
  }
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
