#include "common/math_util.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace smm {
namespace {

TEST(AddModTest, SmallModulusMatchesNaive) {
  const uint64_t m = 97;
  for (uint64_t a = 0; a < m; a += 7) {
    for (uint64_t b = 0; b < m; b += 5) {
      EXPECT_EQ(AddMod(a, b, m), (a + b) % m);
      EXPECT_EQ(SubMod(a, b, m), (a + m - b) % m);
    }
  }
}

TEST(AddModTest, NeverWrapsAtHugeModuli) {
  // The naive (a + b) % m wraps for every pair below; compare-and-correct
  // must stay exact. (The exhaustive 128-bit cross-check lives in
  // tests/large_modulus_test.cc.)
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59.
  EXPECT_EQ(AddMod(m - 1, m - 1, m), m - 2);
  EXPECT_EQ(AddMod(m - 1, 1, m), 0ULL);
  EXPECT_EQ(AddMod(m - 2, 1, m), m - 1);
  EXPECT_EQ(SubMod(0, 1, m), m - 1);
  EXPECT_EQ(SubMod(1, m - 1, m), 2ULL);
}

TEST(AddModTest, IdentityAndInverse) {
  for (uint64_t m : std::vector<uint64_t>{2, 1000, ~0ULL}) {
    for (uint64_t a : std::vector<uint64_t>{0, 1, m / 2, m - 1}) {
      EXPECT_EQ(AddMod(a, 0, m), a);
      EXPECT_EQ(SubMod(a, a, m), 0ULL);
      EXPECT_EQ(AddMod(a, SubMod(0, a, m), m), 0ULL);
    }
  }
}

TEST(LogAddTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAdd(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(LogAddTest, HandlesNegativeInfinity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(LogAdd(ninf, 1.5), 1.5);
  EXPECT_EQ(LogAdd(1.5, ninf), 1.5);
  EXPECT_EQ(LogAdd(ninf, ninf), ninf);
}

TEST(LogAddTest, StableForLargeMagnitudes) {
  // exp(1000) overflows, but log(exp(1000) + exp(999)) is fine in log space.
  EXPECT_NEAR(LogAdd(1000.0, 999.0), 1000.0 + std::log1p(std::exp(-1.0)),
              1e-9);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExpTest, MatchesDirectSum) {
  const std::vector<double> v = {std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(LogSumExp(v), std::log(6.0), 1e-12);
}

TEST(LogFactorialTest, SmallValuesExact) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogBinomialTest, MatchesPascal) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-10);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-10);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-8);
}

TEST(LogBesselITest, KnownValues) {
  // Reference values from Abramowitz & Stegun.
  EXPECT_NEAR(std::exp(LogBesselI(0, 1.0)), 1.2660658777520084, 1e-9);
  EXPECT_NEAR(std::exp(LogBesselI(1, 1.0)), 0.5651591039924851, 1e-9);
  EXPECT_NEAR(std::exp(LogBesselI(0, 2.0)), 2.2795853023360673, 1e-9);
  EXPECT_NEAR(std::exp(LogBesselI(2, 2.0)), 0.6889484476987382, 1e-9);
}

TEST(LogBesselITest, ZeroArgument) {
  EXPECT_EQ(LogBesselI(0, 0.0), 0.0);  // I_0(0) = 1.
  EXPECT_EQ(LogBesselI(3, 0.0), -std::numeric_limits<double>::infinity());
}

TEST(LogBesselITest, LargeArgumentDoesNotOverflow) {
  // I_0(700) ~ e^700 / sqrt(2 pi 700): log value near 700 - 4.07.
  const double lv = LogBesselI(0, 700.0);
  EXPECT_TRUE(std::isfinite(lv));
  EXPECT_NEAR(lv, 700.0 - 0.5 * std::log(2.0 * M_PI * 700.0), 0.01);
}

TEST(PoissonLogPmfTest, SumsToOne) {
  const double lambda = 3.7;
  double total = 0.0;
  for (int k = 0; k < 60; ++k) total += std::exp(PoissonLogPmf(k, lambda));
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(PoissonLogPmfTest, MatchesDirectFormula) {
  EXPECT_NEAR(std::exp(PoissonLogPmf(0, 2.0)), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(std::exp(PoissonLogPmf(2, 2.0)), std::exp(-2.0) * 2.0, 1e-12);
}

class SkellamPmfTest : public ::testing::TestWithParam<double> {};

TEST_P(SkellamPmfTest, SumsToOneAndSymmetric) {
  const double lambda = GetParam();
  double total = 0.0;
  const int range = static_cast<int>(20.0 + 10.0 * std::sqrt(2.0 * lambda));
  for (int k = -range; k <= range; ++k) {
    total += std::exp(SkellamLogPmf(k, lambda));
    EXPECT_NEAR(SkellamLogPmf(k, lambda), SkellamLogPmf(-k, lambda), 1e-10);
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST_P(SkellamPmfTest, VarianceIsTwoLambda) {
  const double lambda = GetParam();
  const int range = static_cast<int>(20.0 + 12.0 * std::sqrt(2.0 * lambda));
  double var = 0.0;
  for (int k = -range; k <= range; ++k) {
    var += static_cast<double>(k) * k * std::exp(SkellamLogPmf(k, lambda));
  }
  EXPECT_NEAR(var, 2.0 * lambda, 2e-6 * (1.0 + 2.0 * lambda));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SkellamPmfTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 8.0, 32.0));

class DiscreteGaussianPmfTest : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteGaussianPmfTest, SumsToOne) {
  const double sigma = GetParam();
  double total = 0.0;
  const int range = static_cast<int>(20.0 + 12.0 * sigma);
  for (int k = -range; k <= range; ++k) {
    total += std::exp(DiscreteGaussianLogPmf(k, sigma));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(DiscreteGaussianPmfTest, VarianceNearSigmaSquared) {
  // For sigma >= 1 the discrete Gaussian variance is within ~1% of sigma^2.
  const double sigma = GetParam();
  if (sigma < 1.0) return;
  const int range = static_cast<int>(20.0 + 12.0 * sigma);
  double var = 0.0;
  for (int k = -range; k <= range; ++k) {
    var += static_cast<double>(k) * k *
           std::exp(DiscreteGaussianLogPmf(k, sigma));
  }
  EXPECT_NEAR(var / (sigma * sigma), 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, DiscreteGaussianPmfTest,
                         ::testing::Values(0.5, 1.0, 2.0, 5.66));

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace smm
