#include "sampling/approx_samplers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sampling/noise_sampler.h"

namespace smm::sampling {
namespace {

TEST(ApproxPoissonTest, MomentsMatch) {
  RandomGenerator rng(1);
  constexpr int kN = 100000;
  const double lambda = 4.2;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SamplePoissonApprox(lambda, rng);
    ASSERT_GE(v, 0);
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, lambda, 0.05);
  EXPECT_NEAR(sum_sq / kN - mean * mean, lambda, 0.15);
}

TEST(ApproxPoissonTest, LargeLambda) {
  RandomGenerator rng(2);
  constexpr int kN = 20000;
  const double lambda = 1e6;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(SamplePoissonApprox(lambda, rng));
  }
  EXPECT_NEAR(sum / kN / lambda, 1.0, 0.001);
}

TEST(ApproxSkellamTest, ZeroMeanVarianceTwoLambda) {
  RandomGenerator rng(3);
  constexpr int kN = 100000;
  const double lambda = 3.0;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SampleSkellamApprox(lambda, rng);
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 2.0 * lambda, 0.15);
}

class ApproxDiscreteGaussianTest : public ::testing::TestWithParam<double> {};

TEST_P(ApproxDiscreteGaussianTest, MomentsMatch) {
  const double sigma = GetParam();
  RandomGenerator rng(static_cast<uint64_t>(sigma * 100) + 5);
  constexpr int kN = 60000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SampleDiscreteGaussianApprox(sigma, rng);
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 5.0 * sigma / std::sqrt(kN) + 0.01);
  if (sigma >= 1.0) {
    EXPECT_NEAR(var / (sigma * sigma), 1.0, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ApproxDiscreteGaussianTest,
                         ::testing::Values(0.7, 1.0, 2.83, 5.66, 20.0));

TEST(NoiseSamplerTest, SkellamCreateValidates) {
  EXPECT_FALSE(SkellamSampler::Create(0.0).ok());
  EXPECT_FALSE(SkellamSampler::Create(-1.0).ok());
  EXPECT_TRUE(SkellamSampler::Create(2.5).ok());
}

TEST(NoiseSamplerTest, DiscreteGaussianCreateValidates) {
  EXPECT_FALSE(DiscreteGaussianSampler::Create(0.0).ok());
  EXPECT_TRUE(DiscreteGaussianSampler::Create(1.5).ok());
}

class SamplerModeTest : public ::testing::TestWithParam<SamplerMode> {};

TEST_P(SamplerModeTest, SkellamVarianceMatchesInBothModes) {
  const SamplerMode mode = GetParam();
  auto sampler = SkellamSampler::Create(2.0, mode);
  ASSERT_TRUE(sampler.ok());
  RandomGenerator rng(17);
  constexpr int kN = 50000;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = sampler->Sample(rng);
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum_sq / kN, 4.0, 0.2);
}

TEST_P(SamplerModeTest, DiscreteGaussianVarianceMatchesInBothModes) {
  const SamplerMode mode = GetParam();
  auto sampler = DiscreteGaussianSampler::Create(2.0, mode);
  ASSERT_TRUE(sampler.ok());
  RandomGenerator rng(19);
  constexpr int kN = 50000;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = sampler->Sample(rng);
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum_sq / kN / 4.0, 1.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Modes, SamplerModeTest,
                         ::testing::Values(SamplerMode::kApproximate,
                                           SamplerMode::kExact));

}  // namespace
}  // namespace smm::sampling
