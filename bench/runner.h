#ifndef SMM_BENCH_RUNNER_H_
#define SMM_BENCH_RUNNER_H_

// Scenario-matrix benchmark runner. Each benchmark is a Scenario that
// declares its axes (mechanism, modulus class, dim, participants, dropout
// rate, corrupt-frame rate, dispatch mode, shards, threads) and measures one
// enumerated point at a time; the runner enumerates the cross product,
// collects every point's wall time / throughput / bit-identity verdict into
// a MatrixReport, and serializes the report as one schema-versioned JSON
// artifact. The bench_matrix binary drives the matrix directly (--filter,
// --repeats, --json, --calibrate); bench_scaling_threads is a compatibility
// wrapper that replays the same scenarios and re-emits the historical
// artifact shape and SPEEDUP_SUMMARY / SIMD_KERNEL log lines.
//
// Determinism contract: scenarios seed every generator from fixed constants
// and treat the threads axis as the innermost loop, so the 1-thread run of
// each outer-axis combination is always enumerated first and serves as the
// bit-identity reference for the higher thread counts.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/status.h"
#include "common/tuning.h"

namespace smm::bench {

/// Schema version of the bench_matrix JSON artifact. Bump on any
/// shape-incompatible change; bench/bench_matrix_schema.json and
/// bench/check_bench_regression.py key off it.
inline constexpr int kMatrixSchemaVersion = 1;

/// One enumerated point of a scenario's axis cross product. Axes a scenario
/// does not declare keep their neutral defaults here, so every RunRecord
/// carries the full coordinate tuple.
struct ScenarioPoint {
  std::string mechanism;      ///< "smm", "ddg", "cpsgd", or "" (none).
  std::string modulus_class;  ///< "pow2_16", "pow2_32", "prime64", or "".
  uint64_t modulus = 0;
  size_t dim = 0;
  size_t participants = 0;
  double dropout_rate = 0.0;
  double corrupt_frame_rate = 0.0;
  std::string dispatch = "active";  ///< "active" or "scalar".
  size_t shards = 1;                ///< Shard workers; 1 = unsharded.
  int threads = 1;
};

/// The declared axes of one scenario. Every vector must be non-empty; the
/// runner enumerates the cross product with `threads` innermost (see the
/// determinism contract above). An empty `threads` vector skips the
/// scenario entirely (e.g. the TCP server scenario on a platform without
/// the epoll backend).
struct ScenarioAxes {
  std::vector<std::string> mechanisms{""};
  std::vector<std::pair<std::string, uint64_t>> moduli{{"", 0}};
  std::vector<size_t> dims{0};
  std::vector<size_t> participants{0};
  std::vector<double> dropout_rates{0.0};
  std::vector<double> corrupt_frame_rates{0.0};
  std::vector<std::string> dispatch{"active"};
  std::vector<size_t> shards{1};
  std::vector<int> threads{1};
};

/// One measurement a scenario returns for a point. Most scenarios return a
/// single result per point; simd_kernels returns one per kernel.
struct PointResult {
  std::string label;  ///< Row label, e.g. "encode_smm" or a kernel name.
  double seconds = 0.0;
  /// Work items completed in `seconds` (coordinates, frames, ...); the
  /// runner derives items_per_sec from it.
  double items = 0.0;
  bool bit_identical = true;
  /// Scenario-specific extra metrics, serialized under "metrics".
  std::vector<std::pair<std::string, double>> metrics;
};

/// Knobs shared by every scenario in one matrix run.
struct RunOptions {
  Scale scale = Scale::kDefault;
  /// Best-of-N repeats; 0 = each scenario's per-scale default.
  int repeats = 0;
  /// Adds the non-default axis values (extra modulus classes, nonzero
  /// corrupt-frame rates) that the legacy artifact shape has no rows for.
  bool wide = false;
  bool verbose = true;
};

/// One point's outcome in the report.
struct RunRecord {
  std::string label;
  ScenarioPoint params;
  double seconds = 0.0;
  double items_per_sec = 0.0;
  bool bit_identical = true;
  std::vector<std::pair<std::string, double>> metrics;

  /// Named metric lookup; `fallback` when absent.
  double Metric(const std::string& name, double fallback = 0.0) const;
};

struct ScenarioReport {
  std::string name;
  std::string description;
  /// Stable scenarios (allocation-free best-of-N micro loops) gate CI via
  /// check_bench_regression.py; wall-time scenarios stay informational.
  bool stable = false;
  std::vector<RunRecord> runs;

  bool AllBitIdentical() const;
};

struct MatrixReport {
  Scale scale = Scale::kDefault;
  std::vector<ScenarioReport> scenarios;

  bool AllBitIdentical() const;
  const ScenarioReport* Find(const std::string& name) const;
};

/// One benchmark family. Instances live for one matrix run, so a scenario
/// may cache state across points (canonically: the 1-thread reference
/// output of the current outer-axis combination).
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual const char* name() const = 0;
  virtual const char* description() const = 0;
  /// Stable scenarios gate CI (see ScenarioReport::stable).
  virtual bool stable() const { return false; }
  virtual ScenarioAxes Axes(const RunOptions& options) = 0;
  virtual StatusOr<std::vector<PointResult>> RunPoint(
      const ScenarioPoint& point, const RunOptions& options) = 0;
};

// ---------------------------------------------------------------------------
// Timing helpers — the one best-of-N implementation the sections used to
// hand-roll separately.
// ---------------------------------------------------------------------------

/// Wall seconds of one `body` invocation (steady clock).
double TimeSeconds(const std::function<void()>& body);

/// Best (minimum) wall seconds over `repeats` invocations of `body`;
/// `reset`, when provided, runs untimed before each invocation.
double BestOfN(int repeats, const std::function<void()>& body,
               const std::function<void()>& reset = {});

// ---------------------------------------------------------------------------
// Registry and runner.
// ---------------------------------------------------------------------------

class ScenarioRegistry {
 public:
  static ScenarioRegistry& Global();

  void Register(std::function<std::unique_ptr<Scenario>()> factory);
  /// Fresh instances of every registered scenario, in registration order.
  std::vector<std::unique_ptr<Scenario>> Instantiate() const;

 private:
  std::vector<std::function<std::unique_ptr<Scenario>()>> factories_;
};

/// Registers the full scenario set (defined in scenarios.cc). Idempotent.
void RegisterAllScenarios();

/// Runs every registered scenario whose name contains `filter` (empty
/// matches all) over its enumerated axes. Fails on the first scenario
/// error; bit-identity verdicts are recorded, not fatal — callers decide
/// the exit code from MatrixReport::AllBitIdentical.
StatusOr<MatrixReport> RunMatrix(const std::string& filter,
                                 const RunOptions& options);

/// Serializes `report` as the schema-versioned bench_matrix artifact
/// (validated by bench/bench_matrix_schema.json).
Status WriteMatrixJson(const MatrixReport& report, const std::string& path);

/// Measures this host's tile sizing, session thread count, and per-kernel
/// scalar/SIMD dispatch crossovers (defined in calibrate.cc). Restores the
/// process-wide tuning it perturbed while sweeping; the caller decides
/// whether to install or serialize the result.
StatusOr<RuntimeTuning> RunCalibration(Scale scale, bool verbose);

}  // namespace smm::bench

#endif  // SMM_BENCH_RUNNER_H_
