#ifndef SMM_SECAGG_SECURE_AGGREGATOR_H_
#define SMM_SECAGG_SECURE_AGGREGATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "secagg/shamir.h"
#include "secagg/streaming_aggregator.h"

namespace smm::secagg {

/// Black-box secure aggregation interface (the protocol A of Algorithm 3):
/// given per-participant vectors in Z_m^d, reveals only their element-wise
/// sum mod m. The DP analysis of the paper treats this as an ideal
/// functionality; both implementations below compute the identical sum, so
/// the mechanisms are oblivious to which one runs underneath. All sums are
/// exact for any modulus in [2, 2^64), including m > 2^63 where naive
/// accumulation would wrap uint64_t (see smm::AddMod).
class SecureAggregator {
 public:
  virtual ~SecureAggregator() = default;

  /// Sums `inputs` (all of equal length) element-wise modulo m.
  virtual StatusOr<std::vector<uint64_t>> Aggregate(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) = 0;

  /// Like Aggregate, but may shard the accumulation across `pool` (nullptr
  /// means sequential). Addition in Z_m commutes, so implementations must —
  /// and the provided ones do — return bit-identical sums for any thread
  /// count. The default ignores the pool.
  virtual StatusOr<std::vector<uint64_t>> AggregateParallel(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
      ThreadPool* pool) {
    (void)pool;
    return Aggregate(inputs, m);
  }

  /// Client-side preparation of participant `participant`'s contribution
  /// before it goes on the wire: returns the vector the server should
  /// receive in its ContributionMsg. The default reduces the input into Z_m
  /// unchanged (the ideal functionality sends plaintext residues); the
  /// masked protocol overrides this with pairwise masking, so the framed
  /// payload is uniform garbage individually and the full
  /// mask -> frame -> session -> stream path exercises the real protocol.
  /// Requires a non-empty input and m >= 2. When `pool` is given,
  /// implementations may shard the preparation, bit-identically to the
  /// sequential path.
  virtual StatusOr<std::vector<uint64_t>> PrepareContribution(
      int participant, const std::vector<uint64_t>& input, uint64_t m,
      ThreadPool* pool = nullptr) const;

  /// Opens a streaming aggregation session over Z_m^dim: contributions
  /// arrive one participant (or tile) at a time via Absorb/AbsorbTile and
  /// the sum is released by Finalize, bit-identical to the batch path above
  /// for any thread count and absorb order. Requires dim >= 1 and m >= 2.
  ///
  /// Both provided aggregators override this with bounded-memory streams
  /// (O(threads·dim) resident, independent of the participant count); the
  /// default adapter buffers every absorbed input and delegates to
  /// AggregateParallel at Finalize — correct for any implementation, but
  /// O(n·dim) memory. The aggregator must outlive the returned stream.
  virtual StatusOr<std::unique_ptr<StreamingAggregator>> Open(
      size_t dim, uint64_t m, ThreadPool* pool = nullptr);

  /// Derives the aggregator instance that serves shard `shard_index` of a
  /// `shard_count`-way dimension-sharded round (ShardPlan's contiguous
  /// ranges). Returns nullptr when this instance serves every shard
  /// directly — the stateless default, correct whenever the protocol's
  /// per-coordinate work is independent of which dimension range a stream
  /// covers (true for the ideal plain-sum aggregator).
  ///
  /// Protocols with cross-coordinate randomness must override this:
  /// MaskedAggregator expands each pair's mask as one PRG stream over the
  /// full d coordinates, so slicing a d-dim masked vector into K ranges and
  /// unmasking each range with the same instance would misalign every
  /// shard's mask offsets — and reusing one mask stream across shards would
  /// leak cross-shard plaintext differences. It therefore returns a fresh
  /// aggregator over a shard-derived session seed (seed + shard_index) per
  /// shard, and nullptr at shard_count == 1 so the degenerate path is the
  /// byte-identical unsharded protocol. Requires shard_index < shard_count.
  virtual StatusOr<std::unique_ptr<SecureAggregator>> CreateShardAggregator(
      size_t shard_index, size_t shard_count) const;
};

/// The ideal functionality: a plain modular sum. Used by the experiment
/// harnesses for speed (the paper likewise runs SecAgg "as a black box").
class IdealAggregator final : public SecureAggregator {
 public:
  StatusOr<std::vector<uint64_t>> Aggregate(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) override;

  /// Shards the participant range across the pool; each thread accumulates
  /// its shard into a private partial sum, and the partials are reduced
  /// mod m at the end (in shard order, though modular addition makes the
  /// order immaterial).
  StatusOr<std::vector<uint64_t>> AggregateParallel(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
      ThreadPool* pool) override;

  /// Bounded-memory stream: one O(dim) running sum (sharded tile absorbs
  /// keep one O(dim) partial per thread, reusing ShardedModularAccumulate).
  /// The stream is self-contained; it does not reference the aggregator.
  StatusOr<std::unique_ptr<StreamingAggregator>> Open(
      size_t dim, uint64_t m, ThreadPool* pool = nullptr) override;
};

/// A faithful simulation of pairwise-mask secure aggregation (Bonawitz et
/// al. 2017): every ordered pair (i < j) of participants derives a common
/// seed; i adds PRG(seed) to its input, j subtracts it, so all masks cancel
/// in the sum and individual masked inputs are uniform in Z_m^d. Each
/// participant Shamir-shares its per-pair seeds so the server can unmask the
/// pairs involving dropped participants from any `threshold` survivors.
///
/// This simulates the cryptography (seed agreement stands in for
/// Diffie-Hellman); the algebra — masking, cancellation, dropout recovery —
/// is executed for real.
class MaskedAggregator final : public SecureAggregator {
 public:
  struct Options {
    int num_participants = 0;
    /// Shamir reconstruction threshold for dropout recovery. Must satisfy
    /// 1 <= threshold <= num_participants.
    int threshold = 1;
    /// Session randomness for seed agreement and share generation.
    uint64_t session_seed = 0;
  };

  static StatusOr<std::unique_ptr<MaskedAggregator>> Create(
      const Options& options);

  /// Client-side: returns participant i's masked input (input + sum of its
  /// pairwise masks, mod m). Requires a non-empty input and m >= 2. When
  /// `pool` is given, mask expansion is sharded across the participant's
  /// n - 1 pairs: every pair mask is expanded from its own PRG stream
  /// (seeded by the pair seed alone) into a chunk-local partial
  /// accumulator, and the partials are reduced mod m in chunk order.
  /// Modular addition commutes, so the result is bit-identical for any
  /// thread count.
  StatusOr<std::vector<uint64_t>> MaskInput(int participant,
                                            const std::vector<uint64_t>& input,
                                            uint64_t m,
                                            ThreadPool* pool = nullptr) const;

  /// Server-side: sums masked inputs of the `survivors` (indices into the
  /// participant range) and removes the masks that involve dropped
  /// participants by Shamir-reconstructing their pair seeds from the
  /// survivors' shares. Requires dim >= 1, m >= 2, and |survivors| >=
  /// threshold. When `pool` is given, both the masked-input sum (sharded
  /// over survivors) and the dropout recovery (sharded over (survivor,
  /// dropped) pairs) run on the pool, bit-identically to the sequential
  /// path.
  StatusOr<std::vector<uint64_t>> UnmaskSum(
      const std::vector<std::vector<uint64_t>>& masked_inputs,
      const std::vector<int>& survivors, size_t dim, uint64_t m,
      ThreadPool* pool = nullptr) const;

  /// Client-side wire preparation: pairwise masking via MaskInput, so the
  /// transported payload is exactly the masked input Bonawitz-style SecAgg
  /// puts on the network.
  StatusOr<std::vector<uint64_t>> PrepareContribution(
      int participant, const std::vector<uint64_t>& input, uint64_t m,
      ThreadPool* pool = nullptr) const override;

  /// SecureAggregator interface: all participants survive.
  StatusOr<std::vector<uint64_t>> Aggregate(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) override;

  /// Parallel full round: masking is sharded across participants (each
  /// participant's MaskInput is independent) and the unmask sum across
  /// survivors, so the O(n^2 d) mask expansion — the dominant cost — scales
  /// with the thread count while staying bit-identical to Aggregate.
  StatusOr<std::vector<uint64_t>> AggregateParallel(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
      ThreadPool* pool) override;

  /// Server-side stream: absorbs *masked* inputs incrementally into an
  /// O(dim) running sum (each participant at most once) and defers dropout
  /// recovery to Finalize — participants absent at Finalize are treated as
  /// dropped and their leftover masks removed via Shamir recovery, exactly
  /// as UnmaskSum would. Bit-identical to UnmaskSum over the same survivor
  /// set for any absorb order and thread count. The aggregator must outlive
  /// the stream.
  StatusOr<std::unique_ptr<StreamingAggregator>> Open(
      size_t dim, uint64_t m, ThreadPool* pool = nullptr) override;

  /// Per-shard protocol instance for dimension-sharded rounds: a fresh
  /// MaskedAggregator over session_seed + shard_index, so each shard runs
  /// its own seed agreement, masking, and (local) Shamir dropout recovery
  /// over its narrower range. nullptr at shard_count == 1 (shard 0 would
  /// derive seed + 0 = the unsharded instance anyway; returning nullptr
  /// keeps the K = 1 path byte-identical by construction).
  StatusOr<std::unique_ptr<SecureAggregator>> CreateShardAggregator(
      size_t shard_index, size_t shard_count) const override;

 private:
  class Stream;

  MaskedAggregator(Options options, std::vector<std::vector<uint64_t>> seeds,
                   std::vector<std::vector<std::vector<ShamirShare>>> shares);

  /// Accumulates sign * PRG(seed) into acc mod m (sign is +1 or -1),
  /// without materializing the mask: acc[k] = acc[k] +- mask[k] (mod m,
  /// overflow-safe). Each call owns a fresh PRG seeded by the pair seed —
  /// the per-pair stream that makes sharding over pairs deterministic.
  static void AccumulateMask(uint64_t seed, uint64_t m, int sign,
                             std::vector<uint64_t>& acc);

  /// The deferred half of unmasking: removes from `sum` the leftover mask
  /// terms of every (survivor, dropped) pair by Shamir-reconstructing the
  /// pair seed from the survivors' shares. Pairs shard across the pool;
  /// requires |survivors| >= threshold (checked by the callers).
  Status RecoverDroppedMasks(const std::vector<int>& survivors, uint64_t m,
                             ThreadPool* pool,
                             std::vector<uint64_t>& sum) const;

  uint64_t PairSeed(int i, int j) const;  // i < j.

  Options options_;
  /// seeds_[i][j] is the seed shared by pair (i, j), i < j (upper triangle).
  std::vector<std::vector<uint64_t>> seeds_;
  /// shares_[i][j][k]: the k-th Shamir share of seeds_[min][max] for pair
  /// (i, j), held by participant k. Used for dropout recovery.
  std::vector<std::vector<std::vector<ShamirShare>>> shares_;
};

}  // namespace smm::secagg

#endif  // SMM_SECAGG_SECURE_AGGREGATOR_H_
