#include "mechanisms/distributed_mechanism.h"

namespace smm::mechanisms {

StatusOr<std::vector<double>> RunDistributedSum(
    DistributedSumMechanism& mechanism, secagg::SecureAggregator& aggregator,
    const std::vector<std::vector<double>>& inputs, RandomGenerator& rng) {
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  std::vector<std::vector<uint64_t>> encoded;
  encoded.reserve(inputs.size());
  for (const auto& x : inputs) {
    SMM_ASSIGN_OR_RETURN(auto z, mechanism.EncodeParticipant(x, rng));
    encoded.push_back(std::move(z));
  }
  SMM_ASSIGN_OR_RETURN(auto zm_sum,
                       aggregator.Aggregate(encoded, mechanism.modulus()));
  return mechanism.DecodeSum(zm_sum, static_cast<int>(inputs.size()));
}

double MeanSquaredErrorPerDimension(
    const std::vector<double>& estimate,
    const std::vector<std::vector<double>>& inputs) {
  if (inputs.empty() || estimate.empty()) return 0.0;
  const size_t d = inputs[0].size();
  double sum_sq = 0.0;
  for (size_t j = 0; j < d; ++j) {
    double exact = 0.0;
    for (const auto& x : inputs) exact += x[j];
    const double e = (j < estimate.size() ? estimate[j] : 0.0) - exact;
    sum_sq += e * e;
  }
  return sum_sq / static_cast<double>(d);
}

}  // namespace smm::mechanisms
