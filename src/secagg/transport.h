#ifndef SMM_SECAGG_TRANSPORT_H_
#define SMM_SECAGG_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "secagg/shamir.h"

namespace smm::secagg {

/// The versioned binary wire format of the secure-aggregation transport:
/// the client -> server message flow that Bonawitz-style SecAgg and the
/// DDP-SA line of work build on, made concrete so contributions arrive as
/// framed messages instead of in-memory vector batches.
///
/// Every message travels in one frame:
///
///   offset  size  field
///   0       4     magic "SMM1" (raw bytes, rejects non-protocol data)
///   4       1     version (kWireVersion or kWireVersionSharded; parsers
///                 reject anything else)
///   5       1     message type (MessageType; parsers reject unknowns)
///   6       2     reserved, must be zero
///   8       4     payload length in bytes (little-endian uint32)
///   12      len   payload (per-type layout below)
///   12+len  8     FNV-1a 64-bit checksum of bytes [0, 12+len)
///
/// All integers are serialized little-endian byte by byte, so the encoding
/// is identical on any host endianness. Parsing is strict: a frame is
/// rejected (with a Status, never UB) if it is truncated, carries trailing
/// bytes, exceeds kMaxPayloadBytes, fails the checksum, or its payload's
/// internal counts disagree with the payload length.
///
/// Version 1 payload layouts (LE):
///   kContribution  participant_id u32 | count u32 | modulus u64
///                  | count x value u64
///   kShares        participant_id u32 | count u32 | count x (x u64, y u64)
///   kSum           num_contributors u32 | count u32 | modulus u64
///                  | count x value u64
///
/// Version 2 ("sharded") payload layouts (LE). The version byte gates the
/// shard extension: every version-1 frame above stays byte-identical, and a
/// version-2 frame unconditionally carries a 16-byte ShardSpec after the
/// modulus. Only the two sharded message types exist at version 2; a
/// version-2 kShares/kSum (and a version-1 kPartialSum) is structurally
/// malformed and rejected with kInvalidArgument.
///   kContribution  participant_id u32 | count u32 | modulus u64
///                  | ShardSpec (4 x u32) | count x value u64
///   kPartialSum    num_contributors u32 | count u32 | modulus u64
///                  | ShardSpec (4 x u32) | count x value u64
///   ShardSpec      shard_index u32 | shard_count u32 | dim_offset u32
///                  | shard_dim u32

inline constexpr uint8_t kWireVersion = 1;
/// Wire version of the shard extension: contributions sliced to one shard's
/// dimension range and the per-shard partial sums a coordinator merges.
inline constexpr uint8_t kWireVersionSharded = 2;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameChecksumBytes = 8;
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameChecksumBytes;
/// Upper bound on a frame's payload, enforced by encoder and parser alike:
/// 1 GiB covers d = 2^27 u64 coordinates per contribution while keeping a
/// corrupt length prefix from driving a giant allocation.
inline constexpr size_t kMaxPayloadBytes = size_t{1} << 30;

enum class MessageType : uint8_t {
  kContribution = 1,
  kShares = 2,
  kSum = 3,
  kPartialSum = 4,
};

/// Addresses one shard of a dimension-sharded round: shard `shard_index` of
/// `shard_count` owns the contiguous coordinate range
/// [dim_offset, dim_offset + shard_dim). Carried by every version-2 frame;
/// a spec is well-formed iff shard_index < shard_count, shard_dim >= 1, and
/// dim_offset + shard_dim fits in a u32 (see ValidateShardSpec).
struct ShardSpec {
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint32_t dim_offset = 0;
  uint32_t shard_dim = 0;

  friend bool operator==(const ShardSpec& a, const ShardSpec& b) {
    return a.shard_index == b.shard_index && a.shard_count == b.shard_count &&
           a.dim_offset == b.dim_offset && a.shard_dim == b.shard_dim;
  }
  friend bool operator!=(const ShardSpec& a, const ShardSpec& b) {
    return !(a == b);
  }
};

/// Structural validity of a ShardSpec, independent of any round's dimension:
/// kInvalidArgument unless shard_index < shard_count, shard_dim >= 1, and
/// dim_offset + shard_dim <= UINT32_MAX.
Status ValidateShardSpec(const ShardSpec& spec);

/// One participant's (masked) contribution in Z_m^d — the client -> server
/// payload of Algorithm 3's black-box protocol. When `shard` is set the
/// payload covers only that shard's dimension range (shard.shard_dim must
/// equal payload.size()) and the frame is encoded at kWireVersionSharded;
/// when unset the frame is a version-1 whole-vector contribution,
/// byte-identical to the pre-shard wire format.
struct ContributionMsg {
  int participant_id = 0;
  uint64_t modulus = 0;
  std::vector<uint64_t> payload;
  std::optional<ShardSpec> shard;
};

/// A participant's Shamir shares (the dropout-recovery material clients
/// deposit with the server before contributing).
struct SharesMsg {
  int participant_id = 0;
  std::vector<ShamirShare> shares;
};

/// The server's aggregated sum in Z_m^d, broadcast after Finalize.
struct SumMsg {
  uint64_t modulus = 0;
  uint32_t num_contributors = 0;
  std::vector<uint64_t> sum;
};

/// One shard worker's aggregated sum over its dimension range, sent to the
/// coordinator for tree reduction into the round's SumMsg. Always encoded
/// at kWireVersionSharded; shard.shard_dim must equal sum.size().
struct PartialSumMsg {
  uint64_t modulus = 0;
  uint32_t num_contributors = 0;
  ShardSpec shard;
  std::vector<uint64_t> sum;
};

/// A successfully parsed frame, one alternative per message type.
using WireMessage =
    std::variant<ContributionMsg, SharesMsg, SumMsg, PartialSumMsg>;

/// Serializes a message into one framed byte string. Fails on a negative
/// participant id, a modulus < 2, a payload over kMaxPayloadBytes, or a
/// shard spec that is malformed or disagrees with the payload size.
StatusOr<std::vector<uint8_t>> EncodeFrame(const ContributionMsg& msg);
StatusOr<std::vector<uint8_t>> EncodeFrame(const SharesMsg& msg);
StatusOr<std::vector<uint8_t>> EncodeFrame(const SumMsg& msg);
StatusOr<std::vector<uint8_t>> EncodeFrame(const PartialSumMsg& msg);

/// Parses one frame. `frame.size()` must be the exact frame length.
/// Structurally malformed input (bad magic/version/type, trailing bytes,
/// counts that disagree with the length prefix) is rejected with
/// kInvalidArgument; input damaged in transit (truncation, checksum
/// mismatch) with kDataLoss. Parsing never touches memory outside the span.
StatusOr<WireMessage> DecodeFrame(ByteSpan frame);

/// The pluggable message channel underneath AggregationSession: clients
/// push whole SMM1 frames in with Send, one server loop pulls complete
/// frames out with Receive. Session code (DrainTransport, RunDistributedSum)
/// is written against this interface, so swapping the in-process loopback
/// for real sockets — or any future backend — changes no aggregation logic;
/// a backend only has to move frames byte-identically.
///
/// Contract:
///  - Send is thread-safe; many clients may call it concurrently.
///  - Receive is driven by exactly one server loop at a time. It returns
///    the next complete frame, or nullopt once the transport is drained:
///    no frame is available now and the backend knows no more are coming
///    (for the in-memory backend that is simply "all queues empty"; a
///    socket backend may block while frames are still in flight).
///  - FinishSending is the client side's end-of-stream signal: after it,
///    no Send may follow, and a blocking backend's Receive must eventually
///    return nullopt instead of waiting forever. Backends with no in-flight
///    state (the in-memory queue) need not override it.
///  - Frames travel opaque and intact: a backend never splits, merges,
///    reorders bytes within, or validates the contents of a frame beyond
///    what it needs to find frame boundaries.
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;

  /// Enqueues/sends one framed message from `client_id` (>= 0). The frame
  /// is taken by value and moved into the channel. Thread-safe.
  virtual Status Send(int client_id, std::vector<uint8_t> frame) = 0;

  /// Returns the next complete frame, or nullopt when the transport is
  /// drained. Single-consumer; see the class contract for blocking rules.
  virtual std::optional<std::vector<uint8_t>> Receive() = 0;

  /// Frames currently deliverable without waiting for more input.
  virtual size_t pending() const = 0;

  /// Declares that no further Send will follow (any backend buffering or
  /// in-flight bytes must still be delivered by Receive). Default: no-op.
  virtual Status FinishSending() { return OkStatus(); }

  /// Why Receive last reported drained. OK means genuinely drained (every
  /// sent frame was delivered); an error (kDataLoss) means the channel
  /// itself broke and undelivered frames may have been lost — callers that
  /// need exactly-once delivery must check this after a drain. Backends
  /// that cannot lose frames (the in-memory queue) keep the OK default.
  virtual Status receive_status() const { return OkStatus(); }
};

/// A loopback FrameTransport with per-client FIFO queues: clients enqueue
/// framed bytes with Send, the server drains them with Receive. The whole
/// client -> frame -> session -> stream pipeline can run in-process through
/// this; net::SocketTransport reproduces the same byte-in/byte-out contract
/// over real TCP sockets.
///
/// Determinism contract: Receive always returns the oldest frame of the
/// lowest client id that has one pending, so the drain order is a function
/// of what was sent — per-client send order and the client id set — never
/// of thread scheduling. Receive never blocks: an empty queue set means
/// drained.
class InMemoryTransport final : public FrameTransport {
 public:
  /// Enqueues a frame from `client_id` (>= 0). The frame is taken by value
  /// and moved into the queue.
  Status Send(int client_id, std::vector<uint8_t> frame) override;

  /// Dequeues the next frame in the deterministic drain order, or nullopt
  /// when every queue is empty.
  std::optional<std::vector<uint8_t>> Receive() override;

  /// Frames currently queued across all clients.
  size_t pending() const override;

 private:
  mutable std::mutex mu_;
  /// Non-empty queues only, keyed by client id (ordered map = lowest-id
  /// drain order); an emptied queue is erased so memory tracks the pending
  /// frames, not the client universe.
  std::map<int, std::deque<std::vector<uint8_t>>> queues_;
  size_t pending_ = 0;
};

}  // namespace smm::secagg

#endif  // SMM_SECAGG_TRANSPORT_H_
