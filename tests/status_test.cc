#include "common/status.h"

#include <gtest/gtest.h>

namespace smm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(DataLossError("x").ToString(), "DataLoss: x");
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(DeadlineExceededError("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(UnavailableError("x").ToString(), "Unavailable: x");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SMM_ASSIGN_OR_RETURN(*out, Half(x));
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseHalf(3, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailThenOk(bool fail) {
  SMM_RETURN_IF_ERROR(fail ? InternalError("boom") : OkStatus());
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(FailThenOk(false).ok());
  EXPECT_EQ(FailThenOk(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace smm
