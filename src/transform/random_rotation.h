#ifndef SMM_TRANSFORM_RANDOM_ROTATION_H_
#define SMM_TRANSFORM_RANDOM_ROTATION_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace smm::transform {

/// The randomized rotation of Algorithms 4 and 6: y = H D_xi x, where H is
/// the normalized Walsh-Hadamard matrix and D_xi a diagonal of i.i.d.
/// uniform signs derived from *public* randomness shared by all participants
/// and the server. The rotation flattens the input (each output coordinate
/// is sub-Gaussian with variance O(||x||_2^2 / d)), limiting modular
/// overflow when noisy values are reduced into Z_m.
class RandomRotation {
 public:
  /// Creates a rotation for power-of-two dimension `dim`; the sign vector is
  /// derived deterministically from `public_seed`.
  static StatusOr<RandomRotation> Create(size_t dim, uint64_t public_seed);

  /// Applies y = H D_xi x. x must have size dim().
  StatusOr<std::vector<double>> Apply(const std::vector<double>& x) const;

  /// Allocation-free variant of Apply for hot encode loops: writes into y,
  /// reusing its capacity (y is resized to dim()). x and y must not alias.
  Status ApplyInto(const std::vector<double>& x, std::vector<double>& y) const;

  /// Batched Apply: rotates rows xs[begin..end) into `flat` (row-major,
  /// (end - begin) x dim(), resized as needed), sharding rows across `pool`
  /// when given. Rows are independent and every row goes through the same
  /// kernel as ApplyInto, so the output is bit-identical to end - begin
  /// scalar applications for any thread count.
  Status ApplyBatchInto(const std::vector<std::vector<double>>& xs,
                        size_t begin, size_t end, std::vector<double>& flat,
                        ThreadPool* pool = nullptr) const;

  /// ApplyBatchInto without the Hadamard normalization: row r holds
  /// sqrt(d) * H D_xi x (the sign flip and the raw butterfly stages only).
  /// The fused encode pipeline folds the 1/sqrt(d) factor into its first
  /// blocked sweep; scaling each element by 1/sqrt(d) afterwards is the
  /// identical IEEE multiply, so the two batch entry points stay
  /// bit-compatible.
  Status ApplyRawBatchInto(const std::vector<std::vector<double>>& xs,
                           size_t begin, size_t end,
                           std::vector<double>& flat,
                           ThreadPool* pool = nullptr) const;

  /// Applies the inverse x = D_xi H^T y = D_xi H y (H is symmetric).
  StatusOr<std::vector<double>> Inverse(const std::vector<double>& y) const;

  size_t dim() const { return signs_.size(); }
  const std::vector<int8_t>& signs() const { return signs_; }

 private:
  explicit RandomRotation(std::vector<int8_t> signs)
      : signs_(std::move(signs)) {}

  Status ApplyBatchImpl(const std::vector<std::vector<double>>& xs,
                        size_t begin, size_t end, std::vector<double>& flat,
                        ThreadPool* pool, bool normalized) const;

  std::vector<int8_t> signs_;
};

}  // namespace smm::transform

#endif  // SMM_TRANSFORM_RANDOM_ROTATION_H_
