#ifndef SMM_ACCOUNTING_BINOMIAL_ACCOUNTANT_H_
#define SMM_ACCOUNTING_BINOMIAL_ACCOUNTANT_H_

#include "common/status.h"

namespace smm::accounting {

/// (epsilon, delta)-DP accounting for the binomial mechanism of cpSGD
/// (Agarwal et al. 2018). The aggregate noise over n participants each
/// adding Binomial(N, 1/2) - N/2 is Binomial(nN, 1/2) - nN/2 with variance
/// sigma^2 = nN/4.
///
/// The epsilon follows the structure of cpSGD Theorem 1 (Gaussian-like main
/// term plus L1/Linf correction terms that decay as 1/sigma^2); constants
/// are transcribed in simplified form — in every regime the paper evaluates,
/// the correction terms (driven by the stochastically-rounded L1 sensitivity
/// ~ sqrt(d) * L2) dominate and render cpSGD unusable, which is exactly the
/// paper's finding (error > 1e4 in Fig. 1, accuracy < 20% in Figs. 2-3).
struct BinomialMechanismParams {
  double total_trials = 0.0;  ///< n * N: total Bernoulli trials in the sum.
  double l2 = 0.0;            ///< L2 sensitivity of the integer input.
  double l1 = 0.0;            ///< L1 sensitivity.
  double linf = 0.0;          ///< Linf sensitivity.
  int dimension = 1;          ///< d, enters the high-probability union bound.
};

/// Epsilon of a single binomial-mechanism release at the given delta.
/// Fails if the variance is too small for the theorem's preconditions
/// (sigma^2 >= max(23 log(10 d / delta), 2 linf)).
StatusOr<double> BinomialMechanismEpsilon(const BinomialMechanismParams& p,
                                          double delta);

/// Linear composition: epsilon scales by `steps`, delta budget split evenly.
double ComposeLinear(double eps_step, int steps);

/// Advanced composition (Dwork & Roth Thm 3.20): for `steps` mechanisms each
/// (eps, delta_step)-DP, the composition is (eps', steps*delta_step +
/// delta_slack)-DP with
///   eps' = eps sqrt(2 steps log(1/delta_slack)) + steps eps (e^eps - 1).
double ComposeAdvanced(double eps_step, int steps, double delta_slack);

/// cpSGD end-to-end epsilon for T iterations: per-step binomial epsilon at
/// delta/(2T), composed linearly and by advanced composition (delta_slack =
/// delta/2), returning the smaller — "we apply both linear composition and
/// advanced composition ... and choose the stronger guarantee" (Section 6).
StatusOr<double> CpSgdEpsilon(const BinomialMechanismParams& per_step,
                              int steps, double delta);

/// Calibrates the per-participant trial count N (via total_trials) so that
/// CpSgdEpsilon <= target_epsilon, by doubling + binary search. Returns the
/// smallest feasible total_trials, or an error if even `max_total_trials`
/// cannot reach the target.
StatusOr<double> CalibrateBinomialTrials(BinomialMechanismParams per_step,
                                         int steps, double target_epsilon,
                                         double delta,
                                         double max_total_trials = 1e18);

}  // namespace smm::accounting

#endif  // SMM_ACCOUNTING_BINOMIAL_ACCOUNTANT_H_
