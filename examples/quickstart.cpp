// Quickstart: the Skellam Mixture Mechanism on the distributed sum problem.
//
// Five participants each hold a private real-valued vector; an untrusted
// server wants (an estimate of) the sum. Each participant perturbs its
// vector with the SMM mixture noise (Algorithm 2), the values are summed by
// secure aggregation, and the server receives a differentially private,
// unbiased estimate. The noise is calibrated to a target (epsilon, delta)
// with the Renyi-DP accountant (Corollary 1 + Lemma 3).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "common/random.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "secagg/secure_aggregator.h"

int main() {
  // --- The private data: 5 participants, 8-dimensional vectors. ---
  const std::vector<std::vector<double>> private_data = {
      {0.10, -0.20, 0.05, 0.40, -0.10, 0.00, 0.30, -0.25},
      {0.20, 0.10, -0.15, 0.05, 0.25, -0.30, 0.00, 0.10},
      {-0.05, 0.30, 0.20, -0.10, 0.15, 0.05, -0.20, 0.00},
      {0.00, -0.10, 0.25, 0.15, -0.05, 0.20, 0.10, -0.15},
      {0.15, 0.05, -0.10, 0.20, 0.00, -0.25, 0.05, 0.30},
  };
  const int n = static_cast<int>(private_data.size());

  // --- Privacy target. ---
  const double epsilon = 2.0, delta = 1e-5;

  // --- Calibrate the Skellam noise (Corollary 1, converted via Lemma 3).
  // The mixed-sensitivity threshold c corresponds to an L2 clip of 1 after
  // scaling by gamma.
  const double gamma = 16.0;
  const double c = gamma * gamma;
  auto calibration = smm::accounting::CalibrateSmm(c, /*q=*/1.0, /*steps=*/1,
                                                   epsilon, delta);
  if (!calibration.ok()) {
    std::printf("calibration failed: %s\n",
                calibration.status().ToString().c_str());
    return 1;
  }
  std::printf("calibrated aggregate Skellam parameter n*lambda = %.2f\n",
              calibration->noise_parameter);
  std::printf("achieved (eps, delta) = (%.3f, %g) at Renyi order %d\n",
              calibration->guarantee.epsilon, delta,
              calibration->guarantee.best_alpha);

  // --- Build the mechanism (Algorithm 4 participant side + Algorithm 6
  // server side, behind one object). ---
  smm::mechanisms::SmmMechanism::Options options;
  options.dim = 8;
  options.gamma = gamma;
  options.c = c;
  options.delta_inf = smm::accounting::SmmMaxDeltaInf(
      calibration->noise_parameter, calibration->guarantee.best_alpha);
  options.lambda = calibration->noise_parameter / n;
  options.modulus = 1 << 16;
  options.rotation_seed = 42;  // Public randomness shared by all parties.
  auto mechanism = smm::mechanisms::SmmMechanism::Create(options);
  if (!mechanism.ok()) {
    std::printf("mechanism creation failed: %s\n",
                mechanism.status().ToString().c_str());
    return 1;
  }

  // --- Run: encode each participant, aggregate securely, decode. ---
  smm::RandomGenerator rng(7);
  smm::secagg::IdealAggregator aggregator;
  auto estimate = smm::mechanisms::RunDistributedSum(
      **mechanism, aggregator, private_data, rng);
  if (!estimate.ok()) {
    std::printf("aggregation failed: %s\n",
                estimate.status().ToString().c_str());
    return 1;
  }

  // --- Compare with the exact (non-private) sum. ---
  std::printf("\n%-6s%12s%12s\n", "dim", "exact sum", "DP estimate");
  for (size_t j = 0; j < 8; ++j) {
    double exact = 0.0;
    for (const auto& x : private_data) exact += x[j];
    std::printf("%-6zu%12.3f%12.3f\n", j, exact, (*estimate)[j]);
  }
  std::printf("\nper-dimension MSE: %.4f\n",
              smm::mechanisms::MeanSquaredErrorPerDimension(*estimate,
                                                            private_data)
                  .value());
  return 0;
}
