#include "secagg/shamir.h"

#include <unordered_set>

namespace smm::secagg {

namespace {

using uint128 = unsigned __int128;

uint64_t MulMod(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>((static_cast<uint128>(a) * b) % kShamirPrime);
}

uint64_t AddModP(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // < 2^62, no overflow.
  if (s >= kShamirPrime) s -= kShamirPrime;
  return s;
}

uint64_t SubModP(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kShamirPrime - b;
}

uint64_t PowMod(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base %= kShamirPrime;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exp >>= 1;
  }
  return result;
}

// Fermat inverse: a^(p-2) mod p.
uint64_t InvMod(uint64_t a) { return PowMod(a, kShamirPrime - 2); }

}  // namespace

StatusOr<std::vector<ShamirShare>> ShamirSplit(uint64_t secret, int threshold,
                                               int num_shares,
                                               RandomGenerator& rng) {
  if (secret >= kShamirPrime) {
    return InvalidArgumentError("secret must be < 2^61 - 1");
  }
  if (threshold < 1 || threshold > num_shares) {
    return InvalidArgumentError("need 1 <= threshold <= num_shares");
  }
  // Random polynomial of degree threshold-1 with constant term = secret.
  std::vector<uint64_t> coeffs(threshold);
  coeffs[0] = secret;
  for (int i = 1; i < threshold; ++i) {
    coeffs[i] = rng.UniformUint64(kShamirPrime);
  }
  std::vector<ShamirShare> shares(num_shares);
  for (int i = 0; i < num_shares; ++i) {
    const uint64_t x = static_cast<uint64_t>(i) + 1;
    // Horner evaluation.
    uint64_t y = 0;
    for (int j = threshold - 1; j >= 0; --j) {
      y = AddModP(MulMod(y, x), coeffs[j]);
    }
    shares[i] = ShamirShare{x, y};
  }
  return shares;
}

StatusOr<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares,
                                     int threshold) {
  if (static_cast<int>(shares.size()) < threshold) {
    return FailedPreconditionError("not enough shares to reconstruct");
  }
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < threshold; ++i) {
    if (!seen.insert(shares[i].x).second) {
      return InvalidArgumentError("duplicate share evaluation point");
    }
    if (shares[i].x == 0) {
      return InvalidArgumentError("share evaluation point must be nonzero");
    }
  }
  // Lagrange interpolation at x = 0 using the first `threshold` shares:
  //   secret = sum_i y_i * prod_{j != i} x_j / (x_j - x_i)  (mod p).
  uint64_t secret = 0;
  for (int i = 0; i < threshold; ++i) {
    uint64_t num = 1, den = 1;
    for (int j = 0; j < threshold; ++j) {
      if (j == i) continue;
      num = MulMod(num, shares[j].x);
      den = MulMod(den, SubModP(shares[j].x, shares[i].x));
    }
    const uint64_t basis = MulMod(num, InvMod(den));
    secret = AddModP(secret, MulMod(shares[i].y, basis));
  }
  return secret;
}

}  // namespace smm::secagg
