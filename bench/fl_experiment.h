#ifndef SMM_BENCH_FL_EXPERIMENT_H_
#define SMM_BENCH_FL_EXPERIMENT_H_

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "fl/fl_config.h"
#include "fl/trainer.h"
#include "nn/mlp.h"

namespace smm::bench {

/// Scaled FL experiment parameters (Section 6.2). Full scale matches the
/// paper: 784-dim input, hidden width 80 (d = 63,610 -> padded 65,536),
/// 60,000 one-record participants, 4 epochs. The default shrinks the model
/// and round count so the whole sweep fits in minutes while keeping the
/// gamma^2-vs-m and noise-vs-m ratios that drive the figures.
struct FlScaleParams {
  int feature_dim;
  int hidden;
  int num_train;
  int num_test;
  int batch;
  int rounds;
  double lr;
};

inline FlScaleParams GetFlScale(Scale scale) {
  switch (scale) {
    case Scale::kFull:
      return {784, 80, 60000, 10000, 240, 1000, 0.005};
    case Scale::kDefault:
      // Matches the paper's operating ratios: q = B/n = 0.008 (paper 0.004)
      // keeps the per-round noise within the modulus; B = 64 keeps the
      // aggregate signal-plus-noise comparable to m/2, which is what drives
      // the DDG/Skellam wrap-around collapse at small m that SMM avoids.
      return {64, 32, 8000, 500, 64, 80, 0.015};
    case Scale::kFast:
      return {32, 16, 400, 200, 24, 40, 0.02};
  }
  return {64, 32, 8000, 500, 64, 80, 0.015};
}

/// Runs one FL training and returns final test accuracy; negative on error.
inline double RunFlExperiment(const data::SyntheticSplit& split,
                              const FlScaleParams& params,
                              fl::FlConfig config) {
  nn::Mlp::Options model_options;
  model_options.input_dim = params.feature_dim;
  model_options.hidden_dims = {params.hidden};
  model_options.num_classes = split.train.num_classes;
  model_options.init_seed = 31;
  auto model = nn::Mlp::Create(model_options);
  if (!model.ok()) return -1.0;
  config.expected_batch_size = params.batch;
  config.learning_rate = params.lr;
  config.eval_every = 0;  // Final evaluation only.
  // SMM_THREADS opts the round pipeline into the parallel path (0 resolves
  // to hardware concurrency); accuracy is thread-count invariant.
  config.num_threads = BenchThreads();
  auto trainer = fl::FederatedTrainer::Create(std::move(*model), split.train,
                                              split.test, config);
  if (!trainer.ok()) return -1.0;
  auto result = (*trainer)->Train();
  if (!result.ok()) return -1.0;
  return result->final_accuracy;
}

/// Prints the three sweeps of one Figure-2/3 row for a given modulus m:
/// varying epsilon, varying batch size |B|, varying gamma — for the listed
/// mechanisms.
inline void RunFigureSweeps(const data::SyntheticSplit& split,
                            const FlScaleParams& params, int log2_m,
                            double gamma_default, Scale scale,
                            const std::vector<fl::MechanismKind>& methods) {
  const uint64_t m = 1ULL << log2_m;
  const std::vector<double> epsilons =
      scale == Scale::kFast   ? std::vector<double>{3.0}
      : scale == Scale::kFull ? std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}
                              : std::vector<double>{1.0, 3.0, 5.0};
  const std::vector<int> batches =
      scale == Scale::kFull
          ? std::vector<int>{120, 240, 480, 960}
          : std::vector<int>{params.batch / 2, params.batch,
                             params.batch * 2};
  std::vector<double> gammas;
  for (double g = static_cast<double>(m) / 32.0;
       g <= static_cast<double>(m) && gammas.size() < 6; g *= 2.0) {
    gammas.push_back(g);
  }
  if (scale != Scale::kFull && gammas.size() > 3) {
    gammas.erase(gammas.begin(), gammas.end() - 3);
  }

  auto run_cell = [&](fl::MechanismKind kind, double eps, int batch,
                      double gamma) {
    fl::FlConfig c;
    c.mechanism = kind;
    c.epsilon = eps;
    c.delta = 1e-5;
    c.gamma = gamma;
    c.modulus = m;
    c.rounds = params.rounds;
    c.seed = 7 + static_cast<uint64_t>(eps * 100) + static_cast<uint64_t>(batch);
    FlScaleParams p = params;
    p.batch = batch;
    return RunFlExperiment(split, p, c);
  };

  // Sweep 1: epsilon at fixed gamma and batch.
  std::printf("  m=2^%d, gamma=%g, |B|=%d: accuracy%% vs eps\n", log2_m,
              gamma_default, params.batch);
  {
    std::vector<std::string> heads;
    for (double e : epsilons) heads.push_back(FormatSci(e));
    PrintRow("  method\\eps", heads, 14, 10);
    for (fl::MechanismKind kind : methods) {
      std::vector<std::string> cells;
      for (double eps : epsilons) {
        const double acc = run_cell(kind, eps, params.batch, gamma_default);
        cells.push_back(acc < 0.0 ? "n/a" : FormatPct(acc));
      }
      PrintRow(std::string("  ") + fl::MechanismKindName(kind), cells, 14,
               10);
    }
  }
  if (scale == Scale::kFast) return;

  // Sweep 2: batch size at eps = 3.
  std::printf("  m=2^%d, gamma=%g, eps=3: accuracy%% vs |B|\n", log2_m,
              gamma_default);
  {
    std::vector<std::string> heads;
    for (int b : batches) heads.push_back(std::to_string(b));
    PrintRow("  method\\|B|", heads, 14, 10);
    for (fl::MechanismKind kind : methods) {
      std::vector<std::string> cells;
      for (int b : batches) {
        const double acc = run_cell(kind, 3.0, b, gamma_default);
        cells.push_back(acc < 0.0 ? "n/a" : FormatPct(acc));
      }
      PrintRow(std::string("  ") + fl::MechanismKindName(kind), cells, 14,
               10);
    }
  }

  // Sweep 3: gamma at eps = 3.
  std::printf("  m=2^%d, |B|=%d, eps=3: accuracy%% vs gamma\n", log2_m,
              params.batch);
  {
    std::vector<std::string> heads;
    for (double g : gammas) heads.push_back(FormatSci(g));
    PrintRow("  method\\gam", heads, 14, 10);
    for (fl::MechanismKind kind : methods) {
      std::vector<std::string> cells;
      for (double g : gammas) {
        const double acc = run_cell(kind, 3.0, params.batch, g);
        cells.push_back(acc < 0.0 ? "n/a" : FormatPct(acc));
      }
      PrintRow(std::string("  ") + fl::MechanismKindName(kind), cells, 14,
               10);
    }
  }
  std::printf("\n");
}

}  // namespace smm::bench

#endif  // SMM_BENCH_FL_EXPERIMENT_H_
