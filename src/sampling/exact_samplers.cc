#include "sampling/exact_samplers.h"

#include <cassert>

namespace smm::sampling {

bool SampleBernoulliExact(int64_t px, int64_t py, RandomGenerator& rng) {
  assert(py > 0);
  assert(px >= 0 && px <= py);
  if (px == 0) return false;
  if (px == py) return true;
  return rng.RandInt(py) <= px;
}

int64_t SamplePoissonOneExact(RandomGenerator& rng) {
  // Algorithm 7 (Duchon & Duvignau). Grows a uniform random permutation one
  // element at a time and tracks a statistic whose stationary distribution
  // is Poisson(1).
  int64_t n = 1, g = 0, k = 1;
  while (true) {
    const int64_t i = rng.RandInt(n + 1);  // uniform {1, ..., n+1}
    if (i == n + 1) {
      ++k;
    } else if (i > g) {
      --k;
      g = n + 1;
    } else {
      return k;
    }
    ++n;
  }
}

int64_t SamplePoissonLessThanOneExact(int64_t mx, int64_t my,
                                      RandomGenerator& rng) {
  assert(my > 0);
  assert(mx > 0 && mx < my);
  // Poisson(lambda) with lambda < 1 is distributed as the sum of N Bernoulli
  // variates of success probability lambda, with N ~ Poisson(1)
  // (Devroye 1986, p. 487).
  int64_t k = 0;
  const int64_t n = SamplePoissonOneExact(rng);
  for (int64_t i = 0; i < n; ++i) {
    if (SampleBernoulliExact(mx, my, rng)) ++k;
  }
  return k;
}

StatusOr<int64_t> SamplePoissonExact(const Rational& lambda,
                                     RandomGenerator& rng) {
  if (lambda.den <= 0 || lambda.num < 0) {
    return InvalidArgumentError("Poisson parameter must be >= 0");
  }
  int64_t mx = lambda.num;
  const int64_t my = lambda.den;
  int64_t k = 0;
  if (mx == 0) return k;
  // While lambda >= 1, peel off Poisson(1) contributions (the sum of
  // independent Poisson variates is Poisson with the summed parameter).
  while (mx >= my) {
    k += SamplePoissonOneExact(rng);
    mx -= my;
  }
  if (mx > 0) k += SamplePoissonLessThanOneExact(mx, my, rng);
  return k;
}

StatusOr<int64_t> SampleSkellamExact(const Rational& lambda,
                                     RandomGenerator& rng) {
  SMM_ASSIGN_OR_RETURN(const int64_t a, SamplePoissonExact(lambda, rng));
  SMM_ASSIGN_OR_RETURN(const int64_t b, SamplePoissonExact(lambda, rng));
  return a - b;
}

}  // namespace smm::sampling
