#ifndef SMM_NN_MLP_H_
#define SMM_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace smm::nn {

/// A fully-connected ReLU network with a softmax cross-entropy head — the
/// model of Section 6.2 ("a three-layer neural network with fully connected
/// layers and ReLU activation"). Parameters live in one flat vector so that
/// per-example gradients can be fed directly into the distributed
/// mechanisms, and the optimizer can update them in place.
class Mlp {
 public:
  struct Options {
    int input_dim = 0;
    /// Hidden layer widths; the paper uses {80, 80}.
    std::vector<int> hidden_dims;
    int num_classes = 0;
    uint64_t init_seed = 1;
  };

  /// Creates an MLP with Xavier/Glorot-uniform initialized weights and zero
  /// biases.
  static StatusOr<Mlp> Create(const Options& options);

  /// Total number of parameters (the gradient dimension d of the paper).
  size_t num_parameters() const { return params_.size(); }

  const std::vector<double>& parameters() const { return params_; }
  std::vector<double>& mutable_parameters() { return params_; }

  /// Class logits for a single example (length num_classes).
  std::vector<double> Forward(const std::vector<double>& x) const;

  /// Softmax cross-entropy loss and the full flat parameter gradient for a
  /// single example — each FL participant holds one record (Section 6.2), so
  /// per-example gradients are the unit of privacy.
  struct LossAndGrad {
    double loss = 0.0;
    std::vector<double> grad;
  };
  LossAndGrad ComputeLossAndGradient(const std::vector<double>& x,
                                     int label) const;

  /// Loss only (no gradient), for cheap evaluation.
  double ComputeLoss(const std::vector<double>& x, int label) const;

  /// Argmax class prediction.
  int Predict(const std::vector<double>& x) const;

  /// Argmax prediction and softmax cross-entropy loss from a single forward
  /// pass — the evaluation hot path (Predict + ComputeLoss would each rerun
  /// Forward). Bit-identical to calling the two separately.
  struct PredictionLoss {
    int predicted = 0;
    double loss = 0.0;
  };
  PredictionLoss PredictWithLoss(const std::vector<double>& x,
                                 int label) const;

  const Options& options() const { return options_; }

 private:
  struct LayerShape {
    int in = 0;
    int out = 0;
    size_t weight_offset = 0;  ///< Offset of W (row-major out x in).
    size_t bias_offset = 0;    ///< Offset of b (length out).
  };

  Mlp(Options options, std::vector<LayerShape> shapes, size_t num_params)
      : options_(std::move(options)),
        shapes_(std::move(shapes)),
        params_(num_params, 0.0) {}

  /// Runs the forward pass, recording post-activation values per layer
  /// (activations[0] = input, activations.back() = logits).
  void ForwardInternal(const std::vector<double>& x,
                       std::vector<std::vector<double>>& activations) const;

  Options options_;
  std::vector<LayerShape> shapes_;
  std::vector<double> params_;
};

}  // namespace smm::nn

#endif  // SMM_NN_MLP_H_
