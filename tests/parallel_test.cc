#include "common/parallel.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace smm {
namespace {

TEST(StaticChunkBoundsTest, SplitsEvenlyWithRemainderUpFront) {
  const std::vector<size_t> bounds = StaticChunkBounds(10, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 4u);  // First chunk takes the remainder item.
  EXPECT_EQ(bounds[2], 7u);
  EXPECT_EQ(bounds[3], 10u);
}

TEST(StaticChunkBoundsTest, NeverProducesEmptyChunks) {
  const std::vector<size_t> bounds = StaticChunkBounds(2, 8);
  ASSERT_EQ(bounds.size(), 3u);  // min(n, max_chunks) chunks.
  EXPECT_EQ(bounds[2], 2u);
}

TEST(StaticChunkBoundsTest, HandlesZeroAndClampsChunks) {
  EXPECT_EQ(StaticChunkBounds(0, 4), std::vector<size_t>{0});
  const std::vector<size_t> bounds = StaticChunkBounds(5, 0);  // Clamped to 1.
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[1], 5u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    for (auto& v : visits) v.store(0);
    pool.ParallelFor(kN, [&](int chunk, size_t begin, size_t end) {
      EXPECT_GE(chunk, 0);
      EXPECT_LT(chunk, threads);
      for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](int, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SmallRangeUsesFewerChunksThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(3, [&](int chunk, size_t begin, size_t end) {
    calls.fetch_add(1);
    EXPECT_LT(chunk, 3);
    EXPECT_EQ(end, begin + 1);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int iter = 0; iter < 50; ++iter) {
    pool.ParallelFor(97, [&](int, size_t begin, size_t end) {
      total.fetch_add(static_cast<long>(end - begin));
    });
  }
  EXPECT_EQ(total.load(), 50 * 97);
}

TEST(ThreadPoolTest, NonPositiveThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> sum{0};
  pool.ParallelFor(5, [&](int, size_t begin, size_t end) {
    sum.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(sum.load(), 5);
}

}  // namespace
}  // namespace smm
