// Tests for the SampleBlock APIs: block-sampled moments must match the
// scalar samplers', and — the contract the batched encode path relies on —
// a block of n draws must consume the underlying RandomGenerator exactly
// like n scalar draws (in exact mode, the identical RandInt sequence).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sampling/noise_sampler.h"

namespace smm::sampling {
namespace {

struct Moments {
  double mean = 0.0;
  double variance = 0.0;
};

Moments ComputeMoments(const std::vector<int64_t>& draws) {
  Moments m;
  for (int64_t v : draws) m.mean += static_cast<double>(v);
  m.mean /= static_cast<double>(draws.size());
  for (int64_t v : draws) {
    const double d = static_cast<double>(v) - m.mean;
    m.variance += d * d;
  }
  m.variance /= static_cast<double>(draws.size());
  return m;
}

template <typename Sampler>
std::vector<int64_t> ScalarDraws(Sampler& sampler, size_t n, uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<int64_t> draws(n);
  for (auto& v : draws) v = sampler.Sample(rng);
  return draws;
}

template <typename Sampler>
std::vector<int64_t> BlockDraws(Sampler& sampler, size_t n, uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<int64_t> draws(n);
  sampler.SampleBlock(n, draws.data(), rng);
  return draws;
}

// ---------------------------------------------------------------------------
// Moment agreement (block vs scalar vs analytic).
// ---------------------------------------------------------------------------

TEST(SampleBlockTest, SkellamBlockMomentsMatchScalar) {
  constexpr size_t kN = 200000;
  constexpr double kLambda = 2.0;
  auto sampler = SkellamSampler::Create(kLambda).value();
  const Moments block = ComputeMoments(BlockDraws(sampler, kN, 11));
  const Moments scalar = ComputeMoments(ScalarDraws(sampler, kN, 12));
  const double var = sampler.variance();  // 2 * lambda.
  EXPECT_NEAR(block.mean, 0.0, 0.05);
  EXPECT_NEAR(scalar.mean, 0.0, 0.05);
  EXPECT_NEAR(block.variance / var, 1.0, 0.05);
  EXPECT_NEAR(block.variance / scalar.variance, 1.0, 0.1);
}

TEST(SampleBlockTest, DiscreteGaussianBlockMomentsMatchScalar) {
  constexpr size_t kN = 200000;
  constexpr double kSigma = 3.0;
  auto sampler = DiscreteGaussianSampler::Create(kSigma).value();
  const Moments block = ComputeMoments(BlockDraws(sampler, kN, 21));
  const Moments scalar = ComputeMoments(ScalarDraws(sampler, kN, 22));
  EXPECT_NEAR(block.mean, 0.0, 0.05);
  EXPECT_NEAR(block.variance / sampler.variance(), 1.0, 0.05);
  EXPECT_NEAR(block.variance / scalar.variance, 1.0, 0.1);
}

TEST(SampleBlockTest, CenteredBinomialBlockMomentsMatchScalar) {
  constexpr size_t kN = 200000;
  constexpr int64_t kTrials = 64;
  auto sampler = CenteredBinomialSampler::Create(kTrials).value();
  const Moments block = ComputeMoments(BlockDraws(sampler, kN, 31));
  const Moments scalar = ComputeMoments(ScalarDraws(sampler, kN, 32));
  EXPECT_NEAR(block.mean, 0.0, 0.05);
  EXPECT_NEAR(block.variance / sampler.variance(), 1.0, 0.05);
  EXPECT_NEAR(block.variance / scalar.variance, 1.0, 0.1);
}

// ---------------------------------------------------------------------------
// RNG-consumption identity: a block of n draws equals n scalar draws from an
// identically seeded generator, and leaves the generator in the same state.
// ---------------------------------------------------------------------------

template <typename Sampler>
void ExpectBlockConsumesLikeScalar(Sampler& sampler, uint64_t seed,
                                   size_t n) {
  RandomGenerator scalar_rng(seed);
  RandomGenerator block_rng(seed);
  std::vector<int64_t> scalar_draws(n);
  for (auto& v : scalar_draws) v = sampler.Sample(scalar_rng);
  std::vector<int64_t> block_draws(n);
  sampler.SampleBlock(n, block_draws.data(), block_rng);
  EXPECT_EQ(scalar_draws, block_draws);
  // Same post-state == same number of bits consumed.
  EXPECT_EQ(scalar_rng.NextBits(), block_rng.NextBits());
}

TEST(SampleBlockTest, ExactSkellamBlockConsumesRandIntIdentically) {
  // The exact samplers draw randomness only through RandInt (Appendix A);
  // identical output + identical post-state means the RandInt sequence of
  // the block path matches the scalar path draw for draw.
  auto sampler = SkellamSampler::Create(1.5, SamplerMode::kExact).value();
  ExpectBlockConsumesLikeScalar(sampler, 101, 512);
}

TEST(SampleBlockTest, ExactDiscreteGaussianBlockConsumesRandIntIdentically) {
  auto sampler =
      DiscreteGaussianSampler::Create(2.0, SamplerMode::kExact).value();
  ExpectBlockConsumesLikeScalar(sampler, 102, 512);
}

TEST(SampleBlockTest, ApproximateBlocksAreBitCompatibleWithScalar) {
  auto skellam = SkellamSampler::Create(3.0).value();
  ExpectBlockConsumesLikeScalar(skellam, 103, 2048);
  auto dgauss = DiscreteGaussianSampler::Create(1.5).value();
  ExpectBlockConsumesLikeScalar(dgauss, 104, 2048);
}

TEST(SampleBlockTest, BinomialBlocksAreBitCompatibleWithScalar) {
  auto exact_path = CenteredBinomialSampler::Create(100).value();
  ExpectBlockConsumesLikeScalar(exact_path, 105, 2048);
  // Large trial counts switch to the normal approximation; the block must
  // follow the same path (including the Gaussian pair-caching).
  auto approx_path = CenteredBinomialSampler::Create(200001).value();
  ExpectBlockConsumesLikeScalar(approx_path, 106, 2048);
}

}  // namespace
}  // namespace smm::sampling
