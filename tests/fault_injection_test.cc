// FaultInjectingTransport: seeded per-frame faults over the in-memory
// loopback. The schedule is deterministic per seed; drop/duplicate/
// reorder/truncate/corrupt each behave per contract; and the faults the
// aggregation layer is built to absorb (duplicate, reorder) leave an
// AggregationSession's sum bit-identical to the clean run.
#include "secagg/fault_injection.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/transport.h"

namespace smm::secagg {
namespace {

std::vector<uint8_t> Frame(int participant, uint64_t m,
                           const std::vector<uint64_t>& payload) {
  ContributionMsg msg;
  msg.participant_id = participant;
  msg.modulus = m;
  msg.payload = payload;
  auto frame = EncodeFrame(msg);
  EXPECT_TRUE(frame.ok());
  return *frame;
}

std::vector<std::vector<uint8_t>> DrainAll(FrameTransport& transport) {
  std::vector<std::vector<uint8_t>> frames;
  while (auto frame = transport.Receive()) frames.push_back(std::move(*frame));
  return frames;
}

TEST(FaultInjectionTest, ZeroScheduleIsTransparent) {
  InMemoryTransport inner;
  FaultInjectingTransport chaotic(inner, FaultSchedule{});
  const uint64_t m = 1 << 16;
  std::vector<std::vector<uint8_t>> sent;
  for (int p = 0; p < 5; ++p) {
    sent.push_back(Frame(p, m, {uint64_t(p), uint64_t(p + 1)}));
    ASSERT_TRUE(chaotic.Send(p, sent.back()).ok());
  }
  ASSERT_TRUE(chaotic.FinishSending().ok());
  EXPECT_EQ(chaotic.pending(), 5u);
  EXPECT_EQ(DrainAll(chaotic), sent);
  const FaultStats stats = chaotic.stats();
  EXPECT_EQ(stats.frames_sent, 5u);
  EXPECT_EQ(stats.dropped + stats.duplicated + stats.reordered +
                stats.truncated + stats.corrupted,
            0u);
  EXPECT_TRUE(chaotic.receive_status().ok());
}

TEST(FaultInjectionTest, DropOneSwallowsEveryFrame) {
  InMemoryTransport inner;
  FaultSchedule schedule;
  schedule.drop = 1.0;
  FaultInjectingTransport chaotic(inner, schedule);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(chaotic.Send(p, Frame(p, 1 << 16, {1})).ok());
  }
  ASSERT_TRUE(chaotic.FinishSending().ok());
  EXPECT_EQ(chaotic.pending(), 0u);
  EXPECT_EQ(chaotic.stats().dropped, 4u);
}

TEST(FaultInjectionTest, DuplicateOneDeliversEveryFrameTwice) {
  InMemoryTransport inner;
  FaultSchedule schedule;
  schedule.duplicate = 1.0;
  FaultInjectingTransport chaotic(inner, schedule);
  const auto f0 = Frame(0, 1 << 16, {7});
  const auto f1 = Frame(1, 1 << 16, {9});
  ASSERT_TRUE(chaotic.Send(0, f0).ok());
  ASSERT_TRUE(chaotic.Send(1, f1).ok());
  ASSERT_TRUE(chaotic.FinishSending().ok());
  const auto frames = DrainAll(chaotic);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(chaotic.stats().duplicated, 2u);
}

TEST(FaultInjectionTest, ReorderSwapsAdjacentFramesAndFlushOnFinish) {
  InMemoryTransport inner;
  FaultSchedule schedule;
  schedule.reorder = 1.0;
  FaultInjectingTransport chaotic(inner, schedule);
  const uint64_t m = 1 << 16;
  // Same client id, so the in-memory FIFO preserves the decorator's
  // delivery order exactly.
  std::vector<std::vector<uint8_t>> sent;
  for (int i = 0; i < 3; ++i) {
    sent.push_back(Frame(i, m, {uint64_t(10 + i)}));
    ASSERT_TRUE(chaotic.Send(0, sent.back()).ok());
  }
  // Every frame stashes: frame0 held, frame1 stashes and releases frame0,
  // frame2 stashes and releases frame1; FinishSending flushes frame2 —
  // every frame delivered exactly once.
  ASSERT_TRUE(chaotic.FinishSending().ok());
  const auto frames = DrainAll(chaotic);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], sent[0]);
  EXPECT_EQ(frames[1], sent[1]);
  EXPECT_EQ(frames[2], sent[2]);
  EXPECT_EQ(chaotic.stats().reordered, 3u);
}

TEST(FaultInjectionTest, TruncatedAndCorruptFramesAreRejectedDownstream) {
  for (const bool truncate : {true, false}) {
    InMemoryTransport inner;
    FaultSchedule schedule;
    if (truncate) {
      schedule.truncate = 1.0;
    } else {
      schedule.corrupt = 1.0;
    }
    schedule.seed = 5;
    FaultInjectingTransport chaotic(inner, schedule);
    ASSERT_TRUE(chaotic.Send(0, Frame(0, 1 << 16, {1, 2, 3})).ok());
    ASSERT_TRUE(chaotic.FinishSending().ok());
    const auto frames = DrainAll(chaotic);
    ASSERT_EQ(frames.size(), 1u);
    // The damaged frame is delivered (the in-memory backend keeps the
    // boundary) and rejected by the parser, never absorbed silently.
    EXPECT_FALSE(DecodeFrame(frames[0]).ok()) << "truncate=" << truncate;
    if (truncate) {
      EXPECT_EQ(chaotic.stats().truncated, 1u);
    } else {
      EXPECT_EQ(chaotic.stats().corrupted, 1u);
    }
  }
}

TEST(FaultInjectionTest, ScheduleIsDeterministicPerSeed) {
  const uint64_t m = 1 << 16;
  const auto run = [&](uint64_t seed) {
    InMemoryTransport inner;
    FaultSchedule schedule;
    schedule.drop = 0.3;
    schedule.duplicate = 0.3;
    schedule.reorder = 0.2;
    schedule.seed = seed;
    FaultInjectingTransport chaotic(inner, schedule);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(chaotic.Send(0, Frame(i, m, {uint64_t(i)})).ok());
    }
    EXPECT_TRUE(chaotic.FinishSending().ok());
    return DrainAll(chaotic);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultInjectionTest, DuplicateAndReorderChaosKeepsSessionSumBitIdentical) {
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59: wrap-prone.
  const int kParticipants = 24;
  const size_t dim = 8;
  std::vector<std::vector<uint64_t>> inputs(kParticipants,
                                            std::vector<uint64_t>(dim));
  for (int p = 0; p < kParticipants; ++p) {
    for (size_t j = 0; j < dim; ++j) {
      inputs[static_cast<size_t>(p)][j] =
          m - 1 - static_cast<uint64_t>(p) * 31 - j;
    }
  }

  // Clean reference round.
  IdealAggregator clean_aggregator;
  AggregationSession::Options options;
  options.dim = dim;
  options.modulus = m;
  auto clean = AggregationSession::Open(clean_aggregator, options);
  ASSERT_TRUE(clean.ok());
  for (int p = 0; p < kParticipants; ++p) {
    ASSERT_TRUE(
        (*clean)
            ->HandleFrame(Frame(p, m, inputs[static_cast<size_t>(p)]))
            .ok());
  }
  auto reference = (*clean)->Finalize();
  ASSERT_TRUE(reference.ok());

  // Chaos round: duplicates and reorders only — exactly the faults
  // first-wins dedup and commutative modular addition absorb.
  for (const uint64_t seed : {1u, 2u, 3u}) {
    IdealAggregator aggregator;
    auto session = AggregationSession::Open(aggregator, options);
    ASSERT_TRUE(session.ok());
    InMemoryTransport inner;
    FaultSchedule schedule;
    schedule.duplicate = 0.4;
    schedule.reorder = 0.3;
    schedule.seed = seed;
    FaultInjectingTransport chaotic(inner, schedule);
    for (int p = 0; p < kParticipants; ++p) {
      ASSERT_TRUE(
          chaotic.Send(p, Frame(p, m, inputs[static_cast<size_t>(p)])).ok());
    }
    ASSERT_TRUE(chaotic.FinishSending().ok());
    ASSERT_TRUE((*session)->DrainTransport(chaotic).ok());
    EXPECT_EQ((*session)->duplicate_frames(), chaotic.stats().duplicated)
        << "seed=" << seed;
    EXPECT_EQ((*session)->contributions(),
              static_cast<size_t>(kParticipants));
    auto sum = (*session)->Finalize();
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    EXPECT_EQ(sum->sum, reference->sum) << "seed=" << seed;
    EXPECT_EQ(sum->num_contributors, reference->num_contributors);
  }
}

}  // namespace
}  // namespace smm::secagg
