#ifndef SMM_NET_SOCKET_TRANSPORT_H_
#define SMM_NET_SOCKET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "net/frame_reassembler.h"
#include "net/socket_util.h"
#include "secagg/transport.h"

namespace smm::net {

/// FrameTransport over real loopback TCP sockets: the drop-in socket twin
/// of InMemoryTransport for synchronous single-consumer flows like
/// AggregationSession::DrainTransport (the async many-session server is
/// net::AggregationServer). Send lazily opens one TCP connection per
/// client id and writes the frame; Receive accepts connections and
/// reassembles arriving bytes into complete frames.
///
/// Byte contract: frames travel opaque and intact — payload or checksum
/// corruption is delivered and left to DecodeFrame downstream, exactly as
/// the in-memory backend delivers whatever bytes were Sent. Only stream
/// desynchronization (garbage where a frame header must be) differs by
/// nature of a byte stream: the connection is dropped (counted in
/// dropped_connections) because no further frame boundary is knowable.
///
/// Delivery order: frames of one connection arrive in send order (TCP);
/// across connections the order follows arrival timing, not the in-memory
/// backend's lowest-client-id rule. Aggregation is order-independent
/// (modular addition commutes exactly), so the finalized SumMsg is
/// byte-identical either way — the property tests pin this.
///
/// Termination: Receive blocks while frames may still be in flight and
/// returns nullopt once the transport is drained: every accepted
/// connection reached EOF, nothing is queued, no connection is waiting to
/// be accepted, and the sending side is finished (FinishSending was
/// called, or Send was never used — e.g. when tests drive raw sockets
/// directly at port()).
///
/// Threading: Send/FinishSending are thread-safe; Receive is
/// single-consumer (the FrameTransport contract).
class SocketTransport final : public secagg::FrameTransport {
 public:
  struct Options {
    /// Per-frame payload cap for reassembly (stream policy bound).
    size_t max_frame_bytes = size_t{1} << 24;
    int listen_backlog = 128;
    /// Bytes per read syscall in Receive.
    size_t read_chunk_bytes = 64 * 1024;
  };

  /// Binds a listener on an ephemeral 127.0.0.1 port.
  static StatusOr<std::unique_ptr<SocketTransport>> Listen(
      const Options& options);
  static StatusOr<std::unique_ptr<SocketTransport>> Listen() {
    return Listen(Options());
  }

  ~SocketTransport() override;

  /// The bound listener port; clients (or raw test sockets) connect here.
  uint16_t port() const { return port_; }

  // FrameTransport:
  Status Send(int client_id, std::vector<uint8_t> frame) override;
  std::optional<std::vector<uint8_t>> Receive() override;
  /// Frames reassembled and not yet delivered. Unlike the in-memory
  /// backend, 0 does not mean drained — bytes may still sit in kernel
  /// buffers; only Receive() == nullopt means drained.
  size_t pending() const override;
  /// Half-closes every connection Send opened, so Receive can terminate,
  /// and wakes a consumer parked in Receive's poll so the drained check
  /// re-runs immediately (no timeout tick).
  Status FinishSending() override;
  /// OK while every byte arrived intact; kDataLoss once any hard transport
  /// error was swallowed into "drained" — an accept()/poll() failure or a
  /// connection that broke mid-stream (desync, reset, EOF mid-frame), after
  /// which undelivered frames may have been lost. Latched: stays the first
  /// error. Thread-safe.
  Status receive_status() const override;

  /// Connections dropped for stream desynchronization, reset, or EOF
  /// mid-frame.
  size_t dropped_connections() const;

 private:
  struct Conn {
    UniqueFd fd;
    FrameReassembler reassembler;
    explicit Conn(UniqueFd f, size_t max_frame)
        : fd(std::move(f)), reassembler(max_frame) {}
  };

  SocketTransport(const Options& options, UniqueFd listener, uint16_t port,
                  UniqueFd wake_fd)
      : options_(options),
        listener_(std::move(listener)),
        port_(port),
        wake_fd_(std::move(wake_fd)) {}

  /// Records the first hard receive-side failure (see receive_status()).
  void LatchReceiveError(Status status);

  /// Accepts every connection currently queued on the listener. Returns
  /// how many were accepted.
  size_t AcceptReady();
  /// Reads once from conns_[i]; harvests completed frames. Returns false
  /// when the connection is finished (EOF or fatal) and was closed.
  bool ReadConn(size_t i);

  const Options options_;
  UniqueFd listener_;
  uint16_t port_ = 0;
  /// eventfd FinishSending writes so Receive's poll (which otherwise waits
  /// indefinitely on socket readiness) wakes for the drained re-check —
  /// replaces the old fixed 50 ms timeout tick.
  UniqueFd wake_fd_;

  // Receive-side state: owned by the single consumer, except the ready
  // queue and the dropped counter, which pending()/dropped_connections()
  // may inspect from other threads.
  std::vector<std::unique_ptr<Conn>> conns_;
  mutable std::mutex queue_mu_;
  std::deque<std::vector<uint8_t>> ready_;
  size_t dropped_ = 0;
  Status receive_status_;  // Guarded by queue_mu_; first error wins.

  // Send-side state: one lazily opened connection per client id.
  mutable std::mutex send_mu_;
  std::map<int, UniqueFd> send_fds_;
  bool finished_ = false;
};

}  // namespace smm::net

#endif  // SMM_NET_SOCKET_TRANSPORT_H_
