#ifndef SMM_COMMON_TUNING_H_
#define SMM_COMMON_TUNING_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/simd.h"
#include "common/status.h"

namespace smm {

/// Measured runtime knobs for the hot aggregation paths, loadable at startup
/// from the JSON file `bench_matrix --calibrate` writes. Every knob is a
/// pure performance dial: the encode/absorb pipelines are bit-identical at
/// any tile size, thread count, and dispatch table (pinned by the
/// determinism property tests), so swapping a calibrated tuning for the
/// built-in defaults can never change results — only wall time.
///
/// The defaults reproduce the historical hardcoded behavior exactly
/// (32-rows-per-thread tiles, hardware-concurrency sessions, always-SIMD
/// dispatch), so a process that never loads a tuning file runs precisely
/// the pre-tuning pipeline.
struct RuntimeTuning {
  /// Serialization schema version of tuning.json; parsers reject others.
  static constexpr int kSchemaVersion = 1;

  /// Participant rows each pool thread keeps resident per pipelined tile in
  /// the encode -> frame -> absorb paths (trainer rounds, RunDistributedSum,
  /// AggregationSession tile buffering) and per batched-rotation tile inside
  /// EncodeBatch. Default: kTileRowsPerThread (32), the historical constant.
  size_t tile_rows_per_thread = kTileRowsPerThread;

  /// Pool threads one in-process aggregation round (one session) uses when
  /// the caller asked for "auto" threading (FlConfig::num_threads == 0).
  /// 0 = uncalibrated: resolve to ThreadPool::HardwareThreads() as before.
  int threads_per_session = 0;

  /// Shard workers one aggregation round splits its dimension range across
  /// when the caller asked for the tuned default (shard_count == 0 in
  /// RunDistributedSum / FlConfig). Default 1 = the unsharded path. Like
  /// every knob here this is a pure performance dial: the sharded round is
  /// bit-identical to the unsharded one at any value.
  size_t shard_count = 1;

  /// Per-kernel minimum vector length at which the dispatched SIMD table
  /// beats the scalar reference (kernel name -> length). Below the
  /// crossover the scalar table runs; at or above it, dispatch. Kernels
  /// absent here keep crossover 0 (always dispatch, the historical
  /// behavior). Kernel names are simd::KernelIdName spellings.
  std::vector<std::pair<std::string, size_t>> simd_crossover;

  /// Where this tuning came from, for logs and the bench artifact:
  /// "default", or the path it was loaded from.
  std::string source = "default";
};

/// Serializes a tuning to the tuning.json format (schema_version included).
std::string RuntimeTuningToJson(const RuntimeTuning& tuning);

/// Parses a tuning.json document. Strict: rejects (kInvalidArgument)
/// malformed JSON, a missing or unsupported schema_version, unknown fields,
/// out-of-domain values (tile_rows_per_thread < 1, negative
/// threads_per_session), and unknown crossover kernel names.
StatusOr<RuntimeTuning> ParseRuntimeTuning(const std::string& json);

/// The process-wide tuning. Defaults to RuntimeTuning{}; the first call
/// loads the file named by SMM_TUNING when that variable is set (a load
/// failure is reported once on stderr and the defaults stay in force —
/// startup must not die on a stale tuning file). Thread-safe.
RuntimeTuning GetRuntimeTuning();

/// Installs `tuning` as the process-wide tuning and applies its SIMD
/// crossover table to the dispatch layer. Thread-safe, but intended for
/// startup / test setup: in-flight encodes pick up the new tile size at
/// their next tile boundary.
void SetRuntimeTuning(const RuntimeTuning& tuning);

/// Reads, parses, and installs a tuning.json file.
Status LoadRuntimeTuningFromFile(const std::string& path);

/// Restores the built-in defaults (and zeroes the SIMD crossover table),
/// including un-latching the SMM_TUNING env load. For tests.
void ResetRuntimeTuningForTest();

/// Participants per pipelined tile for `num_threads` workers under the
/// current tuning: tile_rows_per_thread * num_threads. Falls back to
/// DefaultTileRows (32 * threads) when no calibration was loaded. The hot
/// per-round call — one relaxed atomic load, no lock.
size_t TunedTileRows(int num_threads);

/// tile_rows_per_thread of the current tuning (the per-thread factor of
/// TunedTileRows). Same lock-free cost.
size_t TunedTileRowsPerThread();

/// Pool threads for one "auto"-threaded aggregation session: the calibrated
/// threads_per_session when one was loaded, else
/// ThreadPool::HardwareThreads().
int TunedSessionThreads();

/// Shard workers for a round that asked for the tuned default (>= 1; 1 =
/// unsharded). Same lock-free cost.
size_t TunedShardCount();

}  // namespace smm

#endif  // SMM_COMMON_TUNING_H_
