// Thread-scaling benchmark for the parallel aggregation pipeline. Three
// sections, each timed at 1/2/4/8 threads with a bit-identity cross-check
// against the single-threaded run:
//
//   encode          EncodeBatchParallel for SMM and DDG (the PR 1 hot path,
//                   now with the tiled batched-rotation pre-pass);
//   rotation        the batched Walsh-Hadamard transform on its own;
//   streaming_ideal the streaming aggregation subsystem at participant
//                   counts 10-100x beyond what the batch-materializing
//                   path's O(n·d) buffer can hold, at the wrap-prone
//                   modulus 2^64 - 59;
//   masked_secagg   a full Bonawitz-style round — parallel pairwise masking
//                   across survivors plus UnmaskSum with dropouts;
//   session_masked  the same protocol driven over the wire: participants
//                   mask, frame, and send ContributionMsg bytes through the
//                   loopback transport into an AggregationSession feeding
//                   the masked streaming sum;
//   simd_kernels    single-thread scalar-reference vs dispatched (AVX2 or
//                   AVX-512 when the cpu has it) elements/sec for each hot
//                   kernel of the SIMD layer, with a bit-identity
//                   cross-check — the per-kernel speedup the dispatch layer
//                   buys before any threading;
//   encode_fused    the fused three-sweep blocked encode pipeline vs the
//                   historical per-pass EncodeBatchUnfused, single-threaded
//                   end-to-end elements/sec on a memory-bound cheap-noise
//                   configuration (cpSGD with a small trial count at large
//                   dim — Skellam-style sampling would dominate the clock
//                   and dilute the pass-structure comparison), with a
//                   bit-identity cross-check.
//
// Expected shape: near-linear scaling up to the physical core count, then
// flat. Each section ends with a `SPEEDUP_SUMMARY` line (grepped by CI), and
// `--json <path>` writes the raw numbers as a JSON artifact so the per-PR
// perf trajectory is machine-readable.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "net/client.h"
#include "net/server.h"
#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/transport.h"
#include "transform/walsh_hadamard.h"

namespace smm::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

/// Raw numbers of one benchmark section, for the table, the summary line,
/// and the JSON artifact.
struct Section {
  std::string name;
  size_t dim = 0;
  size_t participants = 0;
  std::vector<int> threads;
  std::vector<double> best_seconds;
  bool deterministic = true;

  double speedup(size_t idx) const {
    return best_seconds[0] / best_seconds[idx];
  }
};

std::vector<Section> g_sections;

/// Raw numbers of one SIMD-kernel comparison (single thread, scalar
/// reference vs dispatched table), for the table and the JSON artifact.
struct SimdKernelResult {
  std::string name;
  size_t elements = 0;
  double scalar_seconds = 0.0;
  double dispatch_seconds = 0.0;
  bool identical = true;

  double speedup() const { return scalar_seconds / dispatch_seconds; }
};

std::vector<SimdKernelResult> g_simd_results;

/// Raw numbers of the fused-vs-unfused encode comparison (single thread),
/// for the table and the JSON artifact.
struct FusedEncodeResult {
  std::string name;
  size_t dim = 0;
  size_t participants = 0;
  double unfused_seconds = 0.0;
  double fused_seconds = 0.0;
  bool identical = true;

  double speedup() const { return unfused_seconds / fused_seconds; }
};

std::vector<FusedEncodeResult> g_fused_results;

/// Raw numbers of the TCP aggregation-server throughput sweep: the same
/// session workload pushed through real loopback sockets at each
/// event-loop thread count.
struct ServerSessionsResult {
  std::string name;
  size_t sessions = 0;
  size_t contributions_per_session = 0;
  size_t dim = 0;
  std::vector<int> threads;
  std::vector<double> seconds;
  bool sums_exact = true;

  double sessions_per_sec(size_t idx) const {
    return static_cast<double>(sessions) / seconds[idx];
  }
  double frames_per_sec(size_t idx) const {
    return static_cast<double>(sessions * contributions_per_session) /
           seconds[idx];
  }
};

std::vector<ServerSessionsResult> g_server_results;

const char* ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

void PrintSection(const Section& section, double work_items) {
  std::vector<std::string> throughput_cells;
  std::vector<std::string> speedup_cells;
  for (size_t t = 0; t < section.best_seconds.size(); ++t) {
    throughput_cells.push_back(
        FormatSci(work_items / section.best_seconds[t]));
    speedup_cells.push_back(FormatSci(section.speedup(t)));
  }
  PrintRow("  items/sec", throughput_cells, 14, 12);
  PrintRow("  speedup", speedup_cells, 14, 12);
  std::printf("  thread-count invariance: %s\n",
              section.deterministic ? "bit-identical" : "MISMATCH (bug!)");
  std::printf("SPEEDUP_SUMMARY section=%s dim=%zu participants=%zu "
              "speedup_8t=%.2fx\n",
              section.name.c_str(), section.dim, section.participants,
              section.speedup(section.best_seconds.size() - 1));
  // A determinism violation must fail the harness (and the CI smoke run).
  if (!section.deterministic) std::exit(1);
}

void WriteJson(const char* path, Scale scale) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot open %s for the JSON report\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_scaling_threads\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n",
               scale == Scale::kFast ? "fast"
               : scale == Scale::kFull ? "full" : "default");
  std::fprintf(f, "  \"hardware_threads\": %d,\n",
               ThreadPool::HardwareThreads());
  std::fprintf(f, "  \"sections\": [\n");
  for (size_t s = 0; s < g_sections.size(); ++s) {
    const Section& section = g_sections[s];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"dim\": %zu, \"participants\": "
                 "%zu,\n     \"threads\": [",
                 section.name.c_str(), section.dim, section.participants);
    for (size_t t = 0; t < section.threads.size(); ++t) {
      std::fprintf(f, "%s%d", t == 0 ? "" : ", ", section.threads[t]);
    }
    std::fprintf(f, "],\n     \"seconds\": [");
    for (size_t t = 0; t < section.best_seconds.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ", section.best_seconds[t]);
    }
    std::fprintf(f, "],\n     \"speedup\": [");
    for (size_t t = 0; t < section.best_seconds.size(); ++t) {
      std::fprintf(f, "%s%.3f", t == 0 ? "" : ", ", section.speedup(t));
    }
    std::fprintf(f, "],\n     \"bit_identical\": %s}%s\n",
                 section.deterministic ? "true" : "false",
                 s + 1 < g_sections.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"encode_fused\": [\n");
  for (size_t s = 0; s < g_fused_results.size(); ++s) {
    const FusedEncodeResult& r = g_fused_results[s];
    const double elements =
        static_cast<double>(r.participants) * static_cast<double>(r.dim);
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"dim\": %zu, \"participants\": "
                 "%zu,\n     \"unfused_seconds\": %.6e, \"fused_seconds\": "
                 "%.6e,\n     \"unfused_eps\": %.6e, \"fused_eps\": %.6e,\n"
                 "     \"fused_vs_unfused\": %.3f, \"bit_identical\": %s}%s\n",
                 r.name.c_str(), r.dim, r.participants, r.unfused_seconds,
                 r.fused_seconds, elements / r.unfused_seconds,
                 elements / r.fused_seconds, r.speedup(),
                 r.identical ? "true" : "false",
                 s + 1 < g_fused_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"server_sessions\": [\n");
  for (size_t s = 0; s < g_server_results.size(); ++s) {
    const ServerSessionsResult& r = g_server_results[s];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sessions\": %zu, "
                 "\"contributions_per_session\": %zu, \"dim\": %zu,\n"
                 "     \"threads\": [",
                 r.name.c_str(), r.sessions, r.contributions_per_session,
                 r.dim);
    for (size_t t = 0; t < r.threads.size(); ++t) {
      std::fprintf(f, "%s%d", t == 0 ? "" : ", ", r.threads[t]);
    }
    std::fprintf(f, "],\n     \"seconds\": [");
    for (size_t t = 0; t < r.seconds.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ", r.seconds[t]);
    }
    std::fprintf(f, "],\n     \"sessions_per_sec\": [");
    for (size_t t = 0; t < r.seconds.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ", r.sessions_per_sec(t));
    }
    std::fprintf(f, "],\n     \"frames_per_sec\": [");
    for (size_t t = 0; t < r.seconds.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ", r.frames_per_sec(t));
    }
    std::fprintf(f, "],\n     \"sums_exact\": %s}%s\n",
                 r.sums_exact ? "true" : "false",
                 s + 1 < g_server_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"simd_dispatch\": \"%s\",\n",
               smm::simd::Active().name);
  std::fprintf(f, "  \"simd_kernels\": [\n");
  for (size_t s = 0; s < g_simd_results.size(); ++s) {
    const SimdKernelResult& r = g_simd_results[s];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"elements\": %zu,\n"
                 "     \"scalar_seconds\": %.6e, \"dispatch_seconds\": "
                 "%.6e,\n     \"scalar_eps\": %.6e, \"dispatch_eps\": %.6e,\n"
                 "     \"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.name.c_str(), r.elements, r.scalar_seconds,
                 r.dispatch_seconds,
                 static_cast<double>(r.elements) / r.scalar_seconds,
                 static_cast<double>(r.elements) / r.dispatch_seconds,
                 r.speedup(), r.identical ? "true" : "false",
                 s + 1 < g_simd_results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote JSON report to %s\n", path);
}

std::vector<std::vector<double>> MakeInputs(size_t n, size_t dim) {
  RandomGenerator rng(17);
  std::vector<std::vector<double>> inputs(n, std::vector<double>(dim));
  for (auto& x : inputs) {
    for (auto& v : x) v = rng.Gaussian(0.0, 0.01);
  }
  return inputs;
}

// ---------------------------------------------------------------------------
// Section 1: the batched encode pipeline.
// ---------------------------------------------------------------------------

/// Encodes the batch `repeats` times at the given thread count and returns
/// the best wall time plus the last repeat's encodings. ok is false (and the
/// harness aborts) if any encode failed — a failed run must not feed the
/// throughput or invariance reporting.
struct EncodeTiming {
  bool ok = false;
  double best_seconds = 0.0;
  std::vector<std::vector<uint64_t>> encoded;
};

EncodeTiming TimeEncode(mechanisms::DistributedSumMechanism& mechanism,
                        const std::vector<std::vector<double>>& inputs,
                        int threads, int repeats) {
  ThreadPool pool(threads);
  EncodeTiming timing;
  timing.best_seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    RandomGenerator rng(4242);
    std::vector<RandomGenerator> streams =
        MakeParticipantStreams(rng, inputs.size());
    const auto start = Clock::now();
    auto encoded =
        mechanisms::EncodeBatchParallel(mechanism, inputs, streams, &pool);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!encoded.ok()) {
      std::printf("encode failed: %s\n",
                  encoded.status().ToString().c_str());
      timing.ok = false;
      return timing;
    }
    if (seconds < timing.best_seconds) timing.best_seconds = seconds;
    timing.encoded = std::move(*encoded);
    timing.ok = true;
  }
  return timing;
}

void RunEncodeSection(const char* name,
                      mechanisms::DistributedSumMechanism& mechanism,
                      const std::vector<std::vector<double>>& inputs,
                      int repeats) {
  Section section;
  section.name = name;
  section.dim = mechanism.dim();
  section.participants = inputs.size();
  std::printf("%s: dim=%zu, participants=%zu\n", name, mechanism.dim(),
              inputs.size());
  PrintRow("  threads", {"1", "2", "4", "8"}, 14, 12);
  std::vector<std::vector<uint64_t>> reference;
  for (int threads : kThreadCounts) {
    const EncodeTiming timing =
        TimeEncode(mechanism, inputs, threads, repeats);
    if (!timing.ok) {
      std::printf("  aborting %s: encode failed at %d threads\n", name,
                  threads);
      std::exit(1);
    }
    if (threads == 1) {
      reference = timing.encoded;
    } else if (timing.encoded != reference) {
      section.deterministic = false;
    }
    section.threads.push_back(threads);
    section.best_seconds.push_back(timing.best_seconds);
  }
  const double coords = static_cast<double>(inputs.size()) *
                        static_cast<double>(mechanism.dim());
  PrintSection(section, coords);
  g_sections.push_back(std::move(section));
}

// ---------------------------------------------------------------------------
// Section 2: the batched Walsh-Hadamard rotation kernel on its own.
// ---------------------------------------------------------------------------

void RunRotationSection(size_t batch, size_t dim, int repeats) {
  RandomGenerator rng(29);
  std::vector<double> original(batch * dim);
  for (double& v : original) v = rng.Gaussian(0.0, 1.0);

  Section section;
  section.name = "rotation_batch";
  section.dim = dim;
  section.participants = batch;
  std::printf("FastWalshHadamardBatch: dim=%zu, batch=%zu\n", dim, batch);
  PrintRow("  threads", {"1", "2", "4", "8"}, 14, 12);
  std::vector<double> reference;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    double best_seconds = 1e300;
    std::vector<double> data;
    for (int r = 0; r < repeats; ++r) {
      data = original;
      const auto start = Clock::now();
      auto status = transform::FastWalshHadamardBatch(data.data(), batch,
                                                      dim, &pool);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!status.ok()) {
        std::printf("rotation failed: %s\n", status.ToString().c_str());
        std::exit(1);
      }
      if (seconds < best_seconds) best_seconds = seconds;
    }
    if (threads == 1) {
      reference = data;
    } else if (data != reference) {
      section.deterministic = false;
    }
    section.threads.push_back(threads);
    section.best_seconds.push_back(best_seconds);
  }
  PrintSection(section, static_cast<double>(batch * dim));
  g_sections.push_back(std::move(section));
}

// ---------------------------------------------------------------------------
// Section 3: streaming aggregation at participant counts the batch path
// cannot hold. One tile of inputs is resident at a time (the stream's own
// state is a single O(dim) running sum, O(threads·dim) during a tile
// absorb), so the participant count here runs 10-100x beyond what the
// batch-materializing path's O(n·d) buffer would tolerate at production
// dimensions.
// ---------------------------------------------------------------------------

void RunStreamingSection(size_t participants, size_t dim, int repeats) {
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59: wrap-prone.
  constexpr size_t kTileRows = 256;
  participants = participants / kTileRows * kTileRows;  // Whole tiles only.
  // One pre-generated tile, absorbed over and over under rotating ids: the
  // timed loop measures pure streaming-absorb throughput with exactly one
  // tile resident, and every thread count consumes identical data.
  RandomGenerator rng(23);
  std::vector<std::vector<uint64_t>> tile(kTileRows,
                                          std::vector<uint64_t>(dim));
  for (auto& row : tile) {
    for (auto& v : row) v = rng.UniformUint64(m);
  }
  std::vector<int> ids(kTileRows);

  Section section;
  section.name = "streaming_ideal";
  section.dim = dim;
  section.participants = participants;
  const double batch_mb =
      static_cast<double>(participants) * static_cast<double>(dim) * 8 / 1e6;
  std::printf(
      "IdealAggregator streaming: dim=%zu, participants=%zu, m=2^64-59\n"
      "  (batch path would materialize %.0f MB; stream keeps one %zu-row "
      "tile)\n",
      dim, participants, batch_mb, kTileRows);
  PrintRow("  threads", {"1", "2", "4", "8"}, 14, 12);
  secagg::IdealAggregator aggregator;
  std::vector<uint64_t> reference;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    double best_seconds = 1e300;
    std::vector<uint64_t> sum;
    for (int r = 0; r < repeats; ++r) {
      const auto start = Clock::now();
      auto stream = aggregator.Open(dim, m, &pool);
      if (!stream.ok()) {
        std::printf("open failed: %s\n",
                    stream.status().ToString().c_str());
        std::exit(1);
      }
      for (size_t begin = 0; begin < participants; begin += kTileRows) {
        for (size_t i = 0; i < kTileRows; ++i) {
          ids[i] = static_cast<int>((begin + i) % 1000000);
        }
        auto status = (*stream)->AbsorbTile(ids, tile);
        if (!status.ok()) {
          std::printf("absorb failed: %s\n", status.ToString().c_str());
          std::exit(1);
        }
      }
      auto finalized = (*stream)->Finalize();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!finalized.ok()) {
        std::printf("finalize failed: %s\n",
                    finalized.status().ToString().c_str());
        std::exit(1);
      }
      if (seconds < best_seconds) best_seconds = seconds;
      sum = std::move(*finalized);
    }
    if (threads == 1) {
      reference = sum;
    } else if (sum != reference) {
      section.deterministic = false;
    }
    section.threads.push_back(threads);
    section.best_seconds.push_back(best_seconds);
  }
  const double work =
      static_cast<double>(participants) * static_cast<double>(dim);
  PrintSection(section, work);
  g_sections.push_back(std::move(section));
}

// ---------------------------------------------------------------------------
// Section 4: the full masked-secagg round (Bonawitz-style) with dropouts.
// ---------------------------------------------------------------------------

void RunMaskedSecaggSection(int participants, size_t dim, int repeats) {
  secagg::MaskedAggregator::Options options;
  options.num_participants = participants;
  options.threshold = participants / 2;
  options.session_seed = 77;
  auto aggregator = secagg::MaskedAggregator::Create(options);
  if (!aggregator.ok()) {
    std::printf("masked aggregator creation failed: %s\n",
                aggregator.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t m = 1 << 16;
  RandomGenerator rng(31);
  std::vector<std::vector<uint64_t>> inputs(
      static_cast<size_t>(participants), std::vector<uint64_t>(dim));
  for (auto& v : inputs) {
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  // The last two participants drop out after masking is configured.
  std::vector<int> survivors;
  for (int i = 0; i < participants - 2; ++i) survivors.push_back(i);

  Section section;
  section.name = "masked_secagg";
  section.dim = dim;
  section.participants = static_cast<size_t>(participants);
  std::printf(
      "MaskedAggregator round: dim=%zu, participants=%d (2 dropouts)\n", dim,
      participants);
  PrintRow("  threads", {"1", "2", "4", "8"}, 14, 12);
  std::vector<uint64_t> reference;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    double best_seconds = 1e300;
    std::vector<uint64_t> sum;
    for (int r = 0; r < repeats; ++r) {
      const auto start = Clock::now();
      // Client side: pairwise masking, sharded across survivors.
      std::vector<std::vector<uint64_t>> masked(survivors.size());
      std::atomic<bool> failed{false};
      pool.ParallelFor(survivors.size(), [&](int, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const int p = survivors[i];
          auto mi = (*aggregator)
                        ->MaskInput(p, inputs[static_cast<size_t>(p)], m);
          if (!mi.ok()) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          masked[i] = std::move(*mi);
        }
      });
      // Server side: sum + dropout recovery, sharded on the same pool.
      auto unmasked = failed.load() ? StatusOr<std::vector<uint64_t>>(
                                          InternalError("masking failed"))
                                    : (*aggregator)->UnmaskSum(
                                          masked, survivors, dim, m, &pool);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!unmasked.ok()) {
        std::printf("masked round failed: %s\n",
                    unmasked.status().ToString().c_str());
        std::exit(1);
      }
      if (seconds < best_seconds) best_seconds = seconds;
      sum = std::move(*unmasked);
    }
    if (threads == 1) {
      reference = sum;
    } else if (sum != reference) {
      section.deterministic = false;
    }
    section.threads.push_back(threads);
    section.best_seconds.push_back(best_seconds);
  }
  // One work item = one masked coordinate contribution (n_surv * n * d mask
  // draws dominate).
  const double work = static_cast<double>(survivors.size()) *
                      static_cast<double>(participants) *
                      static_cast<double>(dim);
  PrintSection(section, work);
  g_sections.push_back(std::move(section));
}

// ---------------------------------------------------------------------------
// Section 5: the wire path — participants mask + frame ContributionMsg
// bytes, the loopback transport carries them, and an AggregationSession
// decodes each frame straight into the masked protocol's streaming sum
// (dropout recovery deferred to Finalize). Measures the full
// client -> frame -> session -> stream pipeline the sum harnesses now run.
// ---------------------------------------------------------------------------

void RunSessionMaskedSection(int participants, size_t dim, int repeats) {
  secagg::MaskedAggregator::Options options;
  options.num_participants = participants;
  options.threshold = participants / 2;
  options.session_seed = 79;
  auto aggregator = secagg::MaskedAggregator::Create(options);
  if (!aggregator.ok()) {
    std::printf("masked aggregator creation failed: %s\n",
                aggregator.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t m = 1 << 16;
  RandomGenerator rng(37);
  std::vector<std::vector<uint64_t>> inputs(
      static_cast<size_t>(participants), std::vector<uint64_t>(dim));
  for (auto& v : inputs) {
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  // The last two participants drop out: they never send a frame, and the
  // session recovers their leftover masks at Finalize.
  const int contributors = participants - 2;

  Section section;
  section.name = "session_masked";
  section.dim = dim;
  section.participants = static_cast<size_t>(participants);
  std::printf(
      "AggregationSession over frames: dim=%zu, participants=%d "
      "(2 dropouts)\n", dim, participants);
  PrintRow("  threads", {"1", "2", "4", "8"}, 14, 12);
  std::vector<uint64_t> reference;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    double best_seconds = 1e300;
    std::vector<uint64_t> sum;
    for (int r = 0; r < repeats; ++r) {
      const auto start = Clock::now();
      secagg::AggregationSession::Options session_options;
      session_options.dim = dim;
      session_options.modulus = m;
      session_options.pool = &pool;
      // Trusted in-process clients: absorb one sharded tile at a time (the
      // shared per-thread tile sizing the encode paths use).
      session_options.tile_rows = DefaultTileRows(threads);
      auto session =
          secagg::AggregationSession::Open(**aggregator, session_options);
      if (!session.ok()) {
        std::printf("session open failed: %s\n",
                    session.status().ToString().c_str());
        std::exit(1);
      }
      secagg::InMemoryTransport loopback;
      secagg::FrameTransport& transport = loopback;
      for (int p = 0; p < contributors; ++p) {
        secagg::ContributionMsg msg;
        msg.participant_id = p;
        msg.modulus = m;
        auto masked = (*aggregator)->PrepareContribution(
            p, inputs[static_cast<size_t>(p)], m, &pool);
        if (!masked.ok()) {
          std::printf("masking failed: %s\n",
                      masked.status().ToString().c_str());
          std::exit(1);
        }
        msg.payload = std::move(*masked);
        auto frame = secagg::EncodeFrame(msg);
        if (!frame.ok()) {
          std::printf("framing failed: %s\n",
                      frame.status().ToString().c_str());
          std::exit(1);
        }
        if (!transport.Send(p, std::move(*frame)).ok() ||
            !(*session)->DrainTransport(transport).ok()) {
          std::printf("frame delivery failed\n");
          std::exit(1);
        }
      }
      auto finalized = (*session)->Finalize();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!finalized.ok()) {
        std::printf("finalize failed: %s\n",
                    finalized.status().ToString().c_str());
        std::exit(1);
      }
      if (seconds < best_seconds) best_seconds = seconds;
      sum = std::move(finalized->sum);
    }
    if (threads == 1) {
      reference = sum;
    } else if (sum != reference) {
      section.deterministic = false;
    }
    section.threads.push_back(threads);
    section.best_seconds.push_back(best_seconds);
  }
  // Work model mirrors masked_secagg: the O(contributors * n * d) mask
  // expansion dominates; framing adds O(contributors * d) byte shuffling.
  const double work = static_cast<double>(contributors) *
                      static_cast<double>(participants) *
                      static_cast<double>(dim);
  PrintSection(section, work);
  g_sections.push_back(std::move(section));
}

// ---------------------------------------------------------------------------
// Section: the async TCP aggregation server — many small ideal-aggregator
// rounds driven over real loopback sockets by concurrent client threads,
// swept across event-loop thread counts. Measures the service layer the
// net/ subsystem adds (accept + epoll + reassembly + session dispatch +
// broadcast), not the arithmetic: the per-round math is tiny by design so
// the numbers track sessions/sec and frames/sec of the event loops. Every
// broadcast sum is verified against the exact modular sum; a mismatch
// fails the harness like a determinism violation.
// ---------------------------------------------------------------------------

void RunServerSessionsSection(Scale scale) {
  constexpr int kLoopCounts[] = {1, 4, 8};
  constexpr int kDriverThreads = 4;
  constexpr size_t kContribPerSession = 8;
  constexpr size_t kDim = 64;
  constexpr uint64_t kModulus = uint64_t{1} << 32;
  const size_t sessions = scale == Scale::kFast ? 64 : 256;

  // Probe support once: non-Linux builds skip the section gracefully.
  {
    auto probe = net::AggregationServer::Start();
    if (!probe.ok()) {
      std::printf("TCP server sessions: skipped (%s)\n",
                  probe.status().ToString().c_str());
      return;
    }
  }

  ServerSessionsResult result;
  result.name = "ideal_rounds";
  result.sessions = sessions;
  result.contributions_per_session = kContribPerSession;
  result.dim = kDim;

  const auto payload_value = [](size_t session, size_t p, size_t j) {
    return (session * 2654435761ULL + p * 97 + j * 13 + 1) % kModulus;
  };

  std::printf(
      "TCP server sessions (ideal rounds over loopback): sessions=%zu, "
      "contributions/session=%zu, dim=%zu, client threads=%d\n",
      sessions, kContribPerSession, kDim, kDriverThreads);
  PrintRow("  event loops", {"1", "4", "8"}, 14, 12);
  for (const int loops : kLoopCounts) {
    secagg::IdealAggregator aggregator;
    net::AggregationServer::Options options;
    options.event_loop_threads = loops;
    auto server = net::AggregationServer::Start(options);
    if (!server.ok()) {
      std::printf("server start failed: %s\n",
                  server.status().ToString().c_str());
      std::exit(1);
    }

    const auto start = Clock::now();
    std::vector<net::AggregationServer::SessionInfo> infos(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      net::AggregationServer::SessionOptions session_options;
      session_options.session.dim = kDim;
      session_options.session.modulus = kModulus;
      session_options.expected_contributions = kContribPerSession;
      auto info = (*server)->OpenSession(aggregator, session_options);
      if (!info.ok()) {
        std::printf("open session failed: %s\n",
                    info.status().ToString().c_str());
        std::exit(1);
      }
      infos[s] = *info;
    }
    std::vector<int> mismatches(kDriverThreads, 0);
    std::vector<std::thread> drivers;
    for (int t = 0; t < kDriverThreads; ++t) {
      drivers.emplace_back([&, t] {
        for (size_t s = static_cast<size_t>(t); s < sessions;
             s += kDriverThreads) {
          std::vector<net::BlockingClient> clients;
          for (size_t p = 0; p < kContribPerSession; ++p) {
            auto client = net::BlockingClient::Connect(infos[s].port);
            if (!client.ok()) {
              ++mismatches[static_cast<size_t>(t)];
              return;
            }
            secagg::ContributionMsg msg;
            msg.participant_id = static_cast<int>(p);
            msg.modulus = kModulus;
            msg.payload.resize(kDim);
            for (size_t j = 0; j < kDim; ++j) {
              msg.payload[j] = payload_value(s, p, j);
            }
            if (!client->SendContribution(msg).ok() ||
                !client->FinishSending().ok()) {
              ++mismatches[static_cast<size_t>(t)];
              return;
            }
            clients.push_back(std::move(*client));
          }
          std::vector<uint64_t> expected(kDim, 0);
          for (size_t p = 0; p < kContribPerSession; ++p) {
            for (size_t j = 0; j < kDim; ++j) {
              expected[j] = (expected[j] + payload_value(s, p, j)) % kModulus;
            }
          }
          auto sum = clients.front().ReadSum();
          if (!sum.ok() || sum->sum != expected) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      });
    }
    for (auto& driver : drivers) driver.join();
    (*server)->Stop();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (const int m : mismatches) {
      if (m != 0) result.sums_exact = false;
    }
    result.threads.push_back(loops);
    result.seconds.push_back(seconds);
  }

  std::vector<std::string> session_cells, frame_cells;
  for (size_t i = 0; i < result.seconds.size(); ++i) {
    session_cells.push_back(FormatSci(result.sessions_per_sec(i)));
    frame_cells.push_back(FormatSci(result.frames_per_sec(i)));
  }
  PrintRow("  sessions/sec", session_cells, 14, 12);
  PrintRow("  frames/sec", frame_cells, 14, 12);
  std::printf("  broadcast sums: %s\n",
              result.sums_exact ? "exact" : "MISMATCH (bug!)");
  std::printf("SPEEDUP_SUMMARY section=server_sessions sessions=%zu dim=%zu "
              "speedup_8loops=%.2fx\n",
              sessions, kDim,
              result.seconds[0] / result.seconds[result.seconds.size() - 1]);
  const bool exact = result.sums_exact;
  g_server_results.push_back(std::move(result));
  if (!exact) std::exit(1);
}

// ---------------------------------------------------------------------------
// Section 6: the SIMD kernel layer, scalar reference vs dispatched table at
// a single thread. Every case cross-checks bit-identity (scalar output ==
// dispatched output) before timing; a mismatch is a dispatch-layer bug and
// fails the harness like a determinism violation.
// ---------------------------------------------------------------------------

void RunOneSimdCase(const char* name, size_t elements, int repeats,
                    const std::function<void()>& reset,
                    const std::function<void(const smm::simd::Kernels&)>& run,
                    const unsigned char* out, size_t out_bytes) {
  SimdKernelResult result;
  result.name = name;
  result.elements = elements;

  std::vector<unsigned char> scalar_snapshot(out_bytes);
  reset();
  run(smm::simd::ScalarKernels());
  std::memcpy(scalar_snapshot.data(), out, out_bytes);
  reset();
  run(smm::simd::Active());
  result.identical = std::memcmp(scalar_snapshot.data(), out, out_bytes) == 0;

  const auto best_seconds = [&](const smm::simd::Kernels& kernels) {
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
      reset();
      const auto start = Clock::now();
      run(kernels);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (seconds < best) best = seconds;
    }
    return best;
  };
  result.scalar_seconds = best_seconds(smm::simd::ScalarKernels());
  result.dispatch_seconds = best_seconds(smm::simd::Active());

  const double e = static_cast<double>(elements);
  PrintRow("  " + result.name,
           {FormatSci(e / result.scalar_seconds),
            FormatSci(e / result.dispatch_seconds),
            FormatSci(result.speedup()),
            result.identical ? "yes" : "MISMATCH"},
           22, 14);
  std::printf("SIMD_KERNEL name=%s elements=%zu speedup=%.2fx "
              "identical=%s\n",
              result.name.c_str(), result.elements, result.speedup(),
              result.identical ? "yes" : "no");
  const bool identical = result.identical;
  g_simd_results.push_back(std::move(result));
  if (!identical) {
    std::printf("SIMD dispatch bit-identity violation in %s\n", name);
    std::exit(1);
  }
}

void RunSimdKernelSection(Scale scale) {
  const size_t n = scale == Scale::kFast ? (1u << 20) : (1u << 22);
  const int repeats = scale == Scale::kFast ? 3 : 5;
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59: wrap-prone.

  std::printf(
      "SIMD kernels: single-thread scalar reference vs dispatched (%s), "
      "n=%zu, m=2^64-59\n",
      smm::simd::Active().name, n);
  PrintRow("  kernel",
           {"scalar el/s", "dispatch el/s", "speedup", "identical"}, 22, 14);

  RandomGenerator rng(43);
  // Shared inputs: centered signed values (the wrap fast path's home turf),
  // reduced residues, and Gaussian doubles.
  std::vector<int64_t> signed_vals(n);
  for (auto& v : signed_vals) {
    v = static_cast<int64_t>(rng.UniformUint64(m)) -
        static_cast<int64_t>(m / 2);
  }
  std::vector<uint64_t> residues(n);
  for (auto& v : residues) v = rng.UniformUint64(m);
  std::vector<uint64_t> residues_b(n);
  for (auto& v : residues_b) v = rng.UniformUint64(m);
  std::vector<double> reals(n);
  for (auto& v : reals) v = rng.Gaussian(0.0, 100.0);

  std::vector<uint64_t> u64_out(n);
  std::vector<int64_t> i64_out(n);
  std::vector<uint64_t> acc(n);
  std::vector<double> real_work(n);
  std::vector<double> flr(n), frac(n);

  RunOneSimdCase(
      "wrap_centered", n, repeats, [] {},
      [&](const smm::simd::Kernels& k) {
        k.wrap_centered_into(signed_vals.data(), n, m, u64_out.data());
      },
      reinterpret_cast<const unsigned char*>(u64_out.data()),
      n * sizeof(uint64_t));
  RunOneSimdCase(
      "center_lift", n, repeats, [] {},
      [&](const smm::simd::Kernels& k) {
        k.center_lift_into(residues.data(), n, m, i64_out.data());
      },
      reinterpret_cast<const unsigned char*>(i64_out.data()),
      n * sizeof(int64_t));
  RunOneSimdCase(
      "add_mod", n, repeats,
      [&] { std::memcpy(acc.data(), residues.data(), n * sizeof(uint64_t)); },
      [&](const smm::simd::Kernels& k) {
        k.add_mod_vec(acc.data(), residues_b.data(), n, m);
      },
      reinterpret_cast<const unsigned char*>(acc.data()),
      n * sizeof(uint64_t));
  RunOneSimdCase(
      "sub_mod", n, repeats,
      [&] { std::memcpy(acc.data(), residues.data(), n * sizeof(uint64_t)); },
      [&](const smm::simd::Kernels& k) {
        k.sub_mod_vec(acc.data(), residues_b.data(), n, m);
      },
      reinterpret_cast<const unsigned char*>(acc.data()),
      n * sizeof(uint64_t));
  RunOneSimdCase(
      "mod_reduce", n, repeats, [] {},
      [&](const smm::simd::Kernels& k) {
        k.mod_reduce_into(residues.data(), n, m, u64_out.data());
      },
      reinterpret_cast<const unsigned char*>(u64_out.data()),
      n * sizeof(uint64_t));
  RunOneSimdCase(
      "scale_round_prep", n, repeats, [] {},
      [&](const smm::simd::Kernels& k) {
        k.floor_fract_scaled(reals.data(), n, 64.0, flr.data(), frac.data());
      },
      reinterpret_cast<const unsigned char*>(frac.data()),
      n * sizeof(double));
  RunOneSimdCase(
      "wht_butterfly", n, repeats,
      [&] {
        std::memcpy(real_work.data(), reals.data(), n * sizeof(double));
      },
      [&](const smm::simd::Kernels& k) {
        // One full stage at the cache-block span the transform's phase-1
        // stages use.
        k.wht_butterfly_pass(real_work.data(), n, 1024);
      },
      reinterpret_cast<const unsigned char*>(real_work.data()),
      n * sizeof(double));
  RunOneSimdCase(
      "scale", n, repeats,
      [&] {
        std::memcpy(real_work.data(), reals.data(), n * sizeof(double));
      },
      [&](const smm::simd::Kernels& k) {
        k.scale_inplace(real_work.data(), n, 1.00000001);
      },
      reinterpret_cast<const unsigned char*>(real_work.data()),
      n * sizeof(double));
}

// ---------------------------------------------------------------------------
// Section 7: the fused three-sweep encode pipeline vs the historical
// per-pass path, single-threaded. A cheap-noise cpSGD configuration at
// large dim keeps the comparison memory-bound — exactly the regime the
// fusion targets: ~9 full-row passes collapse into one raw rotate plus
// three L1-resident blocked sweeps. Sampling-heavy mechanisms (SMM/DDG)
// spend most of their encode clock in noise draws, which fusion neither
// helps nor harms, so they would only dilute the signal measured here.
// Bit-identity between the two paths is cross-checked before timing; a
// mismatch fails the harness.
// ---------------------------------------------------------------------------

void RunEncodeFusedSection(Scale scale) {
  const size_t dim = scale == Scale::kFast ? (1u << 14) : (1u << 16);
  const size_t participants = 8;
  const int repeats = scale == Scale::kFast ? 5 : 11;

  mechanisms::CpSgdMechanism::Options o;
  o.dim = dim;
  o.gamma = 64.0;
  o.l2_bound = 1.0;
  o.binomial_trials = 8;  // Popcount-exact: one generator word per draw.
  o.modulus = 1 << 16;
  o.rotation_seed = 101;
  auto mech = mechanisms::CpSgdMechanism::Create(o).value();
  const auto inputs = MakeInputs(participants, dim);

  FusedEncodeResult result;
  result.name = "cpsgd_cheap_noise";
  result.dim = dim;
  result.participants = participants;

  // One timed run of either path with identical fresh streams; returns the
  // wall seconds and leaves the encodings in `out`. The workspace and `out`
  // rows persist across repeats (fully overwritten each run), so the timed
  // region measures the encode pipeline, not the allocator faulting in
  // fresh pages — the warm-up pass below pre-sizes both.
  mechanisms::EncodeWorkspace workspace;
  const auto run_once = [&](bool fused,
                            std::vector<std::vector<uint64_t>>& out) {
    RandomGenerator rng(4242);
    std::vector<RandomGenerator> streams =
        MakeParticipantStreams(rng, inputs.size());
    out.resize(inputs.size());
    const auto start = Clock::now();
    const Status status =
        fused ? mech->EncodeBatch(inputs, 0, inputs.size(), streams.data(),
                                  workspace, &out)
              : mech->EncodeBatchUnfused(inputs, 0, inputs.size(),
                                         streams.data(), workspace, &out);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!status.ok()) {
      std::printf("fused-section encode failed: %s\n",
                  status.ToString().c_str());
      std::exit(1);
    }
    return seconds;
  };

  std::printf(
      "Fused encode pipeline (cpSGD, trials=8): dim=%zu, participants=%zu, "
      "single thread, dispatch=%s\n",
      dim, participants, smm::simd::Active().name);
  std::vector<std::vector<uint64_t>> unfused_out, fused_out;
  run_once(false, unfused_out);  // Untimed warm-up: faults in workspace
  run_once(true, fused_out);     // and output pages for both paths.
  result.unfused_seconds = 1e300;
  result.fused_seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    result.unfused_seconds =
        std::min(result.unfused_seconds, run_once(false, unfused_out));
    result.fused_seconds =
        std::min(result.fused_seconds, run_once(true, fused_out));
  }
  result.identical = fused_out == unfused_out;

  const double elements =
      static_cast<double>(participants) * static_cast<double>(dim);
  PrintRow("  path", {"unfused el/s", "fused el/s", "ratio", "identical"},
           22, 14);
  PrintRow("  encode_fused",
           {FormatSci(elements / result.unfused_seconds),
            FormatSci(elements / result.fused_seconds),
            FormatSci(result.speedup()),
            result.identical ? "yes" : "MISMATCH"},
           22, 14);
  std::printf("SPEEDUP_SUMMARY section=encode_fused dim=%zu participants=%zu "
              "fused_vs_unfused=%.2fx\n",
              dim, participants, result.speedup());
  const bool identical = result.identical;
  g_fused_results.push_back(std::move(result));
  if (!identical) {
    std::printf("fused/unfused bit-identity violation\n");
    std::exit(1);
  }
}

void Run(Scale scale, const char* json_path) {
  const size_t dim = scale == Scale::kFast ? (1u << 10) : (1u << 14);
  const size_t participants = scale == Scale::kFull ? 64 : 32;
  const int repeats = scale == Scale::kFast ? 2 : 3;
  const auto inputs = MakeInputs(participants, dim);

  std::printf("Aggregation thread scaling (%s). Hardware threads: %d\n",
              ScaleName(scale), ThreadPool::HardwareThreads());
  std::printf(
      "Note: speedups > 1 require as many physical cores as threads.\n\n");

  {
    mechanisms::SmmMechanism::Options o;
    o.dim = dim;
    o.gamma = 64.0;
    o.c = 4096.0;
    o.delta_inf = 64.0;
    o.lambda = 2.0;
    o.modulus = 1 << 16;
    o.rotation_seed = 99;
    auto mech = mechanisms::SmmMechanism::Create(o).value();
    RunEncodeSection("encode_smm", *mech, inputs, repeats);
  }
  std::printf("\n");
  {
    mechanisms::DdgMechanism::Options o;
    o.dim = dim;
    o.gamma = 64.0;
    o.l2_bound = 1.0;
    o.sigma = 2.0;
    o.modulus = 1 << 16;
    o.rotation_seed = 99;
    auto mech = mechanisms::DdgMechanism::Create(o).value();
    RunEncodeSection("encode_ddg", *mech, inputs, repeats);
  }
  std::printf("\n");
  RunRotationSection(/*batch=*/scale == Scale::kFast ? 64 : 256, dim,
                     repeats);
  std::printf("\n");
  RunStreamingSection(
      /*participants=*/scale == Scale::kFast ? (1u << 14) : (1u << 17),
      /*dim=*/scale == Scale::kFast ? (1u << 9) : (1u << 10), repeats);
  std::printf("\n");
  RunMaskedSecaggSection(
      /*participants=*/scale == Scale::kFast ? 16 : 32,
      /*dim=*/scale == Scale::kFast ? (1u << 9) : (1u << 11), repeats);
  std::printf("\n");
  RunSessionMaskedSection(
      /*participants=*/scale == Scale::kFast ? 16 : 32,
      /*dim=*/scale == Scale::kFast ? (1u << 9) : (1u << 11), repeats);
  std::printf("\n");
  RunServerSessionsSection(scale);
  std::printf("\n");
  RunSimdKernelSection(scale);
  std::printf("\n");
  RunEncodeFusedSection(scale);

  if (json_path != nullptr) WriteJson(json_path, scale);
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv),
                  smm::bench::ParseJsonPath(argc, argv));
  return 0;
}
