#include "sampling/noise_sampler.h"

#include "sampling/approx_samplers.h"
#include "sampling/discrete_gaussian_sampler.h"
#include "sampling/exact_samplers.h"

namespace smm::sampling {

StatusOr<SkellamSampler> SkellamSampler::Create(double lambda,
                                                SamplerMode mode,
                                                int64_t max_denominator) {
  if (!(lambda > 0.0)) {
    return InvalidArgumentError("Skellam lambda must be > 0");
  }
  const Rational r = Rational::FromDouble(lambda, max_denominator);
  if (mode == SamplerMode::kExact && r.num == 0) {
    return InvalidArgumentError(
        "Skellam lambda too small to rationalize for the exact sampler");
  }
  return SkellamSampler(lambda, mode, r);
}

int64_t SkellamSampler::Sample(RandomGenerator& rng) {
  if (mode_ == SamplerMode::kApproximate) {
    UrbgAdapter urbg{&rng};
    return poisson_(urbg) - poisson_(urbg);
  }
  // Exact path: parameters were validated at Create time.
  return SampleSkellamExact(rational_lambda_, rng).value();
}

StatusOr<DiscreteGaussianSampler> DiscreteGaussianSampler::Create(
    double sigma, SamplerMode mode, int64_t max_denominator) {
  if (!(sigma > 0.0)) {
    return InvalidArgumentError("Discrete Gaussian sigma must be > 0");
  }
  const Rational r = Rational::FromDouble(sigma * sigma, max_denominator);
  if (mode == SamplerMode::kExact && r.num == 0) {
    return InvalidArgumentError(
        "sigma^2 too small to rationalize for the exact sampler");
  }
  return DiscreteGaussianSampler(sigma, mode, r);
}

int64_t DiscreteGaussianSampler::Sample(RandomGenerator& rng) {
  if (mode_ == SamplerMode::kApproximate) {
    return SampleDiscreteGaussianApprox(sigma_, rng);
  }
  return SampleDiscreteGaussianExact(rational_sigma2_, rng).value();
}

}  // namespace smm::sampling
