#!/usr/bin/env python3
"""Unit tests for the bench tooling: check_bench_regression.py's diff and
gating logic (both the legacy bench_scaling_threads shape and the
schema-versioned bench_matrix shape) and validate_bench_artifact.py's
mini JSON-Schema validator. Registered with ctest so the merge gate's own
logic is itself gated.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench"))

import check_bench_regression as cbr  # noqa: E402
import validate_bench_artifact as vba  # noqa: E402


def matrix_artifact(eps=1.0e9, stable=True, bit_identical=True,
                    scale="fast"):
    return {
        "schema_version": 1,
        "bench": "bench_matrix",
        "scale": scale,
        "host": {"hardware_threads": 8, "simd_dispatch": "avx2"},
        "tuning": {"source": "defaults", "tile_rows_per_thread": 32,
                   "threads_per_session": 0},
        "scenarios": [
            {"name": "simd_kernels", "stable": stable, "runs": [
                {"label": "add_mod",
                 "params": {"mechanism": "none", "modulus_class": "prime64",
                            "modulus": 97, "dim": 1048576,
                            "participants": 0, "dropout_rate": 0.0,
                            "corrupt_frame_rate": 0.0,
                            "dispatch": "scalar_vs_active", "shards": 1,
                            "threads": 1},
                 "seconds": 1048576 / eps, "items_per_sec": eps,
                 "bit_identical": bit_identical,
                 "metrics": {"speedup": 2.0}},
            ]},
            {"name": "encode", "stable": False, "runs": [
                {"label": "encode_smm",
                 "params": {"mechanism": "smm", "modulus_class": "pow2_16",
                            "modulus": 65536, "dim": 1024,
                            "participants": 32, "dropout_rate": 0.0,
                            "corrupt_frame_rate": 0.0,
                            "dispatch": "active", "shards": 1, "threads": 2},
                 "seconds": 0.5, "items_per_sec": 2.0e6,
                 "bit_identical": True, "metrics": {}},
            ]},
        ],
    }


def legacy_artifact(dispatch_eps=1.0e9, scale="fast"):
    return {
        "bench": "bench_scaling_threads",
        "scale": scale,
        "hardware_threads": 8,
        "simd_dispatch": "avx2",
        "sections": [
            {"name": "encode", "dim": 1024, "participants": 32,
             "threads": [1, 8], "seconds": [1.0, 0.2],
             "bit_identical": True},
        ],
        "encode_fused": [
            {"name": "cpsgd_cheap_noise", "dim": 16384,
             "unfused_seconds": 1.0, "fused_seconds": 0.5,
             "unfused_eps": 1.0e6, "fused_eps": 2.0e6,
             "fused_vs_unfused": 2.0, "bit_identical": True},
        ],
        "simd_kernels": [
            {"name": "add_mod", "elements": 1 << 20,
             "scalar_eps": 5.0e8, "dispatch_eps": dispatch_eps,
             "speedup": dispatch_eps / 5.0e8, "identical": True},
        ],
    }


class ArtifactFixtureMixin:
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, report):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(report, f)
        return path

    def run_check(self, baseline, current, *extra):
        argv = ["check_bench_regression.py", baseline, current, *extra]
        return cbr.main(argv)


class LegacyDiffTest(ArtifactFixtureMixin, unittest.TestCase):
    def test_identical_reports_pass_under_gate(self):
        p = self.write("a.json", legacy_artifact())
        self.assertEqual(self.run_check(p, p, "--fail-below", "0.5"), 0)

    def test_kernel_regression_fails_gate(self):
        base = self.write("base.json", legacy_artifact(dispatch_eps=1.0e9))
        cur = self.write("cur.json", legacy_artifact(dispatch_eps=0.4e9))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 1)

    def test_kernel_regression_informational_without_gate(self):
        base = self.write("base.json", legacy_artifact(dispatch_eps=1.0e9))
        cur = self.write("cur.json", legacy_artifact(dispatch_eps=0.4e9))
        self.assertEqual(self.run_check(base, cur), 0)

    def test_missing_baseline_seeds_trajectory(self):
        cur = self.write("cur.json", legacy_artifact())
        self.assertEqual(
            self.run_check("/nonexistent/base.json", cur,
                           "--fail-below", "0.5"), 0)

    def test_scale_mismatch_is_informational(self):
        base = self.write("base.json",
                          legacy_artifact(dispatch_eps=1.0e9, scale="full"))
        cur = self.write("cur.json",
                         legacy_artifact(dispatch_eps=0.1e9, scale="fast"))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 0)

    def test_unreadable_current_is_an_error(self):
        base = self.write("base.json", legacy_artifact())
        bad = self.write("bad.json", legacy_artifact())
        with open(bad, "w") as f:
            f.write("{not json")
        self.assertEqual(self.run_check(base, bad), 1)


class MatrixDiffTest(ArtifactFixtureMixin, unittest.TestCase):
    def test_identical_reports_pass_under_gate(self):
        p = self.write("a.json", matrix_artifact())
        self.assertEqual(self.run_check(p, p, "--fail-below", "0.5"), 0)

    def test_stable_regression_fails_gate(self):
        base = self.write("base.json", matrix_artifact(eps=1.0e9))
        cur = self.write("cur.json", matrix_artifact(eps=0.4e9))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 1)

    def test_stable_regression_above_threshold_passes(self):
        base = self.write("base.json", matrix_artifact(eps=1.0e9))
        cur = self.write("cur.json", matrix_artifact(eps=0.6e9))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 0)

    def test_nonstable_regression_is_informational(self):
        # The same throughput drop in a scenario not marked stable must not
        # gate: wall-time sections jitter too much on shared runners.
        base = self.write("base.json", matrix_artifact(eps=1.0e9,
                                                       stable=False))
        cur = self.write("cur.json", matrix_artifact(eps=0.1e9,
                                                     stable=False))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 0)

    def test_bit_identity_violation_fails_even_without_gate(self):
        base = self.write("base.json", matrix_artifact())
        cur = self.write("cur.json", matrix_artifact(bit_identical=False))
        self.assertEqual(self.run_check(base, cur), 1)

    def test_scale_mismatch_is_informational(self):
        base = self.write("base.json", matrix_artifact(eps=1.0e9,
                                                       scale="full"))
        cur = self.write("cur.json", matrix_artifact(eps=0.1e9,
                                                     scale="fast"))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 0)

    def test_missing_baseline_seeds_trajectory(self):
        cur = self.write("cur.json", matrix_artifact())
        self.assertEqual(
            self.run_check("/nonexistent/base.json", cur,
                           "--fail-below", "0.5"), 0)

    def test_shape_mismatch_is_informational(self):
        # A legacy baseline against a matrix current (the transition PR's
        # first run) must seed, not fail.
        base = self.write("base.json", legacy_artifact())
        cur = self.write("cur.json", matrix_artifact(eps=0.1e9))
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 0)

    def test_new_point_is_not_gated(self):
        base = self.write("base.json", matrix_artifact())
        cur_report = matrix_artifact(eps=0.1e9)
        cur_report["scenarios"][0]["runs"][0]["label"] = "brand_new_case"
        cur = self.write("cur.json", cur_report)
        self.assertEqual(self.run_check(base, cur, "--fail-below", "0.5"), 0)


class SchemaValidatorTest(ArtifactFixtureMixin, unittest.TestCase):
    SCHEMA = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench",
        "bench_matrix_schema.json")

    def run_validate(self, report):
        path = self.write("artifact.json", report)
        return vba.main(["validate_bench_artifact.py", path, self.SCHEMA])

    def test_well_formed_matrix_artifact_conforms(self):
        self.assertEqual(self.run_validate(matrix_artifact()), 0)

    def test_legacy_artifact_rejected(self):
        self.assertEqual(self.run_validate(legacy_artifact()), 1)

    def test_missing_required_field_rejected(self):
        report = matrix_artifact()
        del report["tuning"]
        self.assertEqual(self.run_validate(report), 1)

    def test_unknown_field_rejected(self):
        report = matrix_artifact()
        report["surprise"] = 1
        self.assertEqual(self.run_validate(report), 1)

    def test_wrong_type_rejected(self):
        report = matrix_artifact()
        report["scenarios"][0]["runs"][0]["seconds"] = "fast"
        self.assertEqual(self.run_validate(report), 1)

    def test_bad_enum_rejected(self):
        report = matrix_artifact()
        report["scale"] = "warp"
        self.assertEqual(self.run_validate(report), 1)

    def test_non_numeric_metric_rejected(self):
        report = matrix_artifact()
        report["scenarios"][0]["runs"][0]["metrics"]["note"] = "hi"
        self.assertEqual(self.run_validate(report), 1)

    def test_validator_does_not_mutate_input(self):
        report = matrix_artifact()
        snapshot = copy.deepcopy(report)
        self.run_validate(report)
        self.assertEqual(report, snapshot)


if __name__ == "__main__":
    unittest.main()
