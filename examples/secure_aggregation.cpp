// Secure aggregation walkthrough over the wire: pairwise masking, framed
// client messages, a server session, mask cancellation, and dropout
// recovery via Shamir secret sharing — the substrate Algorithm 3 treats as
// a black box, run as the client -> frame -> session -> stream pipeline a
// production server would.
//
// Eight participants mask their integer vectors and frame them into
// ContributionMsg bytes; the loopback transport carries the frames to an
// AggregationSession, which only ever sees masked inputs (uniform garbage
// individually) yet recovers the exact modular sum. In round two, two
// participants drop out mid-protocol — they never send a frame — and the
// session's Finalize unmasks the surviving sum by reconstructing the
// dropped pairs' seeds from the survivors' Shamir shares. A corrupt frame
// is thrown at the server along the way to show it is rejected with a
// status, never a crash.
//
// Build & run:  ./build/example_secure_aggregation
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "secagg/modular.h"
#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/transport.h"

namespace {

/// Client-side: mask participant i's input, frame it, and send it.
bool SendContribution(const smm::secagg::MaskedAggregator& aggregator,
                      int participant, const std::vector<uint64_t>& input,
                      uint64_t modulus,
                      smm::secagg::FrameTransport& transport) {
  auto masked =
      aggregator.PrepareContribution(participant, input, modulus);
  if (!masked.ok()) return false;
  smm::secagg::ContributionMsg msg;
  msg.participant_id = participant;
  msg.modulus = modulus;
  msg.payload = std::move(*masked);
  auto frame = smm::secagg::EncodeFrame(msg);
  if (!frame.ok()) return false;
  return transport.Send(participant, std::move(*frame)).ok();
}

void PrintVector(const char* label, const std::vector<uint64_t>& v) {
  std::printf("%s", label);
  for (uint64_t x : v) std::printf("%6llu", (unsigned long long)x);
}

}  // namespace

int main() {
  constexpr int kParticipants = 8;
  constexpr int kThreshold = 5;  // Any 5 survivors can unmask.
  constexpr uint64_t kModulus = 1 << 16;
  constexpr size_t kDim = 6;

  smm::secagg::MaskedAggregator::Options options;
  options.num_participants = kParticipants;
  options.threshold = kThreshold;
  options.session_seed = 2024;
  auto aggregator = smm::secagg::MaskedAggregator::Create(options);
  if (!aggregator.ok()) {
    std::printf("setup failed: %s\n",
                aggregator.status().ToString().c_str());
    return 1;
  }

  // Private integer inputs (already in Z_m, e.g. quantized gradients).
  smm::RandomGenerator rng(5);
  std::vector<std::vector<uint64_t>> inputs(kParticipants);
  for (auto& v : inputs) {
    v.resize(kDim);
    for (auto& x : v) x = rng.UniformUint64(100);
  }

  PrintVector("participant 0 raw input:    ", inputs[0]);
  std::printf("\n");
  auto masked0 = (*aggregator)->PrepareContribution(0, inputs[0], kModulus);
  if (!masked0.ok()) {
    std::printf("masking failed: %s\n", masked0.status().ToString().c_str());
    return 1;
  }
  PrintVector("participant 0 framed payload:", *masked0);
  std::printf("   <- uniform in Z_m, reveals nothing\n\n");

  smm::secagg::AggregationSession::Options session_options;
  session_options.dim = kDim;
  session_options.modulus = kModulus;

  // --- Round 1: everyone sends a frame. ---
  auto session =
      smm::secagg::AggregationSession::Open(**aggregator, session_options);
  if (!session.ok()) {
    std::printf("session open failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  // The session drains the FrameTransport interface; this walkthrough uses
  // the in-memory backend (see example_tcp_aggregation for real sockets).
  smm::secagg::InMemoryTransport loopback;
  smm::secagg::FrameTransport& transport = loopback;
  for (int i = 0; i < kParticipants; ++i) {
    if (!SendContribution(**aggregator, i, inputs[static_cast<size_t>(i)],
                          kModulus, transport)) {
      std::printf("participant %d failed to send\n", i);
      return 1;
    }
  }
  // A corrupted frame arrives too: the session rejects it with a status and
  // keeps serving — malformed bytes can never crash the server loop.
  auto drain_status = (*session)->DrainTransport(transport);
  std::vector<uint8_t> corrupt = {'S', 'M', 'M', '1', 9, 9, 9, 9};
  auto corrupt_status = (*session)->HandleFrame(corrupt);
  std::printf("corrupt frame -> %s (session keeps serving, %zu rejected)\n",
              corrupt_status.ToString().c_str(),
              (*session)->rejected_frames());
  auto full_sum = drain_status.ok() ? (*session)->Finalize()
                                    : smm::StatusOr<smm::secagg::SumMsg>(
                                          drain_status);
  if (!full_sum.ok()) {
    std::printf("round 1 failed: %s\n",
                full_sum.status().ToString().c_str());
    return 1;
  }
  std::vector<uint64_t> exact(kDim, 0);
  for (const auto& v : inputs) {
    for (size_t j = 0; j < kDim; ++j) exact[j] = (exact[j] + v[j]) % kModulus;
  }
  std::printf("\n%u frames -> session ->\n",
              full_sum->num_contributors);
  PrintVector("full-participation sum:  ", full_sum->sum);
  PrintVector("\nexact sum:               ", exact);
  std::printf("   -> masks cancelled exactly\n\n");

  // --- Round 2: participants 2 and 6 drop out mid-protocol (no frame). ---
  const std::vector<int> survivors = {0, 1, 3, 4, 5, 7};
  auto session2 =
      smm::secagg::AggregationSession::Open(**aggregator, session_options);
  if (!session2.ok()) {
    std::printf("session open failed: %s\n",
                session2.status().ToString().c_str());
    return 1;
  }
  for (int i : survivors) {
    if (!SendContribution(**aggregator, i, inputs[static_cast<size_t>(i)],
                          kModulus, transport)) {
      std::printf("participant %d failed to send\n", i);
      return 1;
    }
  }
  if (!(*session2)->DrainTransport(transport).ok()) {
    std::printf("round 2 drain failed\n");
    return 1;
  }
  // Finalize treats everyone who never contributed as dropped and removes
  // their leftover masks via Shamir reconstruction from the survivors'
  // shares.
  auto surviving_sum = (*session2)->Finalize();
  if (!surviving_sum.ok()) {
    std::printf("unmask failed: %s\n",
                surviving_sum.status().ToString().c_str());
    return 1;
  }
  std::vector<uint64_t> exact_surviving(kDim, 0);
  for (int i : survivors) {
    for (size_t j = 0; j < kDim; ++j) {
      exact_surviving[j] =
          (exact_surviving[j] + inputs[static_cast<size_t>(i)][j]) % kModulus;
    }
  }
  std::printf("participants 2 and 6 dropped out; Shamir recovery kicks in\n");
  PrintVector("survivors' unmasked sum: ", surviving_sum->sum);
  PrintVector("\nexact survivors' sum:    ", exact_surviving);
  std::printf("\n");
  return 0;
}
