#include "mechanisms/smm_mechanism.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mechanisms/clipping.h"
#include "secagg/secure_aggregator.h"

namespace smm::mechanisms {
namespace {

TEST(SkellamMixtureNoiserTest, CreateValidates) {
  EXPECT_FALSE(SkellamMixtureNoiser::Create(0.0).ok());
  EXPECT_TRUE(SkellamMixtureNoiser::Create(2.0).ok());
}

class NoiserUnbiasednessTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiserUnbiasednessTest, PerturbedValueIsUnbiased) {
  const double x = GetParam();
  auto noiser = SkellamMixtureNoiser::Create(1.5);
  ASSERT_TRUE(noiser.ok());
  RandomGenerator rng(static_cast<uint64_t>(std::abs(x) * 1000) + 3);
  constexpr int kN = 150000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(noiser->Perturb(x, rng));
  }
  // Standard error ~ sqrt(2*1.5 + 0.25) / sqrt(kN) ~ 0.005.
  EXPECT_NEAR(sum / kN, x, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Values, NoiserUnbiasednessTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.99, 1.0, -0.7,
                                           2.25, -3.75));

TEST(SkellamMixtureNoiserTest, VarianceMatchesTheory) {
  // Var = 2 lambda + p(1 - p) where p is the fractional part.
  const double x = 0.3, lambda = 2.0;
  auto noiser = SkellamMixtureNoiser::Create(lambda);
  ASSERT_TRUE(noiser.ok());
  RandomGenerator rng(11);
  constexpr int kN = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = static_cast<double>(noiser->Perturb(x, rng));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(var, 2.0 * lambda + 0.3 * 0.7, 0.1);
}

TEST(SkellamMixtureNoiserTest, IntegerInputGetsPureSkellam) {
  // Corner case in Section 3.2: integer x has p = 0 — output is x + Sk.
  auto noiser = SkellamMixtureNoiser::Create(1.0);
  ASSERT_TRUE(noiser.ok());
  RandomGenerator rng(13);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = static_cast<double>(noiser->Perturb(5.0, rng));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(sum_sq / kN - mean * mean, 2.0, 0.06);
}

TEST(SkellamMixtureNoiserTest, VectorPerturbationIsElementwise) {
  auto noiser = SkellamMixtureNoiser::Create(1.0);
  ASSERT_TRUE(noiser.ok());
  RandomGenerator rng(17);
  const std::vector<double> x = {0.5, -1.25, 3.0};
  const std::vector<int64_t> out = noiser->PerturbVector(x, rng);
  EXPECT_EQ(out.size(), 3u);
}

SmmMechanism::Options BasicOptions() {
  SmmMechanism::Options o;
  o.dim = 256;
  o.gamma = 64.0;
  o.c = o.gamma * o.gamma;  // Delta_2 = 1.
  o.delta_inf = 64.0;
  o.lambda = 1.0;
  o.modulus = 1 << 16;
  o.rotation_seed = 5;
  return o;
}

TEST(SmmMechanismTest, CreateValidates) {
  auto bad_dim = BasicOptions();
  bad_dim.dim = 100;
  EXPECT_FALSE(SmmMechanism::Create(bad_dim).ok());
  auto bad_c = BasicOptions();
  bad_c.c = 0.0;
  EXPECT_FALSE(SmmMechanism::Create(bad_c).ok());
  EXPECT_TRUE(SmmMechanism::Create(BasicOptions()).ok());
}

TEST(SmmMechanismTest, EncodeProducesZmVectors) {
  auto mech = SmmMechanism::Create(BasicOptions());
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(19);
  std::vector<double> x(256, 0.01);
  auto z = (*mech)->EncodeParticipant(x, rng);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->size(), 256u);
  for (uint64_t v : *z) EXPECT_LT(v, (*mech)->modulus());
}

TEST(SmmMechanismTest, SumEstimateIsAccurateWithTinyNoise) {
  // With lambda small and a huge modulus, decode(encode-sum) must track the
  // exact sum closely: per-dim error variance ~ (n*2lambda + n/4)/gamma^2.
  auto options = BasicOptions();
  options.lambda = 0.05;
  auto mech = SmmMechanism::Create(options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(23);
  secagg::IdealAggregator agg;

  const int n = 20;
  std::vector<std::vector<double>> inputs(n);
  std::vector<double> exact(256, 0.0);
  for (auto& x : inputs) {
    x.resize(256);
    for (size_t j = 0; j < 256; ++j) x[j] = rng.Gaussian(0.0, 0.02);
    L2Clip(x, 1.0);
    for (size_t j = 0; j < 256; ++j) exact[j] += x[j];
  }
  auto estimate = RunDistributedSum(**mech, agg, inputs, rng);
  ASSERT_TRUE(estimate.ok());
  const double mse = MeanSquaredErrorPerDimension(*estimate, inputs).value();
  // Error budget: (20 * (0.1 + 0.25)) / 64^2 ~ 0.0017 per dim.
  EXPECT_LT(mse, 0.02);
  EXPECT_EQ((*mech)->overflow_count(), 0);
}

TEST(SmmMechanismTest, EstimateIsUnbiasedOverRepetitions) {
  auto options = BasicOptions();
  options.dim = 16;
  options.gamma = 8.0;
  options.c = 64.0;
  options.lambda = 0.5;
  options.modulus = 1 << 18;
  auto mech = SmmMechanism::Create(options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(29);
  secagg::IdealAggregator agg;

  std::vector<std::vector<double>> inputs = {
      std::vector<double>(16, 0.05), std::vector<double>(16, -0.03)};
  std::vector<double> mean_estimate(16, 0.0);
  constexpr int kReps = 3000;
  for (int r = 0; r < kReps; ++r) {
    auto estimate = RunDistributedSum(**mech, agg, inputs, rng);
    ASSERT_TRUE(estimate.ok());
    for (size_t j = 0; j < 16; ++j) mean_estimate[j] += (*estimate)[j];
  }
  for (size_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(mean_estimate[j] / kReps, 0.02, 0.01) << "dim " << j;
  }
}

TEST(SmmMechanismTest, SmallModulusTriggersOverflowCounter) {
  auto options = BasicOptions();
  options.modulus = 4;     // Absurdly small.
  options.lambda = 100.0;  // Noise far beyond [-2, 2).
  auto mech = SmmMechanism::Create(options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(31);
  std::vector<double> x(256, 0.0);
  ASSERT_TRUE((*mech)->EncodeParticipant(x, rng).ok());
  EXPECT_GT((*mech)->overflow_count(), 0);
  (*mech)->ResetOverflowCount();
  EXPECT_EQ((*mech)->overflow_count(), 0);
}

TEST(SmmMechanismTest, DimensionMismatchRejected) {
  auto mech = SmmMechanism::Create(BasicOptions());
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(37);
  std::vector<double> wrong(128, 0.0);
  EXPECT_FALSE((*mech)->EncodeParticipant(wrong, rng).ok());
  std::vector<uint64_t> wrong_sum(128, 0);
  EXPECT_FALSE((*mech)->DecodeSum(wrong_sum, 1).ok());
}

TEST(SmmMechanismTest, RotationAblationStillUnbiased) {
  auto options = BasicOptions();
  options.apply_rotation = false;
  options.dim = 16;
  options.gamma = 16.0;
  options.c = 256.0;
  options.lambda = 0.5;
  options.modulus = 1 << 18;
  auto mech = SmmMechanism::Create(options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(41);
  secagg::IdealAggregator agg;
  std::vector<std::vector<double>> inputs = {std::vector<double>(16, 0.25)};
  std::vector<double> mean_estimate(16, 0.0);
  constexpr int kReps = 2000;
  for (int r = 0; r < kReps; ++r) {
    auto estimate = RunDistributedSum(**mech, agg, inputs, rng);
    ASSERT_TRUE(estimate.ok());
    for (size_t j = 0; j < 16; ++j) mean_estimate[j] += (*estimate)[j];
  }
  for (size_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(mean_estimate[j] / kReps, 0.25, 0.02);
  }
}

}  // namespace
}  // namespace smm::mechanisms
