#include "secagg/fault_injection.h"

#include <utility>

#include "common/random.h"

namespace smm::secagg {

double FaultInjectingTransport::NextUniform() {
  // 53-bit mantissa draw, the standard uint64 -> [0, 1) mapping.
  return static_cast<double>(SplitMix64(&rng_state_) >> 11) * 0x1.0p-53;
}

Status FaultInjectingTransport::Send(int client_id,
                                     std::vector<uint8_t> frame) {
  std::optional<std::pair<int, std::vector<uint8_t>>> deliver_first;
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_sent;
    // Fixed draw order keeps the schedule a pure function of the seed and
    // the send sequence, whatever subset of probabilities is nonzero.
    const bool drop = NextUniform() < schedule_.drop;
    duplicate = NextUniform() < schedule_.duplicate;
    const bool reorder = NextUniform() < schedule_.reorder;
    const bool truncate = NextUniform() < schedule_.truncate;
    const bool corrupt = NextUniform() < schedule_.corrupt;

    if (drop) {
      ++stats_.dropped;
      return OkStatus();
    }
    if (truncate && frame.size() > 1) {
      ++stats_.truncated;
      const size_t keep =
          1 + static_cast<size_t>(SplitMix64(&rng_state_) %
                                  (frame.size() - 1));
      frame.resize(keep);
    }
    if (corrupt && !frame.empty()) {
      ++stats_.corrupted;
      const size_t at =
          static_cast<size_t>(SplitMix64(&rng_state_) % frame.size());
      frame[at] ^= static_cast<uint8_t>(1 + SplitMix64(&rng_state_) % 255);
    }
    if (reorder) {
      ++stats_.reordered;
      // Stash this frame; it rides out behind the next one. A frame
      // already stashed goes out now (swapped).
      stashed_.swap(deliver_first);
      stashed_ = std::make_pair(client_id, std::move(frame));
      if (!deliver_first) return OkStatus();
      SMM_RETURN_IF_ERROR(
          inner_.Send(deliver_first->first, std::move(deliver_first->second)));
      return OkStatus();
    }
    if (duplicate) ++stats_.duplicated;
    // Flush a pending stash behind this frame: deliver current first, then
    // the stashed one — that is the swap the reorder draw asked for.
    stashed_.swap(deliver_first);
  }
  if (duplicate) {
    std::vector<uint8_t> copy = frame;
    SMM_RETURN_IF_ERROR(inner_.Send(client_id, std::move(copy)));
  }
  SMM_RETURN_IF_ERROR(inner_.Send(client_id, std::move(frame)));
  if (deliver_first) {
    SMM_RETURN_IF_ERROR(
        inner_.Send(deliver_first->first, std::move(deliver_first->second)));
  }
  return OkStatus();
}

Status FaultInjectingTransport::FinishSending() {
  std::optional<std::pair<int, std::vector<uint8_t>>> stashed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stashed_.swap(stashed);
  }
  if (stashed) {
    SMM_RETURN_IF_ERROR(inner_.Send(stashed->first, std::move(stashed->second)));
  }
  return inner_.FinishSending();
}

FaultStats FaultInjectingTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace smm::secagg
