#include "nn/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "nn/optimizer.h"

namespace smm::nn {
namespace {

Mlp::Options SmallOptions() {
  Mlp::Options o;
  o.input_dim = 6;
  o.hidden_dims = {8, 8};
  o.num_classes = 3;
  o.init_seed = 11;
  return o;
}

TEST(MlpTest, CreateValidates) {
  auto bad = SmallOptions();
  bad.input_dim = 0;
  EXPECT_FALSE(Mlp::Create(bad).ok());
  bad = SmallOptions();
  bad.num_classes = 1;
  EXPECT_FALSE(Mlp::Create(bad).ok());
  bad = SmallOptions();
  bad.hidden_dims = {0};
  EXPECT_FALSE(Mlp::Create(bad).ok());
  EXPECT_TRUE(Mlp::Create(SmallOptions()).ok());
}

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  auto mlp = Mlp::Create(SmallOptions());
  ASSERT_TRUE(mlp.ok());
  // 6*8+8 + 8*8+8 + 8*3+3 = 56 + 72 + 27 = 155.
  EXPECT_EQ(mlp->num_parameters(), 155u);
}

TEST(MlpTest, PaperModelHas63610Parameters) {
  // Section 6.2: the "three-layer" network (input-hidden-output) with 80
  // neurons per hidden layer on 784-dim input gives d = 63,610 weights:
  // 784*80 + 80 + 80*10 + 10.
  Mlp::Options o;
  o.input_dim = 784;
  o.hidden_dims = {80};
  o.num_classes = 10;
  auto mlp = Mlp::Create(o);
  ASSERT_TRUE(mlp.ok());
  EXPECT_EQ(mlp->num_parameters(), 63610u);
}

TEST(MlpTest, ForwardOutputsLogitsPerClass) {
  auto mlp = Mlp::Create(SmallOptions());
  ASSERT_TRUE(mlp.ok());
  const std::vector<double> x(6, 0.5);
  const std::vector<double> logits = mlp->Forward(x);
  EXPECT_EQ(logits.size(), 3u);
}

TEST(MlpTest, DeterministicForSeed) {
  auto a = Mlp::Create(SmallOptions());
  auto b = Mlp::Create(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->parameters(), b->parameters());
}

TEST(MlpTest, GradientMatchesFiniteDifferences) {
  auto mlp = Mlp::Create(SmallOptions());
  ASSERT_TRUE(mlp.ok());
  RandomGenerator rng(3);
  std::vector<double> x(6);
  for (double& v : x) v = rng.Gaussian(0.0, 1.0);
  const int label = 1;

  const Mlp::LossAndGrad lg = mlp->ComputeLossAndGradient(x, label);
  ASSERT_EQ(lg.grad.size(), mlp->num_parameters());

  // Check a spread of parameter indices with central differences.
  const double h = 1e-6;
  std::vector<double>& params = mlp->mutable_parameters();
  for (size_t idx = 0; idx < params.size(); idx += 13) {
    const double saved = params[idx];
    params[idx] = saved + h;
    const double loss_plus = mlp->ComputeLoss(x, label);
    params[idx] = saved - h;
    const double loss_minus = mlp->ComputeLoss(x, label);
    params[idx] = saved;
    const double numeric = (loss_plus - loss_minus) / (2.0 * h);
    EXPECT_NEAR(lg.grad[idx], numeric, 1e-5 * (1.0 + std::abs(numeric)))
        << "param " << idx;
  }
}

TEST(MlpTest, LossDecreasesUnderGradientDescent) {
  auto mlp = Mlp::Create(SmallOptions());
  ASSERT_TRUE(mlp.ok());
  RandomGenerator rng(5);
  // Tiny synthetic task: class = argmax of first 3 inputs.
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  for (int i = 0; i < 60; ++i) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.Gaussian(0.0, 1.0);
    int label = 0;
    for (int c = 1; c < 3; ++c) {
      if (x[static_cast<size_t>(c)] > x[static_cast<size_t>(label)]) {
        label = c;
      }
    }
    xs.push_back(std::move(x));
    ys.push_back(label);
  }
  auto mean_loss = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      total += mlp->ComputeLoss(xs[i], ys[i]);
    }
    return total / static_cast<double>(xs.size());
  };
  const double before = mean_loss();
  SgdOptimizer opt(0.1);
  for (int epoch = 0; epoch < 60; ++epoch) {
    std::vector<double> grad(mlp->num_parameters(), 0.0);
    for (size_t i = 0; i < xs.size(); ++i) {
      const auto lg = mlp->ComputeLossAndGradient(xs[i], ys[i]);
      for (size_t j = 0; j < grad.size(); ++j) {
        grad[j] += lg.grad[j] / static_cast<double>(xs.size());
      }
    }
    ASSERT_TRUE(opt.Step(mlp->mutable_parameters(), grad).ok());
  }
  EXPECT_LT(mean_loss(), 0.5 * before);
}

TEST(MlpTest, PredictIsArgmaxOfForward) {
  auto mlp = Mlp::Create(SmallOptions());
  ASSERT_TRUE(mlp.ok());
  const std::vector<double> x(6, 0.3);
  const std::vector<double> logits = mlp->Forward(x);
  int argmax = 0;
  for (int c = 1; c < 3; ++c) {
    if (logits[static_cast<size_t>(c)] > logits[static_cast<size_t>(argmax)]) {
      argmax = c;
    }
  }
  EXPECT_EQ(mlp->Predict(x), argmax);
}

TEST(OptimizerTest, SgdStepMath) {
  SgdOptimizer opt(0.5);
  std::vector<double> params = {1.0, 2.0};
  ASSERT_TRUE(opt.Step(params, {0.2, -0.4}).ok());
  EXPECT_NEAR(params[0], 0.9, 1e-12);
  EXPECT_NEAR(params[1], 2.2, 1e-12);
}

TEST(OptimizerTest, SizeMismatchRejected) {
  SgdOptimizer sgd(0.1);
  AdamOptimizer adam(0.1);
  std::vector<double> params = {1.0};
  EXPECT_FALSE(sgd.Step(params, {0.1, 0.2}).ok());
  EXPECT_FALSE(adam.Step(params, {0.1, 0.2}).ok());
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize f(w) = ||w - target||^2 / 2.
  AdamOptimizer opt(0.05);
  std::vector<double> w = {5.0, -3.0, 2.0};
  const std::vector<double> target = {1.0, 1.0, 1.0};
  for (int it = 0; it < 2000; ++it) {
    std::vector<double> grad(3);
    for (size_t i = 0; i < 3; ++i) grad[i] = w[i] - target[i];
    ASSERT_TRUE(opt.Step(w, grad).ok());
  }
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], 1.0, 0.05);
}

TEST(OptimizerTest, MomentumAcceleratesSgd) {
  SgdOptimizer plain(0.01);
  SgdOptimizer momentum(0.01, 0.9);
  std::vector<double> w1 = {10.0}, w2 = {10.0};
  for (int it = 0; it < 50; ++it) {
    ASSERT_TRUE(plain.Step(w1, {w1[0]}).ok());
    ASSERT_TRUE(momentum.Step(w2, {w2[0]}).ok());
  }
  EXPECT_LT(std::abs(w2[0]), std::abs(w1[0]));
}

}  // namespace
}  // namespace smm::nn
