#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace smm {
namespace {

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomGeneratorTest, RandIntRange) {
  RandomGenerator rng(7);
  for (int n : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 200; ++i) {
      const int64_t v = rng.RandInt(n);
      EXPECT_GE(v, 1);
      EXPECT_LE(v, n);
    }
  }
}

TEST(RandomGeneratorTest, RandIntApproximatelyUniform) {
  RandomGenerator rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[static_cast<size_t>(rng.RandInt(kBuckets) - 1)]++;
  }
  // Chi-square with 7 dof; 40 is far beyond the 99.9% quantile (24.3), so
  // the test only catches gross non-uniformity, not random flakiness.
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 40.0);
}

TEST(RandomGeneratorTest, UniformDoubleInUnitInterval) {
  RandomGenerator rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RandomGeneratorTest, GaussianMoments) {
  RandomGenerator rng(5);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian(2.0, 3.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.25);
}

TEST(RandomGeneratorTest, BernoulliEdgeCases) {
  RandomGenerator rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomGeneratorTest, BernoulliMean) {
  RandomGenerator rng(13);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RandomGeneratorTest, SignIsBalanced) {
  RandomGenerator rng(17);
  int plus = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const int s = rng.Sign();
    ASSERT_TRUE(s == 1 || s == -1);
    if (s == 1) ++plus;
  }
  EXPECT_NEAR(static_cast<double>(plus) / kN, 0.5, 0.02);
}

TEST(RandomGeneratorTest, ForkedStreamsDiffer) {
  RandomGenerator parent(21);
  RandomGenerator child1 = parent.Fork();
  RandomGenerator child2 = parent.Fork();
  int same12 = 0, same1p = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t a = child1.NextBits();
    const uint64_t b = child2.NextBits();
    const uint64_t c = parent.NextBits();
    if (a == b) ++same12;
    if (a == c) ++same1p;
  }
  EXPECT_LT(same12, 2);
  EXPECT_LT(same1p, 2);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

}  // namespace
}  // namespace smm
