#ifndef SMM_SECAGG_SHAMIR_H_
#define SMM_SECAGG_SHAMIR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace smm::secagg {

/// Shamir secret sharing over the Mersenne prime field GF(2^61 - 1), used by
/// the masked aggregation protocol to recover the pairwise-mask seeds of
/// dropped participants (the dropout-resilience ingredient of Bonawitz et
/// al.'s SecAgg).

/// The field prime 2^61 - 1.
inline constexpr uint64_t kShamirPrime = (1ULL << 61) - 1;

/// One share: the evaluation point x (> 0) and the polynomial value y.
struct ShamirShare {
  uint64_t x = 0;
  uint64_t y = 0;
};

/// Splits `secret` (< kShamirPrime) into `num_shares` shares such that any
/// `threshold` of them reconstruct it and fewer reveal nothing. Shares are
/// issued at evaluation points x = 1..num_shares.
/// Requires 1 <= threshold <= num_shares < kShamirPrime.
StatusOr<std::vector<ShamirShare>> ShamirSplit(uint64_t secret, int threshold,
                                               int num_shares,
                                               RandomGenerator& rng);

/// Reconstructs the secret from >= threshold shares by Lagrange
/// interpolation at x = 0. The caller must supply shares from the same
/// split; duplicated evaluation points are rejected.
StatusOr<uint64_t> ShamirReconstruct(const std::vector<ShamirShare>& shares,
                                     int threshold);

}  // namespace smm::secagg

#endif  // SMM_SECAGG_SHAMIR_H_
