#include "secagg/streaming_aggregator.h"

#include "common/simd.h"
#include "secagg/modular.h"

namespace smm::secagg {

Status StreamingAggregator::AbsorbTile(
    const std::vector<int>& participant_ids,
    const std::vector<std::vector<uint64_t>>& inputs) {
  if (participant_ids.size() != inputs.size()) {
    return InvalidArgumentError("one participant id per tile input required");
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    SMM_RETURN_IF_ERROR(Absorb(participant_ids[i], inputs[i]));
  }
  return OkStatus();
}

RunningSumStream::RunningSumStream(size_t dim, uint64_t m, ThreadPool* pool)
    : dim_(dim), m_(m), pool_(pool), sum_(dim, 0) {}

Status RunningSumStream::CheckOpen() const {
  if (finalized_) {
    return FailedPreconditionError("stream already finalized");
  }
  return OkStatus();
}

Status RunningSumStream::AdmitParticipant(int participant_id) {
  (void)participant_id;
  return OkStatus();
}

Status RunningSumStream::FinalizeInto(std::vector<uint64_t>& sum) {
  (void)sum;
  return OkStatus();
}

Status RunningSumStream::AdmitTile(const std::vector<int>& participant_ids) {
  for (int id : participant_ids) {
    SMM_RETURN_IF_ERROR(AdmitParticipant(id));
  }
  return OkStatus();
}

Status RunningSumStream::Absorb(int participant_id, ConstSpan<uint64_t> input) {
  SMM_RETURN_IF_ERROR(CheckOpen());
  if (input.size() != dim_) {
    return InvalidArgumentError("input dimension mismatch");
  }
  SMM_RETURN_IF_ERROR(AdmitParticipant(participant_id));
  // A single contribution updates each coordinate independently, so the
  // coordinate range shards with no partials at all: the memory high-water
  // mark of a one-participant absorb is the O(dim) running sum itself.
  const uint64_t* data = input.data();
  const auto accumulate = [&](size_t begin, size_t end) {
    simd::AddModVec(sum_.data() + begin, data + begin, end - begin, m_);
  };
  if (pool_ != nullptr && pool_->num_threads() > 1 && dim_ > 1) {
    pool_->ParallelFor(dim_, [&](int, size_t begin, size_t end) {
      accumulate(begin, end);
    });
  } else {
    accumulate(0, dim_);
  }
  ++absorbed_;
  return OkStatus();
}

Status RunningSumStream::AbsorbTile(
    const std::vector<int>& participant_ids,
    const std::vector<std::vector<uint64_t>>& inputs) {
  SMM_RETURN_IF_ERROR(CheckOpen());
  if (participant_ids.size() != inputs.size()) {
    return InvalidArgumentError("one participant id per tile input required");
  }
  for (const auto& input : inputs) {
    if (input.size() != dim_) {
      return InvalidArgumentError("input dimension mismatch");
    }
  }
  // Admission is all-or-nothing and runs before any accumulation, so a
  // rejected tile leaves the stream untouched; the data is then folded in
  // with one O(dim) partial per thread, reduced in chunk order.
  SMM_RETURN_IF_ERROR(AdmitTile(participant_ids));
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool_, inputs.size(), m_, sum_,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        for (size_t i = begin; i < end; ++i) {
          simd::AddModVec(acc.data(), inputs[i].data(), dim_, m_);
        }
        return OkStatus();
      }));
  absorbed_ += inputs.size();
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> RunningSumStream::Finalize() {
  SMM_RETURN_IF_ERROR(CheckOpen());
  if (absorbed_ == 0) {
    return FailedPreconditionError("no contributions absorbed");
  }
  finalized_ = true;
  SMM_RETURN_IF_ERROR(FinalizeInto(sum_));
  return std::move(sum_);
}

}  // namespace smm::secagg
