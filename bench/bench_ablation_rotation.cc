// Ablation: the Walsh-Hadamard random rotation (Line 1 of Algorithm 4).
// For concentrated ("spiky") inputs, skipping the rotation places the whole
// signal mass on a few coordinates; the per-coordinate sum then exceeds the
// centered range [-m/2, m/2) and wraps, destroying the estimate. The table
// reports per-dimension MSE and wrap-around counts with and without the
// rotation, for spiky vs already-flat inputs.
#include <cmath>
#include <cstdio>
#include <vector>

#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "bench_util.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "secagg/secure_aggregator.h"

namespace smm::bench {
namespace {

double RunOnce(const std::vector<std::vector<double>>& inputs,
               bool apply_rotation, uint64_t modulus, double gamma,
               int64_t* overflows, RandomGenerator& rng) {
  const size_t d = inputs[0].size();
  const double c = gamma * gamma;
  auto calib = accounting::CalibrateSmm(c, 1.0, 1, 3.0, 1e-5);
  if (!calib.ok()) return -1.0;
  mechanisms::SmmMechanism::Options o;
  o.dim = d;
  o.gamma = gamma;
  o.c = c;
  o.delta_inf = accounting::SmmMaxDeltaInf(calib->noise_parameter,
                                           calib->guarantee.best_alpha);
  o.lambda = calib->noise_parameter / static_cast<double>(inputs.size());
  o.modulus = modulus;
  o.rotation_seed = 5;
  o.apply_rotation = apply_rotation;
  auto mech = mechanisms::SmmMechanism::Create(o);
  if (!mech.ok()) return -1.0;
  secagg::IdealAggregator agg;
  auto estimate = mechanisms::RunDistributedSum(**mech, agg, inputs, rng);
  if (!estimate.ok()) return -1.0;
  *overflows = (*mech)->overflow_count();
  auto mse = mechanisms::MeanSquaredErrorPerDimension(*estimate, inputs);
  return mse.ok() ? *mse : -1.0;
}

void Run(Scale scale) {
  const size_t d = scale == Scale::kFull ? 65536 : 4096;
  const int n = 50;
  const double gamma = 64.0;
  const uint64_t m = 1 << 10;

  std::printf("Ablation: random rotation vs modular overflow\n");
  std::printf("n=%d d=%zu gamma=%g m=2^10 eps=3\n\n", n, d, gamma);

  RandomGenerator data_rng(2024);
  // Flat inputs: uniform sphere points (every coordinate ~ 1/sqrt(d)).
  const auto flat = data::SampleSphereDataset(n, d, 1.0, data_rng);
  // Spiky inputs: all participants share one heavy coordinate.
  std::vector<std::vector<double>> spiky(n, std::vector<double>(d, 0.0));
  for (auto& x : spiky) {
    x[3] = 0.9;
    x[100] = std::sqrt(1.0 - 0.9 * 0.9);  // Unit norm, two heavy coords.
  }

  struct Case {
    const char* name;
    const std::vector<std::vector<double>>* inputs;
    bool rotate;
  };
  const Case cases[] = {
      {"flat / rotation", &flat, true},
      {"flat / no rotation", &flat, false},
      {"spiky / rotation", &spiky, true},
      {"spiky / no rotation", &spiky, false},
  };
  std::printf("%-24s%14s%14s\n", "setting", "mse", "wraps");
  for (const Case& c : cases) {
    int64_t overflows = 0;
    RandomGenerator rng(11);
    const double mse = RunOnce(*c.inputs, c.rotate, m, gamma, &overflows,
                               rng);
    std::printf("%-24s%14s%14lld\n", c.name, FormatSci(mse).c_str(),
                static_cast<long long>(overflows));
  }
  std::printf(
      "\nReading: without the rotation, correlated spiky inputs wrap in the\n"
      "modular sum and the estimate collapses; the rotation flattens them.\n");
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
