// Thread-scaling benchmark — compatibility wrapper over the scenario-matrix
// runner (bench/runner.h). The sections this binary historically hard-coded
// (batched encode, batched rotation, streaming aggregation, masked secagg,
// framed sessions, the TCP server sweep, SIMD kernels, fused encode) now
// live in bench/scenarios.cc and are enumerated by bench_matrix; this
// wrapper replays the full matrix at the legacy axis values and re-emits
// the historical outputs so existing CI plumbing keeps working unchanged:
//
//   - the per-section `SPEEDUP_SUMMARY ...` lines CI greps,
//   - the per-kernel `SIMD_KERNEL ...` lines CI greps,
//   - the legacy `--json <path>` artifact shape
//     bench/check_bench_regression.py diffs against cached baselines,
//   - exit status 1 on any bit-identity violation.
//
// New matrix-only capability (extra axis values, --filter, --calibrate, the
// schema-versioned artifact) lives in bench_matrix.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "runner.h"

namespace smm::bench {
namespace {

const char* ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

/// The legacy thread-scaling table: one row group per (label) with the
/// threads axis widened into columns.
struct LegacySection {
  std::string name;
  size_t dim = 0;
  size_t participants = 0;
  std::vector<int> threads;
  std::vector<double> seconds;
  bool bit_identical = true;

  double speedup(size_t idx) const { return seconds[0] / seconds[idx]; }
};

/// Groups a thread-scaling scenario's runs by label, preserving label
/// first-seen order and the per-label threads order.
std::vector<LegacySection> GroupByLabel(const ScenarioReport& report) {
  std::vector<LegacySection> sections;
  std::map<std::string, size_t> index;
  for (const RunRecord& run : report.runs) {
    auto [it, inserted] = index.emplace(run.label, sections.size());
    if (inserted) {
      LegacySection section;
      section.name = run.label;
      section.dim = run.params.dim;
      section.participants = run.params.participants;
      sections.push_back(std::move(section));
    }
    LegacySection& section = sections[it->second];
    section.threads.push_back(run.params.threads);
    section.seconds.push_back(run.seconds);
    section.bit_identical = section.bit_identical && run.bit_identical;
  }
  return sections;
}

void PrintLegacySection(const LegacySection& section, double work_items) {
  std::printf("%s: dim=%zu, participants=%zu\n", section.name.c_str(),
              section.dim, section.participants);
  std::vector<std::string> thread_cells, throughput_cells, speedup_cells;
  for (size_t t = 0; t < section.seconds.size(); ++t) {
    thread_cells.push_back(std::to_string(section.threads[t]));
    throughput_cells.push_back(FormatSci(work_items / section.seconds[t]));
    speedup_cells.push_back(FormatSci(section.speedup(t)));
  }
  PrintRow("  threads", thread_cells, 14, 12);
  PrintRow("  items/sec", throughput_cells, 14, 12);
  PrintRow("  speedup", speedup_cells, 14, 12);
  std::printf("  thread-count invariance: %s\n",
              section.bit_identical ? "bit-identical" : "MISMATCH (bug!)");
  std::printf("SPEEDUP_SUMMARY section=%s dim=%zu participants=%zu "
              "speedup_8t=%.2fx\n",
              section.name.c_str(), section.dim, section.participants,
              section.speedup(section.seconds.size() - 1));
}

/// Work-item count per section, matching the historical throughput model.
double SectionWorkItems(const LegacySection& s) {
  if (s.name == "masked_secagg") {
    // Survivors * participants * dim mask draws dominate (2 dropouts).
    return static_cast<double>(s.participants - 2) *
           static_cast<double>(s.participants) * static_cast<double>(s.dim);
  }
  if (s.name == "session_masked") {
    return static_cast<double>(s.participants - 2) *
           static_cast<double>(s.participants) * static_cast<double>(s.dim);
  }
  return static_cast<double>(s.participants) * static_cast<double>(s.dim);
}

void WriteLegacyJson(const char* path, Scale scale,
                     const std::vector<LegacySection>& sections,
                     const MatrixReport& report) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("cannot open %s for the JSON report\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_scaling_threads\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n",
               scale == Scale::kFast ? "fast"
               : scale == Scale::kFull ? "full" : "default");
  std::fprintf(f, "  \"hardware_threads\": %d,\n",
               ThreadPool::HardwareThreads());
  std::fprintf(f, "  \"sections\": [\n");
  for (size_t s = 0; s < sections.size(); ++s) {
    const LegacySection& section = sections[s];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"dim\": %zu, \"participants\": "
                 "%zu,\n     \"threads\": [",
                 section.name.c_str(), section.dim, section.participants);
    for (size_t t = 0; t < section.threads.size(); ++t) {
      std::fprintf(f, "%s%d", t == 0 ? "" : ", ", section.threads[t]);
    }
    std::fprintf(f, "],\n     \"seconds\": [");
    for (size_t t = 0; t < section.seconds.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ", section.seconds[t]);
    }
    std::fprintf(f, "],\n     \"speedup\": [");
    for (size_t t = 0; t < section.seconds.size(); ++t) {
      std::fprintf(f, "%s%.3f", t == 0 ? "" : ", ", section.speedup(t));
    }
    std::fprintf(f, "],\n     \"bit_identical\": %s}%s\n",
                 section.bit_identical ? "true" : "false",
                 s + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"encode_fused\": [\n");
  const ScenarioReport* fused = report.Find("encode_fused");
  const size_t fused_count = fused != nullptr ? fused->runs.size() : 0;
  for (size_t s = 0; s < fused_count; ++s) {
    const RunRecord& r = fused->runs[s];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"dim\": %zu, \"participants\": "
                 "%zu,\n     \"unfused_seconds\": %.6e, \"fused_seconds\": "
                 "%.6e,\n     \"unfused_eps\": %.6e, \"fused_eps\": %.6e,\n"
                 "     \"fused_vs_unfused\": %.3f, \"bit_identical\": %s}%s\n",
                 r.label.c_str(), r.params.dim, r.params.participants,
                 r.Metric("unfused_seconds"), r.Metric("fused_seconds"),
                 r.Metric("unfused_eps"), r.Metric("fused_eps"),
                 r.Metric("fused_vs_unfused"),
                 r.bit_identical ? "true" : "false",
                 s + 1 < fused_count ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"server_sessions\": [\n");
  const ScenarioReport* server = report.Find("server_sessions");
  if (server != nullptr && !server->runs.empty()) {
    const RunRecord& first = server->runs.front();
    bool sums_exact = true;
    for (const RunRecord& r : server->runs) {
      sums_exact = sums_exact && r.bit_identical;
    }
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sessions\": %zu, "
                 "\"contributions_per_session\": %zu, \"dim\": %zu,\n"
                 "     \"threads\": [",
                 first.label.c_str(), first.params.participants,
                 static_cast<size_t>(
                     first.Metric("contributions_per_session")),
                 first.params.dim);
    for (size_t t = 0; t < server->runs.size(); ++t) {
      std::fprintf(f, "%s%d", t == 0 ? "" : ", ",
                   server->runs[t].params.threads);
    }
    std::fprintf(f, "],\n     \"seconds\": [");
    for (size_t t = 0; t < server->runs.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ",
                   server->runs[t].seconds);
    }
    std::fprintf(f, "],\n     \"sessions_per_sec\": [");
    for (size_t t = 0; t < server->runs.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ",
                   server->runs[t].Metric("sessions_per_sec"));
    }
    std::fprintf(f, "],\n     \"frames_per_sec\": [");
    for (size_t t = 0; t < server->runs.size(); ++t) {
      std::fprintf(f, "%s%.6e", t == 0 ? "" : ", ",
                   server->runs[t].Metric("frames_per_sec"));
    }
    std::fprintf(f, "],\n     \"sums_exact\": %s}\n",
                 sums_exact ? "true" : "false");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"simd_dispatch\": \"%s\",\n", smm::simd::Active().name);
  std::fprintf(f, "  \"simd_kernels\": [\n");
  const ScenarioReport* simd_report = report.Find("simd_kernels");
  const size_t kernel_count =
      simd_report != nullptr ? simd_report->runs.size() : 0;
  for (size_t s = 0; s < kernel_count; ++s) {
    const RunRecord& r = simd_report->runs[s];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"elements\": %zu,\n"
                 "     \"scalar_seconds\": %.6e, \"dispatch_seconds\": "
                 "%.6e,\n     \"scalar_eps\": %.6e, \"dispatch_eps\": %.6e,\n"
                 "     \"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 r.label.c_str(), r.params.dim, r.Metric("scalar_seconds"),
                 r.Metric("dispatch_seconds"), r.Metric("scalar_eps"),
                 r.Metric("dispatch_eps"), r.Metric("speedup"),
                 r.bit_identical ? "true" : "false",
                 s + 1 < kernel_count ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote JSON report to %s\n", path);
}

int Main(int argc, char** argv) {
  RegisterAllScenarios();
  const Scale scale = ParseScale(argc, argv);
  const char* json_path = ParseJsonPath(argc, argv);

  std::printf("Aggregation thread scaling (%s). Hardware threads: %d\n",
              ScaleName(scale), ThreadPool::HardwareThreads());
  std::printf(
      "Note: speedups > 1 require as many physical cores as threads.\n\n");

  RunOptions options;
  options.scale = scale;
  auto report = RunMatrix(/*filter=*/"", options);
  if (!report.ok()) {
    std::printf("benchmark failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }

  // Legacy per-section tables + SPEEDUP_SUMMARY lines, in the historical
  // section order.
  std::vector<LegacySection> sections;
  for (const char* name : {"encode", "rotation_batch", "streaming_ideal",
                           "masked_secagg", "session_masked"}) {
    const ScenarioReport* scenario = report->Find(name);
    if (scenario == nullptr) continue;
    for (LegacySection& section : GroupByLabel(*scenario)) {
      std::printf("\n");
      PrintLegacySection(section, SectionWorkItems(section));
      sections.push_back(std::move(section));
    }
  }

  const ScenarioReport* server = report->Find("server_sessions");
  if (server != nullptr && !server->runs.empty()) {
    const RunRecord& first = server->runs.front();
    const RunRecord& last = server->runs.back();
    std::printf("\nTCP server sessions (ideal rounds over loopback): "
                "sessions=%zu, contributions/session=%zu, dim=%zu\n",
                first.params.participants,
                static_cast<size_t>(
                    first.Metric("contributions_per_session")),
                first.params.dim);
    std::vector<std::string> loop_cells, session_cells, frame_cells;
    bool sums_exact = true;
    for (const RunRecord& r : server->runs) {
      loop_cells.push_back(std::to_string(r.params.threads));
      session_cells.push_back(FormatSci(r.Metric("sessions_per_sec")));
      frame_cells.push_back(FormatSci(r.Metric("frames_per_sec")));
      sums_exact = sums_exact && r.bit_identical;
    }
    PrintRow("  event loops", loop_cells, 14, 12);
    PrintRow("  sessions/sec", session_cells, 14, 12);
    PrintRow("  frames/sec", frame_cells, 14, 12);
    std::printf("  broadcast sums: %s\n",
                sums_exact ? "exact" : "MISMATCH (bug!)");
    std::printf("SPEEDUP_SUMMARY section=server_sessions sessions=%zu "
                "dim=%zu speedup_8loops=%.2fx\n",
                first.params.participants, first.params.dim,
                first.seconds / last.seconds);
  }

  const ScenarioReport* simd_report = report->Find("simd_kernels");
  if (simd_report != nullptr) {
    std::printf("\nSIMD kernels: single-thread scalar reference vs "
                "dispatched (%s)\n",
                smm::simd::Active().name);
    PrintRow("  kernel",
             {"scalar el/s", "dispatch el/s", "speedup", "identical"}, 22,
             14);
    for (const RunRecord& r : simd_report->runs) {
      PrintRow("  " + r.label,
               {FormatSci(r.Metric("scalar_eps")),
                FormatSci(r.Metric("dispatch_eps")),
                FormatSci(r.Metric("speedup")),
                r.bit_identical ? "yes" : "MISMATCH"},
               22, 14);
      std::printf("SIMD_KERNEL name=%s elements=%zu speedup=%.2fx "
                  "identical=%s\n",
                  r.label.c_str(), r.params.dim, r.Metric("speedup"),
                  r.bit_identical ? "yes" : "no");
    }
  }

  const ScenarioReport* fused = report->Find("encode_fused");
  if (fused != nullptr) {
    for (const RunRecord& r : fused->runs) {
      std::printf("\nFused encode pipeline (cpSGD, trials=8): dim=%zu, "
                  "participants=%zu, single thread, dispatch=%s\n",
                  r.params.dim, r.params.participants,
                  smm::simd::Active().name);
      PrintRow("  path",
               {"unfused el/s", "fused el/s", "ratio", "identical"}, 22, 14);
      PrintRow("  encode_fused",
               {FormatSci(r.Metric("unfused_eps")),
                FormatSci(r.Metric("fused_eps")),
                FormatSci(r.Metric("fused_vs_unfused")),
                r.bit_identical ? "yes" : "MISMATCH"},
               22, 14);
      std::printf("SPEEDUP_SUMMARY section=encode_fused dim=%zu "
                  "participants=%zu fused_vs_unfused=%.2fx\n",
                  r.params.dim, r.params.participants,
                  r.Metric("fused_vs_unfused"));
    }
  }

  if (json_path != nullptr) {
    WriteLegacyJson(json_path, scale, sections, *report);
  }
  if (!report->AllBitIdentical()) {
    std::printf("bit-identity violation (see MISMATCH above)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) { return smm::bench::Main(argc, argv); }
