#include "fl/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/fl_config.h"
#include "nn/mlp.h"

namespace smm::fl {
namespace {

data::SyntheticSplit SmallTask() {
  data::SyntheticImageOptions o;
  o.num_train = 400;
  o.num_test = 200;
  o.feature_dim = 16;
  o.num_classes = 4;
  o.noise_scale = 0.3;
  o.seed = 77;
  return MakeSyntheticImages(o).value();
}

nn::Mlp SmallModel() {
  nn::Mlp::Options o;
  o.input_dim = 16;
  o.hidden_dims = {16};
  o.num_classes = 4;
  o.init_seed = 5;
  return nn::Mlp::Create(o).value();
}

FlConfig FastConfig(MechanismKind mechanism) {
  FlConfig c;
  c.mechanism = mechanism;
  c.epsilon = 3.0;
  c.delta = 1e-5;
  c.expected_batch_size = 40;
  c.rounds = 60;
  c.gamma = 64.0;
  c.modulus = 1 << 16;
  c.learning_rate = 0.02;
  c.eval_every = 30;
  c.seed = 9;
  return c;
}

TEST(FederatedTrainerTest, CreateValidates) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kNonPrivate);
  c.rounds = 0;
  EXPECT_FALSE(
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c).ok());
  c = FastConfig(MechanismKind::kNonPrivate);
  c.expected_batch_size = 100000;
  EXPECT_FALSE(
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c).ok());
}

TEST(FederatedTrainerTest, CreateRejectsDegenerateConfigs) {
  // Every rejection below used to proceed into division-by-zero, `% 0`, or
  // empty-round undefined behavior; Create must refuse up front.
  auto task = SmallTask();
  const auto rejected = [&](void (*mutate)(FlConfig&)) {
    FlConfig c = FastConfig(MechanismKind::kSmm);
    mutate(c);
    auto trainer =
        FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
    if (trainer.ok()) return false;
    return trainer.status().code() == StatusCode::kInvalidArgument;
  };
  EXPECT_TRUE(rejected([](FlConfig& c) { c.rounds = 0; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.rounds = -3; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.modulus = 0; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.modulus = 1; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.expected_batch_size = 0; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.expected_batch_size = -1; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.eval_every = -1; }));
  EXPECT_TRUE(rejected([](FlConfig& c) { c.num_threads = -1; }));

  // The unmutated config must pass, so the rejections above are meaningful.
  FlConfig good = FastConfig(MechanismKind::kSmm);
  EXPECT_TRUE(
      FederatedTrainer::Create(SmallModel(), task.train, task.test, good)
          .ok());
}

TEST(FederatedTrainerTest, NonPrivateLearnsTheTask) {
  auto task = SmallTask();
  auto trainer = FederatedTrainer::Create(
      SmallModel(), task.train, task.test,
      FastConfig(MechanismKind::kNonPrivate));
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.8);  // Chance level is 0.25.
  EXPECT_FALSE(result->history.empty());
}

TEST(FederatedTrainerTest, SmmTrainsCloseToNonPrivateAtModerateEpsilon) {
  auto task = SmallTask();
  auto trainer = FederatedTrainer::Create(SmallModel(), task.train, task.test,
                                          FastConfig(MechanismKind::kSmm));
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.5);
  EXPECT_LE(result->guarantee.epsilon, 3.0);
  EXPECT_GT(result->noise_parameter, 0.0);
  EXPECT_GT(result->delta_inf, 0.0);
}

TEST(FederatedTrainerTest, CentralDpSgdTrains) {
  auto task = SmallTask();
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test,
                               FastConfig(MechanismKind::kCentralDpSgd));
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.5);
  EXPECT_LE(result->guarantee.epsilon, 3.0);
}

TEST(FederatedTrainerTest, GuaranteeRespectsEpsilonBudget) {
  auto task = SmallTask();
  for (double eps : {1.0, 5.0}) {
    FlConfig c = FastConfig(MechanismKind::kSmm);
    c.epsilon = eps;
    c.rounds = 20;
    auto trainer =
        FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
    ASSERT_TRUE(trainer.ok());
    auto result = (*trainer)->Train();
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->guarantee.epsilon, eps);
  }
}

TEST(FederatedTrainerTest, MoreEpsilonMeansLessNoise) {
  auto task = SmallTask();
  double prev = 1e300;
  for (double eps : {1.0, 3.0, 5.0}) {
    FlConfig c = FastConfig(MechanismKind::kSmm);
    c.epsilon = eps;
    c.rounds = 10;
    auto trainer =
        FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
    ASSERT_TRUE(trainer.ok());
    auto result = (*trainer)->Train();
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->noise_parameter, prev);
    prev = result->noise_parameter;
  }
}

TEST(FederatedTrainerTest, TinyModulusCausesOverflows) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kSmm);
  c.modulus = 4;  // 2 bits per coordinate: guaranteed wraps.
  c.epsilon = 1.0;
  c.rounds = 10;
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_overflows, 0);
}

TEST(FederatedTrainerTest, DgmTrains) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kDgm);
  c.rounds = 30;
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.3);
}

TEST(FederatedTrainerTest, DdgAndSkellamCalibrateAndRun) {
  auto task = SmallTask();
  for (MechanismKind kind :
       {MechanismKind::kDdg, MechanismKind::kAgarwalSkellam}) {
    FlConfig c = FastConfig(kind);
    c.rounds = 10;
    auto trainer =
        FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
    ASSERT_TRUE(trainer.ok()) << MechanismKindName(kind);
    auto result = (*trainer)->Train();
    ASSERT_TRUE(result.ok()) << MechanismKindName(kind);
    EXPECT_GT(result->noise_parameter, 0.0);
  }
}

TEST(FederatedTrainerTest, CpSgdCalibratesToHugeNoise) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kCpSgd);
  c.rounds = 5;
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok());
  // The binomial trial count must dwarf what any other mechanism needs —
  // the cpSGD pathology the paper reports.
  EXPECT_GT(result->noise_parameter, 1e4);
}

TEST(FederatedTrainerTest, TrainingIsThreadCountInvariant) {
  // The parallel round pipeline (gradients, batched encode, sharded
  // aggregation) must reproduce the single-threaded run bit for bit: same
  // history, same final model parameters.
  auto task = SmallTask();
  FlConfig base = FastConfig(MechanismKind::kSmm);
  base.rounds = 15;
  base.eval_every = 5;

  base.num_threads = 1;
  auto reference =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, base);
  ASSERT_TRUE(reference.ok());
  auto reference_result = (*reference)->Train();
  ASSERT_TRUE(reference_result.ok());

  for (int threads : {2, 8}) {
    FlConfig c = base;
    c.num_threads = threads;
    auto trainer =
        FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
    ASSERT_TRUE(trainer.ok()) << threads << " threads";
    auto result = (*trainer)->Train();
    ASSERT_TRUE(result.ok()) << threads << " threads";
    EXPECT_EQ(result->total_overflows, reference_result->total_overflows);
    ASSERT_EQ(result->history.size(), reference_result->history.size());
    for (size_t i = 0; i < result->history.size(); ++i) {
      EXPECT_EQ(result->history[i].train_loss,
                reference_result->history[i].train_loss)
          << threads << " threads, record " << i;
      EXPECT_EQ(result->history[i].test_accuracy,
                reference_result->history[i].test_accuracy);
    }
    const auto& ref_params = (*reference)->model().parameters();
    const auto& params = (*trainer)->model().parameters();
    ASSERT_EQ(params.size(), ref_params.size());
    for (size_t j = 0; j < params.size(); ++j) {
      EXPECT_EQ(params[j], ref_params[j])
          << threads << " threads, parameter " << j;
    }
  }
}

TEST(FederatedTrainerTest, TrainingIsShardCountInvariant) {
  // The dimension-sharded aggregation path (config.shard_count > 1: K
  // per-shard streams stitched by MergePartialSums) must reproduce the
  // unsharded run bit for bit, at one and several threads.
  auto task = SmallTask();
  FlConfig base = FastConfig(MechanismKind::kSmm);
  base.rounds = 10;
  base.eval_every = 5;
  base.shard_count = 1;
  base.num_threads = 1;
  auto reference =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, base);
  ASSERT_TRUE(reference.ok());
  auto reference_result = (*reference)->Train();
  ASSERT_TRUE(reference_result.ok());

  for (int shards : {2, 3}) {
    for (int threads : {1, 2}) {
      FlConfig c = base;
      c.shard_count = shards;
      c.num_threads = threads;
      auto trainer =
          FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
      ASSERT_TRUE(trainer.ok()) << shards << " shards";
      auto result = (*trainer)->Train();
      ASSERT_TRUE(result.ok()) << shards << " shards";
      ASSERT_EQ(result->history.size(), reference_result->history.size());
      for (size_t i = 0; i < result->history.size(); ++i) {
        EXPECT_EQ(result->history[i].train_loss,
                  reference_result->history[i].train_loss)
            << shards << " shards, " << threads << " threads, record " << i;
      }
      const auto& ref_params = (*reference)->model().parameters();
      const auto& params = (*trainer)->model().parameters();
      ASSERT_EQ(params.size(), ref_params.size());
      for (size_t j = 0; j < params.size(); ++j) {
        EXPECT_EQ(params[j], ref_params[j])
            << shards << " shards, parameter " << j;
      }
    }
  }
  // shard_count is validated against the padded model dimension.
  FlConfig bad = base;
  bad.shard_count = -1;
  EXPECT_FALSE(
      FederatedTrainer::Create(SmallModel(), task.train, task.test, bad).ok());
  bad.shard_count = 1 << 20;
  EXPECT_FALSE(
      FederatedTrainer::Create(SmallModel(), task.train, task.test, bad).ok());
}

TEST(FederatedTrainerTest, FailedRoundsAreSkippedWithinTheFailureBudget) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kNonPrivate);
  c.max_round_failures = 5;
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
  ASSERT_TRUE(trainer.ok());
  // Three rounds lose their aggregation (deadline / transport loss shape).
  (*trainer)->SetRoundFaultInjectorForTest([](int round) {
    if (round == 4 || round == 17 || round == 40) {
      return UnavailableError("injected round loss");
    }
    return OkStatus();
  });
  auto result = (*trainer)->Train();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->failed_rounds, 3);
  int failed_records = 0;
  for (const auto& record : result->history) {
    if (!record.failed) continue;
    ++failed_records;
    EXPECT_TRUE(record.round == 4 || record.round == 17 || record.round == 40)
        << record.round;
    EXPECT_EQ(record.test_accuracy, 0.0);  // No metrics for a skipped round.
  }
  EXPECT_EQ(failed_records, 3);
  // 57 of 60 rounds still ran: the model still learns the task.
  EXPECT_GT(result->final_accuracy, 0.8);
}

TEST(FederatedTrainerTest, RoundFailurePastTheBudgetFailsTheRun) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kNonPrivate);
  c.rounds = 10;
  c.max_round_failures = 2;
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
  ASSERT_TRUE(trainer.ok());
  (*trainer)->SetRoundFaultInjectorForTest([](int round) {
    return round >= 3 ? UnavailableError("injected round loss") : OkStatus();
  });
  auto result = (*trainer)->Train();
  ASSERT_FALSE(result.ok());  // Rounds 3 and 4 skipped; round 5 exceeds.
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(FederatedTrainerTest, DefaultBudgetKeepsFailFastBehavior) {
  auto task = SmallTask();
  FlConfig c = FastConfig(MechanismKind::kNonPrivate);
  c.rounds = 10;
  ASSERT_EQ(c.max_round_failures, 0);
  auto trainer =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
  ASSERT_TRUE(trainer.ok());
  (*trainer)->SetRoundFaultInjectorForTest([](int round) {
    return round == 2 ? DataLossError("injected round loss") : OkStatus();
  });
  auto result = (*trainer)->Train();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(FederatedTrainerTest, MechanismNamesAreStable) {
  EXPECT_STREQ(MechanismKindName(MechanismKind::kSmm), "SMM");
  EXPECT_STREQ(MechanismKindName(MechanismKind::kDdg), "DDG");
  EXPECT_STREQ(MechanismKindName(MechanismKind::kAgarwalSkellam), "Skellam");
  EXPECT_STREQ(MechanismKindName(MechanismKind::kCpSgd), "cpSGD");
  EXPECT_STREQ(MechanismKindName(MechanismKind::kCentralDpSgd), "DPSGD");
}

}  // namespace
}  // namespace smm::fl
