// One masked secure-aggregation round split across 4 dimension-shard
// workers over real loopback TCP. The server opens a sharded round — four
// worker sessions, each owning a contiguous quarter of the coordinate
// range on its own port — and every participant fans its masked sub-frames
// out with a ShardedFanoutClient. One participant drops out mid-round;
// each shard worker runs its own local Shamir recovery over its narrow
// range, and the per-range sums tree-reduce back into a full-dimension sum
// that is bit-identical to the unsharded round.
//
// The point of sharding is the memory (and horizontal-scaling) profile:
// each worker holds 8 * ceil(d / K) payload bytes instead of 8 * d, so the
// example prints the per-shard resident footprint against the unsharded
// baseline.
//
// Build & run:  ./build/example_sharded_aggregation
#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "secagg/secure_aggregator.h"
#include "secagg/shard_plan.h"
#include "secagg/transport.h"

namespace {

constexpr size_t kDim = 4096;
constexpr size_t kShards = 4;
constexpr int kParticipants = 6;
constexpr int kSurvivors = 5;  // Participant 5 drops mid-round.
constexpr uint64_t kModulus = 1ULL << 32;

}  // namespace

int main() {
  if (!smm::net::NetSupported()) {
    std::printf("this example needs the Linux socket/epoll backend\n");
    return 0;
  }

  // The shared masked-protocol setup: server and participants hold the
  // same session (standing in for the pairwise key agreement), and each
  // side derives the identical per-shard instances from it.
  smm::secagg::MaskedAggregator::Options options;
  options.num_participants = kParticipants;
  options.threshold = 4;
  options.session_seed = 4242;
  auto aggregator = smm::secagg::MaskedAggregator::Create(options);
  if (!aggregator.ok()) {
    std::printf("setup failed: %s\n", aggregator.status().ToString().c_str());
    return 1;
  }

  auto server = smm::net::AggregationServer::Start();
  if (!server.ok()) {
    std::printf("server start failed: %s\n",
                server.status().ToString().c_str());
    return 1;
  }

  smm::net::AggregationServer::ShardedRoundOptions round_options;
  round_options.dim = kDim;
  round_options.modulus = kModulus;
  round_options.shard_count = kShards;
  round_options.expected_contributions = kSurvivors;
  auto round = (*server)->OpenShardedRound(**aggregator, round_options);
  if (!round.ok()) {
    std::printf("open round failed: %s\n", round.status().ToString().c_str());
    return 1;
  }

  std::printf("sharded round: %zu workers over dim %zu\n", kShards, kDim);
  std::vector<uint16_t> ports;
  for (size_t s = 0; s < round->shards.size(); ++s) {
    const smm::secagg::ShardSpec spec = round->plan.Spec(s);
    std::printf(
        "  shard %zu: range [%u, %u) on 127.0.0.1:%u, resident %zu bytes "
        "(unsharded: %zu)\n",
        s, spec.dim_offset, spec.dim_offset + spec.shard_dim,
        round->shards[s].port, size_t{spec.shard_dim} * 8, kDim * 8);
    ports.push_back(round->shards[s].port);
  }

  // The participants' per-shard protocol instances, derived exactly as the
  // server derived its workers' (session_seed + shard index).
  std::vector<std::unique_ptr<smm::secagg::SecureAggregator>> shard_protocols;
  for (size_t s = 0; s < kShards; ++s) {
    auto derived = (*aggregator)->CreateShardAggregator(s, kShards);
    if (!derived.ok()) return 1;
    shard_protocols.push_back(std::move(*derived));
  }

  smm::RandomGenerator rng(9);
  std::vector<std::vector<uint64_t>> inputs(kParticipants);
  for (auto& v : inputs) {
    v.resize(kDim);
    for (auto& x : v) x = rng.UniformUint64(1000);
  }

  // The five survivors fan out: each slices its input per the round's
  // plan, masks each slice with that shard's protocol instance, and sends
  // sub-frame s to worker s. Participant 5 never shows up; every worker
  // recovers its masks locally over its own range.
  std::vector<smm::net::ShardedFanoutClient> clients;
  for (int p = 0; p < kSurvivors; ++p) {
    auto client = smm::net::ShardedFanoutClient::Connect(ports);
    if (!client.ok()) {
      std::printf("participant %d connect failed: %s\n", p,
                  client.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<uint8_t>> frames;
    for (size_t s = 0; s < kShards; ++s) {
      auto slice = round->plan.Slice(inputs[static_cast<size_t>(p)], s);
      if (!slice.ok()) return 1;
      smm::secagg::ContributionMsg msg;
      msg.participant_id = p;
      msg.modulus = kModulus;
      auto masked = shard_protocols[s]->PrepareContribution(p, *slice, kModulus);
      if (!masked.ok()) return 1;
      msg.payload = std::move(*masked);
      msg.shard = round->plan.Spec(s);
      auto frame = smm::secagg::EncodeFrame(msg);
      if (!frame.ok()) return 1;
      frames.push_back(std::move(*frame));
    }
    if (!client->SendShardFrames(frames).ok()) return 1;
    if (!client->FinishSending().ok()) return 1;
    clients.push_back(std::move(*client));
  }

  // Each participant merges the four per-range broadcasts client-side; the
  // server's own merge must agree exactly.
  std::vector<uint64_t> exact(kDim, 0);
  for (int p = 0; p < kSurvivors; ++p) {
    for (size_t j = 0; j < kDim; ++j) {
      exact[j] = (exact[j] + inputs[static_cast<size_t>(p)][j]) % kModulus;
    }
  }
  for (auto& client : clients) {
    auto merged = client.ReadMergedSum(round->plan);
    if (!merged.ok() || merged->sum != exact) {
      std::printf("client-side merge mismatch\n");
      return 1;
    }
  }
  auto server_sum = (*server)->WaitForShardedSum(*round);
  if (!server_sum.ok() || server_sum->sum != exact) {
    std::printf("server-side merge mismatch\n");
    return 1;
  }
  std::printf(
      "\n%d of %d participants contributed; every worker recovered the "
      "dropout's masks over its own range\n",
      kSurvivors, kParticipants);
  std::printf(
      "merged sum across %zu workers == exact modular sum on all %zu "
      "coordinates (first 4: %llu %llu %llu %llu)\n",
      kShards, kDim, (unsigned long long)server_sum->sum[0],
      (unsigned long long)server_sum->sum[1],
      (unsigned long long)server_sum->sum[2],
      (unsigned long long)server_sum->sum[3]);

  const smm::net::ServerStats stats = (*server)->Stats();
  std::printf(
      "server stats: %llu worker sessions completed, %llu sub-frames "
      "delivered, %llu rejected\n",
      (unsigned long long)stats.sessions_completed,
      (unsigned long long)stats.frames_delivered,
      (unsigned long long)stats.frames_rejected);
  return 0;
}
