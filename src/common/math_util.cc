#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace smm {

double LogAdd(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double LogSumExp(const std::vector<double>& values) {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : values) m = std::max(m, v);
  if (m == -std::numeric_limits<double>::infinity()) return m;
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - m);
  return m + std::log(sum);
}

double LogFactorial(int64_t n) {
  assert(n >= 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int64_t n, int64_t k) {
  assert(k >= 0 && k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double LogBesselI(int64_t v, double x) {
  assert(v >= 0);
  assert(x >= 0.0);
  if (x == 0.0) {
    return v == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  const double log_half_x = std::log(x / 2.0);
  // Terms t_h = (2h+v) log(x/2) - log h! - log (h+v)! rise to a peak near
  // h ~ x/2 and then decay super-exponentially; sum until 60 nats below
  // the running peak.
  double max_term = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  terms.reserve(64);
  for (int64_t h = 0;; ++h) {
    const double t = (2.0 * static_cast<double>(h) + static_cast<double>(v)) *
                         log_half_x -
                     LogFactorial(h) - LogFactorial(h + v);
    terms.push_back(t);
    max_term = std::max(max_term, t);
    if (t < max_term - 60.0 && h > static_cast<int64_t>(x / 2.0) + 2) break;
    if (h > 100000) break;  // Defensive cap; unreachable for tested ranges.
  }
  return LogSumExp(terms);
}

double PoissonLogPmf(int64_t k, double lambda) {
  assert(lambda > 0.0);
  assert(k >= 0);
  return -lambda + static_cast<double>(k) * std::log(lambda) -
         LogFactorial(k);
}

double SkellamLogPmf(int64_t k, double lambda) {
  assert(lambda > 0.0);
  return -2.0 * lambda + LogBesselI(std::llabs(k), 2.0 * lambda);
}

double DiscreteGaussianLogPmf(int64_t k, double sigma) {
  assert(sigma > 0.0);
  // Normalizer Z = sum_{j in Z} exp(-j^2 / (2 sigma^2)). The summand decays
  // past |j| > ~10 sigma; sum symmetrically until negligible.
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
  double z = 1.0;  // j = 0 term.
  for (int64_t j = 1;; ++j) {
    const double t = std::exp(-static_cast<double>(j) * j * inv_two_sigma2);
    z += 2.0 * t;
    if (t < 1e-17 * z) break;
  }
  return -static_cast<double>(k) * k * inv_two_sigma2 - std::log(z);
}

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace smm
