#ifndef SMM_ACCOUNTING_CALIBRATION_H_
#define SMM_ACCOUNTING_CALIBRATION_H_

#include <functional>

#include "accounting/rdp_accountant.h"
#include "common/status.h"

namespace smm::accounting {

/// Result of calibrating a noise parameter against a target (epsilon, delta).
struct CalibrationResult {
  /// The calibrated parameter (meaning depends on the mechanism: the
  /// aggregate Skellam parameter n*lambda, a discrete/continuous Gaussian
  /// sigma, ...).
  double noise_parameter = 0.0;
  /// The guarantee actually achieved at that parameter (epsilon <= target).
  DpGuarantee guarantee;
};

/// Produces the RDP curve of a mechanism at a given noise parameter value.
using CurveFactory = std::function<RdpCurve(double parameter)>;

/// Finds the smallest noise parameter in [param_lo, param_hi] whose
/// mechanism, run for `steps` Poisson-subsampled (rate q) invocations,
/// satisfies (target_epsilon, delta)-DP. Assumes epsilon is non-increasing
/// in the parameter (true for all curves in mechanism_rdp.h, where the
/// parameter is the noise scale). Binary search with 60 iterations.
StatusOr<CalibrationResult> CalibrateRdpNoise(
    const CurveFactory& factory, double q, int steps, double target_epsilon,
    double delta, double param_lo, double param_hi,
    const AccountantOptions& options = {});

/// Convenience wrappers for the experiment harnesses. Each returns the
/// calibrated noise scale for one mechanism of Section 6.

/// SMM (Corollary 1 / Theorem 6): returns the aggregate parameter n*lambda
/// for mixed-sensitivity bound c. Divide by the (expected) participant count
/// to get the per-participant lambda. The Linf feasibility bound is computed
/// afterwards from Eq. (3) at the achieved alpha via SmmMaxDeltaInf.
StatusOr<CalibrationResult> CalibrateSmm(double c, double q, int steps,
                                         double target_epsilon, double delta);

/// Continuous Gaussian / DPSGD: returns sigma for L2 sensitivity
/// sensitivity_l2.
StatusOr<CalibrationResult> CalibrateGaussian(double sensitivity_l2, double q,
                                              int steps,
                                              double target_epsilon,
                                              double delta);

/// Distributed discrete Gaussian (Kairouz et al.): returns the per-client
/// sigma for n clients and the (conditionally rounded) sensitivities.
StatusOr<CalibrationResult> CalibrateDdg(int n, double l2_squared, double l1,
                                         int d, double q, int steps,
                                         double target_epsilon, double delta);

/// Skellam mechanism (Agarwal et al. 2021): returns the aggregate mu.
StatusOr<CalibrationResult> CalibrateSkellamAgarwal(double l2_squared,
                                                    double l1, double q,
                                                    int steps,
                                                    double target_epsilon,
                                                    double delta);

/// DGM (Appendix B): returns the per-client sigma.
StatusOr<CalibrationResult> CalibrateDgm(int n, double c, double l1, int d,
                                         double delta_inf, double q,
                                         int steps, double target_epsilon,
                                         double delta);

}  // namespace smm::accounting

#endif  // SMM_ACCOUNTING_CALIBRATION_H_
