#include "accounting/binomial_accountant.h"

#include <algorithm>
#include <cmath>

namespace smm::accounting {

StatusOr<double> BinomialMechanismEpsilon(const BinomialMechanismParams& p,
                                          double delta) {
  if (!(delta > 0.0 && delta < 1.0)) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  if (!(p.total_trials > 0.0)) {
    return InvalidArgumentError("total_trials must be > 0");
  }
  const double sigma2 = p.total_trials / 4.0;  // Np(1-p) with p = 1/2.
  const double d = static_cast<double>(std::max(1, p.dimension));
  const double precondition =
      std::max(23.0 * std::log(10.0 * d / delta), 2.0 * p.linf);
  if (sigma2 < precondition) {
    return FailedPreconditionError(
        "binomial variance below cpSGD Theorem 1 precondition");
  }
  const double sigma = std::sqrt(sigma2);
  const double log_125 = std::log(1.25 / delta);
  const double log_10 = std::log(10.0 / delta);
  const double log_20d = std::log(20.0 * d / delta);
  // Main Gaussian-approximation term.
  const double main_term = p.l2 * std::sqrt(2.0 * log_125) / sigma;
  // L1/L2 correction (cpSGD's b_{p,delta}, c_{p,delta} structure).
  const double corr_l1 =
      (p.l1 + p.l2 * std::sqrt(log_10)) * 2.0 / (sigma2 * (1.0 - delta / 10.0));
  // Linf corrections.
  const double corr_linf = (2.0 / 3.0) * p.linf * log_125 / sigma2 +
                           p.linf * std::sqrt(2.0 * log_10) * log_20d / sigma2;
  return main_term + corr_l1 + corr_linf;
}

double ComposeLinear(double eps_step, int steps) {
  return eps_step * static_cast<double>(steps);
}

double ComposeAdvanced(double eps_step, int steps, double delta_slack) {
  const double t = static_cast<double>(steps);
  return eps_step * std::sqrt(2.0 * t * std::log(1.0 / delta_slack)) +
         t * eps_step * (std::exp(eps_step) - 1.0);
}

StatusOr<double> CpSgdEpsilon(const BinomialMechanismParams& per_step,
                              int steps, double delta) {
  if (steps < 1) return InvalidArgumentError("steps must be >= 1");
  // Half the delta budget goes to the per-step guarantees, half to the
  // advanced-composition slack.
  const double delta_step = delta / (2.0 * static_cast<double>(steps));
  SMM_ASSIGN_OR_RETURN(const double eps_step,
                       BinomialMechanismEpsilon(per_step, delta_step));
  const double linear = ComposeLinear(eps_step, steps);
  const double advanced = ComposeAdvanced(eps_step, steps, delta / 2.0);
  return std::min(linear, advanced);
}

StatusOr<double> CalibrateBinomialTrials(BinomialMechanismParams per_step,
                                         int steps, double target_epsilon,
                                         double delta,
                                         double max_total_trials) {
  if (!(target_epsilon > 0.0)) {
    return InvalidArgumentError("target_epsilon must be > 0");
  }
  auto eps_at = [&](double trials) -> StatusOr<double> {
    per_step.total_trials = trials;
    return CpSgdEpsilon(per_step, steps, delta);
  };
  // Find an upper bracket by doubling.
  double hi = 1024.0;
  while (true) {
    auto e = eps_at(hi);
    if (e.ok() && *e <= target_epsilon) break;
    hi *= 2.0;
    if (hi > max_total_trials) {
      return FailedPreconditionError(
          "cannot reach target epsilon within max_total_trials");
    }
  }
  double lo = hi / 2.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    auto e = eps_at(mid);
    if (e.ok() && *e <= target_epsilon) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace smm::accounting
