#ifndef SMM_DATA_SYNTHETIC_H_
#define SMM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"

namespace smm::data {

/// Synthetic stand-ins for the paper's image benchmarks (no dataset files
/// are available offline; see DESIGN.md section 4). Each class is a random
/// unit-norm prototype; examples are the prototype plus isotropic Gaussian
/// noise. The noise-to-separation ratio controls the achievable accuracy,
/// tuned so that the non-private model reaches roughly the paper's MNIST
/// (~98%) and Fashion-MNIST (~89%) ceilings. What the FL experiments
/// measure — relative accuracy degradation under integer DP noise — only
/// needs comparable gradient geometry, which this preserves.
struct SyntheticImageOptions {
  int num_train = 4000;
  int num_test = 1000;
  int feature_dim = 64;
  int num_classes = 10;
  /// Per-coordinate standard deviation of the intra-class noise. Random
  /// unit prototypes are ~sqrt(2) apart, so the midpoint margin is ~0.707:
  /// 0.22 is well-separated (MNIST-like, ~98% ceiling) and 0.35 overlapping
  /// (Fashion-like, high-80s ceiling).
  double noise_scale = 0.22;
  /// Fraction of labels flipped to a uniform class (label noise).
  double label_noise = 0.0;
  uint64_t seed = 42;
};

/// Train/test split of one synthetic task.
struct SyntheticSplit {
  Dataset train;
  Dataset test;
};

/// Generates the prototype-cluster task described above.
StatusOr<SyntheticSplit> MakeSyntheticImages(
    const SyntheticImageOptions& options);

/// Preset matching the MNIST role in the experiments.
SyntheticImageOptions MnistLikeOptions();

/// Preset matching the Fashion-MNIST role (lower accuracy ceiling).
SyntheticImageOptions FashionLikeOptions();

/// The distributed-sum workload of Section 6.1: n points sampled uniformly
/// from the L2 sphere of the given radius in R^d.
std::vector<std::vector<double>> SampleSphereDataset(int n, size_t d,
                                                     double radius,
                                                     RandomGenerator& rng);

}  // namespace smm::data

#endif  // SMM_DATA_SYNTHETIC_H_
