#include "transform/walsh_hadamard.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/simd.h"

namespace smm::transform {

namespace {

/// Block size (in doubles) for the cache-resident butterfly stages:
/// 2048 doubles = 16 KiB, comfortably inside L1d on mainstream cores, so the
/// first log2(kBlockElems) stages of a large transform touch main memory
/// once instead of once per stage.
constexpr size_t kBlockElems = 2048;

/// Fused radix-4 first pass (the h = 1 and h = 2 butterfly stages) over
/// v[0..n): one sweep over memory instead of two. The arithmetic is the same
/// association as the two radix-2 stages, so results are bit-identical.
/// Requires n to be a multiple of 4.
void Radix4Pass(double* v, size_t n) {
  for (size_t i = 0; i < n; i += 4) {
    const double a = v[i];
    const double b = v[i + 1];
    const double c = v[i + 2];
    const double e = v[i + 3];
    const double ab = a + b;
    const double amb = a - b;
    const double ce = c + e;
    const double cme = c - e;
    v[i] = ab + ce;
    v[i + 1] = amb + cme;
    v[i + 2] = ab - ce;
    v[i + 3] = amb - cme;
  }
}

/// Unnormalized transform of a cache-resident span (d <= kBlockElems,
/// d a power of two). The radix-2 stages run on the dispatched butterfly
/// kernel — add/sub are IEEE-exact, so scalar and AVX2 stages are
/// bit-identical.
void TransformBlock(const simd::Kernels& kernels, double* v, size_t d) {
  if (d < 4) {
    if (d == 2) {
      const double x = v[0];
      const double y = v[1];
      v[0] = x + y;
      v[1] = x - y;
    }
    return;  // d == 1: identity.
  }
  Radix4Pass(v, d);
  for (size_t h = 4; h < d; h <<= 1) kernels.wht_butterfly_pass(v, d, h);
}

}  // namespace

void FastWalshHadamardKernelUnnormalized(double* v, size_t d) {
  const simd::Kernels& kernels = simd::Active();
  if (d <= kBlockElems) {
    TransformBlock(kernels, v, d);
  } else {
    // Butterflies with span h < kBlockElems stay inside one aligned block,
    // so running all of them block-by-block (phase 1) performs exactly the
    // same arithmetic as the stage-by-stage order while each block is
    // cache-resident. The cross-block stages get the same treatment one
    // level up (phase 2): butterflies with h < kSpanElems stay inside one
    // aligned span, so running every such stage span-by-span keeps the
    // span L2-resident and touches main memory once for the whole group of
    // stages instead of once per stage. Butterflies on disjoint ranges are
    // independent, so the reordering performs the identical FP operations.
    // Only the top log2(d / kSpanElems) stages (phase 3) stream the full
    // vector. kSpanElems = 2^18 doubles = 2 MiB, sized to mainstream L2.
    constexpr size_t kSpanElems = size_t{1} << 18;
    for (size_t i = 0; i < d; i += kBlockElems) {
      TransformBlock(kernels, v + i, kBlockElems);
    }
    const size_t span = d < kSpanElems ? d : kSpanElems;
    for (size_t base = 0; base < d; base += span) {
      for (size_t h = kBlockElems; h < span; h <<= 1) {
        kernels.wht_butterfly_pass(v + base, span, h);
      }
    }
    for (size_t h = span; h < d; h <<= 1) {
      kernels.wht_butterfly_pass(v, d, h);
    }
  }
}

void FastWalshHadamardKernel(double* v, size_t d) {
  FastWalshHadamardKernelUnnormalized(v, d);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  simd::Active().scale_inplace(v, d, scale);
}

Status FastWalshHadamard(std::vector<double>& v) {
  const size_t d = v.size();
  if (d == 0 || !IsPowerOfTwo(d)) {
    return InvalidArgumentError(
        "Walsh-Hadamard transform requires a power-of-two length");
  }
  FastWalshHadamardKernel(v.data(), d);
  return OkStatus();
}

Status FastWalshHadamardBatch(double* data, size_t batch, size_t d,
                              ThreadPool* pool) {
  if (d == 0 || !IsPowerOfTwo(d)) {
    return InvalidArgumentError(
        "Walsh-Hadamard transform requires a power-of-two length");
  }
  if (batch == 0) return OkStatus();
  if (data == nullptr) return InvalidArgumentError("null batch data");
  if (pool == nullptr || pool->num_threads() == 1 || batch == 1) {
    for (size_t r = 0; r < batch; ++r) {
      FastWalshHadamardKernel(data + r * d, d);
    }
    return OkStatus();
  }
  // Rows are independent, so any sharding of the batch dimension yields
  // bit-identical output; static chunking keeps the schedule deterministic.
  pool->ParallelFor(batch, [&](int /*chunk*/, size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      FastWalshHadamardKernel(data + r * d, d);
    }
  });
  return OkStatus();
}

std::vector<double> PadToPowerOfTwo(const std::vector<double>& x) {
  const size_t d = x.size() == 0 ? 1 : NextPowerOfTwo(x.size());
  std::vector<double> out(d, 0.0);
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  return out;
}

}  // namespace smm::transform
