#ifndef SMM_MECHANISMS_BASELINE_MECHANISMS_H_
#define SMM_MECHANISMS_BASELINE_MECHANISMS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/rotation_codec.h"
#include "sampling/noise_sampler.h"

namespace smm::mechanisms {

/// The competitor mechanisms of Section 5, all behind the same
/// DistributedSumMechanism interface as SMM so the experiment harnesses can
/// swap them freely.

/// Distributed Discrete Gaussian (Kairouz et al. 2021): rotate, scale, L2
/// clip, *conditional* stochastic rounding against the Eq. (6) norm bound,
/// then per-coordinate discrete Gaussian noise NZ(0, sigma^2).
class DdgMechanism final : public RotatedModularMechanism {
 public:
  struct Options {
    size_t dim = 0;
    double gamma = 1.0;
    double l2_bound = 1.0;  ///< Delta_2 of the unscaled input.
    double beta = 0.60653065971263342;  ///< exp(-0.5), as recommended.
    double sigma = 1.0;     ///< Per-participant discrete Gaussian sigma.
    uint64_t modulus = 256;
    uint64_t rotation_seed = 0;
    bool apply_rotation = true;
    int max_rounding_retries = 1000;
    sampling::SamplerMode sampler_mode = sampling::SamplerMode::kApproximate;
  };

  static StatusOr<std::unique_ptr<DdgMechanism>> Create(
      const Options& options);

  /// The Eq. (6) norm bound the rounded vector is conditioned on; also the
  /// L2 sensitivity fed into the accountant.
  double rounded_norm_bound() const { return norm_bound_; }
  int64_t rounding_rejections() const {
    return rounding_rejections_.load(std::memory_order_relaxed);
  }

 protected:
  /// L2 clip, conditional rounding (counting rejections), discrete Gaussian
  /// noise.
  Status PerturbRotatedInto(RandomGenerator& rng, EncodeWorkspace& workspace,
                            EncodeCounters& counters) override;

  /// Publishes the rounding-rejection count on top of the shared overflow
  /// accounting.
  void PublishCounters(const EncodeCounters& counters) override {
    RotatedModularMechanism::PublishCounters(counters);
    rounding_rejections_.fetch_add(counters.rejections,
                                   std::memory_order_relaxed);
  }

 private:
  /// Defined in the .cc: installs the FusedPerturbSpec (L2 clip +
  /// rejection-tracked conditional rounding + discrete-Gaussian noise
  /// callback) alongside the member setup.
  DdgMechanism(Options options, RotationCodec codec,
               sampling::DiscreteGaussianSampler sampler, double norm_bound);

  Options options_;
  sampling::DiscreteGaussianSampler sampler_;
  double norm_bound_;
  /// Atomic so concurrent EncodeBatch shards never lose events.
  std::atomic<int64_t> rounding_rejections_{0};
};

/// The Skellam mechanism of Agarwal et al. 2021: identical pipeline to DDG
/// (including conditional rounding) with Skellam noise Sk(lambda, lambda).
class AgarwalSkellamMechanism final : public RotatedModularMechanism {
 public:
  struct Options {
    size_t dim = 0;
    double gamma = 1.0;
    double l2_bound = 1.0;
    double beta = 0.60653065971263342;  ///< exp(-0.5).
    double lambda = 1.0;  ///< Per-participant Skellam parameter.
    uint64_t modulus = 256;
    uint64_t rotation_seed = 0;
    bool apply_rotation = true;
    int max_rounding_retries = 1000;
    sampling::SamplerMode sampler_mode = sampling::SamplerMode::kApproximate;
  };

  static StatusOr<std::unique_ptr<AgarwalSkellamMechanism>> Create(
      const Options& options);

  double rounded_norm_bound() const { return norm_bound_; }

 protected:
  /// L2 clip, conditional rounding, Skellam noise.
  Status PerturbRotatedInto(RandomGenerator& rng, EncodeWorkspace& workspace,
                            EncodeCounters& counters) override;

 private:
  /// Defined in the .cc: installs the FusedPerturbSpec (L2 clip +
  /// conditional rounding without rejection tracking + Skellam noise
  /// callback) alongside the member setup.
  AgarwalSkellamMechanism(Options options, RotationCodec codec,
                          sampling::SkellamSampler sampler, double norm_bound);

  Options options_;
  sampling::SkellamSampler sampler_;
  double norm_bound_;
};

/// cpSGD (Agarwal et al. 2018): rotate, scale, L2 clip, *unconditional*
/// stochastic rounding, then centered binomial noise Binomial(N, 1/2) - N/2.
class CpSgdMechanism final : public RotatedModularMechanism {
 public:
  struct Options {
    size_t dim = 0;
    double gamma = 1.0;
    double l2_bound = 1.0;
    int64_t binomial_trials = 1;  ///< N: per-participant Bernoulli trials.
    uint64_t modulus = 256;
    uint64_t rotation_seed = 0;
    bool apply_rotation = true;
  };

  static StatusOr<std::unique_ptr<CpSgdMechanism>> Create(
      const Options& options);

  /// Decode with the odd-trial bias note of cpSGD (overridden because the
  /// estimate depends on the participant count).
  StatusOr<std::vector<double>> DecodeSum(const std::vector<uint64_t>& zm_sum,
                                          int num_participants) override;

 protected:
  /// L2 clip, unconditional stochastic rounding, centered binomial noise.
  Status PerturbRotatedInto(RandomGenerator& rng, EncodeWorkspace& workspace,
                            EncodeCounters& counters) override;

 private:
  /// Defined in the .cc: installs the FusedPerturbSpec (L2 clip + plain
  /// stochastic rounding + centered-binomial noise callback) alongside the
  /// member setup.
  CpSgdMechanism(Options options, RotationCodec codec,
                 sampling::CenteredBinomialSampler binomial);

  Options options_;
  sampling::CenteredBinomialSampler binomial_;
};

/// The centralized continuous Gaussian baseline ("a strong baseline",
/// Section 6.1): adds N(0, sigma^2) to each coordinate of the exact sum.
/// Not a Z_m mechanism; used directly by the harnesses.
class CentralGaussianBaseline {
 public:
  struct Options {
    double sigma = 1.0;     ///< Noise standard deviation.
    double l2_bound = 0.0;  ///< If > 0, L2-clip each input first.
  };

  explicit CentralGaussianBaseline(const Options& options)
      : options_(options) {}

  /// Returns sum_i clip(x_i) + N(0, sigma^2 I).
  StatusOr<std::vector<double>> PerturbedSum(
      const std::vector<std::vector<double>>& inputs,
      RandomGenerator& rng) const;

 private:
  Options options_;
};

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_BASELINE_MECHANISMS_H_
