#ifndef SMM_NN_OPTIMIZER_H_
#define SMM_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "common/status.h"

namespace smm::nn {

/// First-order optimizer applying parameter updates from (noisy) gradient
/// estimates — the Update step of Algorithm 3 Line 9.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update. grad must have params.size() entries.
  virtual Status Step(std::vector<double>& params,
                      const std::vector<double>& grad) = 0;
};

/// Plain SGD with optional momentum.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0)
      : learning_rate_(learning_rate), momentum_(momentum) {}

  Status Step(std::vector<double>& params,
              const std::vector<double>& grad) override;

 private:
  double learning_rate_;
  double momentum_;
  std::vector<double> velocity_;
};

/// Adam (Kingma & Ba 2015) — the optimizer of Section 6.2 (lr = 0.005).
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  Status Step(std::vector<double>& params,
              const std::vector<double>& grad) override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace smm::nn

#endif  // SMM_NN_OPTIMIZER_H_
