// Microbenchmarks for the hot paths of the mechanism pipeline: the fast
// Walsh-Hadamard transform, the Algorithm 5 clip, and full participant
// encodes for SMM and DDG — scalar (allocating) vs batched
// (workspace-reusing) vs batched parallel. Useful for regressions; not tied
// to a paper table.
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/random.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/clipping.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "transform/walsh_hadamard.h"

namespace smm {
namespace {

void BM_WalshHadamard(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  RandomGenerator rng(1);
  std::vector<double> v(d);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::FastWalshHadamard(v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_WalshHadamard)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_SmmClip(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  RandomGenerator rng(2);
  std::vector<double> g(d);
  for (auto _ : state) {
    state.PauseTiming();
    for (double& x : g) x = rng.Gaussian(0.0, 1.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mechanisms::SmmClip(g, 64.0, 8.0));
  }
}
BENCHMARK(BM_SmmClip)->Arg(1024)->Arg(4096);

void BM_SmmEncode(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  mechanisms::SmmMechanism::Options o;
  o.dim = d;
  o.gamma = 64.0;
  o.c = 4096.0;
  o.delta_inf = 64.0;
  o.lambda = 2.0;
  o.modulus = 256;
  auto mech = mechanisms::SmmMechanism::Create(o).value();
  RandomGenerator rng(3);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Gaussian(0.0, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech->EncodeParticipant(x, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_SmmEncode)->Arg(1024)->Arg(4096);

void BM_DdgEncode(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  mechanisms::DdgMechanism::Options o;
  o.dim = d;
  o.gamma = 64.0;
  o.l2_bound = 1.0;
  o.sigma = 2.0;
  o.modulus = 256;
  auto mech = mechanisms::DdgMechanism::Create(o).value();
  RandomGenerator rng(4);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Gaussian(0.0, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech->EncodeParticipant(x, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_DdgEncode)->Arg(1024)->Arg(4096);

std::unique_ptr<mechanisms::SmmMechanism> MakeBatchSmm(size_t d) {
  mechanisms::SmmMechanism::Options o;
  o.dim = d;
  o.gamma = 64.0;
  o.c = 4096.0;
  o.delta_inf = 64.0;
  o.lambda = 2.0;
  o.modulus = 256;
  return mechanisms::SmmMechanism::Create(o).value();
}

std::vector<std::vector<double>> MakeBatchInputs(size_t n, size_t d) {
  RandomGenerator rng(5);
  std::vector<std::vector<double>> inputs(n, std::vector<double>(d));
  for (auto& x : inputs) {
    for (double& v : x) v = rng.Gaussian(0.0, 0.01);
  }
  return inputs;
}

void BM_SmmEncodeBatch(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 16;
  auto mech = MakeBatchSmm(d);
  const auto inputs = MakeBatchInputs(kBatch, d);
  std::vector<std::vector<uint64_t>> out(kBatch);
  mechanisms::EncodeWorkspace workspace;
  RandomGenerator rng(6);
  for (auto _ : state) {
    auto streams = MakeParticipantStreams(rng, kBatch);
    benchmark::DoNotOptimize(
        mech->EncodeBatch(inputs, 0, kBatch, streams.data(), workspace,
                          &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d * kBatch));
}
BENCHMARK(BM_SmmEncodeBatch)->Arg(1024)->Arg(4096);

void BM_SmmEncodeBatchParallel(benchmark::State& state) {
  const size_t d = 4096;
  constexpr size_t kBatch = 16;
  auto mech = MakeBatchSmm(d);
  const auto inputs = MakeBatchInputs(kBatch, d);
  ThreadPool pool(static_cast<int>(state.range(0)));
  RandomGenerator rng(7);
  for (auto _ : state) {
    auto streams = MakeParticipantStreams(rng, kBatch);
    benchmark::DoNotOptimize(
        mechanisms::EncodeBatchParallel(*mech, inputs, streams, &pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d * kBatch));
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SmmEncodeBatchParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace smm

BENCHMARK_MAIN();
