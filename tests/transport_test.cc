// Property tests for the secure-aggregation wire format: every message type
// round-trips bit-exactly through its frame, and malformed bytes —
// truncations, flipped bits, oversize length prefixes, trailing garbage,
// unknown versions/types — are rejected with a Status, never UB. These run
// under the ASan/UBSan CI matrix, so any out-of-bounds parse fails loudly.
#include "secagg/transport.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"

namespace smm::secagg {
namespace {

// FNV-1a wraps by design; the uio CI job instruments this test binary with
// clang's unsigned-integer-overflow sanitizer, so the reference checksum
// carries the shared deliberate-wrap annotation (common/math_util.h).
SMM_NO_SANITIZE_UNSIGNED_WRAP
uint64_t ReferenceFnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ data[i]) * 1099511628211ULL;
  }
  return hash;
}

ContributionMsg MakeContribution(uint64_t seed, size_t dim, uint64_t m) {
  RandomGenerator rng(seed);
  ContributionMsg msg;
  msg.participant_id = static_cast<int>(rng.UniformUint64(1000));
  msg.modulus = m;
  msg.payload.resize(dim);
  for (auto& v : msg.payload) v = rng.UniformUint64(m);
  return msg;
}

/// Rewrites the trailing FNV-1a checksum after a deliberate mutation, so
/// only the structural check under test can reject the frame.
void Rechecksum(std::vector<uint8_t>& frame) {
  const size_t body = frame.size() - kFrameChecksumBytes;
  const uint64_t hash = ReferenceFnv1a64(frame.data(), body);
  for (size_t b = 0; b < 8; ++b) {
    frame[body + b] = static_cast<uint8_t>(hash >> (8 * b));
  }
}

PartialSumMsg MakePartialSum(uint64_t seed, const ShardSpec& spec,
                             uint64_t m) {
  RandomGenerator rng(seed);
  PartialSumMsg msg;
  msg.modulus = m;
  msg.num_contributors = static_cast<uint32_t>(rng.UniformUint64(500));
  msg.shard = spec;
  msg.sum.resize(spec.shard_dim);
  for (auto& v : msg.sum) v = rng.UniformUint64(m);
  return msg;
}

TEST(TransportFrameTest, ContributionRoundTrip) {
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59.
  const ContributionMsg msg = MakeContribution(1, 37, m);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->size(), kFrameOverheadBytes + 16 + 8 * msg.payload.size());
  auto decoded = DecodeFrame(*frame);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<ContributionMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->participant_id, msg.participant_id);
  EXPECT_EQ(out->modulus, msg.modulus);
  EXPECT_EQ(out->payload, msg.payload);
}

TEST(TransportFrameTest, SharesRoundTrip) {
  SharesMsg msg;
  msg.participant_id = 12;
  RandomGenerator rng(2);
  msg.shares.resize(9);
  for (auto& share : msg.shares) {
    share.x = rng.UniformUint64(kShamirPrime);
    share.y = rng.UniformUint64(kShamirPrime);
  }
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeFrame(*frame);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<SharesMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->participant_id, msg.participant_id);
  ASSERT_EQ(out->shares.size(), msg.shares.size());
  for (size_t i = 0; i < msg.shares.size(); ++i) {
    EXPECT_EQ(out->shares[i].x, msg.shares[i].x);
    EXPECT_EQ(out->shares[i].y, msg.shares[i].y);
  }
}

TEST(TransportFrameTest, SumRoundTrip) {
  SumMsg msg;
  msg.modulus = 1ULL << 32;
  msg.num_contributors = 4096;
  RandomGenerator rng(3);
  msg.sum.resize(17);
  for (auto& v : msg.sum) v = rng.UniformUint64(msg.modulus);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeFrame(*frame);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<SumMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->modulus, msg.modulus);
  EXPECT_EQ(out->num_contributors, msg.num_contributors);
  EXPECT_EQ(out->sum, msg.sum);
}

TEST(TransportFrameTest, EncodeValidates) {
  ContributionMsg bad_id = MakeContribution(4, 3, 1 << 16);
  bad_id.participant_id = -1;
  EXPECT_FALSE(EncodeFrame(bad_id).ok());
  ContributionMsg bad_modulus = MakeContribution(4, 3, 1 << 16);
  bad_modulus.modulus = 1;
  EXPECT_FALSE(EncodeFrame(bad_modulus).ok());
  ContributionMsg empty = MakeContribution(4, 3, 1 << 16);
  empty.payload.clear();
  EXPECT_FALSE(EncodeFrame(empty).ok());
  EXPECT_FALSE(EncodeFrame(SharesMsg{}).ok());
  SumMsg sum;
  sum.modulus = 8;
  EXPECT_FALSE(EncodeFrame(sum).ok());  // Empty payload.
}

TEST(TransportFrameTest, EveryTruncationRejected) {
  const ContributionMsg msg = MakeContribution(5, 11, 1ULL << 40);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  for (size_t len = 0; len < frame->size(); ++len) {
    auto decoded = DecodeFrame(ByteSpan(frame->data(), len));
    ASSERT_FALSE(decoded.ok()) << "len=" << len;
    // Truncation means bytes vanished in transit: kDataLoss by the status
    // semantics table, so a byte-stream receiver knows to drop the
    // connection instead of just the frame.
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << "len=" << len;
  }
}

TEST(TransportFrameTest, RejectionCodesFollowTheSemanticsTable) {
  auto frame = EncodeFrame(MakeContribution(12, 4, 1 << 16));
  ASSERT_TRUE(frame.ok());
  {
    // Damage in transit -> kDataLoss: a flipped payload byte only the
    // checksum can catch.
    std::vector<uint8_t> corrupt = *frame;
    corrupt[kFrameHeaderBytes] ^= 0x01;
    EXPECT_EQ(DecodeFrame(corrupt).status().code(), StatusCode::kDataLoss);
  }
  {
    // Malformed input -> kInvalidArgument: wrong magic is a peer speaking
    // the wrong protocol, not a damaged frame.
    std::vector<uint8_t> wrong_magic = *frame;
    wrong_magic[0] = 'X';
    EXPECT_EQ(DecodeFrame(wrong_magic).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::vector<uint8_t> padded = *frame;
    padded.push_back(0);
    EXPECT_EQ(DecodeFrame(padded).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(TransportFrameTest, EverySingleByteCorruptionRejected) {
  // Flip one bit in every byte position: magic/version/type/reserved/length
  // corruptions trip the structural checks, payload and checksum
  // corruptions trip the FNV mismatch. No corruption may parse.
  const ContributionMsg msg = MakeContribution(6, 5, 1 << 20);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  for (size_t pos = 0; pos < frame->size(); ++pos) {
    std::vector<uint8_t> corrupt = *frame;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(DecodeFrame(corrupt).ok()) << "pos=" << pos;
  }
}

TEST(TransportFrameTest, TrailingBytesRejected) {
  auto frame = EncodeFrame(MakeContribution(7, 4, 1 << 16));
  ASSERT_TRUE(frame.ok());
  std::vector<uint8_t> padded = *frame;
  padded.push_back(0);
  EXPECT_FALSE(DecodeFrame(padded).ok());
}

TEST(TransportFrameTest, OversizeLengthPrefixRejected) {
  // A corrupt length prefix larger than kMaxPayloadBytes must be rejected
  // before any allocation-sized-by-attacker step, even if the frame were
  // that long.
  auto frame = EncodeFrame(MakeContribution(8, 4, 1 << 16));
  ASSERT_TRUE(frame.ok());
  std::vector<uint8_t> corrupt = *frame;
  corrupt[8] = 0xff;  // payload_len LE bytes -> huge.
  corrupt[9] = 0xff;
  corrupt[10] = 0xff;
  corrupt[11] = 0xff;
  EXPECT_FALSE(DecodeFrame(corrupt).ok());
}

TEST(TransportFrameTest, UnknownVersionAndTypeRejected) {
  auto frame = EncodeFrame(MakeContribution(9, 4, 1 << 16));
  ASSERT_TRUE(frame.ok());
  {
    std::vector<uint8_t> wrong_version = *frame;
    wrong_version[4] = kWireVersion + 1;
    EXPECT_FALSE(DecodeFrame(wrong_version).ok());
  }
  {
    std::vector<uint8_t> wrong_type = *frame;
    wrong_type[5] = 99;
    EXPECT_FALSE(DecodeFrame(wrong_type).ok());
  }
}

TEST(TransportFrameTest, CountPayloadLengthMismatchRejected) {
  // Re-frame a contribution whose internal count disagrees with the payload
  // length (and fix up the checksum so only the count check can reject it).
  // DecodeFrame must refuse rather than read out of bounds.
  const ContributionMsg msg = MakeContribution(10, 6, 1 << 16);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  std::vector<uint8_t> corrupt = *frame;
  corrupt[kFrameHeaderBytes + 4] += 1;  // count += 1 (LE low byte).
  // Recompute the checksum the same way the encoder does.
  const size_t body = corrupt.size() - kFrameChecksumBytes;
  const uint64_t hash = ReferenceFnv1a64(corrupt.data(), body);
  for (size_t b = 0; b < 8; ++b) {
    corrupt[body + b] = static_cast<uint8_t>(hash >> (8 * b));
  }
  EXPECT_FALSE(DecodeFrame(corrupt).ok());
}

TEST(TransportFrameTest, RandomGarbageNeverParses) {
  RandomGenerator rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformUint64(96));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.UniformUint64(256));
    }
    // A random buffer virtually never carries the magic + a valid FNV
    // checksum; what matters is that parsing returns a status instead of
    // reading out of bounds (ASan would catch the latter).
    (void)DecodeFrame(garbage).ok();
  }
  EXPECT_FALSE(DecodeFrame(ByteSpan()).ok());
}

TEST(TransportFrameTest, ShardedContributionRoundTrip) {
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59.
  ContributionMsg msg = MakeContribution(13, 5, m);
  msg.shard = ShardSpec{1, 4, 10, 5};
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  // Version-2 fixed part: the v1 16 bytes plus the 16-byte ShardSpec.
  EXPECT_EQ(frame->size(), kFrameOverheadBytes + 32 + 8 * msg.payload.size());
  EXPECT_EQ((*frame)[4], kWireVersionSharded);
  auto decoded = DecodeFrame(*frame);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<ContributionMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->participant_id, msg.participant_id);
  EXPECT_EQ(out->modulus, msg.modulus);
  EXPECT_EQ(out->payload, msg.payload);
  ASSERT_TRUE(out->shard.has_value());
  EXPECT_EQ(*out->shard, *msg.shard);
}

TEST(TransportFrameTest, UnshardedContributionStaysVersionOne) {
  // The shard extension must not move a single byte of the v1 format: an
  // unsharded contribution still encodes at version 1 with the 16-byte
  // fixed part, so pre-shard peers interoperate unchanged.
  auto frame = EncodeFrame(MakeContribution(14, 6, 1 << 20));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[4], kWireVersion);
  EXPECT_EQ(frame->size(), kFrameOverheadBytes + 16 + 8 * 6);
}

TEST(TransportFrameTest, PartialSumRoundTrip) {
  const uint64_t m = 18446744073709551557ULL;
  const PartialSumMsg msg = MakePartialSum(15, ShardSpec{2, 3, 8, 7}, m);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->size(), kFrameOverheadBytes + 32 + 8 * msg.sum.size());
  EXPECT_EQ((*frame)[4], kWireVersionSharded);
  auto decoded = DecodeFrame(*frame);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<PartialSumMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->modulus, msg.modulus);
  EXPECT_EQ(out->num_contributors, msg.num_contributors);
  EXPECT_EQ(out->shard, msg.shard);
  EXPECT_EQ(out->sum, msg.sum);
}

TEST(TransportFrameTest, PartialSumEveryTruncationRejected) {
  const PartialSumMsg msg = MakePartialSum(16, ShardSpec{0, 2, 0, 9}, 1 << 16);
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  for (size_t len = 0; len < frame->size(); ++len) {
    auto decoded = DecodeFrame(ByteSpan(frame->data(), len));
    ASSERT_FALSE(decoded.ok()) << "len=" << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "len=" << len;
  }
}

TEST(TransportFrameTest, ShardedEverySingleByteCorruptionRejected) {
  ContributionMsg msg = MakeContribution(17, 4, 1 << 20);
  msg.shard = ShardSpec{0, 2, 0, 4};
  auto contribution = EncodeFrame(msg);
  ASSERT_TRUE(contribution.ok());
  auto partial =
      EncodeFrame(MakePartialSum(18, ShardSpec{1, 2, 4, 3}, 1 << 20));
  ASSERT_TRUE(partial.ok());
  for (const auto* frame : {&*contribution, &*partial}) {
    for (size_t pos = 0; pos < frame->size(); ++pos) {
      std::vector<uint8_t> corrupt = *frame;
      corrupt[pos] ^= 0x40;
      EXPECT_FALSE(DecodeFrame(corrupt).ok()) << "pos=" << pos;
    }
  }
}

TEST(TransportFrameTest, EncodeRejectsMalformedShardSpecs) {
  const uint64_t m = 1 << 16;
  {
    // shard_index >= shard_count.
    ContributionMsg msg = MakeContribution(19, 4, m);
    msg.shard = ShardSpec{2, 2, 0, 4};
    EXPECT_EQ(EncodeFrame(msg).status().code(), StatusCode::kInvalidArgument);
  }
  {
    // shard_dim disagrees with the payload size.
    ContributionMsg msg = MakeContribution(19, 4, m);
    msg.shard = ShardSpec{0, 2, 0, 5};
    EXPECT_EQ(EncodeFrame(msg).status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Empty shard (shard_dim 0).
    PartialSumMsg msg;
    msg.modulus = m;
    msg.num_contributors = 1;
    msg.shard = ShardSpec{0, 1, 0, 0};
    EXPECT_EQ(EncodeFrame(msg).status().code(), StatusCode::kInvalidArgument);
  }
  {
    // dim_offset + shard_dim overflows u32.
    PartialSumMsg msg = MakePartialSum(20, ShardSpec{0, 1, 0, 3}, m);
    msg.shard.dim_offset = 0xffffffffu - 1;
    EXPECT_EQ(EncodeFrame(msg).status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(TransportFrameTest, DecodeRejectsMalformedShardSpecOnTheWire) {
  // Craft a correctly-checksummed version-2 frame whose ShardSpec is
  // structurally invalid; only the spec validation can reject it.
  ContributionMsg msg = MakeContribution(21, 4, 1 << 16);
  msg.shard = ShardSpec{1, 4, 4, 4};
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  {
    // shard_index (payload offset 16, LE low byte) raised to shard_count.
    std::vector<uint8_t> corrupt = *frame;
    corrupt[kFrameHeaderBytes + 16] = 4;
    Rechecksum(corrupt);
    EXPECT_EQ(DecodeFrame(corrupt).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // shard_dim (payload offset 28) zeroed: empty shards don't exist, and
    // the count/payload-length check would also disagree. shard_dim is 4,
    // so clearing the LE low byte zeroes the whole field.
    std::vector<uint8_t> corrupt = *frame;
    corrupt[kFrameHeaderBytes + 28] = 0;
    Rechecksum(corrupt);
    EXPECT_EQ(DecodeFrame(corrupt).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // shard_dim disagreeing with the count field while the payload length
    // still matches the count: the spec/count cross-check must fire.
    std::vector<uint8_t> corrupt = *frame;
    corrupt[kFrameHeaderBytes + 28] = 5;
    Rechecksum(corrupt);
    EXPECT_FALSE(DecodeFrame(corrupt).ok());
  }
}

TEST(TransportFrameTest, VersionGatingRejectsCrossVersionTypes) {
  const uint64_t m = 1 << 16;
  {
    // A version-2 kShares frame does not exist: take a valid v1 shares
    // frame, stamp version 2, re-checksum.
    SharesMsg msg;
    msg.participant_id = 3;
    msg.shares.push_back({1, 2});
    auto frame = EncodeFrame(msg);
    ASSERT_TRUE(frame.ok());
    std::vector<uint8_t> v2 = *frame;
    v2[4] = kWireVersionSharded;
    Rechecksum(v2);
    EXPECT_EQ(DecodeFrame(v2).status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A version-2 kSum frame does not exist either (shard workers emit
    // kPartialSum; only the coordinator emits the v1 kSum).
    SumMsg msg;
    msg.modulus = m;
    msg.num_contributors = 2;
    msg.sum = {1, 2, 3};
    auto frame = EncodeFrame(msg);
    ASSERT_TRUE(frame.ok());
    std::vector<uint8_t> v2 = *frame;
    v2[4] = kWireVersionSharded;
    Rechecksum(v2);
    EXPECT_EQ(DecodeFrame(v2).status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A version-1 kPartialSum does not exist: the partial-sum layout
    // requires the ShardSpec the v1 header has no room for.
    auto frame = EncodeFrame(MakePartialSum(22, ShardSpec{0, 2, 0, 3}, m));
    ASSERT_TRUE(frame.ok());
    std::vector<uint8_t> v1 = *frame;
    v1[4] = kWireVersion;
    Rechecksum(v1);
    EXPECT_EQ(DecodeFrame(v1).status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A sharded contribution downgraded to version 1 reads as a v1
    // contribution whose count disagrees with the payload length (the spec
    // bytes land where values would be); it must be rejected, not
    // misinterpreted.
    ContributionMsg msg = MakeContribution(23, 4, m);
    msg.shard = ShardSpec{0, 2, 0, 4};
    auto frame = EncodeFrame(msg);
    ASSERT_TRUE(frame.ok());
    std::vector<uint8_t> v1 = *frame;
    v1[4] = kWireVersion;
    Rechecksum(v1);
    EXPECT_FALSE(DecodeFrame(v1).ok());
  }
}

TEST(TransportFrameTest, ValidateShardSpecCoversTheContract) {
  EXPECT_TRUE(ValidateShardSpec(ShardSpec{0, 1, 0, 1}).ok());
  EXPECT_TRUE(ValidateShardSpec(ShardSpec{7, 8, 100, 50}).ok());
  EXPECT_EQ(ValidateShardSpec(ShardSpec{1, 1, 0, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateShardSpec(ShardSpec{0, 0, 0, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateShardSpec(ShardSpec{0, 1, 0, 0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateShardSpec(ShardSpec{0, 1, 0xffffffffu, 2}).code(),
            StatusCode::kInvalidArgument);
}

TEST(InMemoryTransportTest, DrainsLowestClientFirstFifoWithinClient) {
  InMemoryTransport transport;
  ASSERT_TRUE(transport.Send(3, {3, 0}).ok());
  ASSERT_TRUE(transport.Send(1, {1, 0}).ok());
  ASSERT_TRUE(transport.Send(1, {1, 1}).ok());
  ASSERT_TRUE(transport.Send(2, {2, 0}).ok());
  EXPECT_EQ(transport.pending(), 4u);
  std::vector<std::vector<uint8_t>> drained;
  while (auto frame = transport.Receive()) drained.push_back(*frame);
  EXPECT_EQ(drained, (std::vector<std::vector<uint8_t>>{
                         {1, 0}, {1, 1}, {2, 0}, {3, 0}}));
  EXPECT_EQ(transport.pending(), 0u);
  EXPECT_FALSE(transport.Receive().has_value());
  // Negative client ids are rejected.
  EXPECT_FALSE(transport.Send(-1, {0}).ok());
}

TEST(InMemoryTransportTest, InterleavedSendReceive) {
  InMemoryTransport transport;
  ASSERT_TRUE(transport.Send(5, {5}).ok());
  auto first = transport.Receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<uint8_t>{5}));
  // Queue empties are erased; later sends to lower ids still drain first.
  ASSERT_TRUE(transport.Send(7, {7}).ok());
  ASSERT_TRUE(transport.Send(4, {4}).ok());
  EXPECT_EQ(*transport.Receive(), (std::vector<uint8_t>{4}));
  EXPECT_EQ(*transport.Receive(), (std::vector<uint8_t>{7}));
}

}  // namespace
}  // namespace smm::secagg
