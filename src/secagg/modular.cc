#include "secagg/modular.h"

#include <cassert>

#include "common/math_util.h"
#include "common/simd.h"

namespace smm::secagg {

uint64_t ModReduce(int64_t value, uint64_t m) {
  assert(m >= 2);
  if (value >= 0) return static_cast<uint64_t>(value) % m;
  // Negative: reduce the magnitude, then fold it below m. ~value computes
  // -value - 1 without the INT64_MIN negation overflow; the +1 cannot wrap
  // because the magnitude is at most 2^63.
  const uint64_t magnitude = (static_cast<uint64_t>(~value) + 1) % m;
  return magnitude == 0 ? 0 : m - magnitude;
}

int64_t CenterLift(uint64_t value, uint64_t m) {
  assert(m >= 2);
  assert(value < m);
  // Negative representatives start at ceil(m/2): value > (m-1)/2 is exactly
  // value >= ceil(m/2) for both parities. For even m this is the familiar
  // value >= m/2 split; for odd m the boundary point floor(m/2) = (m-1)/2
  // stays positive (+(m-1)/2), which the old `value >= m/2` test got wrong
  // by one (it lifted floor(m/2) to -(m+1)/2, outside the centered range).
  if (value > (m - 1) / 2) {
    // Negative representative -(m - value). The magnitude m - value is at
    // most m - ceil(m/2) = floor(m/2) <= floor((2^64 - 1)/2) = 2^63 - 1 =
    // INT64_MAX, so the negation below can never overflow — including the
    // former m = 2^64 - 1 boundary, whose largest magnitude is now
    // 2^63 - 1, not 2^63.
    return -static_cast<int64_t>(m - value);
  }
  return static_cast<int64_t>(value);
}

StatusOr<std::vector<uint64_t>> AddMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("AddMod: length mismatch");
  }
  if (m < 2) return InvalidArgumentError("AddMod: modulus must be >= 2");
  // Reduce a into the output, then fold b in with the vector kernel — the
  // same AddMod(a % m, b % m, m) per element as the historical loop.
  std::vector<uint64_t> out(a.size());
  simd::ModReduceInto(a.data(), a.size(), m, out.data());
  simd::AddModVec(out.data(), b.data(), b.size(), m);
  return out;
}

StatusOr<std::vector<uint64_t>> SubMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("SubMod: length mismatch");
  }
  if (m < 2) return InvalidArgumentError("SubMod: modulus must be >= 2");
  std::vector<uint64_t> out(a.size());
  simd::ModReduceInto(a.data(), a.size(), m, out.data());
  simd::SubModVec(out.data(), b.data(), b.size(), m);
  return out;
}

std::vector<uint64_t> ReduceVector(const std::vector<int64_t>& v, uint64_t m) {
  std::vector<uint64_t> out(v.size());
  // The wrap kernel computes ModReduce per element (the overflow count it
  // also produces is the codec's concern, not this helper's).
  simd::WrapCenteredInto(v.data(), v.size(), m, out.data());
  return out;
}

std::vector<int64_t> LiftVector(const std::vector<uint64_t>& v, uint64_t m) {
  std::vector<int64_t> out(v.size());
  simd::CenterLiftInto(v.data(), v.size(), m, out.data());
  return out;
}

Status ShardedModularAccumulate(
    ThreadPool* pool, size_t n, uint64_t m, std::vector<uint64_t>& acc,
    const std::function<Status(size_t, size_t, std::vector<uint64_t>&)>& fn) {
  if (pool == nullptr || pool->num_threads() == 1 || n < 2) {
    return fn(0, n, acc);
  }
  std::vector<std::vector<uint64_t>> partials(
      static_cast<size_t>(pool->num_threads()));
  std::vector<Status> chunk_status(static_cast<size_t>(pool->num_threads()));
  pool->ParallelFor(n, [&](int chunk, size_t begin, size_t end) {
    std::vector<uint64_t>& partial = partials[static_cast<size_t>(chunk)];
    partial.assign(acc.size(), 0);
    chunk_status[static_cast<size_t>(chunk)] = fn(begin, end, partial);
  });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  for (const auto& partial : partials) {
    if (partial.empty()) continue;  // Chunk count may be below thread count.
    simd::AddModVec(acc.data(), partial.data(), acc.size(), m);
  }
  return OkStatus();
}

}  // namespace smm::secagg
