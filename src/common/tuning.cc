#include "common/tuning.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

namespace smm {

namespace {

// ---------------------------------------------------------------------------
// A strict recursive-descent parser for the tiny JSON subset tuning.json
// uses: one object of string keys mapping to non-negative integers or to one
// nested object of string -> integer. No arrays, floats, booleans, nulls, or
// escapes — a calibration artifact never needs them, and rejecting the rest
// keeps a hand-edited file from silently half-loading.
// ---------------------------------------------------------------------------

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  void SkipWs() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool Consume(char c) {
    SkipWs();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return p_ == end_;
  }

  StatusOr<std::string> ParseString() {
    SkipWs();
    if (p_ == end_ || *p_ != '"') {
      return InvalidArgumentError("tuning.json: expected a string");
    }
    ++p_;
    std::string out;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        return InvalidArgumentError(
            "tuning.json: string escapes are not supported");
      }
      out.push_back(*p_++);
    }
    if (p_ == end_) {
      return InvalidArgumentError("tuning.json: unterminated string");
    }
    ++p_;  // Closing quote.
    return out;
  }

  StatusOr<int64_t> ParseInt() {
    SkipWs();
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    const char* digits = p_;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ == digits) {
      return InvalidArgumentError("tuning.json: expected an integer");
    }
    if (p_ < end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      return InvalidArgumentError(
          "tuning.json: fractional values are not supported");
    }
    errno = 0;
    char* parse_end = nullptr;
    const long long v = std::strtoll(std::string(start, p_).c_str(),
                                     &parse_end, 10);
    if (errno == ERANGE) {
      return InvalidArgumentError("tuning.json: integer out of range");
    }
    return static_cast<int64_t>(v);
  }

 private:
  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// Process-wide tuning state. The full struct lives behind a mutex (cold
// accessors copy it); the two per-round knobs are mirrored into relaxed
// atomics so TunedTileRows / TunedSessionThreads stay lock-free on the hot
// paths.
// ---------------------------------------------------------------------------

std::mutex g_tuning_mu;
RuntimeTuning& GlobalTuning() {
  static RuntimeTuning* tuning = new RuntimeTuning();
  return *tuning;
}
std::atomic<size_t> g_tile_rows_per_thread{kTileRowsPerThread};
std::atomic<int> g_threads_per_session{0};
std::atomic<size_t> g_shard_count{1};
std::atomic<bool> g_env_checked{false};

/// Installs `tuning` into the globals. Caller holds g_tuning_mu.
void ApplyTuningLocked(const RuntimeTuning& tuning) {
  GlobalTuning() = tuning;
  g_tile_rows_per_thread.store(tuning.tile_rows_per_thread,
                               std::memory_order_relaxed);
  g_threads_per_session.store(tuning.threads_per_session,
                              std::memory_order_relaxed);
  g_shard_count.store(tuning.shard_count < 1 ? 1 : tuning.shard_count,
                      std::memory_order_relaxed);
  // Zero every kernel's crossover, then set the calibrated ones, so a
  // reload never leaves a stale entry from the previous tuning behind.
  for (int i = 0; i < simd::kNumKernelIds; ++i) {
    simd::SetDispatchCrossover(static_cast<simd::KernelId>(i), 0);
  }
  for (const auto& [name, length] : tuning.simd_crossover) {
    simd::KernelId id;
    if (simd::KernelIdFromName(name.c_str(), &id)) {
      simd::SetDispatchCrossover(id, length);
    }
  }
}

Status LoadFromFileLocked(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError("cannot open tuning file: " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  SMM_ASSIGN_OR_RETURN(RuntimeTuning tuning, ParseRuntimeTuning(text.str()));
  tuning.source = path;
  ApplyTuningLocked(tuning);
  return OkStatus();
}

/// One-time SMM_TUNING check. A broken tuning file must not kill the
/// process — calibration output is a perf hint, never a correctness input —
/// so a failed load keeps the defaults and reports once.
void EnsureEnvChecked() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  if (g_env_checked.load(std::memory_order_relaxed)) return;
  const char* path = std::getenv("SMM_TUNING");
  if (path != nullptr && *path != '\0') {
    const Status status = LoadFromFileLocked(path);
    if (!status.ok()) {
      std::fprintf(stderr,
                   "SMM_TUNING ignored, using built-in defaults: %s\n",
                   status.ToString().c_str());
    }
  }
  g_env_checked.store(true, std::memory_order_release);
}

}  // namespace

std::string RuntimeTuningToJson(const RuntimeTuning& tuning) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << RuntimeTuning::kSchemaVersion << ",\n";
  out << "  \"tile_rows_per_thread\": " << tuning.tile_rows_per_thread
      << ",\n";
  out << "  \"threads_per_session\": " << tuning.threads_per_session << ",\n";
  out << "  \"shard_count\": " << tuning.shard_count << ",\n";
  out << "  \"simd_crossover\": {";
  for (size_t i = 0; i < tuning.simd_crossover.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    \""
        << tuning.simd_crossover[i].first
        << "\": " << tuning.simd_crossover[i].second;
  }
  out << (tuning.simd_crossover.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

StatusOr<RuntimeTuning> ParseRuntimeTuning(const std::string& json) {
  MiniJsonParser parser(json);
  if (!parser.Consume('{')) {
    return InvalidArgumentError("tuning.json: expected a top-level object");
  }
  RuntimeTuning tuning;
  bool saw_schema_version = false;
  bool first = true;
  while (!parser.Consume('}')) {
    if (!first && !parser.Consume(',')) {
      return InvalidArgumentError("tuning.json: expected ',' or '}'");
    }
    first = false;
    SMM_ASSIGN_OR_RETURN(const std::string key, parser.ParseString());
    if (!parser.Consume(':')) {
      return InvalidArgumentError("tuning.json: expected ':' after \"" + key +
                                  "\"");
    }
    if (key == "schema_version") {
      SMM_ASSIGN_OR_RETURN(const int64_t v, parser.ParseInt());
      if (v != RuntimeTuning::kSchemaVersion) {
        return InvalidArgumentError(
            "tuning.json: unsupported schema_version " + std::to_string(v));
      }
      saw_schema_version = true;
    } else if (key == "tile_rows_per_thread") {
      SMM_ASSIGN_OR_RETURN(const int64_t v, parser.ParseInt());
      if (v < 1 || v > (int64_t{1} << 20)) {
        return InvalidArgumentError(
            "tuning.json: tile_rows_per_thread out of domain [1, 2^20]");
      }
      tuning.tile_rows_per_thread = static_cast<size_t>(v);
    } else if (key == "threads_per_session") {
      SMM_ASSIGN_OR_RETURN(const int64_t v, parser.ParseInt());
      if (v < 0 || v > 4096) {
        return InvalidArgumentError(
            "tuning.json: threads_per_session out of domain [0, 4096]");
      }
      tuning.threads_per_session = static_cast<int>(v);
    } else if (key == "shard_count") {
      SMM_ASSIGN_OR_RETURN(const int64_t v, parser.ParseInt());
      if (v < 1 || v > 4096) {
        return InvalidArgumentError(
            "tuning.json: shard_count out of domain [1, 4096]");
      }
      tuning.shard_count = static_cast<size_t>(v);
    } else if (key == "simd_crossover") {
      if (!parser.Consume('{')) {
        return InvalidArgumentError(
            "tuning.json: simd_crossover must be an object");
      }
      bool first_kernel = true;
      while (!parser.Consume('}')) {
        if (!first_kernel && !parser.Consume(',')) {
          return InvalidArgumentError(
              "tuning.json: expected ',' or '}' in simd_crossover");
        }
        first_kernel = false;
        SMM_ASSIGN_OR_RETURN(const std::string kernel, parser.ParseString());
        simd::KernelId id;
        if (!simd::KernelIdFromName(kernel.c_str(), &id)) {
          return InvalidArgumentError(
              "tuning.json: unknown simd_crossover kernel \"" + kernel +
              "\"");
        }
        if (!parser.Consume(':')) {
          return InvalidArgumentError(
              "tuning.json: expected ':' after kernel \"" + kernel + "\"");
        }
        SMM_ASSIGN_OR_RETURN(const int64_t v, parser.ParseInt());
        if (v < 0 || v > (int64_t{1} << 30)) {
          return InvalidArgumentError(
              "tuning.json: crossover for \"" + kernel +
              "\" out of domain [0, 2^30]");
        }
        tuning.simd_crossover.emplace_back(kernel,
                                           static_cast<size_t>(v));
      }
    } else {
      return InvalidArgumentError("tuning.json: unknown field \"" + key +
                                  "\"");
    }
  }
  if (!parser.AtEnd()) {
    return InvalidArgumentError(
        "tuning.json: trailing content after the top-level object");
  }
  if (!saw_schema_version) {
    return InvalidArgumentError("tuning.json: missing schema_version");
  }
  return tuning;
}

RuntimeTuning GetRuntimeTuning() {
  EnsureEnvChecked();
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  return GlobalTuning();
}

void SetRuntimeTuning(const RuntimeTuning& tuning) {
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  ApplyTuningLocked(tuning);
  // An explicit install wins over (and suppresses) the lazy env load.
  g_env_checked.store(true, std::memory_order_release);
}

Status LoadRuntimeTuningFromFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  SMM_RETURN_IF_ERROR(LoadFromFileLocked(path));
  g_env_checked.store(true, std::memory_order_release);
  return OkStatus();
}

void ResetRuntimeTuningForTest() {
  std::lock_guard<std::mutex> lock(g_tuning_mu);
  ApplyTuningLocked(RuntimeTuning());
  g_env_checked.store(false, std::memory_order_release);
}

size_t TunedTileRows(int num_threads) {
  EnsureEnvChecked();
  const size_t per_thread =
      g_tile_rows_per_thread.load(std::memory_order_relaxed);
  return per_thread * static_cast<size_t>(num_threads < 1 ? 1 : num_threads);
}

size_t TunedTileRowsPerThread() {
  EnsureEnvChecked();
  return g_tile_rows_per_thread.load(std::memory_order_relaxed);
}

int TunedSessionThreads() {
  EnsureEnvChecked();
  const int threads = g_threads_per_session.load(std::memory_order_relaxed);
  return threads > 0 ? threads : ThreadPool::HardwareThreads();
}

size_t TunedShardCount() {
  EnsureEnvChecked();
  return g_shard_count.load(std::memory_order_relaxed);
}

}  // namespace smm
