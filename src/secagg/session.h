#ifndef SMM_SECAGG_SESSION_H_
#define SMM_SECAGG_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "secagg/secure_aggregator.h"
#include "secagg/streaming_aggregator.h"
#include "secagg/transport.h"

namespace smm::secagg {

/// One server-side aggregation round driven by wire-format frames: decoded
/// ContributionMsg frames are fed straight into a SecureAggregator::Open
/// stream, so the session inherits the stream's memory model (O(threads·d)
/// resident with the provided aggregators, independent of the participant
/// count), accepts contributions in any arrival order, and defers dropout
/// handling to Finalize exactly as the masked stream already does.
///
///   Open(aggregator, {dim, m, pool})
///     -> HandleFrame / DrainTransport per arriving frame
///     -> Finalize() -> SumMsg
///
/// Frame handling is status-only: a truncated, corrupt, oversized, or
/// protocol-violating frame (wrong modulus, wrong dimension) is rejected
/// with a Status, the running sum is left untouched, and the session keeps
/// serving subsequent frames — malformed input can never crash the server
/// loop. A duplicate contribution from an already-accepted participant is
/// NOT an error: the session acknowledges it with OK and keeps the first
/// absorption (first-wins idempotency), so a client that retries after a
/// lost ack is harmless; duplicates are tallied in duplicate_frames(). (With
/// Options::tile_rows > 1, stream-level rejections surface at the tile
/// flush instead of the offending frame; see Options.) SharesMsg
/// frames are tallied and acknowledged (the simulated aggregator already
/// holds every participant's shares; a real backend would store them here
/// for Finalize-time recovery). SumMsg frames are server-outbound only and
/// are rejected on receive.
///
/// Determinism: contributions are folded in with exact arithmetic mod m, so
/// Finalize is bit-identical to the batch Aggregate/AggregateParallel path
/// for any thread count and any frame arrival order.
///
/// Not thread-safe: one server loop drives a session (absorption itself may
/// shard across the pool the session was opened with). The aggregator must
/// outlive the session.
class AggregationSession {
 public:
  struct Options {
    /// Dimension of the aggregated vectors; every contribution must match.
    size_t dim = 0;
    /// The session modulus; frames carrying any other modulus are rejected.
    uint64_t modulus = 0;
    /// Optional pool for sharded absorption (not owned; nullptr =
    /// sequential).
    ThreadPool* pool = nullptr;
    /// Contributions buffered before one sharded AbsorbTile flush. The
    /// default (1) absorbs every frame immediately, so protocol violations
    /// (e.g. a duplicate participant) surface from the very HandleFrame
    /// that carried them — right for untrusted clients. Larger values
    /// bound O(tile_rows·d) pending payloads and amortize one fork/join
    /// per tile instead of one per frame — right for trusted in-process
    /// pipelines like RunDistributedSum; absorption errors then surface at
    /// the flush (the HandleFrame that filled the tile, or Finalize), and
    /// a rejected tile drops all its pending contributions (AbsorbTile's
    /// all-or-nothing admission). The sum is bit-identical either way.
    size_t tile_rows = 1;
    /// When set, this session is one shard worker of a dimension-sharded
    /// round: every contribution must carry exactly this ShardSpec (whose
    /// shard_dim must equal `dim`), and sliced frames addressed to any
    /// other shard are rejected. When unset (the default), sharded frames
    /// are rejected — an unsharded session never silently absorbs a slice
    /// of a vector as if it were whole.
    std::optional<ShardSpec> expected_shard;
    /// Quorum: the fewest accepted contributions Finalize will publish a
    /// sum from. Below it, Finalize fails with kFailedPrecondition and the
    /// session stays open so more contributions can still land. 0 (the
    /// default) disables the check.
    size_t min_contributions = 0;
  };

  /// Opens a session over `aggregator` (requires dim >= 1, modulus >= 2).
  static StatusOr<std::unique_ptr<AggregationSession>> Open(
      SecureAggregator& aggregator, const Options& options);

  /// Handles one received frame: parses it, validates it against the
  /// session, and absorbs a contribution into the stream. On error the
  /// frame is dropped (counted in rejected_frames) and the session state is
  /// unchanged except that a masked-protocol tile admission already
  /// recorded by the stream stays recorded — the provided streams reject
  /// before touching the sum, so a failed HandleFrame never corrupts it.
  /// (ByteSpan is implicitly constructible from std::vector<uint8_t>.)
  Status HandleFrame(ByteSpan frame);

  /// Routes one already-decoded contribution into the stream, with the same
  /// validation and rejection counting as HandleFrame. For trusted
  /// in-process routers (ShardedCoordinator) that decode a frame once to
  /// pick a shard and must not pay a second decode per sub-frame.
  Status HandleContribution(ContributionMsg msg);

  /// Drains `transport` until Receive reports it drained, handling each
  /// frame in the transport's order. Stops at (and returns) the first
  /// frame error, leaving the remaining frames queued so the caller can
  /// decide whether to keep draining. After a clean drain, returns the
  /// transport's receive_status() so a channel that broke mid-stream
  /// (frames possibly lost) surfaces as kDataLoss rather than success.
  Status DrainTransport(FrameTransport& transport);

  /// Completes the round: runs the stream's deferred work (e.g. Shamir
  /// dropout recovery for participants that never contributed) and returns
  /// the aggregated sum as a ready-to-frame SumMsg. Fails with
  /// kFailedPrecondition — leaving the session open — when fewer than
  /// Options::min_contributions contributions were accepted. On success the
  /// session is consumed.
  StatusOr<SumMsg> Finalize();

  /// Contributions accepted so far (absorbed plus any buffered in the
  /// pending tile).
  size_t contributions() const {
    return stream_->absorbed() + pending_ids_.size();
  }
  /// SharesMsg frames acknowledged so far.
  size_t shares_received() const { return shares_received_; }
  /// Frames rejected so far (parse failures and protocol violations).
  size_t rejected_frames() const { return rejected_frames_; }
  /// Valid contributions acknowledged-but-not-absorbed because their
  /// participant already contributed (retry resends after a lost ack).
  size_t duplicate_frames() const { return duplicate_frames_; }

  size_t dim() const { return dim_; }
  uint64_t modulus() const { return modulus_; }

 private:
  AggregationSession(std::unique_ptr<StreamingAggregator> stream,
                     const Options& options)
      : stream_(std::move(stream)),
        dim_(options.dim),
        modulus_(options.modulus),
        tile_rows_(options.tile_rows < 1 ? 1 : options.tile_rows),
        expected_shard_(options.expected_shard),
        min_contributions_(options.min_contributions) {}

  Status Handle(ContributionMsg msg);
  /// Absorbs the pending tile through one sharded AbsorbTile. On error the
  /// tile is dropped (counted in rejected_frames) — AbsorbTile admission is
  /// all-or-nothing, so the stream is untouched.
  Status FlushPendingTile();

  std::unique_ptr<StreamingAggregator> stream_;
  size_t dim_;
  uint64_t modulus_;
  size_t tile_rows_;
  std::optional<ShardSpec> expected_shard_;
  size_t min_contributions_;
  std::vector<int> pending_ids_;
  std::vector<std::vector<uint64_t>> pending_payloads_;
  /// Participants whose contribution was accepted (absorbed or buffered in
  /// the pending tile) — the first-wins dedup set behind duplicate_frames().
  /// A tile the flush rejects removes its ids again, so a participant whose
  /// contribution was dropped with a bad tile can retry.
  std::unordered_set<int> seen_ids_;
  size_t shares_received_ = 0;
  size_t rejected_frames_ = 0;
  size_t duplicate_frames_ = 0;
};

}  // namespace smm::secagg

#endif  // SMM_SECAGG_SESSION_H_
