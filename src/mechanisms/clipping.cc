#include "mechanisms/clipping.h"

#include <algorithm>
#include <cmath>

namespace smm::mechanisms {

double SmmSensitivityContribution(double magnitude) {
  const double t = std::abs(magnitude);
  const double f = t - std::floor(t);
  return t * t + f - f * f;
}

double SmmSensitivityInverse(double w) {
  if (w <= 0.0) return 0.0;
  double k = std::floor(std::sqrt(w));
  // Guard against floating-point sqrt landing one integer too high/low.
  while (k * k > w) k -= 1.0;
  while ((k + 1.0) * (k + 1.0) <= w) k += 1.0;
  const double f = (w - k * k) / (2.0 * k + 1.0);
  return k + f;
}

double SmmClipReduce(const double* g, size_t n, double l1_so_far) {
  // The contribution sum of Algorithm 5 (the L1 of the helper vector v),
  // accumulated in coordinate order so blocked chaining reproduces the
  // full-vector sum bit-for-bit.
  for (size_t j = 0; j < n; ++j) {
    l1_so_far += SmmSensitivityContribution(g[j]);
  }
  return l1_so_far;
}

void SmmClipApply(double* g, size_t n, double scale, double dinf) {
  for (size_t j = 0; j < n; ++j) {
    const double sign = g[j] < 0.0 ? -1.0 : 1.0;  // 0/0 := 1 per the paper.
    const double contribution = SmmSensitivityContribution(g[j]);
    double magnitude = SmmSensitivityInverse(contribution * scale);
    magnitude = std::min(magnitude, dinf);
    g[j] = sign * magnitude;
  }
}

Status SmmClip(std::vector<double>& g, double c, double delta_inf) {
  if (!(c > 0.0)) return InvalidArgumentError("clip threshold c must be > 0");
  if (!(delta_inf > 0.0)) {
    return InvalidArgumentError("delta_inf must be > 0");
  }
  const double dinf = std::max(1.0, std::floor(delta_inf));
  // Map to sensitivity contributions and L1-clip them to c; the fused
  // encode pipeline runs the same two halves block by block.
  const double l1 = SmmClipReduce(g.data(), g.size(), 0.0);
  const double scale = l1 > c ? c / l1 : 1.0;
  SmmClipApply(g.data(), g.size(), scale, dinf);
  return OkStatus();
}

void L2Clip(std::vector<double>& g, double threshold) {
  const double norm = L2Norm(g);
  if (norm > threshold && norm > 0.0) {
    const double scale = threshold / norm;
    for (double& x : g) x *= scale;
  }
}

double L2Norm(const std::vector<double>& g) {
  return std::sqrt(L2NormSqReduce(g.data(), g.size(), 0.0));
}

double L2NormSqReduce(const double* g, size_t n, double sum_so_far) {
  for (size_t j = 0; j < n; ++j) sum_so_far += g[j] * g[j];
  return sum_so_far;
}

}  // namespace smm::mechanisms
