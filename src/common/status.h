#ifndef SMM_COMMON_STATUS_H_
#define SMM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace smm {

/// Error categories used across the library. The library does not throw
/// exceptions; all fallible operations return a Status or StatusOr<T>.
///
/// Code semantics — every rejection path in the library picks its code by
/// this table, so callers can branch on code() rather than parse messages:
///
/// | Code                | Meaning                                          |
/// |---------------------|--------------------------------------------------|
/// | kInvalidArgument    | The input itself is malformed or out of contract:|
/// |                     | bad magic/version/type in a frame, wrong modulus |
/// |                     | or dimension, negative id, zero participants.    |
/// | kFailedPrecondition | The call arrived in the wrong order or state:    |
/// |                     | absorbing into a finalized stream, finalizing    |
/// |                     | twice, fewer survivors than the Shamir threshold.|
/// | kOutOfRange         | A numeric parameter falls outside its domain     |
/// |                     | (e.g. value >= modulus).                         |
/// | kNotFound           | A referenced entity does not exist (unknown      |
/// |                     | session id, unknown kernel name).                |
/// | kDataLoss           | Bytes were lost or damaged in transit: checksum  |
/// |                     | mismatch, frame or stream truncation, a byte     |
/// |                     | stream desynchronized mid-frame.                 |
/// | kInternal           | An invariant the library maintains was violated; |
/// |                     | indicates a bug, not caller error.               |
/// | kUnimplemented      | The operation is not available in this build     |
/// |                     | (e.g. sockets on a non-Linux platform).          |
/// | kDeadlineExceeded   | A wall-clock bound expired before the operation  |
/// |                     | could complete: a round deadline passed below    |
/// |                     | quorum, a wait timed out. Not retryable within   |
/// |                     | the same round — the round is over.              |
/// | kUnavailable        | The peer or service cannot be reached right now  |
/// |                     | (connection refused/reset during setup). Safe to |
/// |                     | retry with backoff.                              |
///
/// The transport distinction matters operationally: kInvalidArgument means
/// the peer sent a well-delivered but nonsensical message (reject the frame,
/// keep the connection), while kDataLoss means the channel itself corrupted
/// or dropped bytes (the frame boundary may be gone — over a byte stream the
/// connection must be torn down).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kDataLoss = 7,
  kDeadlineExceeded = 8,
  kUnavailable = 9,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// Functions that can fail return Status (or StatusOr<T> when they also
/// produce a value). A default-constructed Status is OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OkStatus()) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code_ != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns an OK status.
inline Status OkStatus() { return Status(); }

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

/// A value-or-error result, modeled after absl::StatusOr.
///
/// Either holds a T (status().ok() is true) or an error Status. Accessing
/// value() on an error aborts in debug builds; check ok() first or use
/// the SMM_ASSIGN_OR_RETURN macro.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Constructs from a value (implicitly, to allow `return value;`).
  StatusOr(T value)  // NOLINT
      : status_(), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace smm

/// Propagates an error Status from an expression that evaluates to Status.
#define SMM_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::smm::Status smm_status_tmp_ = (expr);      \
    if (!smm_status_tmp_.ok()) return smm_status_tmp_; \
  } while (false)

#define SMM_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define SMM_STATUS_MACROS_CONCAT_(x, y) SMM_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates an expression returning StatusOr<T>; on success binds the value
/// to `lhs`, on error returns the Status from the enclosing function.
#define SMM_ASSIGN_OR_RETURN(lhs, expr)                                \
  SMM_ASSIGN_OR_RETURN_IMPL_(                                          \
      SMM_STATUS_MACROS_CONCAT_(smm_statusor_, __LINE__), lhs, expr)

#define SMM_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                               \
  if (!statusor.ok()) return statusor.status();         \
  lhs = std::move(statusor).value()

#endif  // SMM_COMMON_STATUS_H_
