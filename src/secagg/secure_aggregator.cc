#include "secagg/secure_aggregator.h"

#include <algorithm>
#include <unordered_set>

#include "secagg/modular.h"

namespace smm::secagg {

StatusOr<std::vector<uint64_t>> IdealAggregator::Aggregate(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  return AggregateParallel(inputs, m, nullptr);
}

StatusOr<std::vector<uint64_t>> IdealAggregator::AggregateParallel(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
    ThreadPool* pool) {
  if (inputs.empty()) return InvalidArgumentError("no inputs to aggregate");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  const size_t dim = inputs[0].size();
  for (const auto& input : inputs) {
    if (input.size() != dim) {
      return InvalidArgumentError("input dimension mismatch");
    }
  }
  if (pool == nullptr || pool->num_threads() == 1 || inputs.size() < 2) {
    std::vector<uint64_t> sum(dim, 0);
    for (const auto& input : inputs) {
      for (size_t j = 0; j < dim; ++j) sum[j] = (sum[j] + input[j] % m) % m;
    }
    return sum;
  }
  // Per-thread partial sums over contiguous participant shards, reduced
  // mod m at the end. Modular addition commutes, so the result is identical
  // to the sequential accumulation for any shard count.
  std::vector<std::vector<uint64_t>> partials(
      static_cast<size_t>(pool->num_threads()));
  pool->ParallelFor(inputs.size(), [&](int chunk, size_t begin, size_t end) {
    std::vector<uint64_t>& partial = partials[static_cast<size_t>(chunk)];
    partial.assign(dim, 0);
    for (size_t i = begin; i < end; ++i) {
      const std::vector<uint64_t>& input = inputs[i];
      for (size_t j = 0; j < dim; ++j) {
        partial[j] = (partial[j] + input[j] % m) % m;
      }
    }
  });
  std::vector<uint64_t> sum(dim, 0);
  for (const auto& partial : partials) {
    if (partial.empty()) continue;  // Chunk count may be below thread count.
    for (size_t j = 0; j < dim; ++j) sum[j] = (sum[j] + partial[j]) % m;
  }
  return sum;
}

MaskedAggregator::MaskedAggregator(
    Options options, std::vector<std::vector<uint64_t>> seeds,
    std::vector<std::vector<std::vector<ShamirShare>>> shares)
    : options_(options),
      seeds_(std::move(seeds)),
      shares_(std::move(shares)) {}

StatusOr<std::unique_ptr<MaskedAggregator>> MaskedAggregator::Create(
    const Options& options) {
  const int n = options.num_participants;
  if (n < 2) return InvalidArgumentError("need at least 2 participants");
  if (options.threshold < 1 || options.threshold > n) {
    return InvalidArgumentError("need 1 <= threshold <= num_participants");
  }
  RandomGenerator rng(options.session_seed);
  // Pairwise seed agreement (simulating the DH key exchange of SecAgg
  // round 0): one uniform seed per unordered pair.
  std::vector<std::vector<uint64_t>> seeds(
      n, std::vector<uint64_t>(static_cast<size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Keep seeds in the Shamir field so they can be shared verbatim.
      seeds[i][j] = rng.UniformUint64(kShamirPrime);
    }
  }
  // Each pair seed is Shamir-shared among all n participants so the server
  // can recover masks of dropped participants from any `threshold`
  // survivors.
  std::vector<std::vector<std::vector<ShamirShare>>> shares(
      n, std::vector<std::vector<ShamirShare>>(static_cast<size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      SMM_ASSIGN_OR_RETURN(
          shares[i][j], ShamirSplit(seeds[i][j], options.threshold, n, rng));
    }
  }
  return std::unique_ptr<MaskedAggregator>(new MaskedAggregator(
      options, std::move(seeds), std::move(shares)));
}

std::vector<uint64_t> MaskedAggregator::ExpandMask(uint64_t seed, size_t dim,
                                                   uint64_t m) {
  RandomGenerator prg(seed);
  std::vector<uint64_t> mask(dim);
  for (auto& v : mask) v = prg.UniformUint64(m);
  return mask;
}

uint64_t MaskedAggregator::PairSeed(int i, int j) const {
  return seeds_[std::min(i, j)][std::max(i, j)];
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::MaskInput(
    int participant, const std::vector<uint64_t>& input, uint64_t m) const {
  const int n = options_.num_participants;
  if (participant < 0 || participant >= n) {
    return InvalidArgumentError("participant index out of range");
  }
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  std::vector<uint64_t> out(input.size());
  for (size_t k = 0; k < input.size(); ++k) out[k] = input[k] % m;
  // Participant i adds +PRG(s_ij) for j > i and -PRG(s_ij) for j < i; the
  // contributions cancel pairwise in the full sum.
  for (int j = 0; j < n; ++j) {
    if (j == participant) continue;
    const std::vector<uint64_t> mask =
        ExpandMask(PairSeed(participant, j), input.size(), m);
    if (j > participant) {
      for (size_t k = 0; k < out.size(); ++k) out[k] = (out[k] + mask[k]) % m;
    } else {
      for (size_t k = 0; k < out.size(); ++k) {
        out[k] = (out[k] + m - mask[k]) % m;
      }
    }
  }
  return out;
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::UnmaskSum(
    const std::vector<std::vector<uint64_t>>& masked_inputs,
    const std::vector<int>& survivors, size_t dim, uint64_t m) const {
  const int n = options_.num_participants;
  if (masked_inputs.size() != survivors.size()) {
    return InvalidArgumentError("one masked input per survivor required");
  }
  if (static_cast<int>(survivors.size()) < options_.threshold) {
    return FailedPreconditionError(
        "fewer survivors than the Shamir threshold; cannot unmask");
  }
  std::unordered_set<int> survivor_set(survivors.begin(), survivors.end());
  if (survivor_set.size() != survivors.size()) {
    return InvalidArgumentError("duplicate survivor index");
  }
  std::vector<uint64_t> sum(dim, 0);
  for (const auto& input : masked_inputs) {
    if (input.size() != dim) {
      return InvalidArgumentError("masked input dimension mismatch");
    }
    for (size_t k = 0; k < dim; ++k) sum[k] = (sum[k] + input[k]) % m;
  }
  // Masks between two survivors cancel. For every (survivor, dropped) pair,
  // reconstruct the pair seed from the survivors' shares and remove the
  // leftover mask term.
  for (int i : survivors) {
    for (int j = 0; j < n; ++j) {
      if (j == i || survivor_set.count(j) > 0) continue;
      // Collect the survivors' shares of the (i, j) pair seed.
      const auto& pair_shares = shares_[std::min(i, j)][std::max(i, j)];
      std::vector<ShamirShare> collected;
      collected.reserve(survivors.size());
      for (int s : survivors) {
        collected.push_back(pair_shares[static_cast<size_t>(s)]);
      }
      SMM_ASSIGN_OR_RETURN(const uint64_t seed,
                           ShamirReconstruct(collected, options_.threshold));
      const std::vector<uint64_t> mask = ExpandMask(seed, dim, m);
      if (j > i) {
        // Survivor i added +mask expecting j to cancel it; subtract.
        for (size_t k = 0; k < dim; ++k) sum[k] = (sum[k] + m - mask[k]) % m;
      } else {
        for (size_t k = 0; k < dim; ++k) sum[k] = (sum[k] + mask[k]) % m;
      }
    }
  }
  return sum;
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::Aggregate(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  const int n = options_.num_participants;
  if (static_cast<int>(inputs.size()) != n) {
    return InvalidArgumentError(
        "Aggregate expects one input per participant");
  }
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  const size_t dim = inputs[0].size();
  std::vector<std::vector<uint64_t>> masked;
  masked.reserve(inputs.size());
  std::vector<int> survivors;
  survivors.reserve(inputs.size());
  for (int i = 0; i < n; ++i) {
    SMM_ASSIGN_OR_RETURN(auto mi, MaskInput(i, inputs[static_cast<size_t>(i)],
                                            m));
    masked.push_back(std::move(mi));
    survivors.push_back(i);
  }
  return UnmaskSum(masked, survivors, dim, m);
}

}  // namespace smm::secagg
