#include "mechanisms/dgm_mechanism.h"

#include <cmath>

#include "mechanisms/clipping.h"
#include "mechanisms/conditional_rounding.h"

namespace smm::mechanisms {

StatusOr<DiscreteGaussianMixtureNoiser> DiscreteGaussianMixtureNoiser::Create(
    double sigma, sampling::SamplerMode mode) {
  SMM_ASSIGN_OR_RETURN(
      auto sampler, sampling::DiscreteGaussianSampler::Create(sigma, mode));
  return DiscreteGaussianMixtureNoiser(std::move(sampler));
}

int64_t DiscreteGaussianMixtureNoiser::Perturb(double x,
                                               RandomGenerator& rng) {
  const double floor_x = std::floor(x);
  const double p = x - floor_x;
  int64_t base = static_cast<int64_t>(floor_x);
  if (rng.Bernoulli(p)) base += 1;
  return base + sampler_.Sample(rng);
}

std::vector<int64_t> DiscreteGaussianMixtureNoiser::PerturbVector(
    const std::vector<double>& x, RandomGenerator& rng) {
  std::vector<int64_t> out;
  std::vector<int64_t> noise;
  PerturbVectorInto(x, rng, out, noise);
  return out;
}

void DiscreteGaussianMixtureNoiser::PerturbVectorInto(
    const std::vector<double>& x, RandomGenerator& rng,
    std::vector<int64_t>& out, std::vector<int64_t>& noise) {
  // The floor/ceil Bernoulli mixture is exactly stochastic rounding.
  StochasticRoundInto(x, rng, out);
  const size_t n = x.size();
  noise.resize(n);
  sampler_.SampleBlock(n, noise.data(), rng);
  for (size_t j = 0; j < n; ++j) out[j] += noise[j];
}

StatusOr<std::unique_ptr<DgmMechanism>> DgmMechanism::Create(
    const Options& options) {
  RotationCodec::Options codec_options;
  codec_options.dim = options.dim;
  codec_options.gamma = options.gamma;
  codec_options.modulus = options.modulus;
  codec_options.rotation_seed = options.rotation_seed;
  codec_options.apply_rotation = options.apply_rotation;
  SMM_ASSIGN_OR_RETURN(auto codec, RotationCodec::Create(codec_options));
  if (!(options.c > 0.0)) {
    return InvalidArgumentError("clip threshold c must be > 0");
  }
  if (!(options.delta_inf > 0.0)) {
    return InvalidArgumentError("delta_inf must be > 0");
  }
  SMM_ASSIGN_OR_RETURN(auto noiser, DiscreteGaussianMixtureNoiser::Create(
                                        options.sigma, options.sampler_mode));
  return std::unique_ptr<DgmMechanism>(
      new DgmMechanism(options, std::move(codec), std::move(noiser)));
}

Status DgmMechanism::EncodeOneInto(const std::vector<double>& x,
                                   RandomGenerator& rng,
                                   EncodeWorkspace& workspace,
                                   int64_t* overflow,
                                   std::vector<uint64_t>& out) {
  SMM_RETURN_IF_ERROR(codec_.RotateScaleInto(x, workspace.real));
  SMM_RETURN_IF_ERROR(SmmClip(workspace.real, options_.c, options_.delta_inf));
  noiser_.PerturbVectorInto(workspace.real, rng, workspace.ints,
                            workspace.noise);
  codec_.WrapInto(workspace.ints, overflow, out);
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> DgmMechanism::EncodeParticipant(
    const std::vector<double>& x, RandomGenerator& rng) {
  EncodeWorkspace workspace;
  std::vector<uint64_t> out;
  int64_t overflow = 0;
  SMM_RETURN_IF_ERROR(EncodeOneInto(x, rng, workspace, &overflow, out));
  overflow_count_.fetch_add(overflow, std::memory_order_relaxed);
  return out;
}

Status DgmMechanism::EncodeBatch(
    const std::vector<std::vector<double>>& inputs, size_t begin, size_t end,
    RandomGenerator* rng_streams, EncodeWorkspace& workspace,
    std::vector<std::vector<uint64_t>>* out) {
  int64_t overflow = 0;
  for (size_t i = begin; i < end; ++i) {
    SMM_RETURN_IF_ERROR(EncodeOneInto(inputs[i], rng_streams[i], workspace,
                                      &overflow, (*out)[i]));
  }
  overflow_count_.fetch_add(overflow, std::memory_order_relaxed);
  return OkStatus();
}

StatusOr<std::vector<double>> DgmMechanism::DecodeSum(
    const std::vector<uint64_t>& zm_sum, int num_participants) {
  (void)num_participants;
  return codec_.Decode(zm_sum);
}

}  // namespace smm::mechanisms
