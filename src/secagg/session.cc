#include "secagg/session.h"

#include <utility>

namespace smm::secagg {

StatusOr<std::unique_ptr<AggregationSession>> AggregationSession::Open(
    SecureAggregator& aggregator, const Options& options) {
  if (options.expected_shard.has_value()) {
    SMM_RETURN_IF_ERROR(ValidateShardSpec(*options.expected_shard));
    if (options.expected_shard->shard_dim != options.dim) {
      return InvalidArgumentError(
          "expected_shard.shard_dim must equal the session dimension");
    }
  }
  SMM_ASSIGN_OR_RETURN(
      auto stream, aggregator.Open(options.dim, options.modulus, options.pool));
  return std::unique_ptr<AggregationSession>(
      new AggregationSession(std::move(stream), options));
}

Status AggregationSession::FlushPendingTile() {
  if (pending_ids_.empty()) return OkStatus();
  const Status status = stream_->AbsorbTile(pending_ids_, pending_payloads_);
  if (!status.ok()) {
    rejected_frames_ += pending_ids_.size();
    // The tile's contributions are gone, so its participants are no longer
    // "seen": a client that retries one of them must not be silently acked
    // as a duplicate of a contribution that never landed.
    for (int id : pending_ids_) seen_ids_.erase(id);
  }
  pending_ids_.clear();
  pending_payloads_.clear();
  return status;
}

Status AggregationSession::Handle(ContributionMsg msg) {
  if (msg.modulus != modulus_) {
    return InvalidArgumentError("contribution modulus does not match session");
  }
  if (expected_shard_.has_value()) {
    if (!msg.shard.has_value()) {
      return InvalidArgumentError(
          "unsharded contribution sent to a shard-worker session");
    }
    if (*msg.shard != *expected_shard_) {
      return InvalidArgumentError(
          "contribution shard spec does not match this shard worker");
    }
  } else if (msg.shard.has_value()) {
    return InvalidArgumentError(
        "sharded contribution sent to an unsharded session");
  }
  if (msg.payload.size() != dim_) {
    return InvalidArgumentError(
        "contribution dimension does not match session");
  }
  // First-wins idempotency: a well-formed resend from a participant whose
  // contribution already landed is acknowledged with OK and not absorbed,
  // so a client retrying after a lost ack can never double-count itself.
  if (seen_ids_.count(msg.participant_id) != 0) {
    ++duplicate_frames_;
    return OkStatus();
  }
  if (tile_rows_ <= 1) {
    SMM_RETURN_IF_ERROR(stream_->Absorb(msg.participant_id, msg.payload));
    seen_ids_.insert(msg.participant_id);
    return OkStatus();
  }
  // Tile mode: buffer up to tile_rows contributions (O(tile_rows·d)
  // pending), then fold them in with one sharded AbsorbTile fork/join
  // instead of one per frame. Bit-identical to immediate absorption —
  // modular addition commutes exactly.
  pending_ids_.push_back(msg.participant_id);
  pending_payloads_.push_back(std::move(msg.payload));
  seen_ids_.insert(msg.participant_id);
  if (pending_ids_.size() >= tile_rows_) return FlushPendingTile();
  return OkStatus();
}

Status AggregationSession::HandleContribution(ContributionMsg msg) {
  const size_t rejected_before = rejected_frames_;
  const Status status = Handle(std::move(msg));
  if (!status.ok() && rejected_frames_ == rejected_before) {
    ++rejected_frames_;  // Not already counted by a failed tile flush.
  }
  return status;
}

Status AggregationSession::HandleFrame(ByteSpan frame) {
  auto message = DecodeFrame(frame);
  if (!message.ok()) {
    ++rejected_frames_;
    return message.status();
  }
  if (auto* contribution = std::get_if<ContributionMsg>(&*message)) {
    return HandleContribution(std::move(*contribution));
  }
  if (std::get_if<SharesMsg>(&*message) != nullptr) {
    // The simulated aggregator distributed every pair seed's shares at
    // Create time, so the session only acknowledges the deposit; a real
    // backend would persist the shares for Finalize-time recovery here.
    ++shares_received_;
    return OkStatus();
  }
  ++rejected_frames_;
  if (std::get_if<PartialSumMsg>(&*message) != nullptr) {
    return InvalidArgumentError(
        "partial sum frames are coordinator-inbound and cannot be received "
        "by an aggregation session");
  }
  return InvalidArgumentError(
      "sum frames are server-outbound and cannot be received");
}

Status AggregationSession::DrainTransport(FrameTransport& transport) {
  while (auto frame = transport.Receive()) {
    SMM_RETURN_IF_ERROR(HandleFrame(*frame));
  }
  // "Drained" can mean "broken": a socket backend reports nullopt when a
  // hard error ends the stream, and then the drain must not look clean.
  return transport.receive_status();
}

StatusOr<SumMsg> AggregationSession::Finalize() {
  SMM_RETURN_IF_ERROR(FlushPendingTile());
  if (contributions() < min_contributions_) {
    return FailedPreconditionError(
        "round below quorum: fewer contributions than min_contributions");
  }
  SumMsg msg;
  msg.modulus = modulus_;
  msg.num_contributors = static_cast<uint32_t>(stream_->absorbed());
  SMM_ASSIGN_OR_RETURN(msg.sum, stream_->Finalize());
  return msg;
}

}  // namespace smm::secagg
