// bench_matrix: the scenario-matrix benchmark driver.
//
//   bench_matrix [--fast|--full] [--filter SUBSTR] [--repeats N]
//                [--wide] [--json PATH] [--list]
//   bench_matrix --calibrate [--tuning-out PATH] [--fast|--full]
//
// The default mode enumerates every registered scenario's axis matrix
// (optionally name-filtered), prints one line per enumerated point, and
// with --json writes the schema-versioned artifact that
// bench/check_bench_regression.py diffs and bench/validate_bench_artifact.py
// validates. Exit status is 1 if any point's bit-identity verdict failed.
//
// --calibrate measures this host's tile sizing, session thread count, and
// per-kernel dispatch crossovers, and writes them as tuning.json (default
// ./tuning.json, override with --tuning-out). Load the file at startup by
// pointing SMM_TUNING at it, or pass it to LoadRuntimeTuningFromFile.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "common/simd.h"
#include "common/tuning.h"
#include "runner.h"

namespace smm::bench {
namespace {

const char* ParseFlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int ListScenarios() {
  std::printf("registered scenarios:\n");
  for (const auto& scenario : ScenarioRegistry::Global().Instantiate()) {
    std::printf("  %-16s %s%s\n", scenario->name(),
                scenario->description(),
                scenario->stable() ? " [stable: gates CI]" : "");
  }
  return 0;
}

int Calibrate(Scale scale, const char* out_path) {
  std::printf("calibrating runtime tuning (%s)...\n", ScaleName(scale));
  auto tuning = RunCalibration(scale, /*verbose=*/true);
  if (!tuning.ok()) {
    std::printf("calibration failed: %s\n",
                tuning.status().ToString().c_str());
    return 1;
  }
  const std::string json = RuntimeTuningToJson(*tuning);
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::printf("cannot open %s for tuning output\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s:\n%s", out_path, json.c_str());
  std::printf("load it with SMM_TUNING=%s\n", out_path);
  return 0;
}

int Main(int argc, char** argv) {
  RegisterAllScenarios();
  const Scale scale = ParseScale(argc, argv);

  if (HasFlag(argc, argv, "--list")) return ListScenarios();
  if (HasFlag(argc, argv, "--calibrate")) {
    const char* out = ParseFlagValue(argc, argv, "--tuning-out");
    return Calibrate(scale, out != nullptr ? out : "tuning.json");
  }

  RunOptions options;
  options.scale = scale;
  options.wide = HasFlag(argc, argv, "--wide");
  if (const char* repeats = ParseFlagValue(argc, argv, "--repeats")) {
    options.repeats = std::atoi(repeats);
  }
  const char* filter = ParseFlagValue(argc, argv, "--filter");
  const char* json_path = ParseFlagValue(argc, argv, "--json");

  std::printf("bench_matrix (%s). Hardware threads: %d, dispatch: %s\n",
              ScaleName(scale), ThreadPool::HardwareThreads(),
              simd::Active().name);
  auto report = RunMatrix(filter != nullptr ? filter : "", options);
  if (!report.ok()) {
    std::printf("matrix run failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  if (json_path != nullptr) {
    const Status written = WriteMatrixJson(*report, json_path);
    if (!written.ok()) {
      std::printf("%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path);
  }
  size_t points = 0;
  for (const auto& scenario : report->scenarios) {
    points += scenario.runs.size();
  }
  std::printf("matrix complete: %zu scenarios, %zu points, "
              "bit-identity %s\n",
              report->scenarios.size(), points,
              report->AllBitIdentical() ? "clean" : "VIOLATED (bug!)");
  return report->AllBitIdentical() ? 0 : 1;
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) { return smm::bench::Main(argc, argv); }
