#ifndef SMM_NET_SERVER_H_
#define SMM_NET_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/shard_plan.h"
#include "secagg/transport.h"

namespace smm::net {

/// Server counters, all monotonic since Start.
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_completed = 0;
  uint64_t sessions_failed = 0;
  uint64_t connections_accepted = 0;
  /// Connections torn down abnormally: stream desynchronization, reset, or
  /// EOF mid-frame.
  uint64_t connections_dropped = 0;
  /// Frames decoded and accepted by a session.
  uint64_t frames_delivered = 0;
  /// Frames rejected by a session (parse failure or protocol violation);
  /// the connection survives — the frame boundary is intact.
  uint64_t frames_rejected = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Sessions whose deadline expired below quorum: the round failed with
  /// kDeadlineExceeded instead of hanging its waiters.
  uint64_t sessions_deadline_exceeded = 0;
  /// Sessions finalized early at deadline expiry with a survivor set of at
  /// least min_contributions (dropout recovery covers the rest).
  uint64_t sessions_quorum_finalized = 0;
  /// Connections evicted by the idle/stalled-read timeout (slow-loris
  /// peers that stopped completing frames but kept the socket open).
  uint64_t connections_evicted = 0;
};

/// The async TCP aggregation service: thousands of concurrent
/// AggregationSessions multiplexed over a fixed-size pool of epoll event
/// loops — the library -> service step the ROADMAP's "millions of users"
/// north star requires. Each OpenSession binds its own loopback listener
/// (one port per aggregation round, so clients address a round by port)
/// and pins the session, its listener, and every connection accepted from
/// it to exactly one event loop.
///
/// Concurrency model: a session's frames are handled only on its loop
/// thread — no locks around session state, no cross-loop sharing; the
/// fixed thread budget comes from running many sessions per loop, not many
/// threads per session. Control operations (open/finalize/stop) post
/// commands to the owning loop through an eventfd wakeup; results come
/// back through a mutex+condvar result table (WaitForSum).
///
/// Data path per connection: level-triggered epoll readiness -> one
/// bounded read per event (read_chunk_bytes, fairness across connections)
/// -> FrameReassembler -> AggregationSession::HandleFrame. A frame the
/// session rejects costs only that frame (boundary intact, connection
/// survives); a desynchronized byte stream drops the connection. Unread
/// bytes stay in the kernel socket buffer, so the TCP receive window is
/// the backpressure signal all the way to the client's send call.
///
/// Round completion: when a session has accepted
/// `expected_contributions` (or FinalizeSession is called), the loop
/// finalizes the stream, encodes the SumMsg frame once, broadcasts it to
/// every connection still open on that session (partial writes finish
/// under EPOLLOUT against a bounded per-connection outbound buffer), then
/// closes the session's listener and connections.
///
/// The aggregator passed to OpenSession must outlive the session's
/// completion and must tolerate concurrent Open/stream use across loops
/// (the provided aggregators keep per-stream state only). Sessions are
/// opened with pool = nullptr — absorption parallelism inside one
/// contribution would fight the event-loop threads; throughput comes from
/// session-level parallelism.
class AggregationServer {
 public:
  struct Options {
    /// Event loops (each one thread + one epoll instance). The fixed
    /// thread budget for every session on this server.
    int event_loop_threads = 4;
    /// Per-frame payload cap for reassembly.
    size_t max_frame_bytes = size_t{1} << 24;
    int listen_backlog = 512;
    /// Bytes read per readiness event per connection (fairness quantum).
    size_t read_chunk_bytes = 64 * 1024;
    /// Evict a connection that has not completed a frame for this long
    /// (and has not cleanly half-closed): catches both idle sockets and
    /// slow-loris peers trickling bytes that never finish a frame. The
    /// eviction counts as a dropped connection and in
    /// connections_evicted. 0 (default) disables eviction.
    int64_t idle_timeout_ms = 0;
  };

  struct SessionOptions {
    secagg::AggregationSession::Options session;
    /// When > 0, the server finalizes and broadcasts as soon as this many
    /// contributions are accepted. 0 = finalize only via FinalizeSession.
    size_t expected_contributions = 0;
    /// Round deadline, measured from OpenSession. When it expires before
    /// the session finalized: if at least session.min_contributions
    /// contributions were accepted (the quorum), the server finalizes and
    /// broadcasts with the survivor set — dropout recovery handles the
    /// missing participants; otherwise the round fails and its WaitForSum
    /// returns kDeadlineExceeded instead of blocking forever. 0 (default)
    /// = no deadline.
    int64_t deadline_ms = 0;
  };

  /// A handle to an opened session: its server-assigned id and the
  /// loopback port its clients connect to.
  struct SessionInfo {
    uint64_t id = 0;
    uint16_t port = 0;
  };

  /// What a failed shard worker does to the round.
  enum class ShardFailurePolicy {
    /// The first failed shard fails the whole round (the default; exactly
    /// the pre-degradation behavior).
    kFailFast,
    /// WaitForShardedSum reopens a spare worker session for each failed
    /// shard — over the same derived shard aggregator, so the re-keyed
    /// masks are identical and resent sub-frames stay byte-valid — and
    /// returns kUnavailable so the caller resends to the new ports and
    /// waits again. Bounded by max_shard_retries per shard.
    kRetryOnSpareWorker,
  };

  struct ShardedRoundOptions {
    /// Full round dimension, sliced per ShardPlan across the workers.
    size_t dim = 0;
    uint64_t modulus = 0;
    /// Shard workers; kInvalidArgument if < 1 or > dim.
    size_t shard_count = 1;
    /// Per-worker tile buffering (AggregationSession::Options::tile_rows).
    size_t tile_rows = 1;
    /// Per-worker auto-finalize trigger: each shard worker finalizes after
    /// this many sub-frames (normally the participant count — every
    /// participant sends one sub-frame to every shard). 0 = finalize each
    /// shard via FinalizeSession.
    size_t expected_contributions = 0;
    /// Per-shard round deadline (SessionOptions::deadline_ms semantics,
    /// applied to every worker session). 0 = none.
    int64_t deadline_ms = 0;
    /// Per-shard quorum at deadline expiry
    /// (AggregationSession::Options::min_contributions for every worker).
    size_t min_contributions = 0;
    ShardFailurePolicy failure_policy = ShardFailurePolicy::kFailFast;
    /// Spare-worker reopens allowed per shard under kRetryOnSpareWorker.
    int max_shard_retries = 1;
  };

  /// A handle to one dimension-sharded round: shard s is the worker
  /// session `shards[s]`, addressed by (session id, shard index) and
  /// reachable on its own port, covering plan.Spec(s)'s coordinate range.
  /// The handle owns the per-shard protocol instances
  /// CreateShardAggregator derived (null entries = the base aggregator
  /// serves that shard), so it must outlive every worker's completion —
  /// keep it alive until WaitForShardedSum returns.
  struct ShardedRoundInfo {
    secagg::ShardPlan plan;
    std::vector<SessionInfo> shards;
    std::vector<std::unique_ptr<secagg::SecureAggregator>> shard_aggregators;
    /// Degradation state, maintained by WaitForShardedSum. `collected[s]`
    /// holds shard s's sum once its worker finalized, so a re-wait after a
    /// spare-worker reopen only waits on the shards that failed.
    std::vector<std::optional<secagg::SumMsg>> collected;
    /// Spare-worker reopens consumed, per shard.
    std::vector<int> shard_retries;
    /// The round's options and base aggregator, kept for spare-worker
    /// reopens. The aggregator must outlive the round (it already must).
    ShardedRoundOptions options;
    secagg::SecureAggregator* base = nullptr;
  };

  /// Opens one logical round as shard_count worker sessions, one per
  /// contiguous dimension range of the ShardPlan, each over the aggregator
  /// instance CreateShardAggregator derives for its shard. At
  /// shard_count == 1 this is exactly one unsharded OpenSession (version-1
  /// frames, byte-identical round). Thread-safe.
  StatusOr<ShardedRoundInfo> OpenShardedRound(
      secagg::SecureAggregator& aggregator,
      const ShardedRoundOptions& options);

  /// Blocks until every shard worker of the round finalizes, then
  /// tree-reduces their per-range sums (secagg::MergePartialSums) into the
  /// round's SumMsg — bit-identical to the unsharded session's sum.
  ///
  /// Shard failures follow options.failure_policy: under kFailFast the
  /// first failed worker fails the round with its status; under
  /// kRetryOnSpareWorker each failed shard (with retries left) is reopened
  /// as a fresh worker session — round.shards[s] is updated to the spare
  /// worker's port — and the call returns kUnavailable: the caller resends
  /// the failed shards' sub-frames (byte-identical re-encodes are valid —
  /// same derived aggregator, same masks) and calls WaitForShardedSum
  /// again; already-collected shards are not re-waited. A shard out of
  /// retries fails the round. Results consume like WaitForSum (one wait
  /// per worker session).
  StatusOr<secagg::SumMsg> WaitForShardedSum(ShardedRoundInfo& round);

  /// Starts the event loops. kUnimplemented on non-Linux builds.
  static StatusOr<std::unique_ptr<AggregationServer>> Start(
      const Options& options);
  static StatusOr<std::unique_ptr<AggregationServer>> Start() {
    return Start(Options());
  }

  /// Stops all loops, failing every unfinished session and closing every
  /// socket. Idempotent; the destructor calls it.
  ~AggregationServer();
  void Stop();

  /// Opens one aggregation round: binds a listener on an ephemeral
  /// loopback port, opens an AggregationSession over `aggregator`, and
  /// registers both with one event loop (round-robin). Thread-safe.
  StatusOr<SessionInfo> OpenSession(secagg::SecureAggregator& aggregator,
                                    const SessionOptions& options);

  /// Posts a finalize command to the session's loop (for rounds without an
  /// expected_contributions trigger). The result arrives via WaitForSum.
  Status FinalizeSession(uint64_t session_id);

  /// Blocks until the session finalizes (or fails, or the server stops)
  /// and returns the SumMsg it broadcast. One-shot: the call consumes the
  /// session's result and releases its bookkeeping (a long-running server
  /// would otherwise retain a SumMsg per completed round); a second wait
  /// on the same id returns kNotFound.
  StatusOr<secagg::SumMsg> WaitForSum(uint64_t session_id);

  ServerStats Stats() const;
  int event_loop_threads() const;

 private:
  struct Impl;
  explicit AggregationServer(std::unique_ptr<Impl> impl);

  /// Opens a spare worker session for shard `s` of `round` (same derived
  /// aggregator, same options) and updates round.shards[s].
  Status ReopenShardWorker(ShardedRoundInfo& round, size_t s);

  std::unique_ptr<Impl> impl_;
};

}  // namespace smm::net

#endif  // SMM_NET_SERVER_H_
