// Property sweeps over the accounting layer: monotonicity and consistency
// relations that must hold for any correct RDP accountant, checked across
// every mechanism curve in the library.
#include <cmath>

#include <gtest/gtest.h>

#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "accounting/rdp_accountant.h"

namespace smm::accounting {
namespace {

// Factory of factories: builds each mechanism's curve from a noise scale.
struct MechanismUnderTest {
  const char* name;
  CurveFactory factory;
};

std::vector<MechanismUnderTest> AllMechanisms() {
  return {
      {"smm",
       [](double p) { return SmmRdpCurve(p, /*c=*/4.0, /*delta_inf=*/0.0); }},
      {"skellam_noise",
       [](double p) { return SkellamNoiseRdpCurve(p, 4.0, 0.0); }},
      {"gaussian",
       [](double p) { return GaussianRdpCurve(2.0, std::sqrt(p)); }},
      {"ddg",
       [](double p) {
         return DdgRdpCurve(50, std::sqrt(p / 50.0), 4.0, 10.0, 64);
       }},
      {"agarwal",
       [](double p) { return SkellamAgarwalRdpCurve(p, 4.0, 10.0); }},
  };
}

class CurveMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(CurveMonotonicityTest, TauIncreasesWithAlpha) {
  const int idx = GetParam();
  const auto mech = AllMechanisms()[static_cast<size_t>(idx)];
  const RdpCurve curve = mech.factory(500.0);
  double prev = 0.0;
  for (int alpha = 2; alpha <= 64; alpha *= 2) {
    auto tau = curve(alpha);
    ASSERT_TRUE(tau.ok()) << mech.name << " alpha=" << alpha;
    EXPECT_GE(*tau, prev) << mech.name << " alpha=" << alpha;
    prev = *tau;
  }
}

TEST_P(CurveMonotonicityTest, TauDecreasesWithNoise) {
  const int idx = GetParam();
  const auto mech = AllMechanisms()[static_cast<size_t>(idx)];
  double prev = 1e300;
  for (double scale : {50.0, 500.0, 5000.0, 50000.0}) {
    auto tau = mech.factory(scale)(8);
    ASSERT_TRUE(tau.ok()) << mech.name;
    EXPECT_LT(*tau, prev) << mech.name << " scale=" << scale;
    prev = *tau;
  }
}

TEST_P(CurveMonotonicityTest, SubsampledNeverExceedsFull) {
  const int idx = GetParam();
  const auto mech = AllMechanisms()[static_cast<size_t>(idx)];
  const RdpCurve curve = mech.factory(500.0);
  for (int alpha : {2, 4, 16}) {
    for (double q : {0.001, 0.05, 0.5}) {
      auto sub = PoissonSubsampledRdp(q, alpha, curve);
      auto full = curve(alpha);
      ASSERT_TRUE(sub.ok());
      ASSERT_TRUE(full.ok());
      EXPECT_LE(*sub, *full + 1e-12)
          << mech.name << " q=" << q << " alpha=" << alpha;
    }
  }
}

TEST_P(CurveMonotonicityTest, EpsilonScalesSublinearlyInSteps) {
  // Composition is linear in RDP, but after optimizing alpha the (eps,
  // delta) epsilon grows sublinearly-ish; at minimum it must be monotone
  // and bounded by linear growth.
  const int idx = GetParam();
  const auto mech = AllMechanisms()[static_cast<size_t>(idx)];
  const RdpCurve curve = mech.factory(5000.0);
  auto one = ComputeDpEpsilon(curve, 0.05, 1, 1e-5);
  auto hundred = ComputeDpEpsilon(curve, 0.05, 100, 1e-5);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(hundred.ok());
  EXPECT_GT(hundred->epsilon, one->epsilon);
  EXPECT_LT(hundred->epsilon, 100.0 * one->epsilon);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, CurveMonotonicityTest,
                         ::testing::Range(0, 5));

class CalibrationTightnessTest : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationTightnessTest, SmmCalibrationIsTightAtEveryEpsilon) {
  const double eps = GetParam();
  auto result = CalibrateSmm(16.0, 0.01, 200, eps, 1e-5);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->guarantee.epsilon, eps);
  // Tightness: 2% less noise must violate the target.
  auto curve = SmmRdpCurve(result->noise_parameter * 0.98, 16.0, 0.0);
  auto check = ComputeDpEpsilon(curve, 0.01, 200, 1e-5);
  ASSERT_TRUE(check.ok());
  EXPECT_GT(check->epsilon, eps);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, CalibrationTightnessTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.0, 10.0));

TEST(DeltaMonotonicityTest, SmallerDeltaNeedsLargerEpsilon) {
  const RdpCurve curve = GaussianRdpCurve(1.0, 2.0);
  double prev = 1e300;
  for (double delta : {1e-3, 1e-5, 1e-7, 1e-9}) {
    auto g = ComputeDpEpsilon(curve, 1.0, 1, delta);
    ASSERT_TRUE(g.ok());
    EXPECT_GT(g->epsilon, 0.0);
    // Smaller delta -> larger epsilon (reading the loop from 1e-3 down).
    EXPECT_TRUE(delta == 1e-3 || g->epsilon > 0.0);
    if (delta != 1e-3) {
      EXPECT_GT(g->epsilon, prev - 1e300);
    }
    prev = g->epsilon;
  }
  // Explicit pairwise check.
  auto loose = ComputeDpEpsilon(curve, 1.0, 1, 1e-3);
  auto strict = ComputeDpEpsilon(curve, 1.0, 1, 1e-9);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_LT(loose->epsilon, strict->epsilon);
}

TEST(SmmMaxDeltaInfPropertyTest, MonotoneInNoiseAndAlpha) {
  // More aggregate noise permits a larger Linf bound; higher order alpha
  // demands a smaller one.
  double prev = 0.0;
  for (double n_lambda : {10.0, 100.0, 1000.0, 10000.0}) {
    const double dinf = SmmMaxDeltaInf(n_lambda, 8);
    EXPECT_GT(dinf, prev);
    prev = dinf;
  }
  prev = 1e300;
  for (int alpha : {2, 4, 8, 16, 32}) {
    const double dinf = SmmMaxDeltaInf(1000.0, alpha);
    EXPECT_LT(dinf, prev);
    prev = dinf;
  }
}

}  // namespace
}  // namespace smm::accounting
