#include "mechanisms/conditional_rounding.h"

#include <cmath>

#include "common/simd.h"

namespace smm::mechanisms {

std::vector<int64_t> StochasticRound(const std::vector<double>& g,
                                     RandomGenerator& rng) {
  std::vector<int64_t> out;
  StochasticRoundInto(g, rng, out);
  return out;
}

void StochasticRoundInto(const std::vector<double>& g, RandomGenerator& rng,
                         std::vector<int64_t>& out) {
  out.resize(g.size());
  // The SIMD layer's rounding primitive consumes `rng` exactly like the
  // historical floor + Bernoulli loop (one draw per nonzero fraction, in
  // order), so every mechanism built on stochastic rounding stays
  // bit-identical across dispatch paths; conditional_rounding_test pins the
  // equivalence against the old loop.
  simd::ScaleRoundStochasticInto(g.data(), g.size(), /*scale=*/1.0, rng,
                                 out.data());
}

double ConditionalRoundingNormBound(double gamma, double l2_bound, size_t dim,
                                    double beta) {
  const double d = static_cast<double>(dim);
  const double scaled = gamma * l2_bound;
  return std::sqrt(scaled * scaled + d / 4.0 +
                   std::sqrt(2.0 * std::log(1.0 / beta)) *
                       (scaled + std::sqrt(d) / 2.0));
}

StatusOr<std::vector<int64_t>> ConditionallyRound(
    const std::vector<double>& g, double norm_bound, int max_retries,
    RandomGenerator& rng, int64_t* rejections) {
  std::vector<int64_t> out;
  SMM_RETURN_IF_ERROR(
      ConditionallyRoundInto(g, norm_bound, max_retries, rng, rejections,
                             out));
  return out;
}

Status ConditionallyRoundInto(const std::vector<double>& g, double norm_bound,
                              int max_retries, RandomGenerator& rng,
                              int64_t* rejections, std::vector<int64_t>& out) {
  return ConditionallyRoundInto(g.data(), g.size(), norm_bound, max_retries,
                                rng, rejections, out);
}

Status ConditionallyRoundInto(const double* g, size_t n, double norm_bound,
                              int max_retries, RandomGenerator& rng,
                              int64_t* rejections, std::vector<int64_t>& out) {
  if (!(norm_bound > 0.0)) {
    return InvalidArgumentError("norm_bound must be > 0");
  }
  if (max_retries < 1) return InvalidArgumentError("max_retries must be >= 1");
  const double bound_sq = norm_bound * norm_bound;
  out.resize(n);
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    simd::ScaleRoundStochasticInto(g, n, /*scale=*/1.0, rng, out.data());
    double norm_sq = 0.0;
    for (int64_t v : out) {
      norm_sq += static_cast<double>(v) * static_cast<double>(v);
    }
    if (norm_sq <= bound_sq) return OkStatus();
    if (rejections != nullptr) ++*rejections;
  }
  // Fallback: round to nearest, which cannot exceed the bound for inputs
  // whose scaled norm respects the pre-rounding clip.
  for (size_t j = 0; j < n; ++j) {
    out[j] = static_cast<int64_t>(std::llround(g[j]));
  }
  return OkStatus();
}

}  // namespace smm::mechanisms
