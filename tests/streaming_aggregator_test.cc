// Property tests for the streaming aggregation subsystem: Finalize must be
// bit-identical to the batch Aggregate/AggregateParallel path for both
// implementations, across thread counts {1, 2, 8} (+ SMM_THREADS), shuffled
// absorb orders, per-participant vs tiled absorbs, dropout patterns, and
// moduli spanning the full uint64 range — including 2^64 - 59, where a
// naive `(acc + v) % m` accumulator silently wraps.
#include "secagg/streaming_aggregator.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "secagg/secure_aggregator.h"

namespace smm::secagg {
namespace {

constexpr uint64_t kLargePrime = 18446744073709551557ULL;  // 2^64 - 59.

const std::vector<uint64_t>& TestModuli() {
  static const std::vector<uint64_t> kModuli = {1ULL << 16, 1ULL << 32,
                                                kLargePrime};
  return kModuli;
}

/// Thread counts every sweep covers: 1, 2, 8, plus SMM_THREADS when the
/// environment sets it to something else (the CI sanitizer jobs export
/// SMM_THREADS=8).
std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 8};
  const char* env = std::getenv("SMM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long threads = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && threads > 0 && threads <= 4096 &&
        threads != 1 && threads != 2 && threads != 8) {
      counts.push_back(static_cast<int>(threads));
    }
  }
  return counts;
}

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

/// Deterministic Fisher-Yates shuffle of {0, ..., n-1}.
std::vector<size_t> ShuffledOrder(size_t n, uint64_t seed) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  RandomGenerator rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.UniformUint64(i)]);
  }
  return order;
}

TEST(StreamingAggregatorTest, IdealMatchesBatchAcrossThreadsAndOrders) {
  const int n = 13;
  const size_t dim = 33;  // Deliberately not a multiple of the chunk count.
  IdealAggregator agg;
  for (uint64_t m : TestModuli()) {
    const auto inputs = RandomInputs(n, dim, m, 21 + m % 97);
    auto batch = agg.Aggregate(inputs, m);
    ASSERT_TRUE(batch.ok());
    for (int threads : ThreadCounts()) {
      ThreadPool pool(threads);
      // Shuffled per-participant absorbs.
      auto stream = agg.Open(dim, m, &pool);
      ASSERT_TRUE(stream.ok());
      for (size_t i : ShuffledOrder(inputs.size(), m ^ 5)) {
        ASSERT_TRUE(
            (*stream)->Absorb(static_cast<int>(i), inputs[i]).ok());
      }
      EXPECT_EQ((*stream)->absorbed(), inputs.size());
      auto streamed = (*stream)->Finalize();
      ASSERT_TRUE(streamed.ok());
      EXPECT_EQ(*streamed, *batch) << "m=" << m << " threads=" << threads;
    }
  }
}

TEST(StreamingAggregatorTest, IdealTiledAbsorbMatchesBatch) {
  const int n = 29;
  const size_t dim = 65;
  IdealAggregator agg;
  for (uint64_t m : TestModuli()) {
    const auto inputs = RandomInputs(n, dim, m, 4 + m % 89);
    auto batch = agg.Aggregate(inputs, m);
    ASSERT_TRUE(batch.ok());
    for (int threads : ThreadCounts()) {
      ThreadPool pool(threads);
      for (size_t tile : {size_t{1}, size_t{4}, size_t{7}, size_t{29}}) {
        auto stream = agg.Open(dim, m, &pool);
        ASSERT_TRUE(stream.ok());
        for (size_t begin = 0; begin < inputs.size(); begin += tile) {
          const size_t end = std::min(inputs.size(), begin + tile);
          std::vector<int> ids;
          std::vector<std::vector<uint64_t>> tile_inputs;
          for (size_t i = begin; i < end; ++i) {
            ids.push_back(static_cast<int>(i));
            tile_inputs.push_back(inputs[i]);
          }
          ASSERT_TRUE((*stream)->AbsorbTile(ids, tile_inputs).ok());
        }
        auto streamed = (*stream)->Finalize();
        ASSERT_TRUE(streamed.ok());
        EXPECT_EQ(*streamed, *batch)
            << "m=" << m << " threads=" << threads << " tile=" << tile;
      }
    }
  }
}

MaskedAggregator::Options BasicOptions(int n, int threshold) {
  MaskedAggregator::Options o;
  o.num_participants = n;
  o.threshold = threshold;
  o.session_seed = 33;
  return o;
}

TEST(StreamingAggregatorTest, MaskedMatchesBatchFullParticipation) {
  const int n = 10;
  const size_t dim = 41;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 4));
  ASSERT_TRUE(agg.ok());
  for (uint64_t m : TestModuli()) {
    const auto inputs = RandomInputs(n, dim, m, 7 + m % 83);
    auto batch = (*agg)->Aggregate(inputs, m);
    ASSERT_TRUE(batch.ok());
    for (int threads : ThreadCounts()) {
      ThreadPool pool(threads);
      auto stream = (*agg)->Open(dim, m, &pool);
      ASSERT_TRUE(stream.ok());
      for (size_t i : ShuffledOrder(inputs.size(), m ^ 11)) {
        auto masked =
            (*agg)->MaskInput(static_cast<int>(i), inputs[i], m, &pool);
        ASSERT_TRUE(masked.ok());
        ASSERT_TRUE((*stream)->Absorb(static_cast<int>(i), *masked).ok());
      }
      auto streamed = (*stream)->Finalize();
      ASSERT_TRUE(streamed.ok());
      EXPECT_EQ(*streamed, *batch) << "m=" << m << " threads=" << threads;
    }
  }
}

TEST(StreamingAggregatorTest, MaskedDropoutRecoveryMatchesUnmaskSum) {
  const int n = 9;
  const size_t dim = 26;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 3));
  ASSERT_TRUE(agg.ok());
  const std::vector<std::vector<int>> dropout_patterns = {
      {},            // Everyone survives.
      {4},           // One dropout.
      {1, 3, 5, 7},  // Heavy dropout, survivors above threshold.
  };
  for (uint64_t m : TestModuli()) {
    const auto inputs = RandomInputs(n, dim, m, 3 + m % 79);
    for (const auto& dropped : dropout_patterns) {
      std::vector<int> survivors;
      for (int i = 0; i < n; ++i) {
        if (std::find(dropped.begin(), dropped.end(), i) == dropped.end()) {
          survivors.push_back(i);
        }
      }
      std::vector<std::vector<uint64_t>> masked;
      for (int i : survivors) {
        auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
        ASSERT_TRUE(mi.ok());
        masked.push_back(std::move(*mi));
      }
      auto reference = (*agg)->UnmaskSum(masked, survivors, dim, m);
      ASSERT_TRUE(reference.ok());
      for (int threads : ThreadCounts()) {
        ThreadPool pool(threads);
        auto stream = (*agg)->Open(dim, m, &pool);
        ASSERT_TRUE(stream.ok());
        // Absorb survivors in shuffled order; the dropped participants
        // simply never show up, and Finalize treats them as dropped.
        for (size_t p : ShuffledOrder(survivors.size(), m ^ threads)) {
          ASSERT_TRUE(
              (*stream)->Absorb(survivors[p], masked[p]).ok());
        }
        auto streamed = (*stream)->Finalize();
        ASSERT_TRUE(streamed.ok());
        EXPECT_EQ(*streamed, *reference)
            << "m=" << m << " threads=" << threads << " dropped="
            << dropped.size();
      }
    }
  }
}

TEST(StreamingAggregatorTest, MaskedStreamValidates) {
  const int n = 5;
  const size_t dim = 8;
  const uint64_t m = 1 << 12;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 2));
  ASSERT_TRUE(agg.ok());
  const auto inputs = RandomInputs(n, dim, m, 15);

  auto stream = (*agg)->Open(dim, m);
  ASSERT_TRUE(stream.ok());
  // Out-of-range and duplicate participants are rejected.
  EXPECT_FALSE((*stream)->Absorb(-1, inputs[0]).ok());
  EXPECT_FALSE((*stream)->Absorb(n, inputs[0]).ok());
  ASSERT_TRUE((*stream)->Absorb(0, inputs[0]).ok());
  EXPECT_FALSE((*stream)->Absorb(0, inputs[0]).ok());
  // Dimension mismatch is rejected.
  EXPECT_FALSE((*stream)->Absorb(1, std::vector<uint64_t>(dim + 1, 0)).ok());
  // One survivor is below the threshold of 2: Finalize must fail.
  EXPECT_FALSE((*stream)->Finalize().ok());

  // A failed Finalize still consumes the stream.
  EXPECT_FALSE((*stream)->Absorb(1, inputs[1]).ok());
}

TEST(StreamingAggregatorTest, MaskedRejectedTileLeavesStreamUntouched) {
  // A tile that fails admission (duplicate id inside the tile) must leave
  // no participant marked absorbed: absorbing them properly afterwards has
  // to succeed and produce the exact unmasked sum.
  const int n = 4;
  const size_t dim = 8;
  const uint64_t m = 1 << 14;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 2));
  ASSERT_TRUE(agg.ok());
  const auto inputs = RandomInputs(n, dim, m, 27);
  std::vector<std::vector<uint64_t>> masked;
  for (int i = 0; i < n; ++i) {
    auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
  }
  auto batch = (*agg)->Aggregate(inputs, m);
  ASSERT_TRUE(batch.ok());

  auto stream = (*agg)->Open(dim, m);
  ASSERT_TRUE(stream.ok());
  // Duplicate inside the tile: rejected, nothing absorbed.
  EXPECT_FALSE(
      (*stream)->AbsorbTile({0, 1, 1}, {masked[0], masked[1], masked[1]})
          .ok());
  EXPECT_EQ((*stream)->absorbed(), 0u);
  // Tile colliding with an already-absorbed participant: also atomic.
  ASSERT_TRUE((*stream)->Absorb(3, masked[3]).ok());
  EXPECT_FALSE(
      (*stream)->AbsorbTile({2, 3}, {masked[2], masked[3]}).ok());
  // Every participant not yet absorbed can still be absorbed cleanly.
  ASSERT_TRUE((*stream)->AbsorbTile({0, 1, 2},
                                    {masked[0], masked[1], masked[2]})
                  .ok());
  auto sum = (*stream)->Finalize();
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, *batch);
}

TEST(StreamingAggregatorTest, StreamLifecycleErrors) {
  IdealAggregator agg;
  const size_t dim = 4;
  const uint64_t m = 256;
  // Open validates its parameters.
  EXPECT_FALSE(agg.Open(0, m).ok());
  EXPECT_FALSE(agg.Open(dim, 1).ok());
  EXPECT_FALSE(agg.Open(dim, 0).ok());

  auto stream = agg.Open(dim, m);
  ASSERT_TRUE(stream.ok());
  // Finalizing with nothing absorbed fails (the batch path rejects empty
  // input lists the same way).
  EXPECT_FALSE((*stream)->Finalize().ok());

  stream = agg.Open(dim, m);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Absorb(0, std::vector<uint64_t>(dim, 3)).ok());
  auto sum = (*stream)->Finalize();
  ASSERT_TRUE(sum.ok());
  // The stream is consumed: further absorbs and finalizes fail.
  EXPECT_FALSE((*stream)->Absorb(1, std::vector<uint64_t>(dim, 1)).ok());
  EXPECT_FALSE((*stream)->Finalize().ok());
}

TEST(StreamingAggregatorTest, IdealStreamReducesUnreducedEntries) {
  IdealAggregator agg;
  const uint64_t m = 1000;
  auto stream = agg.Open(2, m);
  ASSERT_TRUE(stream.ok());
  // Entries at and above m are reduced once before accumulation, matching
  // the batch path's tolerance for unreduced inputs.
  const std::vector<uint64_t> first = {m + 1, 999};
  const std::vector<uint64_t> second = {2 * m + 5, 2};
  ASSERT_TRUE((*stream)->Absorb(0, first).ok());
  ASSERT_TRUE((*stream)->Absorb(1, second).ok());
  auto sum = (*stream)->Finalize();
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, (std::vector<uint64_t>{6, 1}));
}

/// A minimal aggregator that only implements the batch interface, to cover
/// the default buffering Open adapter.
class BatchOnlyAggregator final : public SecureAggregator {
 public:
  StatusOr<std::vector<uint64_t>> Aggregate(
      const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) override {
    IdealAggregator ideal;
    return ideal.Aggregate(inputs, m);
  }
};

TEST(StreamingAggregatorTest, DefaultOpenBuffersAndDelegates) {
  BatchOnlyAggregator agg;
  const size_t dim = 16;
  const uint64_t m = kLargePrime;
  const auto inputs = RandomInputs(6, dim, m, 44);
  IdealAggregator reference;
  auto batch = reference.Aggregate(inputs, m);
  ASSERT_TRUE(batch.ok());
  auto stream = agg.Open(dim, m);
  ASSERT_TRUE(stream.ok());
  for (size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE((*stream)->Absorb(static_cast<int>(i), inputs[i]).ok());
  }
  auto streamed = (*stream)->Finalize();
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(*streamed, *batch);
}

}  // namespace
}  // namespace smm::secagg
