#include "sampling/exact_samplers.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"

namespace smm::sampling {
namespace {

// Chi-square goodness-of-fit of empirical counts against log-pmf values.
// Buckets with expected count < 5 are pooled into a tail bucket.
double ChiSquare(const std::map<int64_t, int>& counts, int total,
                 const std::function<double(int64_t)>& log_pmf,
                 int64_t support_lo, int64_t support_hi) {
  double chi2 = 0.0;
  double pooled_expected = 0.0;
  int pooled_observed = 0;
  double covered_probability = 0.0;
  for (int64_t k = support_lo; k <= support_hi; ++k) {
    const double p = std::exp(log_pmf(k));
    covered_probability += p;
    const double expected = p * total;
    const auto it = counts.find(k);
    const int observed = it == counts.end() ? 0 : it->second;
    if (expected < 5.0) {
      pooled_expected += expected;
      pooled_observed += observed;
      continue;
    }
    const double diff = observed - expected;
    chi2 += diff * diff / expected;
  }
  // Everything outside [support_lo, support_hi] joins the pooled bucket.
  int outside = total;
  for (const auto& [k, c] : counts) {
    if (k >= support_lo && k <= support_hi) outside -= c;
  }
  pooled_observed += outside;
  pooled_expected += (1.0 - covered_probability) * total;
  if (pooled_expected >= 5.0) {
    const double diff = pooled_observed - pooled_expected;
    chi2 += diff * diff / pooled_expected;
  }
  return chi2;
}

TEST(BernoulliExactTest, DegenerateProbabilities) {
  RandomGenerator rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(SampleBernoulliExact(0, 7, rng));
    EXPECT_TRUE(SampleBernoulliExact(7, 7, rng));
  }
}

TEST(BernoulliExactTest, MeanMatchesProbability) {
  RandomGenerator rng(2);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (SampleBernoulliExact(3, 10, rng)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.006);
}

TEST(PoissonOneExactTest, MomentsMatchPoissonOne) {
  RandomGenerator rng(3);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SamplePoissonOneExact(rng);
    ASSERT_GE(v, 0);
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(PoissonOneExactTest, GoodnessOfFit) {
  RandomGenerator rng(4);
  constexpr int kN = 200000;
  std::map<int64_t, int> counts;
  for (int i = 0; i < kN; ++i) counts[SamplePoissonOneExact(rng)]++;
  const double chi2 = ChiSquare(
      counts, kN, [](int64_t k) { return PoissonLogPmf(k, 1.0); }, 0, 12);
  // ~9 effective buckets; 35 is far beyond the 99.9% quantile.
  EXPECT_LT(chi2, 35.0);
}

TEST(PoissonLessThanOneExactTest, MomentsMatch) {
  RandomGenerator rng(5);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SamplePoissonLessThanOneExact(3, 10, rng);  // 0.3
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.3, 0.01);
  EXPECT_NEAR(var, 0.3, 0.01);
}

TEST(PoissonExactTest, ZeroParameterIsZero) {
  RandomGenerator rng(6);
  auto v = SamplePoissonExact(Rational{0, 1}, rng);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0);
}

TEST(PoissonExactTest, RejectsInvalidParameters) {
  RandomGenerator rng(7);
  EXPECT_FALSE(SamplePoissonExact(Rational{-1, 1}, rng).ok());
  EXPECT_FALSE(SamplePoissonExact(Rational{1, 0}, rng).ok());
}

class PoissonExactMomentsTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(PoissonExactMomentsTest, MeanAndVarianceEqualLambda) {
  const auto [num, den] = GetParam();
  const double lambda = static_cast<double>(num) / static_cast<double>(den);
  RandomGenerator rng(100 + static_cast<uint64_t>(num));
  constexpr int kN = 60000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    auto v = SamplePoissonExact(Rational{num, den}, rng);
    ASSERT_TRUE(v.ok());
    sum += static_cast<double>(*v);
    sum_sq += static_cast<double>(*v) * static_cast<double>(*v);
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  const double tol = 5.0 * std::sqrt(lambda / kN) + 0.01;
  EXPECT_NEAR(mean, lambda, tol);
  EXPECT_NEAR(var, lambda, 6.0 * lambda * std::sqrt(2.0 / kN) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Lambdas, PoissonExactMomentsTest,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 2},
                      std::pair<int64_t, int64_t>{5, 2},
                      std::pair<int64_t, int64_t>{7, 1},
                      std::pair<int64_t, int64_t>{31, 10}));

TEST(PoissonExactTest, GoodnessOfFitLambda2_5) {
  RandomGenerator rng(8);
  constexpr int kN = 150000;
  std::map<int64_t, int> counts;
  for (int i = 0; i < kN; ++i) {
    counts[SamplePoissonExact(Rational{5, 2}, rng).value()]++;
  }
  const double chi2 = ChiSquare(
      counts, kN, [](int64_t k) { return PoissonLogPmf(k, 2.5); }, 0, 15);
  EXPECT_LT(chi2, 45.0);
}

TEST(SkellamExactTest, SymmetricZeroMean) {
  RandomGenerator rng(9);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  const Rational lambda{2, 1};
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SampleSkellamExact(lambda, rng).value();
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 4.0, 0.15);  // Var = 2 lambda = 4.
}

TEST(SkellamExactTest, GoodnessOfFit) {
  RandomGenerator rng(10);
  constexpr int kN = 150000;
  std::map<int64_t, int> counts;
  const Rational lambda{3, 2};  // lambda = 1.5, variance 3.
  for (int i = 0; i < kN; ++i) {
    counts[SampleSkellamExact(lambda, rng).value()]++;
  }
  const double chi2 = ChiSquare(
      counts, kN, [](int64_t k) { return SkellamLogPmf(k, 1.5); }, -12, 12);
  EXPECT_LT(chi2, 50.0);
}

TEST(SkellamExactTest, AdditivityOfTwoSamples) {
  // Sum of two Sk(1,1) draws should match Sk(2,2) in moments (Section 2.1).
  RandomGenerator rng(11);
  constexpr int kN = 80000;
  double sum_sq = 0.0;
  const Rational one{1, 1};
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SampleSkellamExact(one, rng).value() +
                      SampleSkellamExact(one, rng).value();
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum_sq / kN, 4.0, 0.15);
}

}  // namespace
}  // namespace smm::sampling
