// Streaming aggregation walkthrough: summing a participant population that
// would never fit in memory as a batch, at a modulus where naive uint64
// accumulation would silently wrap.
//
// The batch API (`Aggregate(inputs, m)`) needs every encoded vector
// resident at once — O(n·d) memory, hopeless for the "millions of users"
// regime. A streaming session (`Open(dim, m)` -> `Absorb`* -> `Finalize()`)
// folds each contribution into an O(d) running sum the moment it arrives
// (O(threads·d) while a tile is absorbed in parallel), so the peak resident
// footprint is independent of the participant count. All accumulation is
// exact integer arithmetic mod m, so the streamed sum is bit-identical to
// the batch sum — verified below against a 128-bit reference.
//
// Build & run:  ./build/example_streaming_aggregation
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "secagg/secure_aggregator.h"
#include "secagg/streaming_aggregator.h"

int main() {
  // --- Part 1: the ideal aggregator at population scale. ---
  // 200k participants x 256 dims at m = 2^64 - 59: the batch path would
  // hold ~400 MB of encoded vectors; the stream holds one 2 KB running sum
  // plus the single tile in flight.
  constexpr size_t kParticipants = 200000;
  constexpr size_t kDim = 256;
  constexpr size_t kTile = 1024;
  constexpr uint64_t kModulus = 18446744073709551557ULL;  // 2^64 - 59.

  smm::ThreadPool pool(4);
  smm::secagg::IdealAggregator ideal;
  auto stream = ideal.Open(kDim, kModulus, &pool);
  if (!stream.ok()) {
    std::printf("open failed: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  // Contributions are produced tile by tile and absorbed immediately; a
  // 128-bit shadow accumulator tracks the exact sum for the cross-check.
  std::vector<unsigned __int128> exact(kDim, 0);
  smm::RandomGenerator rng(41);
  std::vector<int> ids(kTile);
  std::vector<std::vector<uint64_t>> tile(kTile,
                                          std::vector<uint64_t>(kDim));
  for (size_t begin = 0; begin < kParticipants; begin += kTile) {
    const size_t count = std::min(kTile, kParticipants - begin);
    ids.resize(count);
    tile.resize(count);
    for (size_t i = 0; i < count; ++i) {
      ids[i] = static_cast<int>(begin + i);
      for (size_t k = 0; k < kDim; ++k) {
        tile[i][k] = rng.UniformUint64(kModulus);
        exact[k] += tile[i][k];
      }
    }
    auto status = (*stream)->AbsorbTile(ids, tile);
    if (!status.ok()) {
      std::printf("absorb failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto sum = (*stream)->Finalize();
  if (!sum.ok()) {
    std::printf("finalize failed: %s\n", sum.status().ToString().c_str());
    return 1;
  }
  size_t mismatches = 0;
  for (size_t k = 0; k < kDim; ++k) {
    if ((*sum)[k] != static_cast<uint64_t>(exact[k] % kModulus)) {
      ++mismatches;
    }
  }
  const double batch_mb = static_cast<double>(kParticipants) * kDim * 8 / 1e6;
  const double stream_kb = static_cast<double>(kDim) * 8 / 1e3;
  std::printf("ideal streaming sum over %zu participants x %zu dims\n",
              kParticipants, kDim);
  std::printf("  modulus m = 2^64 - 59 (naive accumulation would wrap)\n");
  std::printf("  batch path would hold %.0f MB; stream holds %.1f KB\n",
              batch_mb, stream_kb);
  std::printf("  128-bit reference cross-check: %s\n\n",
              mismatches == 0 ? "bit-identical" : "MISMATCH (bug!)");
  if (mismatches != 0) return 1;

  // --- Part 2: the masked (Bonawitz-style) protocol, with dropouts. ---
  // Masked inputs arrive one at a time; whoever has not arrived by
  // Finalize counts as dropped, and their leftover masks are removed via
  // Shamir recovery — deferred protocol work the stream runs exactly once.
  constexpr int kMaskedParticipants = 8;
  smm::secagg::MaskedAggregator::Options options;
  options.num_participants = kMaskedParticipants;
  options.threshold = 5;
  options.session_seed = 2024;
  auto masked_agg = smm::secagg::MaskedAggregator::Create(options);
  if (!masked_agg.ok()) {
    std::printf("setup failed: %s\n",
                masked_agg.status().ToString().c_str());
    return 1;
  }

  constexpr size_t kMaskedDim = 6;
  smm::RandomGenerator input_rng(5);
  std::vector<std::vector<uint64_t>> inputs(kMaskedParticipants);
  for (auto& v : inputs) {
    v.resize(kMaskedDim);
    for (auto& x : v) x = input_rng.UniformUint64(100);
  }

  auto masked_stream = (*masked_agg)->Open(kMaskedDim, kModulus);
  if (!masked_stream.ok()) {
    std::printf("open failed: %s\n",
                masked_stream.status().ToString().c_str());
    return 1;
  }
  // Participants 2 and 6 drop out: their masked inputs never arrive.
  const std::vector<int> survivors = {0, 1, 3, 4, 5, 7};
  for (int i : survivors) {
    auto mi = (*masked_agg)->MaskInput(i, inputs[static_cast<size_t>(i)],
                                       kModulus);
    if (!mi.ok()) {
      std::printf("masking failed: %s\n", mi.status().ToString().c_str());
      return 1;
    }
    auto status = (*masked_stream)->Absorb(i, *mi);
    if (!status.ok()) {
      std::printf("absorb failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto surviving_sum = (*masked_stream)->Finalize();
  if (!surviving_sum.ok()) {
    std::printf("unmask failed: %s\n",
                surviving_sum.status().ToString().c_str());
    return 1;
  }
  std::vector<uint64_t> exact_surviving(kMaskedDim, 0);
  for (int i : survivors) {
    for (size_t j = 0; j < kMaskedDim; ++j) {
      exact_surviving[j] += inputs[static_cast<size_t>(i)][j];
    }
  }
  std::printf("masked streaming round: %d participants, 2 dropouts\n",
              kMaskedParticipants);
  std::printf("  streamed unmasked sum: ");
  for (uint64_t v : *surviving_sum) {
    std::printf("%6llu", (unsigned long long)v);
  }
  std::printf("\n  exact survivors' sum:  ");
  for (uint64_t v : exact_surviving) {
    std::printf("%6llu", (unsigned long long)v);
  }
  std::printf("\n  -> masks cancelled, dropped pairs recovered at Finalize\n");
  return 0;
}
