// Property tests for the batched parallel encode pipeline: for every
// mechanism, the overridden EncodeBatch must be bit-identical to the base
// EncodeParticipant fallback, and the parallel path must be bit-identical
// to the sequential path for 1, 2, and 8 threads — down to the decoded sum
// and the overflow accounting.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/dgm_mechanism.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "secagg/secure_aggregator.h"

namespace smm::mechanisms {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kNumParticipants = 12;
constexpr uint64_t kStreamSeed = 4242;

std::vector<std::vector<double>> MakeInputs() {
  RandomGenerator rng(99);
  std::vector<std::vector<double>> inputs(kNumParticipants,
                                          std::vector<double>(kDim));
  for (auto& x : inputs) {
    for (auto& v : x) v = rng.Gaussian(0.0, 0.05);
  }
  return inputs;
}

struct NamedMechanism {
  std::string name;
  std::unique_ptr<DistributedSumMechanism> mechanism;
};

std::vector<NamedMechanism> MakeAllMechanisms(sampling::SamplerMode mode) {
  std::vector<NamedMechanism> out;
  {
    SmmMechanism::Options o;
    o.dim = kDim;
    o.gamma = 16.0;
    o.c = 256.0;
    o.delta_inf = 8.0;
    o.lambda = 1.5;
    o.modulus = 1 << 12;
    o.rotation_seed = 7;
    o.sampler_mode = mode;
    out.push_back({"SMM", SmmMechanism::Create(o).value()});
  }
  {
    DgmMechanism::Options o;
    o.dim = kDim;
    o.gamma = 16.0;
    o.c = 256.0;
    o.delta_inf = 8.0;
    o.sigma = 1.5;
    o.modulus = 1 << 12;
    o.rotation_seed = 7;
    o.sampler_mode = mode;
    out.push_back({"DGM", DgmMechanism::Create(o).value()});
  }
  {
    DdgMechanism::Options o;
    o.dim = kDim;
    o.gamma = 16.0;
    o.l2_bound = 1.0;
    o.sigma = 1.5;
    o.modulus = 1 << 12;
    o.rotation_seed = 7;
    o.sampler_mode = mode;
    out.push_back({"DDG", DdgMechanism::Create(o).value()});
  }
  {
    AgarwalSkellamMechanism::Options o;
    o.dim = kDim;
    o.gamma = 16.0;
    o.l2_bound = 1.0;
    o.lambda = 1.5;
    o.modulus = 1 << 12;
    o.rotation_seed = 7;
    o.sampler_mode = mode;
    out.push_back({"Skellam", AgarwalSkellamMechanism::Create(o).value()});
  }
  if (mode == sampling::SamplerMode::kApproximate) {
    // cpSGD has no exact-sampler variant.
    CpSgdMechanism::Options o;
    o.dim = kDim;
    o.gamma = 16.0;
    o.l2_bound = 1.0;
    o.binomial_trials = 128;
    o.modulus = 1 << 12;
    o.rotation_seed = 7;
    out.push_back({"cpSGD", CpSgdMechanism::Create(o).value()});
  }
  return out;
}

/// Encodes all inputs with fresh jump-ahead streams (always derived the same
/// way) through EncodeBatchParallel, returning the encodings and the
/// overflow count the run added.
struct EncodeRun {
  std::vector<std::vector<uint64_t>> encoded;
  int64_t overflows = 0;
};

EncodeRun RunEncode(DistributedSumMechanism& mechanism,
                    const std::vector<std::vector<double>>& inputs,
                    ThreadPool* pool) {
  RandomGenerator rng(kStreamSeed);
  std::vector<RandomGenerator> streams =
      MakeParticipantStreams(rng, inputs.size());
  mechanism.ResetOverflowCount();
  EncodeRun run;
  run.encoded =
      EncodeBatchParallel(mechanism, inputs, streams, pool).value();
  run.overflows = mechanism.overflow_count();
  return run;
}

TEST(EncodeBatchDeterminismTest, OverrideMatchesFallbackBitForBit) {
  const auto inputs = MakeInputs();
  for (auto mode : {sampling::SamplerMode::kApproximate,
                    sampling::SamplerMode::kExact}) {
    for (auto& named : MakeAllMechanisms(mode)) {
      // Fallback: the base-class EncodeBatch, which loops EncodeParticipant.
      RandomGenerator rng(kStreamSeed);
      std::vector<RandomGenerator> streams =
          MakeParticipantStreams(rng, inputs.size());
      std::vector<std::vector<uint64_t>> fallback(inputs.size());
      EncodeWorkspace workspace;
      ASSERT_TRUE(named.mechanism
                      ->DistributedSumMechanism::EncodeBatch(
                          inputs, 0, inputs.size(), streams.data(), workspace,
                          &fallback)
                      .ok())
          << named.name;
      const int64_t fallback_overflows = named.mechanism->overflow_count();

      named.mechanism->ResetOverflowCount();
      const EncodeRun batched =
          RunEncode(*named.mechanism, inputs, /*pool=*/nullptr);
      EXPECT_EQ(fallback, batched.encoded) << named.name;
      EXPECT_EQ(fallback_overflows, batched.overflows) << named.name;
    }
  }
}

TEST(EncodeBatchDeterminismTest, ParallelMatchesSequentialAtEveryThreadCount) {
  const auto inputs = MakeInputs();
  for (auto mode : {sampling::SamplerMode::kApproximate,
                    sampling::SamplerMode::kExact}) {
    for (auto& named : MakeAllMechanisms(mode)) {
      const EncodeRun sequential =
          RunEncode(*named.mechanism, inputs, /*pool=*/nullptr);
      for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const EncodeRun parallel =
            RunEncode(*named.mechanism, inputs, &pool);
        EXPECT_EQ(sequential.encoded, parallel.encoded)
            << named.name << " at " << threads << " threads";
        EXPECT_EQ(sequential.overflows, parallel.overflows)
            << named.name << " at " << threads << " threads";
      }
    }
  }
}

TEST(EncodeBatchDeterminismTest, DecodedSumIsThreadCountInvariant) {
  const auto inputs = MakeInputs();
  secagg::IdealAggregator aggregator;
  for (auto& named :
       MakeAllMechanisms(sampling::SamplerMode::kApproximate)) {
    RandomGenerator seq_rng(kStreamSeed);
    const std::vector<double> sequential =
        RunDistributedSum(*named.mechanism, aggregator, inputs, seq_rng)
            .value();
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      RandomGenerator par_rng(kStreamSeed);
      const std::vector<double> parallel =
          RunDistributedSum(*named.mechanism, aggregator, inputs, par_rng,
                            &pool)
              .value();
      ASSERT_EQ(sequential.size(), parallel.size()) << named.name;
      for (size_t j = 0; j < sequential.size(); ++j) {
        EXPECT_EQ(sequential[j], parallel[j])
            << named.name << " coord " << j << " at " << threads
            << " threads";
      }
    }
  }
}

TEST(EncodeBatchDeterminismTest, ScalarDispatchMatchesSimdAtEveryThreadCount) {
  // The SIMD dispatch sweep: the forced-scalar reference kernels and the
  // cpuid-dispatched kernels must produce bit-identical encodings (and
  // overflow accounting) for every mechanism at threads {1, 2, 8}. This is
  // the in-process equivalent of rerunning the suite under
  // SMM_FORCE_SCALAR=1, and it pins AVX2 == scalar end-to-end through
  // rotate/scale, clip, round, perturb, and wrap.
  const auto inputs = MakeInputs();
  for (auto mode : {sampling::SamplerMode::kApproximate,
                    sampling::SamplerMode::kExact}) {
    for (auto& named : MakeAllMechanisms(mode)) {
      simd::SetDispatchModeForTest(simd::DispatchMode::kForceScalar);
      const EncodeRun scalar_run =
          RunEncode(*named.mechanism, inputs, /*pool=*/nullptr);
      simd::SetDispatchModeForTest(simd::DispatchMode::kAuto);
      for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const EncodeRun dispatched =
            RunEncode(*named.mechanism, inputs, &pool);
        EXPECT_EQ(scalar_run.encoded, dispatched.encoded)
            << named.name << " at " << threads << " threads";
        EXPECT_EQ(scalar_run.overflows, dispatched.overflows)
            << named.name << " at " << threads << " threads";
      }
    }
  }
  simd::SetDispatchModeForTest(simd::DispatchMode::kAuto);
}

TEST(EncodeBatchDeterminismTest, ShardedAggregationMatchesSequential) {
  RandomGenerator rng(5);
  constexpr uint64_t kModulus = 1 << 16;
  std::vector<std::vector<uint64_t>> inputs(
      37, std::vector<uint64_t>(kDim));
  for (auto& row : inputs) {
    for (auto& v : row) v = rng.UniformUint64(kModulus);
  }
  secagg::IdealAggregator aggregator;
  const std::vector<uint64_t> sequential =
      aggregator.Aggregate(inputs, kModulus).value();
  for (int threads : {2, 5, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(sequential,
              aggregator.AggregateParallel(inputs, kModulus, &pool).value())
        << threads << " threads";
  }
}

}  // namespace
}  // namespace smm::mechanisms
