#include "fl/trainer.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "accounting/binomial_accountant.h"
#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "common/bit_util.h"
#include "common/tuning.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/clipping.h"
#include "mechanisms/conditional_rounding.h"
#include "mechanisms/dgm_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "secagg/shard_plan.h"
#include "secagg/sharded_coordinator.h"

namespace smm::fl {

const char* MechanismKindName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kSmm:
      return "SMM";
    case MechanismKind::kDgm:
      return "DGM";
    case MechanismKind::kDdg:
      return "DDG";
    case MechanismKind::kAgarwalSkellam:
      return "Skellam";
    case MechanismKind::kCpSgd:
      return "cpSGD";
    case MechanismKind::kCentralDpSgd:
      return "DPSGD";
    case MechanismKind::kNonPrivate:
      return "NonPrivate";
  }
  return "Unknown";
}

FederatedTrainer::FederatedTrainer(nn::Mlp model, data::Dataset train,
                                   data::Dataset test, FlConfig config)
    : model_(std::move(model)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(config),
      rng_(config.seed) {}

StatusOr<std::unique_ptr<FederatedTrainer>> FederatedTrainer::Create(
    nn::Mlp model, data::Dataset train, data::Dataset test,
    const FlConfig& config) {
  if (train.examples.empty()) {
    return InvalidArgumentError("empty training set");
  }
  if (config.rounds < 1) return InvalidArgumentError("rounds must be >= 1");
  if (config.expected_batch_size < 1 ||
      config.expected_batch_size > static_cast<int>(train.size())) {
    return InvalidArgumentError(
        "expected_batch_size must be in [1, |train set|]");
  }
  if (config.modulus < 2) {
    return InvalidArgumentError("modulus must be >= 2");
  }
  if (config.eval_every < 0) {
    return InvalidArgumentError("eval_every must be >= 0");
  }
  if (config.num_threads < 0) {
    return InvalidArgumentError("num_threads must be >= 0");
  }
  if (config.shard_count < 0) {
    return InvalidArgumentError("shard_count must be >= 0");
  }
  auto trainer = std::unique_ptr<FederatedTrainer>(new FederatedTrainer(
      std::move(model), std::move(train), std::move(test), config));
  // num_threads == 0 means "auto": the calibrated threads-per-session when
  // a tuning was loaded (one trainer round is one aggregation session),
  // else hardware concurrency — the historical resolution.
  const int threads = config.num_threads == 0 ? TunedSessionThreads()
                                              : config.num_threads;
  if (threads > 1) trainer->pool_ = std::make_unique<ThreadPool>(threads);
  trainer->padded_dim_ = NextPowerOfTwo(trainer->model_.num_parameters());
  // shard_count == 0 means "tuned": the calibrated shard_count when a
  // tuning was loaded (default 1, the unsharded path). Resolving here pins
  // one value for the whole run and lets Create reject plans no round could
  // build (more shards than padded coordinates).
  trainer->shard_count_ = config.shard_count == 0
                              ? TunedShardCount()
                              : static_cast<size_t>(config.shard_count);
  if (trainer->shard_count_ > trainer->padded_dim_) {
    return InvalidArgumentError(
        "shard_count exceeds the padded model dimension");
  }
  trainer->sampling_rate_ =
      static_cast<double>(config.expected_batch_size) /
      static_cast<double>(trainer->train_.size());
  trainer->aggregator_ = std::make_unique<secagg::IdealAggregator>();
  if (config.use_adam) {
    trainer->optimizer_ =
        std::make_unique<nn::AdamOptimizer>(config.learning_rate);
  } else {
    trainer->optimizer_ =
        std::make_unique<nn::SgdOptimizer>(config.learning_rate);
  }
  SMM_RETURN_IF_ERROR(trainer->Calibrate());
  return trainer;
}

Status FederatedTrainer::Calibrate() {
  const double q = sampling_rate_;
  const int steps = config_.rounds;
  const int batch = config_.expected_batch_size;
  const double d2 = config_.l2_clip;
  const double d = static_cast<double>(padded_dim_);
  const uint64_t rotation_seed = config_.seed ^ 0x5eedULL;

  switch (config_.mechanism) {
    case MechanismKind::kNonPrivate:
      return OkStatus();

    case MechanismKind::kCentralDpSgd: {
      SMM_ASSIGN_OR_RETURN(auto result,
                           accounting::CalibrateGaussian(
                               d2, q, steps, config_.epsilon, config_.delta));
      central_sigma_ = result.noise_parameter;
      noise_parameter_ = result.noise_parameter;
      guarantee_ = result.guarantee;
      return OkStatus();
    }

    case MechanismKind::kSmm: {
      const double c = config_.gamma * config_.gamma * d2 * d2;
      SMM_ASSIGN_OR_RETURN(auto result,
                           accounting::CalibrateSmm(
                               c, q, steps, config_.epsilon, config_.delta));
      const double n_lambda = result.noise_parameter;
      delta_inf_ = accounting::SmmMaxDeltaInf(n_lambda,
                                              result.guarantee.best_alpha);
      mechanisms::SmmMechanism::Options options;
      options.dim = padded_dim_;
      options.gamma = config_.gamma;
      options.c = c;
      options.delta_inf = delta_inf_;
      options.lambda = n_lambda / static_cast<double>(batch);
      options.modulus = config_.modulus;
      options.rotation_seed = rotation_seed;
      options.sampler_mode = config_.sampler_mode;
      SMM_ASSIGN_OR_RETURN(mechanism_,
                           mechanisms::SmmMechanism::Create(options));
      noise_parameter_ = options.lambda;
      guarantee_ = result.guarantee;
      return OkStatus();
    }

    case MechanismKind::kDgm: {
      const double c = config_.gamma * config_.gamma * d2 * d2;
      // Delta_1 <= sqrt(d) * gamma * Delta_2 (Appendix B.3).
      const double l1 = std::sqrt(d) * config_.gamma * d2;
      SMM_ASSIGN_OR_RETURN(
          auto result,
          accounting::CalibrateDgm(batch, c, l1,
                                   static_cast<int>(padded_dim_),
                                   /*delta_inf=*/0.0, q, steps,
                                   config_.epsilon, config_.delta));
      const double sigma = result.noise_parameter;
      // The paper computes the DGM Linf bound from Eq. (3) as well; map the
      // aggregate discrete Gaussian variance onto the equivalent Skellam
      // parameter (2 lambda = sigma^2 per participant).
      delta_inf_ = accounting::SmmMaxDeltaInf(
          static_cast<double>(batch) * sigma * sigma / 2.0,
          result.guarantee.best_alpha);
      mechanisms::DgmMechanism::Options options;
      options.dim = padded_dim_;
      options.gamma = config_.gamma;
      options.c = c;
      options.delta_inf = delta_inf_;
      options.sigma = sigma;
      options.modulus = config_.modulus;
      options.rotation_seed = rotation_seed;
      options.sampler_mode = config_.sampler_mode;
      SMM_ASSIGN_OR_RETURN(mechanism_,
                           mechanisms::DgmMechanism::Create(options));
      noise_parameter_ = sigma;
      guarantee_ = result.guarantee;
      return OkStatus();
    }

    case MechanismKind::kDdg: {
      const double rounded_bound = mechanisms::ConditionalRoundingNormBound(
          config_.gamma, d2, padded_dim_, config_.beta);
      const double l2_squared = rounded_bound * rounded_bound;
      const double l1 =
          std::min(std::sqrt(d) * rounded_bound, l2_squared);
      SMM_ASSIGN_OR_RETURN(
          auto result,
          accounting::CalibrateDdg(batch, l2_squared, l1,
                                   static_cast<int>(padded_dim_), q, steps,
                                   config_.epsilon, config_.delta));
      mechanisms::DdgMechanism::Options options;
      options.dim = padded_dim_;
      options.gamma = config_.gamma;
      options.l2_bound = d2;
      options.beta = config_.beta;
      options.sigma = result.noise_parameter;
      options.modulus = config_.modulus;
      options.rotation_seed = rotation_seed;
      options.sampler_mode = config_.sampler_mode;
      SMM_ASSIGN_OR_RETURN(mechanism_,
                           mechanisms::DdgMechanism::Create(options));
      noise_parameter_ = result.noise_parameter;
      guarantee_ = result.guarantee;
      return OkStatus();
    }

    case MechanismKind::kAgarwalSkellam: {
      const double rounded_bound = mechanisms::ConditionalRoundingNormBound(
          config_.gamma, d2, padded_dim_, config_.beta);
      const double l2_squared = rounded_bound * rounded_bound;
      const double l1 =
          std::min(std::sqrt(d) * rounded_bound, l2_squared);
      SMM_ASSIGN_OR_RETURN(auto result,
                           accounting::CalibrateSkellamAgarwal(
                               l2_squared, l1, q, steps, config_.epsilon,
                               config_.delta));
      mechanisms::AgarwalSkellamMechanism::Options options;
      options.dim = padded_dim_;
      options.gamma = config_.gamma;
      options.l2_bound = d2;
      options.beta = config_.beta;
      options.lambda = result.noise_parameter / static_cast<double>(batch);
      options.modulus = config_.modulus;
      options.rotation_seed = rotation_seed;
      options.sampler_mode = config_.sampler_mode;
      SMM_ASSIGN_OR_RETURN(
          mechanism_, mechanisms::AgarwalSkellamMechanism::Create(options));
      noise_parameter_ = options.lambda;
      guarantee_ = result.guarantee;
      return OkStatus();
    }

    case MechanismKind::kCpSgd: {
      // Stochastic rounding inflates the scaled L2 norm by up to sqrt(d).
      const double l2 = config_.gamma * d2 + std::sqrt(d);
      accounting::BinomialMechanismParams per_step;
      per_step.l2 = l2;
      per_step.l1 = std::sqrt(d) * l2;  // "L1 <= sqrt(d) * L2" (Section 6.1).
      per_step.linf = config_.gamma * d2 + 1.0;
      per_step.dimension = static_cast<int>(padded_dim_);
      SMM_ASSIGN_OR_RETURN(
          const double total_trials,
          accounting::CalibrateBinomialTrials(per_step, steps,
                                              config_.epsilon,
                                              config_.delta));
      mechanisms::CpSgdMechanism::Options options;
      options.dim = padded_dim_;
      options.gamma = config_.gamma;
      options.l2_bound = d2;
      options.binomial_trials = static_cast<int64_t>(
          std::ceil(total_trials / static_cast<double>(batch)));
      options.modulus = config_.modulus;
      options.rotation_seed = rotation_seed;
      SMM_ASSIGN_OR_RETURN(mechanism_,
                           mechanisms::CpSgdMechanism::Create(options));
      noise_parameter_ = static_cast<double>(options.binomial_trials);
      // cpSGD's analysis is pure (epsilon, delta); record epsilon only.
      guarantee_.epsilon = config_.epsilon;
      guarantee_.best_alpha = 0;
      return OkStatus();
    }
  }
  return InternalError("unhandled mechanism kind");
}

StatusOr<std::vector<double>> FederatedTrainer::AggregateRound(
    const std::vector<size_t>& participant_indices, double* mean_loss) {
  const size_t model_dim = model_.num_parameters();
  const size_t count = participant_indices.size();
  const int threads = pool_ != nullptr ? pool_->num_threads() : 1;
  // One tile of gradients/encodings per thread stays resident per round, so
  // peak round memory is O(threads·d) independent of how many participants
  // the Poisson sample drew. The tile size comes from the runtime tuning
  // (DefaultTileRows when none is loaded) and never affects results:
  // gradients and encodings depend only on the participant, and the
  // streamed modular sum is exact.
  const size_t tile_size = TunedTileRows(threads);

  // Integer mechanism path: one streaming aggregation session per round.
  // Tiles are encoded and absorbed as they are produced, so the round never
  // holds more than one tile of gradients/encodings plus the aggregator's
  // O(threads·d) running-sum state — the batch-materializing O(count·d)
  // buffer is gone. At shard_count_ > 1 the single stream becomes one
  // narrower stream per ShardPlan range (each under the aggregator instance
  // CreateShardAggregator derives for that shard), and Finalize stitches the
  // per-shard partial sums back together — bit-identical to the unsharded
  // stream because every coordinate's modular sum is computed exactly once
  // either way.
  std::unique_ptr<secagg::StreamingAggregator> stream;
  std::optional<secagg::ShardPlan> plan;
  std::vector<std::unique_ptr<secagg::SecureAggregator>> shard_aggregators;
  std::vector<std::unique_ptr<secagg::StreamingAggregator>> shard_streams;
  if (mechanism_ != nullptr) {
    if (shard_count_ <= 1) {
      SMM_ASSIGN_OR_RETURN(stream, aggregator_->Open(
                                       padded_dim_, mechanism_->modulus(),
                                       pool_.get()));
    } else {
      SMM_ASSIGN_OR_RETURN(auto built_plan, secagg::ShardPlan::Create(
                                                padded_dim_, shard_count_));
      plan = built_plan;
      shard_aggregators.reserve(shard_count_);
      shard_streams.reserve(shard_count_);
      for (size_t s = 0; s < shard_count_; ++s) {
        SMM_ASSIGN_OR_RETURN(auto derived, aggregator_->CreateShardAggregator(
                                               s, shard_count_));
        secagg::SecureAggregator* shard_aggregator =
            derived != nullptr ? derived.get() : aggregator_.get();
        shard_aggregators.push_back(std::move(derived));
        SMM_ASSIGN_OR_RETURN(auto shard_stream,
                             shard_aggregator->Open(plan->Width(s),
                                                    mechanism_->modulus(),
                                                    pool_.get()));
        shard_streams.push_back(std::move(shard_stream));
      }
    }
  }

  std::vector<double> sum(model_dim, 0.0);
  double loss_sum = 0.0;
  std::vector<std::vector<double>> gradients;
  std::vector<double> losses;
  std::vector<int> tile_ids;
  for (size_t tile_begin = 0; tile_begin < count; tile_begin += tile_size) {
    const size_t tile_end = std::min(count, tile_begin + tile_size);
    const size_t tile_count = tile_end - tile_begin;

    // Per-participant clipped gradients (Lines 4-6 of Algorithm 3), computed
    // in parallel: the forward/backward pass only reads the shared model,
    // and each participant writes its own slot.
    gradients.assign(tile_count, {});
    losses.assign(tile_count, 0.0);
    const auto compute_gradient = [&](size_t t) {
      const data::Example& example =
          train_.examples[participant_indices[tile_begin + t]];
      nn::Mlp::LossAndGrad lg =
          model_.ComputeLossAndGradient(example.features, example.label);
      losses[t] = lg.loss;
      mechanisms::L2Clip(lg.grad, config_.l2_clip);
      gradients[t] = std::move(lg.grad);
    };
    if (pool_ != nullptr) {
      pool_->ParallelFor(tile_count, [&](int, size_t begin, size_t end) {
        for (size_t t = begin; t < end; ++t) compute_gradient(t);
      });
    } else {
      for (size_t t = 0; t < tile_count; ++t) compute_gradient(t);
    }
    // Summed in participant order (tiles are visited in order) so the
    // result is thread-count invariant.
    for (double loss : losses) loss_sum += loss;

    if (mechanism_ != nullptr) {
      // Pad, batch-encode under per-participant jump-ahead streams, absorb.
      // Forking the streams tile by tile consumes rng_ exactly as one
      // up-front MakeParticipantStreams(rng_, count) would, so the encodings
      // are bit-identical to the batch-materializing pipeline.
      for (auto& g : gradients) g.resize(padded_dim_, 0.0);
      std::vector<RandomGenerator> streams =
          MakeParticipantStreams(rng_, tile_count);
      SMM_ASSIGN_OR_RETURN(auto encoded,
                           mechanisms::EncodeBatchParallel(
                               *mechanism_, gradients, streams, pool_.get()));
      tile_ids.resize(tile_count);
      for (size_t t = 0; t < tile_count; ++t) {
        tile_ids[t] = static_cast<int>(tile_begin + t);
      }
      if (shard_count_ <= 1) {
        SMM_RETURN_IF_ERROR(stream->AbsorbTile(tile_ids, encoded));
      } else {
        // Slice the tile per shard and absorb each slice into its worker
        // stream. Only one shard's slices are resident at a time, so the
        // transient cost stays one extra tile of one shard's width.
        std::vector<std::vector<uint64_t>> shard_rows(tile_count);
        for (size_t s = 0; s < shard_count_; ++s) {
          for (size_t t = 0; t < tile_count; ++t) {
            SMM_ASSIGN_OR_RETURN(shard_rows[t], plan->Slice(encoded[t], s));
          }
          SMM_RETURN_IF_ERROR(
              shard_streams[s]->AbsorbTile(tile_ids, shard_rows));
        }
      }
    } else {
      // Central baselines: exact sum, accumulated in participant order.
      for (const auto& g : gradients) {
        for (size_t j = 0; j < model_dim; ++j) sum[j] += g[j];
      }
    }
  }
  if (mean_loss != nullptr) {
    *mean_loss = loss_sum / static_cast<double>(count);
  }

  if (mechanism_ != nullptr) {
    std::vector<uint64_t> zm_sum;
    if (shard_count_ <= 1) {
      SMM_ASSIGN_OR_RETURN(zm_sum, stream->Finalize());
    } else {
      // Finalize every shard stream and stitch the ranges back through the
      // coordinator merge (each range appears exactly once, so this is pure
      // concatenation plus the merge's tiling checks).
      std::vector<secagg::PartialSumMsg> partials;
      partials.reserve(shard_count_);
      for (size_t s = 0; s < shard_count_; ++s) {
        SMM_ASSIGN_OR_RETURN(auto shard_sum, shard_streams[s]->Finalize());
        secagg::PartialSumMsg partial;
        partial.modulus = mechanism_->modulus();
        partial.num_contributors = static_cast<uint32_t>(count);
        partial.shard = plan->Spec(s);
        partial.sum = std::move(shard_sum);
        partials.push_back(std::move(partial));
      }
      SMM_ASSIGN_OR_RETURN(auto merged,
                           secagg::MergePartialSums(std::move(partials),
                                                    padded_dim_,
                                                    mechanism_->modulus()));
      zm_sum = std::move(merged.sum);
    }
    SMM_ASSIGN_OR_RETURN(auto decoded,
                         mechanism_->DecodeSum(zm_sum,
                                               static_cast<int>(count)));
    std::copy(decoded.begin(), decoded.begin() + static_cast<long>(model_dim),
              sum.begin());
  } else if (config_.mechanism == MechanismKind::kCentralDpSgd) {
    // Central DPSGD: Gaussian noise on the exact sum.
    for (size_t j = 0; j < model_dim; ++j) {
      sum[j] += rng_.Gaussian(0.0, central_sigma_);
    }
  }
  // Average over the (public) expected batch size.
  const double scale = 1.0 / static_cast<double>(config_.expected_batch_size);
  for (double& v : sum) v *= scale;
  return sum;
}

StatusOr<TrainingResult> FederatedTrainer::Train() {
  TrainingResult result;
  result.noise_parameter = noise_parameter_;
  result.guarantee = guarantee_;
  result.delta_inf = delta_inf_;

  for (int round = 1; round <= config_.rounds; ++round) {
    // Line 3 of Algorithm 3: Poisson sampling of participants at rate q.
    std::vector<size_t> participants;
    for (size_t i = 0; i < train_.size(); ++i) {
      if (rng_.Bernoulli(sampling_rate_)) participants.push_back(i);
    }
    if (participants.empty()) continue;

    double mean_loss = 0.0;
    Status injected = round_fault_injector_ != nullptr
                          ? round_fault_injector_(round)
                          : OkStatus();
    StatusOr<std::vector<double>> grad_avg =
        injected.ok() ? AggregateRound(participants, &mean_loss)
                      : StatusOr<std::vector<double>>(std::move(injected));
    if (!grad_avg.ok()) {
      // A failed aggregation round (deadline expiry, transport loss) costs
      // one Poisson sample's gradient step. Within the configured budget,
      // skip it — no model update — and keep training; past the budget,
      // fail the run with the round's status.
      if (result.failed_rounds >= config_.max_round_failures) {
        return grad_avg.status();
      }
      ++result.failed_rounds;
      RoundRecord record;
      record.round = round;
      record.failed = true;
      result.history.push_back(record);
      continue;
    }
    SMM_RETURN_IF_ERROR(
        optimizer_->Step(model_.mutable_parameters(), *grad_avg));

    const bool should_eval =
        (config_.eval_every > 0 && round % config_.eval_every == 0) ||
        round == config_.rounds;
    if (should_eval) {
      RoundRecord record;
      record.round = round;
      record.train_loss = mean_loss;
      const EvalMetrics metrics = EvaluateMetrics();
      record.test_accuracy = metrics.accuracy;
      record.test_loss = metrics.mean_loss;
      result.history.push_back(record);
    }
  }
  // The last *evaluated* record carries the final accuracy; failed rounds
  // recorded no metrics. None evaluated -> measure now.
  const RoundRecord* last_eval = nullptr;
  for (auto it = result.history.rbegin(); it != result.history.rend(); ++it) {
    if (!it->failed) {
      last_eval = &*it;
      break;
    }
  }
  result.final_accuracy =
      last_eval != nullptr ? last_eval->test_accuracy : EvaluateAccuracy();
  if (mechanism_ != nullptr) {
    result.total_overflows = mechanism_->overflow_count();
  }
  return result;
}

double FederatedTrainer::EvaluateAccuracy() const {
  return EvaluateMetrics().accuracy;
}

EvalMetrics FederatedTrainer::EvaluateMetrics() const {
  EvalMetrics metrics;
  if (test_.examples.empty()) return metrics;
  size_t count = test_.size();
  if (config_.max_eval_examples > 0) {
    count = std::min(count, static_cast<size_t>(config_.max_eval_examples));
  }
  // Each example's forward pass only reads the shared model and writes its
  // own slot, so the example range shards cleanly across the pool. The
  // reductions below are thread-count invariant: the correct counts are
  // integers, and the losses are summed in example order.
  std::vector<double> losses(count, 0.0);
  std::vector<size_t> correct_per_chunk(
      pool_ != nullptr ? static_cast<size_t>(pool_->num_threads()) : 1, 0);
  const auto evaluate_range = [&](size_t begin, size_t end, size_t chunk) {
    size_t correct = 0;
    for (size_t i = begin; i < end; ++i) {
      const data::Example& e = test_.examples[i];
      const nn::Mlp::PredictionLoss pl =
          model_.PredictWithLoss(e.features, e.label);
      if (pl.predicted == e.label) ++correct;
      losses[i] = pl.loss;
    }
    correct_per_chunk[chunk] = correct;
  };
  if (pool_ != nullptr && count > 1) {
    pool_->ParallelFor(count, [&](int chunk, size_t begin, size_t end) {
      evaluate_range(begin, end, static_cast<size_t>(chunk));
    });
  } else {
    evaluate_range(0, count, 0);
  }
  size_t correct = 0;
  for (size_t c : correct_per_chunk) correct += c;
  double loss_sum = 0.0;
  for (double loss : losses) loss_sum += loss;
  metrics.accuracy =
      static_cast<double>(correct) / static_cast<double>(count);
  metrics.mean_loss = loss_sum / static_cast<double>(count);
  return metrics;
}

}  // namespace smm::fl
