#include "transform/walsh_hadamard.h"

#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "transform/random_rotation.h"

namespace smm::transform {
namespace {

TEST(WalshHadamardTest, RejectsNonPowerOfTwo) {
  std::vector<double> v(3, 1.0);
  EXPECT_FALSE(FastWalshHadamard(v).ok());
  std::vector<double> empty;
  EXPECT_FALSE(FastWalshHadamard(empty).ok());
}

TEST(WalshHadamardTest, DimensionOneIsIdentity) {
  std::vector<double> v = {3.5};
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  EXPECT_DOUBLE_EQ(v[0], 3.5);
}

TEST(WalshHadamardTest, KnownTwoDimensionalValues) {
  std::vector<double> v = {1.0, 0.0};
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(v[0], s, 1e-12);
  EXPECT_NEAR(v[1], s, 1e-12);
}

TEST(WalshHadamardTest, IsInvolution) {
  RandomGenerator rng(1);
  std::vector<double> v(64);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  std::vector<double> original = v;
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], original[i], 1e-10);
}

class WalshHadamardNormTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WalshHadamardNormTest, PreservesL2Norm) {
  const size_t d = GetParam();
  RandomGenerator rng(d);
  std::vector<double> v(d);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  double norm_before = 0.0;
  for (double x : v) norm_before += x * x;
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  double norm_after = 0.0;
  for (double x : v) norm_after += x * x;
  EXPECT_NEAR(norm_after / norm_before, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Dims, WalshHadamardNormTest,
                         ::testing::Values(1, 2, 4, 64, 1024, 4096, 8192));

TEST(WalshHadamardTest, BlockedKernelMatchesNaiveReference) {
  // 8192 > the kernel's cache-block size, so this exercises the two-phase
  // (block-local stages + cross-block stages) path against the textbook
  // stage-by-stage loop. Identical associations, so results are exact.
  const size_t d = 8192;
  RandomGenerator rng(3);
  std::vector<double> v(d);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  std::vector<double> reference = v;
  for (size_t h = 1; h < d; h <<= 1) {
    for (size_t i = 0; i < d; i += h << 1) {
      for (size_t j = i; j < i + h; ++j) {
        const double x = reference[j];
        const double y = reference[j + h];
        reference[j] = x + y;
        reference[j + h] = x - y;
      }
    }
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  for (double& x : reference) x *= scale;
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  for (size_t j = 0; j < d; ++j) {
    ASSERT_DOUBLE_EQ(v[j], reference[j]) << "coordinate " << j;
  }
}

class WalshHadamardBatchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WalshHadamardBatchTest, BatchMatchesScalarBitForBit) {
  const size_t d = GetParam();
  const size_t batch = 5;
  RandomGenerator rng(7 + d);
  std::vector<double> flat(batch * d);
  for (double& x : flat) x = rng.Gaussian(0.0, 1.0);
  // Scalar reference: each row through the vector API.
  std::vector<std::vector<double>> rows(batch);
  for (size_t r = 0; r < batch; ++r) {
    rows[r].assign(flat.begin() + static_cast<ptrdiff_t>(r * d),
                   flat.begin() + static_cast<ptrdiff_t>((r + 1) * d));
    ASSERT_TRUE(FastWalshHadamard(rows[r]).ok());
  }
  ASSERT_TRUE(FastWalshHadamardBatch(flat.data(), batch, d).ok());
  for (size_t r = 0; r < batch; ++r) {
    for (size_t j = 0; j < d; ++j) {
      ASSERT_EQ(flat[r * d + j], rows[r][j])
          << "row " << r << " coordinate " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, WalshHadamardBatchTest,
                         ::testing::Values(1, 2, 64, 1024, 4096));

TEST(WalshHadamardTest, BatchIsThreadCountInvariant) {
  const size_t d = 512;
  const size_t batch = 7;  // Not a multiple of any chunk count.
  RandomGenerator rng(9);
  std::vector<double> reference(batch * d);
  for (double& x : reference) x = rng.Gaussian(0.0, 1.0);
  const std::vector<double> original = reference;
  ASSERT_TRUE(FastWalshHadamardBatch(reference.data(), batch, d).ok());
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> parallel = original;
    ASSERT_TRUE(
        FastWalshHadamardBatch(parallel.data(), batch, d, &pool).ok());
    EXPECT_EQ(reference, parallel) << threads << " threads";
  }
}

TEST(WalshHadamardTest, BatchRejectsBadDimension) {
  std::vector<double> flat(9, 1.0);
  EXPECT_FALSE(FastWalshHadamardBatch(flat.data(), 3, 3).ok());
  EXPECT_FALSE(FastWalshHadamardBatch(flat.data(), 1, 0).ok());
  EXPECT_TRUE(FastWalshHadamardBatch(nullptr, 0, 4).ok());  // Empty batch.
  EXPECT_FALSE(FastWalshHadamardBatch(nullptr, 2, 4).ok());
}

TEST(WalshHadamardTest, FlattensSpikes) {
  // A one-hot vector spreads to uniform magnitude 1/sqrt(d) — the property
  // that limits overflow (Section 4).
  std::vector<double> v(256, 0.0);
  v[17] = 1.0;
  ASSERT_TRUE(FastWalshHadamard(v).ok());
  for (double x : v) EXPECT_NEAR(std::abs(x), 1.0 / 16.0, 1e-12);
}

TEST(PadToPowerOfTwoTest, PadsAndPreserves) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> p = PadToPowerOfTwo(x);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[2], 3.0);
  EXPECT_EQ(p[3], 0.0);
  EXPECT_EQ(PadToPowerOfTwo(p).size(), 4u);  // Already a power of two.
}

TEST(RandomRotationTest, RejectsBadDimensions) {
  EXPECT_FALSE(RandomRotation::Create(0, 1).ok());
  EXPECT_FALSE(RandomRotation::Create(3, 1).ok());
}

TEST(RandomRotationTest, InverseUndoesApply) {
  auto rotation = RandomRotation::Create(128, 99);
  ASSERT_TRUE(rotation.ok());
  RandomGenerator rng(5);
  std::vector<double> x(128);
  for (double& v : x) v = rng.Gaussian(0.0, 1.0);
  auto y = rotation->Apply(x);
  ASSERT_TRUE(y.ok());
  auto back = rotation->Inverse(*y);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR((*back)[i], x[i], 1e-10);
}

TEST(RandomRotationTest, SameSeedSameRotation) {
  auto r1 = RandomRotation::Create(64, 7);
  auto r2 = RandomRotation::Create(64, 7);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->signs(), r2->signs());
}

TEST(RandomRotationTest, DifferentSeedsDiffer) {
  auto r1 = RandomRotation::Create(64, 7);
  auto r2 = RandomRotation::Create(64, 8);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1->signs(), r2->signs());
}

TEST(RandomRotationTest, FlattensConcentratedVectors) {
  // Section 4: each rotated coordinate is sub-Gaussian with variance
  // O(||x||^2 / d); check the max coordinate of a rotated one-hot input.
  const size_t d = 4096;
  auto rotation = RandomRotation::Create(d, 3);
  ASSERT_TRUE(rotation.ok());
  std::vector<double> x(d, 0.0);
  x[7] = 1.0;
  auto y = rotation->Apply(x);
  ASSERT_TRUE(y.ok());
  double max_abs = 0.0;
  for (double v : *y) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LE(max_abs, 1.0 / std::sqrt(static_cast<double>(d)) + 1e-12);
}

TEST(RandomRotationTest, DimensionMismatchRejected) {
  auto rotation = RandomRotation::Create(64, 7);
  ASSERT_TRUE(rotation.ok());
  std::vector<double> wrong(32, 1.0);
  EXPECT_FALSE(rotation->Apply(wrong).ok());
  EXPECT_FALSE(rotation->Inverse(wrong).ok());
}

TEST(RandomRotationTest, BatchApplyMatchesScalarBitForBit) {
  const size_t d = 256;
  auto rotation = RandomRotation::Create(d, 17);
  ASSERT_TRUE(rotation.ok());
  RandomGenerator rng(23);
  std::vector<std::vector<double>> xs(6, std::vector<double>(d));
  for (auto& x : xs) {
    for (double& v : x) v = rng.Gaussian(0.0, 1.0);
  }
  // Scalar reference over the middle sub-range [1, 5).
  std::vector<std::vector<double>> expected;
  for (size_t i = 1; i < 5; ++i) {
    auto y = rotation->Apply(xs[i]);
    ASSERT_TRUE(y.ok());
    expected.push_back(std::move(*y));
  }
  std::vector<double> flat;
  ASSERT_TRUE(rotation->ApplyBatchInto(xs, 1, 5, flat).ok());
  ASSERT_EQ(flat.size(), 4 * d);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t j = 0; j < d; ++j) {
      ASSERT_EQ(flat[r * d + j], expected[r][j])
          << "row " << r << " coordinate " << j;
    }
  }
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> parallel;
    ASSERT_TRUE(rotation->ApplyBatchInto(xs, 1, 5, parallel, &pool).ok());
    EXPECT_EQ(flat, parallel) << threads << " threads";
  }
}

TEST(RandomRotationTest, BatchApplyValidates) {
  auto rotation = RandomRotation::Create(64, 7);
  ASSERT_TRUE(rotation.ok());
  std::vector<double> flat;
  std::vector<std::vector<double>> xs(2, std::vector<double>(64, 1.0));
  EXPECT_FALSE(rotation->ApplyBatchInto(xs, 1, 3, flat).ok());  // Range.
  xs[1].resize(32);  // Ragged row.
  EXPECT_FALSE(rotation->ApplyBatchInto(xs, 0, 2, flat).ok());
}

}  // namespace
}  // namespace smm::transform
