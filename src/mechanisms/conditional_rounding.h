#ifndef SMM_MECHANISMS_CONDITIONAL_ROUNDING_H_
#define SMM_MECHANISMS_CONDITIONAL_ROUNDING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace smm::mechanisms {

/// Rounding procedures of the competitor mechanisms (Section 5).

/// Plain stochastic rounding (cpSGD): each coordinate rounds to floor(x) + 1
/// with probability x - floor(x), else floor(x). Unbiased, but worst-case
/// inflates the L2 norm by sqrt(d).
std::vector<int64_t> StochasticRound(const std::vector<double>& g,
                                     RandomGenerator& rng);

/// Allocation-free StochasticRound: writes into out, reusing its capacity.
void StochasticRoundInto(const std::vector<double>& g, RandomGenerator& rng,
                         std::vector<int64_t>& out);

/// The conditional-rounding norm bound of DDG / Skellam (Eq. (6)): a
/// stochastically rounded version of a scaled input with ||gamma x||_2 <=
/// gamma * l2_bound is accepted only if its norm is at most
///   sqrt(gamma^2 l2_bound^2 + d/4
///        + sqrt(2 log(1/beta)) * (gamma l2_bound + sqrt(d)/2)),
/// which holds with probability >= 1 - beta. This inflated bound is also the
/// L2 sensitivity the mechanisms must calibrate their noise to — the d/4
/// term is the overhead SMM avoids.
double ConditionalRoundingNormBound(double gamma, double l2_bound, size_t dim,
                                    double beta);

/// Conditional rounding (Kairouz et al.): retries stochastic rounding until
/// the rounded vector's L2 norm is within norm_bound. Gives up after
/// max_retries and returns the deterministically rounded (toward nearest)
/// vector, which always satisfies the bound for inputs within the scaled
/// clip. Adds the number of rejected attempts to *rejections if non-null.
StatusOr<std::vector<int64_t>> ConditionallyRound(
    const std::vector<double>& g, double norm_bound, int max_retries,
    RandomGenerator& rng, int64_t* rejections);

/// Allocation-free ConditionallyRound for the batched encode path: writes
/// into out, reusing its capacity. Consumes the RNG identically to
/// ConditionallyRound.
Status ConditionallyRoundInto(const std::vector<double>& g, double norm_bound,
                              int max_retries, RandomGenerator& rng,
                              int64_t* rejections, std::vector<int64_t>& out);

/// Pointer-span variant for the fused encode pipeline, which rounds rows
/// living inside a batched-rotation tile rather than in their own vector.
/// Identical semantics and RNG consumption to the vector overload (which
/// delegates here). The accept/reject norm check is inherently
/// whole-vector, so this stage cannot be tiled further — the fused pipeline
/// calls it once per row between its blocked sweeps.
Status ConditionallyRoundInto(const double* g, size_t n, double norm_bound,
                              int max_retries, RandomGenerator& rng,
                              int64_t* rejections, std::vector<int64_t>& out);

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_CONDITIONAL_ROUNDING_H_
