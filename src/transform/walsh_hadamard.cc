#include "transform/walsh_hadamard.h"

#include <cmath>

#include "common/bit_util.h"

namespace smm::transform {

Status FastWalshHadamard(std::vector<double>& v) {
  const size_t d = v.size();
  if (d == 0 || !IsPowerOfTwo(d)) {
    return InvalidArgumentError(
        "Walsh-Hadamard transform requires a power-of-two length");
  }
  for (size_t h = 1; h < d; h <<= 1) {
    for (size_t i = 0; i < d; i += h << 1) {
      for (size_t j = i; j < i + h; ++j) {
        const double x = v[j];
        const double y = v[j + h];
        v[j] = x + y;
        v[j + h] = x - y;
      }
    }
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  for (double& x : v) x *= scale;
  return OkStatus();
}

std::vector<double> PadToPowerOfTwo(const std::vector<double>& x) {
  const size_t d = x.size() == 0 ? 1 : NextPowerOfTwo(x.size());
  std::vector<double> out(d, 0.0);
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  return out;
}

}  // namespace smm::transform
