#include "mechanisms/dgm_mechanism.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/simd.h"
#include "mechanisms/clipping.h"
#include "mechanisms/conditional_rounding.h"

namespace smm::mechanisms {

StatusOr<DiscreteGaussianMixtureNoiser> DiscreteGaussianMixtureNoiser::Create(
    double sigma, sampling::SamplerMode mode) {
  SMM_ASSIGN_OR_RETURN(
      auto sampler, sampling::DiscreteGaussianSampler::Create(sigma, mode));
  return DiscreteGaussianMixtureNoiser(std::move(sampler));
}

int64_t DiscreteGaussianMixtureNoiser::Perturb(double x,
                                               RandomGenerator& rng) {
  const double floor_x = std::floor(x);
  const double p = x - floor_x;
  int64_t base = static_cast<int64_t>(floor_x);
  if (rng.Bernoulli(p)) base += 1;
  return base + sampler_.Sample(rng);
}

std::vector<int64_t> DiscreteGaussianMixtureNoiser::PerturbVector(
    const std::vector<double>& x, RandomGenerator& rng) {
  std::vector<int64_t> out;
  std::vector<int64_t> noise;
  PerturbVectorInto(x, rng, out, noise);
  return out;
}

void DiscreteGaussianMixtureNoiser::PerturbVectorInto(
    const std::vector<double>& x, RandomGenerator& rng,
    std::vector<int64_t>& out, std::vector<int64_t>& noise) {
  // The floor/ceil Bernoulli mixture is exactly stochastic rounding.
  StochasticRoundInto(x, rng, out);
  const size_t n = x.size();
  noise.resize(n);
  sampler_.SampleBlock(n, noise.data(), rng);
  simd::AddI64InPlace(out.data(), noise.data(), n);
}

StatusOr<std::unique_ptr<DgmMechanism>> DgmMechanism::Create(
    const Options& options) {
  RotationCodec::Options codec_options;
  codec_options.dim = options.dim;
  codec_options.gamma = options.gamma;
  codec_options.modulus = options.modulus;
  codec_options.rotation_seed = options.rotation_seed;
  codec_options.apply_rotation = options.apply_rotation;
  SMM_ASSIGN_OR_RETURN(auto codec, RotationCodec::Create(codec_options));
  if (!(options.c > 0.0)) {
    return InvalidArgumentError("clip threshold c must be > 0");
  }
  if (!(options.delta_inf > 0.0)) {
    return InvalidArgumentError("delta_inf must be > 0");
  }
  SMM_ASSIGN_OR_RETURN(auto noiser, DiscreteGaussianMixtureNoiser::Create(
                                        options.sigma, options.sampler_mode));
  return std::unique_ptr<DgmMechanism>(
      new DgmMechanism(options, std::move(codec), std::move(noiser)));
}

DgmMechanism::DgmMechanism(Options options, RotationCodec codec,
                           DiscreteGaussianMixtureNoiser noiser)
    : RotatedModularMechanism(std::move(codec)),
      options_(options),
      noiser_(std::move(noiser)) {
  // Same fused spec as SmmMechanism with the noise callback swapped for the
  // discrete Gaussian. `this` is heap-allocated by Create and never moves.
  FusedPerturbSpec spec;
  spec.clip = FusedPerturbSpec::Clip::kSmm;
  spec.smm_c = options_.c;
  spec.smm_delta_inf = std::max(1.0, std::floor(options_.delta_inf));
  spec.sample_block = [this](size_t n, int64_t* out, RandomGenerator& rng) {
    noiser_.SampleNoiseBlock(n, out, rng);
  };
  set_fused_perturb_spec(std::move(spec));
}

Status DgmMechanism::PerturbRotatedInto(RandomGenerator& rng,
                                        EncodeWorkspace& workspace,
                                        EncodeCounters& counters) {
  (void)counters;  // DGM tracks no events beyond the shared overflow count.
  SMM_RETURN_IF_ERROR(SmmClip(workspace.real, options_.c, options_.delta_inf));
  noiser_.PerturbVectorInto(workspace.real, rng, workspace.ints,
                            workspace.noise);
  return OkStatus();
}

}  // namespace smm::mechanisms
