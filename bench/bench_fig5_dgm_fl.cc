// Reproduces Figure 5 (Appendix B.3): federated learning comparing SMM and
// DGM at communication constraints m in {2^6, 2^8, 2^10} (gamma in
// {16, 64, 256}) on both synthetic tasks, with DPSGD as the ceiling.
//
// Expected shape (paper): DGM is comparable to SMM except at the smallest
// bandwidth / strongest privacy, where the summed-discrete-Gaussian
// divergence and overflow hurt DGM.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "fl_experiment.h"

namespace smm::bench {
namespace {

void RunTask(const char* task_name, const data::SyntheticSplit& split,
             const FlScaleParams& params, Scale scale) {
  const std::vector<double> epsilons =
      scale == Scale::kFast   ? std::vector<double>{3.0}
      : scale == Scale::kFull ? std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}
                              : std::vector<double>{1.0, 3.0, 5.0};
  struct Setting {
    int log2_m;
    double gamma;
  };
  const std::vector<Setting> settings = scale == Scale::kFast
                                            ? std::vector<Setting>{{8, 64.0}}
                                            : std::vector<Setting>{
                                                  {6, 16.0},
                                                  {8, 64.0},
                                                  {10, 256.0}};

  std::printf("--- Figure 5 (%s): accuracy%% vs eps ---\n", task_name);
  std::vector<std::string> heads;
  for (double e : epsilons) heads.push_back(FormatSci(e));
  PrintRow("method \\ eps", heads, 18, 10);

  auto run = [&](fl::MechanismKind kind, double eps, const Setting& s) {
    fl::FlConfig c;
    c.mechanism = kind;
    c.epsilon = eps;
    c.delta = 1e-5;
    c.gamma = s.gamma;
    c.modulus = 1ULL << s.log2_m;
    c.rounds = params.rounds;
    c.seed = 17 + static_cast<uint64_t>(eps * 31) +
             static_cast<uint64_t>(s.log2_m);
    return RunFlExperiment(split, params, c);
  };

  {
    std::vector<std::string> cells;
    for (double eps : epsilons) {
      const double acc =
          run(fl::MechanismKind::kCentralDpSgd, eps, {30, 1.0});
      cells.push_back(acc < 0 ? "n/a" : FormatPct(acc));
    }
    PrintRow("DPSGD", cells, 18, 10);
  }
  for (const Setting& s : settings) {
    for (fl::MechanismKind kind :
         {fl::MechanismKind::kSmm, fl::MechanismKind::kDgm}) {
      std::vector<std::string> cells;
      for (double eps : epsilons) {
        const double acc = run(kind, eps, s);
        cells.push_back(acc < 0 ? "n/a" : FormatPct(acc));
      }
      char label[32];
      std::snprintf(label, sizeof(label), "%s %d bits",
                    fl::MechanismKindName(kind), s.log2_m);
      PrintRow(label, cells, 18, 10);
    }
  }
  std::printf("\n");
}

void Run(Scale scale) {
  FlScaleParams params = GetFlScale(scale);
  std::printf("Figure 5: SMM vs DGM federated learning, test accuracy%%\n");
  std::printf("scale=%s  rounds=%d  |B|=%d  delta=1e-5\n\n",
              ScaleName(scale), params.rounds, params.batch);

  for (const auto& [name, options] :
       {std::pair<const char*, data::SyntheticImageOptions>{
            "MNIST-like", data::MnistLikeOptions()},
        std::pair<const char*, data::SyntheticImageOptions>{
            "Fashion-like", data::FashionLikeOptions()}}) {
    data::SyntheticImageOptions data_options = options;
    data_options.num_train = params.num_train;
    data_options.num_test = params.num_test;
    data_options.feature_dim = params.feature_dim;
    auto split = data::MakeSyntheticImages(data_options);
    if (!split.ok()) {
      std::printf("data generation failed\n");
      continue;
    }
    RunTask(name, *split, params, scale);
  }
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
