#include "runner.h"

#include <cstdio>

#include "common/parallel.h"
#include "common/simd.h"

namespace smm::bench {

namespace {

using Clock = std::chrono::steady_clock;

const char* ScaleJsonName(Scale scale) {
  switch (scale) {
    case Scale::kFast:
      return "fast";
    case Scale::kFull:
      return "full";
    case Scale::kDefault:
      break;
  }
  return "default";
}

/// Minimal JSON string escaping for the few free-form strings the artifact
/// carries (labels, the tuning source path): quotes, backslashes, and
/// control bytes. Axis names and scenario names are fixed identifiers.
void WriteJsonString(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fprintf(f, "\\%c", c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

}  // namespace

double RunRecord::Metric(const std::string& name, double fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

bool ScenarioReport::AllBitIdentical() const {
  for (const auto& run : runs) {
    if (!run.bit_identical) return false;
  }
  return true;
}

bool MatrixReport::AllBitIdentical() const {
  for (const auto& scenario : scenarios) {
    if (!scenario.AllBitIdentical()) return false;
  }
  return true;
}

const ScenarioReport* MatrixReport::Find(const std::string& name) const {
  for (const auto& scenario : scenarios) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

double TimeSeconds(const std::function<void()>& body) {
  const auto start = Clock::now();
  body();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double BestOfN(int repeats, const std::function<void()>& body,
               const std::function<void()>& reset) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    if (reset) reset();
    const double seconds = TimeSeconds(body);
    if (seconds < best) best = seconds;
  }
  return best;
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(
    std::function<std::unique_ptr<Scenario>()> factory) {
  factories_.push_back(std::move(factory));
}

std::vector<std::unique_ptr<Scenario>> ScenarioRegistry::Instantiate() const {
  std::vector<std::unique_ptr<Scenario>> scenarios;
  scenarios.reserve(factories_.size());
  for (const auto& factory : factories_) scenarios.push_back(factory());
  return scenarios;
}

StatusOr<MatrixReport> RunMatrix(const std::string& filter,
                                 const RunOptions& options) {
  MatrixReport report;
  report.scale = options.scale;
  for (auto& scenario : ScenarioRegistry::Global().Instantiate()) {
    const std::string name = scenario->name();
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    ScenarioReport scenario_report;
    scenario_report.name = name;
    scenario_report.description = scenario->description();
    scenario_report.stable = scenario->stable();

    const ScenarioAxes axes = scenario->Axes(options);
    if (axes.threads.empty()) {
      if (options.verbose) {
        std::printf("scenario %s: skipped (no runnable points on this "
                    "host)\n",
                    name.c_str());
      }
      continue;
    }
    // Fixed nesting, threads innermost: the 1-thread run of each outer
    // combination lands first and anchors the bit-identity cross-check.
    for (const auto& mechanism : axes.mechanisms) {
      for (const auto& [modulus_class, modulus] : axes.moduli) {
        for (const size_t dim : axes.dims) {
          for (const size_t participants : axes.participants) {
            for (const double dropout : axes.dropout_rates) {
              for (const double corrupt : axes.corrupt_frame_rates) {
                for (const auto& dispatch : axes.dispatch) {
                  for (const size_t shards : axes.shards) {
                    for (const int threads : axes.threads) {
                      ScenarioPoint point;
                      point.mechanism = mechanism;
                      point.modulus_class = modulus_class;
                      point.modulus = modulus;
                      point.dim = dim;
                      point.participants = participants;
                      point.dropout_rate = dropout;
                      point.corrupt_frame_rate = corrupt;
                      point.dispatch = dispatch;
                      point.shards = shards;
                      point.threads = threads;
                      auto results = scenario->RunPoint(point, options);
                      if (!results.ok()) {
                        return Status(results.status().code(),
                                      "scenario " + name + " failed: " +
                                          results.status().ToString());
                      }
                      for (auto& result : *results) {
                        RunRecord record;
                        record.label = std::move(result.label);
                        record.params = point;
                        record.seconds = result.seconds;
                        record.items_per_sec =
                            result.seconds > 0.0
                                ? result.items / result.seconds
                                : 0.0;
                        record.bit_identical = result.bit_identical;
                        record.metrics = std::move(result.metrics);
                        if (options.verbose) {
                          std::printf(
                              "  %s/%s shards=%zu threads=%d dim=%zu "
                              "participants=%zu seconds=%.3e items/s=%.3e "
                              "identical=%s\n",
                              name.c_str(), record.label.c_str(),
                              point.shards, point.threads, point.dim,
                              point.participants, record.seconds,
                              record.items_per_sec,
                              record.bit_identical ? "yes" : "NO");
                        }
                        scenario_report.runs.push_back(std::move(record));
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
    report.scenarios.push_back(std::move(scenario_report));
  }
  return report;
}

Status WriteMatrixJson(const MatrixReport& report, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open " + path + " for the JSON report");
  }
  const RuntimeTuning tuning = GetRuntimeTuning();
  std::fprintf(f, "{\n  \"schema_version\": %d,\n", kMatrixSchemaVersion);
  std::fprintf(f, "  \"bench\": \"bench_matrix\",\n");
  std::fprintf(f, "  \"scale\": \"%s\",\n", ScaleJsonName(report.scale));
  std::fprintf(f,
               "  \"host\": {\"hardware_threads\": %d, "
               "\"simd_dispatch\": \"%s\"},\n",
               ThreadPool::HardwareThreads(), simd::Active().name);
  std::fprintf(f, "  \"tuning\": {\"source\": ");
  WriteJsonString(f, tuning.source);
  std::fprintf(f,
               ", \"tile_rows_per_thread\": %zu, "
               "\"threads_per_session\": %d},\n",
               tuning.tile_rows_per_thread, tuning.threads_per_session);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t s = 0; s < report.scenarios.size(); ++s) {
    const ScenarioReport& scenario = report.scenarios[s];
    std::fprintf(f, "    {\"name\": \"%s\", \"stable\": %s,\n",
                 scenario.name.c_str(), scenario.stable ? "true" : "false");
    std::fprintf(f, "     \"runs\": [\n");
    for (size_t r = 0; r < scenario.runs.size(); ++r) {
      const RunRecord& run = scenario.runs[r];
      const ScenarioPoint& p = run.params;
      std::fprintf(f, "      {\"label\": ");
      WriteJsonString(f, run.label);
      std::fprintf(f, ",\n       \"params\": {");
      std::fprintf(f, "\"mechanism\": ");
      WriteJsonString(f, p.mechanism);
      std::fprintf(f, ", \"modulus_class\": ");
      WriteJsonString(f, p.modulus_class);
      std::fprintf(f, ", \"modulus\": %llu,\n",
                   static_cast<unsigned long long>(p.modulus));
      std::fprintf(f,
                   "                  \"dim\": %zu, \"participants\": %zu, "
                   "\"dropout_rate\": %.6f,\n",
                   p.dim, p.participants, p.dropout_rate);
      std::fprintf(f,
                   "                  \"corrupt_frame_rate\": %.6f, "
                   "\"dispatch\": ",
                   p.corrupt_frame_rate);
      WriteJsonString(f, p.dispatch);
      std::fprintf(f, ", \"shards\": %zu, \"threads\": %d},\n", p.shards,
                   p.threads);
      std::fprintf(f,
                   "       \"seconds\": %.6e, \"items_per_sec\": %.6e, "
                   "\"bit_identical\": %s,\n",
                   run.seconds, run.items_per_sec,
                   run.bit_identical ? "true" : "false");
      std::fprintf(f, "       \"metrics\": {");
      for (size_t m = 0; m < run.metrics.size(); ++m) {
        std::fprintf(f, "%s\"%s\": %.6e", m == 0 ? "" : ", ",
                     run.metrics[m].first.c_str(), run.metrics[m].second);
      }
      std::fprintf(f, "}}%s\n", r + 1 < scenario.runs.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n",
                 s + 1 < report.scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return OkStatus();
}

}  // namespace smm::bench
