#ifndef SMM_COMMON_MATH_UTIL_H_
#define SMM_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

/// Annotation for functions whose uint64 arithmetic wraps *by design* (the
/// xoshiro/splitmix PRG core, the FNV-1a frame checksum). The uio CI job
/// builds src/common and src/secagg with clang's
/// -fsanitize=unsigned-integer-overflow to catch *accidental* wrap in the
/// modular-arithmetic paths; deliberate-wrap sites carry this one shared
/// annotation so the definitions cannot drift apart.
#if defined(__clang__)
#define SMM_NO_SANITIZE_UNSIGNED_WRAP \
  __attribute__((no_sanitize("unsigned-integer-overflow")))
#else
#define SMM_NO_SANITIZE_UNSIGNED_WRAP
#endif

namespace smm {

/// Overflow-safe (a + b) mod m for a, b already reduced into [0, m).
///
/// The naive `(a + b) % m` silently wraps uint64_t whenever a + b >= 2^64,
/// which happens for any modulus above 2^63 — exactly the large-modulus
/// regime the communication analysis sweeps. This helper never forms the
/// possibly-wrapping sum: it branches on the headroom instead
/// (a + b >= m  <=>  a >= m - b), so every intermediate stays below m and
/// the result is exact for every m in [2, 2^64). All modular accumulation
/// in the library goes through AddMod/SubMod; they are also the only
/// arithmetic the unsigned-overflow sanitizer CI job needs to accept.
///
/// Contract: a < m and b < m (the caller reduces unconstrained inputs with
/// `% m` first — a single reduction cannot overflow).
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t m) {
  // b < m makes m - b >= 1 and a - (m - b) = a + b - m when the branch is
  // taken, so neither expression can wrap.
  return a >= m - b ? a - (m - b) : a + b;
}

/// Overflow-safe (a - b) mod m for a, b already reduced into [0, m).
/// Same contract as AddMod; the naive `(a + m - b) % m` wraps for m > 2^63.
inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m) {
  return a >= b ? a - b : a + (m - b);
}

/// Numerically stable log(exp(a) + exp(b)).
double LogAdd(double a, double b);

/// Numerically stable log(sum_i exp(v_i)). Returns -inf for an empty input.
double LogSumExp(const std::vector<double>& values);

/// log(n!) via lgamma. Requires n >= 0.
double LogFactorial(int64_t n);

/// log(C(n, k)). Requires 0 <= k <= n.
double LogBinomial(int64_t n, int64_t k);

/// log of the modified Bessel function of the first kind I_v(x) for integer
/// order v >= 0 and x >= 0, evaluated by the ascending series
///   I_v(x) = sum_h (x/2)^{2h+v} / (h! (h+v)!)
/// in log space. Accurate for the moderate arguments used in tests
/// (x up to a few thousand).
double LogBesselI(int64_t v, double x);

/// log Pr[Poisson(lambda) = k]. Requires lambda > 0, k >= 0.
double PoissonLogPmf(int64_t k, double lambda);

/// log Pr[Sk(lambda, lambda) = k], the symmetric Skellam pmf
///   Pr[Z = k] = exp(-2 lambda) I_{|k|}(2 lambda).
double SkellamLogPmf(int64_t k, double lambda);

/// log Pr[N_Z(0, sigma^2) = k] for the discrete Gaussian: proportional to
/// exp(-k^2 / (2 sigma^2)), normalized by direct summation.
double DiscreteGaussianLogPmf(int64_t k, double sigma);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

}  // namespace smm

#endif  // SMM_COMMON_MATH_UTIL_H_
