#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

namespace smm::nn {

StatusOr<Mlp> Mlp::Create(const Options& options) {
  if (options.input_dim < 1) {
    return InvalidArgumentError("input_dim must be >= 1");
  }
  if (options.num_classes < 2) {
    return InvalidArgumentError("num_classes must be >= 2");
  }
  for (int h : options.hidden_dims) {
    if (h < 1) return InvalidArgumentError("hidden dims must be >= 1");
  }
  std::vector<int> widths;
  widths.push_back(options.input_dim);
  for (int h : options.hidden_dims) widths.push_back(h);
  widths.push_back(options.num_classes);

  std::vector<LayerShape> shapes;
  size_t offset = 0;
  for (size_t l = 0; l + 1 < widths.size(); ++l) {
    LayerShape s;
    s.in = widths[l];
    s.out = widths[l + 1];
    s.weight_offset = offset;
    offset += static_cast<size_t>(s.in) * static_cast<size_t>(s.out);
    s.bias_offset = offset;
    offset += static_cast<size_t>(s.out);
    shapes.push_back(s);
  }

  Mlp mlp(options, std::move(shapes), offset);
  // Xavier/Glorot-uniform initialization.
  RandomGenerator rng(options.init_seed);
  for (const LayerShape& s : mlp.shapes_) {
    const double limit = std::sqrt(6.0 / static_cast<double>(s.in + s.out));
    for (size_t k = 0; k < static_cast<size_t>(s.in) * s.out; ++k) {
      mlp.params_[s.weight_offset + k] =
          (2.0 * rng.UniformDouble() - 1.0) * limit;
    }
    // Biases stay zero.
  }
  return mlp;
}

void Mlp::ForwardInternal(
    const std::vector<double>& x,
    std::vector<std::vector<double>>& activations) const {
  activations.clear();
  activations.reserve(shapes_.size() + 1);
  activations.push_back(x);
  for (size_t l = 0; l < shapes_.size(); ++l) {
    const LayerShape& s = shapes_[l];
    const std::vector<double>& a = activations.back();
    std::vector<double> z(static_cast<size_t>(s.out));
    for (int o = 0; o < s.out; ++o) {
      const double* w =
          params_.data() + s.weight_offset + static_cast<size_t>(o) * s.in;
      double acc = params_[s.bias_offset + static_cast<size_t>(o)];
      for (int i = 0; i < s.in; ++i) acc += w[i] * a[static_cast<size_t>(i)];
      z[static_cast<size_t>(o)] = acc;
    }
    const bool is_last = (l + 1 == shapes_.size());
    if (!is_last) {
      for (double& v : z) v = std::max(0.0, v);  // ReLU.
    }
    activations.push_back(std::move(z));
  }
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) const {
  std::vector<std::vector<double>> activations;
  ForwardInternal(x, activations);
  return activations.back();
}

namespace {

/// Softmax probabilities from logits, numerically stable.
std::vector<double> Softmax(const std::vector<double>& logits) {
  const double m = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - m);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace

Mlp::LossAndGrad Mlp::ComputeLossAndGradient(const std::vector<double>& x,
                                             int label) const {
  std::vector<std::vector<double>> activations;
  ForwardInternal(x, activations);
  const std::vector<double> probs = Softmax(activations.back());
  LossAndGrad result;
  result.loss = -std::log(std::max(probs[static_cast<size_t>(label)], 1e-12));
  result.grad.assign(params_.size(), 0.0);

  // delta = dL/dz for the current layer; starts at softmax-CE gradient.
  std::vector<double> delta = probs;
  delta[static_cast<size_t>(label)] -= 1.0;

  for (size_t l = shapes_.size(); l-- > 0;) {
    const LayerShape& s = shapes_[l];
    const std::vector<double>& a_in = activations[l];
    // Weight and bias gradients.
    for (int o = 0; o < s.out; ++o) {
      const double d = delta[static_cast<size_t>(o)];
      double* gw = result.grad.data() + s.weight_offset +
                   static_cast<size_t>(o) * s.in;
      for (int i = 0; i < s.in; ++i) gw[i] = d * a_in[static_cast<size_t>(i)];
      result.grad[s.bias_offset + static_cast<size_t>(o)] = d;
    }
    if (l == 0) break;
    // Propagate delta to the previous layer through W and the ReLU mask.
    std::vector<double> prev(static_cast<size_t>(s.in), 0.0);
    for (int o = 0; o < s.out; ++o) {
      const double d = delta[static_cast<size_t>(o)];
      const double* w =
          params_.data() + s.weight_offset + static_cast<size_t>(o) * s.in;
      for (int i = 0; i < s.in; ++i) prev[static_cast<size_t>(i)] += d * w[i];
    }
    for (int i = 0; i < s.in; ++i) {
      if (a_in[static_cast<size_t>(i)] <= 0.0) prev[static_cast<size_t>(i)] = 0.0;
    }
    delta = std::move(prev);
  }
  return result;
}

double Mlp::ComputeLoss(const std::vector<double>& x, int label) const {
  const std::vector<double> logits = Forward(x);
  const std::vector<double> probs = Softmax(logits);
  return -std::log(std::max(probs[static_cast<size_t>(label)], 1e-12));
}

int Mlp::Predict(const std::vector<double>& x) const {
  const std::vector<double> logits = Forward(x);
  return static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

Mlp::PredictionLoss Mlp::PredictWithLoss(const std::vector<double>& x,
                                         int label) const {
  const std::vector<double> logits = Forward(x);
  PredictionLoss result;
  result.predicted = static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
  const std::vector<double> probs = Softmax(logits);
  result.loss = -std::log(std::max(probs[static_cast<size_t>(label)], 1e-12));
  return result;
}

}  // namespace smm::nn
