#ifndef SMM_NET_SOCKET_UTIL_H_
#define SMM_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>

#include "common/span.h"
#include "common/status.h"

namespace smm::net {

/// True when this build carries the socket/epoll backend (Linux). On other
/// platforms every function below compiles but returns kUnimplemented, so
/// callers can gate at runtime instead of sprinkling #ifdefs.
bool NetSupported();

/// A move-only owner of a POSIX file descriptor; closes on destruction.
/// -1 means "no fd". Never throws; a failed close is ignored (the fd is
/// gone either way).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Releases ownership without closing; returns the fd.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the owned fd (if any) and optionally adopts a new one.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Binds + listens a TCP socket on 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port). The returned socket has SO_REUSEADDR set and is
/// blocking; callers that feed an event loop flip it with SetNonBlocking.
StatusOr<UniqueFd> ListenLoopback(uint16_t port, int backlog);

/// Returns the local port a bound socket ended up on (for port 0 binds).
StatusOr<uint16_t> BoundPort(int fd);

/// Opens a blocking TCP connection to 127.0.0.1:`port` with TCP_NODELAY
/// (frames are latency-sensitive and self-contained; Nagle only hurts).
StatusOr<UniqueFd> ConnectLoopback(uint16_t port);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);

/// Writes the whole span, polling through partial writes and EAGAIN (works
/// for blocking and non-blocking fds alike). kDataLoss if the peer closes
/// the read side mid-write (EPIPE/ECONNRESET).
Status SendAll(int fd, ByteSpan bytes);

/// Reads up to `cap` bytes, retrying EINTR and polling through EAGAIN.
/// Returns the byte count, 0 on clean EOF; kDataLoss on a reset.
StatusOr<size_t> RecvSome(int fd, uint8_t* buf, size_t cap);

/// Half-closes the sending direction (shutdown(SHUT_WR)): the peer sees
/// EOF after draining, while this side can still read.
Status ShutdownSend(int fd);

}  // namespace smm::net

#endif  // SMM_NET_SOCKET_UTIL_H_
