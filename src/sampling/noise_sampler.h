#ifndef SMM_SAMPLING_NOISE_SAMPLER_H_
#define SMM_SAMPLING_NOISE_SAMPLER_H_

#include <cstddef>
#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "sampling/rational.h"

namespace smm::sampling {

/// Whether a noise sampler uses the exact integer-arithmetic algorithms
/// (strict DP; Appendix A) or the fast floating-point approximations
/// (what the paper's experiments use; Section 6).
enum class SamplerMode { kApproximate, kExact };

/// Samples symmetric Skellam noise Sk(lambda, lambda) in either mode.
///
/// In exact mode, lambda is rationalized with denominator <= max_denominator
/// (the sampled distribution is exactly Sk(p/q, p/q) for that rational).
class SkellamSampler {
 public:
  /// Creates a sampler. lambda must be > 0.
  static StatusOr<SkellamSampler> Create(
      double lambda, SamplerMode mode = SamplerMode::kApproximate,
      int64_t max_denominator = 1000000);

  /// Draws one variate. Non-const: the approximate path keeps distribution
  /// state for speed.
  int64_t Sample(RandomGenerator& rng);

  /// Fills out[0..n) with n i.i.d. draws, amortizing the mode dispatch and
  /// adapter setup over the whole block. Consumes the RNG exactly as n
  /// scalar Sample calls would (in particular, exact mode draws the
  /// identical RandInt sequence), so block and scalar encodes are
  /// bit-compatible.
  void SampleBlock(size_t n, int64_t* out, RandomGenerator& rng);

  double lambda() const { return lambda_; }
  SamplerMode mode() const { return mode_; }
  /// Variance of the sampled distribution (2 * lambda).
  double variance() const { return 2.0 * lambda_; }

 private:
  // No distribution-object state: the approximate path uses the
  // self-contained SamplePoissonApprox (libstdc++'s poisson_distribution
  // caches Gaussian state across draws and calls glibc lgamma(), whose
  // global-signgam write races under concurrent EncodeBatch shards).
  SkellamSampler(double lambda, SamplerMode mode, Rational rational_lambda)
      : lambda_(lambda), mode_(mode), rational_lambda_(rational_lambda) {}

  double lambda_;
  SamplerMode mode_;
  Rational rational_lambda_;
};

/// Samples discrete Gaussian noise N_Z(0, sigma^2) in either mode.
class DiscreteGaussianSampler {
 public:
  /// Creates a sampler. sigma must be > 0.
  static StatusOr<DiscreteGaussianSampler> Create(
      double sigma, SamplerMode mode = SamplerMode::kApproximate,
      int64_t max_denominator = 1000000);

  int64_t Sample(RandomGenerator& rng);

  /// Block variant of Sample; same RNG-consumption guarantee as
  /// SkellamSampler::SampleBlock.
  void SampleBlock(size_t n, int64_t* out, RandomGenerator& rng);

  double sigma() const { return sigma_; }
  SamplerMode mode() const { return mode_; }
  double variance() const { return sigma_ * sigma_; }

 private:
  DiscreteGaussianSampler(double sigma, SamplerMode mode,
                          Rational rational_sigma2)
      : sigma_(sigma), mode_(mode), rational_sigma2_(rational_sigma2) {}

  double sigma_;
  SamplerMode mode_;
  Rational rational_sigma2_;
};

/// Samples centered binomial noise Binomial(trials, 1/2) - trials/2, the
/// cpSGD baseline's distribution. Up to 100k trials the draw is an exact
/// fair-coin count (popcount over raw generator words — free of
/// libstdc++/libc global state, at cost linear in trials); above that the
/// normal approximation is used, as in the paper's regime where cpSGD's
/// calibrated trial counts are enormous.
class CenteredBinomialSampler {
 public:
  /// Creates a sampler. trials must be >= 1.
  static StatusOr<CenteredBinomialSampler> Create(int64_t trials);

  int64_t Sample(RandomGenerator& rng) const;

  /// Block variant; consumes the RNG exactly as n scalar Sample calls.
  void SampleBlock(size_t n, int64_t* out, RandomGenerator& rng) const;

  int64_t trials() const { return trials_; }
  /// Variance of the sampled distribution (trials / 4).
  double variance() const { return static_cast<double>(trials_) / 4.0; }

 private:
  explicit CenteredBinomialSampler(int64_t trials) : trials_(trials) {}

  int64_t trials_;
};

}  // namespace smm::sampling

#endif  // SMM_SAMPLING_NOISE_SAMPLER_H_
