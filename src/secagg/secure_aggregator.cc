#include "secagg/secure_aggregator.h"

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <utility>

#include "secagg/modular.h"

namespace smm::secagg {

namespace {

/// The one sharded-reduction scaffold behind every parallel sum in this
/// file: shards [0, n) across `pool` (nullptr, a 1-thread pool, or n < 2
/// runs fn inline on `acc`), gives each chunk a zeroed partial accumulator
/// of acc.size() elements, and reduces the partials into acc mod m in chunk
/// order, returning the first chunk error. fn(begin, end, acc) must
/// accumulate mod m. Modular addition commutes, so the result is
/// bit-identical for any thread count.
Status ShardedModularAccumulate(
    ThreadPool* pool, size_t n, uint64_t m, std::vector<uint64_t>& acc,
    const std::function<Status(size_t, size_t, std::vector<uint64_t>&)>& fn) {
  if (pool == nullptr || pool->num_threads() == 1 || n < 2) {
    return fn(0, n, acc);
  }
  std::vector<std::vector<uint64_t>> partials(
      static_cast<size_t>(pool->num_threads()));
  std::vector<Status> chunk_status(static_cast<size_t>(pool->num_threads()));
  pool->ParallelFor(n, [&](int chunk, size_t begin, size_t end) {
    std::vector<uint64_t>& partial = partials[static_cast<size_t>(chunk)];
    partial.assign(acc.size(), 0);
    chunk_status[static_cast<size_t>(chunk)] = fn(begin, end, partial);
  });
  for (const Status& status : chunk_status) {
    if (!status.ok()) return status;
  }
  for (const auto& partial : partials) {
    if (partial.empty()) continue;  // Chunk count may be below thread count.
    for (size_t k = 0; k < acc.size(); ++k) {
      acc[k] = (acc[k] + partial[k]) % m;
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<uint64_t>> IdealAggregator::Aggregate(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  return AggregateParallel(inputs, m, nullptr);
}

StatusOr<std::vector<uint64_t>> IdealAggregator::AggregateParallel(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
    ThreadPool* pool) {
  if (inputs.empty()) return InvalidArgumentError("no inputs to aggregate");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  const size_t dim = inputs[0].size();
  for (const auto& input : inputs) {
    if (input.size() != dim) {
      return InvalidArgumentError("input dimension mismatch");
    }
  }
  std::vector<uint64_t> sum(dim, 0);
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool, inputs.size(), m, sum,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<uint64_t>& input = inputs[i];
          for (size_t j = 0; j < dim; ++j) {
            acc[j] = (acc[j] + input[j] % m) % m;
          }
        }
        return OkStatus();
      }));
  return sum;
}

MaskedAggregator::MaskedAggregator(
    Options options, std::vector<std::vector<uint64_t>> seeds,
    std::vector<std::vector<std::vector<ShamirShare>>> shares)
    : options_(options),
      seeds_(std::move(seeds)),
      shares_(std::move(shares)) {}

StatusOr<std::unique_ptr<MaskedAggregator>> MaskedAggregator::Create(
    const Options& options) {
  const int n = options.num_participants;
  if (n < 2) return InvalidArgumentError("need at least 2 participants");
  if (options.threshold < 1 || options.threshold > n) {
    return InvalidArgumentError("need 1 <= threshold <= num_participants");
  }
  RandomGenerator rng(options.session_seed);
  // Pairwise seed agreement (simulating the DH key exchange of SecAgg
  // round 0): one uniform seed per unordered pair.
  std::vector<std::vector<uint64_t>> seeds(
      n, std::vector<uint64_t>(static_cast<size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Keep seeds in the Shamir field so they can be shared verbatim.
      seeds[i][j] = rng.UniformUint64(kShamirPrime);
    }
  }
  // Each pair seed is Shamir-shared among all n participants so the server
  // can recover masks of dropped participants from any `threshold`
  // survivors.
  std::vector<std::vector<std::vector<ShamirShare>>> shares(
      n, std::vector<std::vector<ShamirShare>>(static_cast<size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      SMM_ASSIGN_OR_RETURN(
          shares[i][j], ShamirSplit(seeds[i][j], options.threshold, n, rng));
    }
  }
  return std::unique_ptr<MaskedAggregator>(new MaskedAggregator(
      options, std::move(seeds), std::move(shares)));
}

void MaskedAggregator::AccumulateMask(uint64_t seed, uint64_t m, int sign,
                                      std::vector<uint64_t>& acc) {
  RandomGenerator prg(seed);
  if (sign > 0) {
    for (auto& v : acc) v = (v + prg.UniformUint64(m)) % m;
  } else {
    for (auto& v : acc) v = (v + m - prg.UniformUint64(m)) % m;
  }
}

uint64_t MaskedAggregator::PairSeed(int i, int j) const {
  return seeds_[std::min(i, j)][std::max(i, j)];
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::MaskInput(
    int participant, const std::vector<uint64_t>& input, uint64_t m,
    ThreadPool* pool) const {
  const int n = options_.num_participants;
  if (participant < 0 || participant >= n) {
    return InvalidArgumentError("participant index out of range");
  }
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  std::vector<uint64_t> out(input.size());
  for (size_t k = 0; k < input.size(); ++k) out[k] = input[k] % m;
  // Participant i adds +PRG(s_ij) for j > i and -PRG(s_ij) for j < i; the
  // contributions cancel pairwise in the full sum. Pair index p enumerates
  // the n - 1 counterparties in increasing j order.
  const size_t num_pairs = static_cast<size_t>(n - 1);
  const auto accumulate_pairs = [&](size_t begin, size_t end,
                                    std::vector<uint64_t>& acc) {
    for (size_t p = begin; p < end; ++p) {
      const int j = static_cast<int>(p) < participant
                        ? static_cast<int>(p)
                        : static_cast<int>(p) + 1;
      AccumulateMask(PairSeed(participant, j), m, j > participant ? 1 : -1,
                     acc);
    }
  };
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool, num_pairs, m, out,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        accumulate_pairs(begin, end, acc);
        return OkStatus();
      }));
  return out;
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::UnmaskSum(
    const std::vector<std::vector<uint64_t>>& masked_inputs,
    const std::vector<int>& survivors, size_t dim, uint64_t m,
    ThreadPool* pool) const {
  const int n = options_.num_participants;
  if (masked_inputs.size() != survivors.size()) {
    return InvalidArgumentError("one masked input per survivor required");
  }
  if (static_cast<int>(survivors.size()) < options_.threshold) {
    return FailedPreconditionError(
        "fewer survivors than the Shamir threshold; cannot unmask");
  }
  std::unordered_set<int> survivor_set(survivors.begin(), survivors.end());
  if (survivor_set.size() != survivors.size()) {
    return InvalidArgumentError("duplicate survivor index");
  }
  for (const auto& input : masked_inputs) {
    if (input.size() != dim) {
      return InvalidArgumentError("masked input dimension mismatch");
    }
  }
  // Stage 1: element-wise sum of the masked inputs, sharded over survivors
  // when a pool is given.
  std::vector<uint64_t> sum(dim, 0);
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool, masked_inputs.size(), m, sum,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<uint64_t>& input = masked_inputs[i];
          for (size_t k = 0; k < dim; ++k) acc[k] = (acc[k] + input[k]) % m;
        }
        return OkStatus();
      }));

  // Stage 2: masks between two survivors cancel. For every
  // (survivor, dropped) pair, reconstruct the pair seed from the survivors'
  // shares and remove the leftover mask term. The pairs are enumerated up
  // front and sharded across the pool; each pair's mask comes from its own
  // PRG stream, so the chunking never changes the result.
  std::vector<std::pair<int, int>> recovery_pairs;
  for (int i : survivors) {
    for (int j = 0; j < n; ++j) {
      if (j == i || survivor_set.count(j) > 0) continue;
      recovery_pairs.emplace_back(i, j);
    }
  }
  const auto recover_range = [&](size_t begin, size_t end,
                                 std::vector<uint64_t>& acc) -> Status {
    std::vector<ShamirShare> collected;
    collected.reserve(survivors.size());
    for (size_t p = begin; p < end; ++p) {
      const auto [i, j] = recovery_pairs[p];
      const auto& pair_shares = shares_[std::min(i, j)][std::max(i, j)];
      collected.clear();
      for (int s : survivors) {
        collected.push_back(pair_shares[static_cast<size_t>(s)]);
      }
      SMM_ASSIGN_OR_RETURN(const uint64_t seed,
                           ShamirReconstruct(collected, options_.threshold));
      // Survivor i added +mask for j > i expecting j to cancel it
      // (subtract); for j < i it added -mask (add back).
      AccumulateMask(seed, m, j > i ? -1 : 1, acc);
    }
    return OkStatus();
  };
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(pool, recovery_pairs.size(),
                                               m, sum, recover_range));
  return sum;
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::Aggregate(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  return AggregateParallel(inputs, m, nullptr);
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::AggregateParallel(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
    ThreadPool* pool) {
  const int n = options_.num_participants;
  if (static_cast<int>(inputs.size()) != n) {
    return InvalidArgumentError(
        "Aggregate expects one input per participant");
  }
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  const size_t dim = inputs[0].size();
  std::vector<std::vector<uint64_t>> masked(inputs.size());
  std::vector<int> survivors(inputs.size());
  for (int i = 0; i < n; ++i) survivors[static_cast<size_t>(i)] = i;
  if (pool == nullptr || pool->num_threads() == 1 || n < 2) {
    for (int i = 0; i < n; ++i) {
      SMM_ASSIGN_OR_RETURN(masked[static_cast<size_t>(i)],
                           MaskInput(i, inputs[static_cast<size_t>(i)], m));
    }
  } else {
    // Each participant's masking is independent (it reads only the shared
    // seed table), so the participant range shards cleanly; the per-pair
    // PRG streams keep every shard's masks identical to the sequential run.
    std::vector<Status> chunk_status(
        static_cast<size_t>(pool->num_threads()));
    pool->ParallelFor(inputs.size(), [&](int chunk, size_t begin,
                                         size_t end) {
      Status& status = chunk_status[static_cast<size_t>(chunk)];
      for (size_t i = begin; i < end; ++i) {
        auto mi = MaskInput(static_cast<int>(i), inputs[i], m);
        if (!mi.ok()) {
          status = mi.status();
          return;
        }
        masked[i] = std::move(*mi);
      }
    });
    for (const Status& status : chunk_status) {
      if (!status.ok()) return status;
    }
  }
  return UnmaskSum(masked, survivors, dim, m, pool);
}

}  // namespace smm::secagg
