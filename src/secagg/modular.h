#ifndef SMM_SECAGG_MODULAR_H_
#define SMM_SECAGG_MODULAR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"

namespace smm::secagg {

/// Arithmetic in Z_m (Lines 11 of Algorithm 4 and Line 1 of Algorithm 6).
/// The modulus m is the per-dimension communication budget of the secure
/// aggregation protocol: log2(m) bits per coordinate. Every operation here
/// is exact for the full modulus range [2, 2^64) — including m > 2^63,
/// where naive `(a + b) % m` accumulation silently wraps uint64_t; see
/// smm::AddMod in common/math_util.h for the compare-and-correct scheme.

/// Reduces a signed integer into {0, ..., m-1}.
uint64_t ModReduce(int64_t value, uint64_t m);

/// The server-side unwrap of Algorithm 6 Line 1: maps {0, ..., m-1} back to
/// the centered representatives {-floor(m/2), ..., ceil(m/2) - 1}. Values in
/// {ceil(m/2), ..., m-1} map to {-floor(m/2), ..., -1}; values in
/// {0, ..., ceil(m/2) - 1} stay put. For even m that is the familiar
/// [-m/2, m/2) window; for odd m the window is symmetric,
/// [-(m-1)/2, (m-1)/2], and the boundary value floor(m/2) lifts to the
/// positive representative +(m-1)/2.
int64_t CenterLift(uint64_t value, uint64_t m);

/// Element-wise (a + b) mod m. Vectors must have equal length. Entries need
/// not be pre-reduced; the result is exact for any m >= 2.
StatusOr<std::vector<uint64_t>> AddMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m);

/// Element-wise (a - b) mod m.
StatusOr<std::vector<uint64_t>> SubMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m);

/// Reduces a signed vector into Z_m element-wise.
std::vector<uint64_t> ReduceVector(const std::vector<int64_t>& v, uint64_t m);

/// Center-lifts a Z_m vector element-wise.
std::vector<int64_t> LiftVector(const std::vector<uint64_t>& v, uint64_t m);

/// The one sharded-reduction scaffold behind every parallel modular sum in
/// secagg/: shards [0, n) across `pool` (nullptr, a 1-thread pool, or n < 2
/// runs fn inline on `acc`), gives each chunk a zeroed partial accumulator
/// of acc.size() elements, and reduces the partials into acc mod m in chunk
/// order, returning the first chunk error. fn(begin, end, acc) must
/// accumulate mod m (i.e. keep acc entries in [0, m)). Modular addition
/// commutes exactly, so the result is bit-identical for any thread count.
Status ShardedModularAccumulate(
    ThreadPool* pool, size_t n, uint64_t m, std::vector<uint64_t>& acc,
    const std::function<Status(size_t, size_t, std::vector<uint64_t>&)>& fn);

}  // namespace smm::secagg

#endif  // SMM_SECAGG_MODULAR_H_
