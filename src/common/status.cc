#include "common/status.h"

namespace smm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace smm
