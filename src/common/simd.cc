#include "common/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/math_util.h"

namespace smm::simd {

namespace {

// ---------------------------------------------------------------------------
// The scalar reference kernels: faithful ports of the per-element loops the
// hot paths historically ran. These define correctness — the AVX2 table must
// match them bit-for-bit — so they stay deliberately simple (`% m`
// reductions, the branchy compare-and-correct AddMod/SubMod) rather than
// micro-optimized.
// ---------------------------------------------------------------------------

void ScalarScaleInPlace(double* v, size_t n, double factor) {
  for (size_t j = 0; j < n; ++j) v[j] *= factor;
}

void ScalarUnscaleInPlace(double* v, size_t n, double factor) {
  for (size_t j = 0; j < n; ++j) v[j] /= factor;
}

void ScalarWhtButterflyPass(double* v, size_t n, size_t h) {
  for (size_t i = 0; i < n; i += h << 1) {
    double* a = v + i;
    double* b = v + i + h;
    for (size_t j = 0; j < h; ++j) {
      const double x = a[j];
      const double y = b[j];
      a[j] = x + y;
      b[j] = x - y;
    }
  }
}

void ScalarFloorFractScaled(const double* x, size_t n, double scale,
                            double* flr, double* frac) {
  for (size_t j = 0; j < n; ++j) {
    const double g = x[j] * scale;
    const double f = std::floor(g);
    flr[j] = f;
    frac[j] = g - f;
  }
}

size_t ScalarWrapCenteredInto(const int64_t* values, size_t n, uint64_t m,
                              uint64_t* out) {
  // The representable centered window is exactly what CenterLift inverts:
  // {-floor(m/2), ..., ceil(m/2) - 1}. Both bounds fit int64_t for every
  // m < 2^64.
  const int64_t lo = -static_cast<int64_t>(m / 2);
  const int64_t hi = static_cast<int64_t>((m - 1) / 2);
  size_t overflow = 0;
  for (size_t j = 0; j < n; ++j) {
    const int64_t v = values[j];
    if (v < lo || v > hi) ++overflow;
    out[j] = ModReduceScalarI64(v, m);
  }
  return overflow;
}

void ScalarCenterLiftInto(const uint64_t* values, size_t n, uint64_t m,
                          int64_t* out) {
  // Negative representatives start at ceil(m/2): value > (m-1)/2 is exactly
  // value >= ceil(m/2) for both parities, and the magnitude m - value is at
  // most floor(m/2) <= INT64_MAX, so the negation never overflows.
  const uint64_t threshold = (m - 1) / 2;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t v = values[j];
    out[j] = v > threshold ? -static_cast<int64_t>(m - v)
                           : static_cast<int64_t>(v);
  }
}

void ScalarModReduceInto(const uint64_t* values, size_t n, uint64_t m,
                         uint64_t* out) {
  for (size_t j = 0; j < n; ++j) out[j] = values[j] % m;
}

void ScalarAddModVec(uint64_t* acc, const uint64_t* b, size_t n, uint64_t m) {
  for (size_t j = 0; j < n; ++j) {
    acc[j] = smm::AddMod(acc[j], b[j] % m, m);
  }
}

void ScalarSubModVec(uint64_t* acc, const uint64_t* b, size_t n, uint64_t m) {
  for (size_t j = 0; j < n; ++j) {
    acc[j] = smm::SubMod(acc[j], b[j] % m, m);
  }
}

void ScalarAddI64InPlace(int64_t* v, const int64_t* delta, size_t n) {
  for (size_t j = 0; j < n; ++j) v[j] += delta[j];
}

constexpr Kernels kScalarKernels = {
    "scalar",
    ScalarScaleInPlace,
    ScalarUnscaleInPlace,
    ScalarWhtButterflyPass,
    ScalarFloorFractScaled,
    ScalarWrapCenteredInto,
    ScalarCenterLiftInto,
    ScalarModReduceInto,
    ScalarAddModVec,
    ScalarSubModVec,
    ScalarAddI64InPlace,
};

// ---------------------------------------------------------------------------
// Dispatch. Resolution happens once (first Active() call): the test
// override, then the SMM_FORCE_SCALAR / SMM_FORCE_AVX2 environment
// overrides, then the cpuid probes (widest table first). The cached pointer
// is atomic so concurrent first calls are safe; resolution is idempotent,
// so a benign double-resolve stores the same table.
// ---------------------------------------------------------------------------

std::atomic<const Kernels*> g_active{nullptr};
std::atomic<int> g_mode{static_cast<int>(DispatchMode::kAuto)};

bool EnvFlagSet(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && std::strcmp(env, "1") == 0;
}

const Kernels* Resolve() {
  const int mode = g_mode.load(std::memory_order_acquire);
  if (mode == static_cast<int>(DispatchMode::kForceScalar)) {
    return &kScalarKernels;
  }
  if (mode == static_cast<int>(DispatchMode::kForceAvx2)) {
    const Kernels* avx2 = Avx2KernelsIfSupported();
    return avx2 != nullptr ? avx2 : &kScalarKernels;
  }
  if (EnvFlagSet("SMM_FORCE_SCALAR")) return &kScalarKernels;
  if (!EnvFlagSet("SMM_FORCE_AVX2")) {
    if (const Kernels* avx512 = Avx512KernelsIfSupported()) return avx512;
  }
  if (const Kernels* avx2 = Avx2KernelsIfSupported()) return avx2;
  return &kScalarKernels;
}

}  // namespace

/// Defined in simd_avx2.cc; returns nullptr when that translation unit was
/// compiled without AVX2 support (non-x86 target or a compiler without
/// -mavx2). The cpuid gate lives in Avx2KernelsIfSupported.
const Kernels* Avx2KernelTableForBuild();

/// Defined in simd_avx512.cc; returns nullptr when that translation unit
/// was compiled without AVX-512 support. The cpuid gate lives in
/// Avx512KernelsIfSupported.
const Kernels* Avx512KernelTableForBuild();

const Kernels& ScalarKernels() { return kScalarKernels; }

const Kernels* Avx2KernelsIfSupported() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  const Kernels* table = Avx2KernelTableForBuild();
  if (table != nullptr && __builtin_cpu_supports("avx2")) return table;
#endif
  return nullptr;
}

const Kernels* Avx512KernelsIfSupported() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  const Kernels* table = Avx512KernelTableForBuild();
  if (table != nullptr && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return table;
  }
#endif
  return nullptr;
}

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = Resolve();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

void SetDispatchModeForTest(DispatchMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
  g_active.store(nullptr, std::memory_order_release);
}

std::atomic<size_t> g_dispatch_crossover[kNumKernelIds] = {};

namespace {
/// Index-aligned with KernelId; the tuning.json spellings.
constexpr const char* kKernelIdNames[kNumKernelIds] = {
    "scale",       "unscale",     "wht_butterfly", "floor_fract",
    "wrap_centered", "center_lift", "mod_reduce",    "add_mod",
    "sub_mod",     "add_i64"};
}  // namespace

const char* KernelIdName(KernelId id) {
  return kKernelIdNames[static_cast<int>(id)];
}

bool KernelIdFromName(const char* name, KernelId* out) {
  for (int i = 0; i < kNumKernelIds; ++i) {
    if (std::strcmp(name, kKernelIdNames[i]) == 0) {
      *out = static_cast<KernelId>(i);
      return true;
    }
  }
  return false;
}

void SetDispatchCrossover(KernelId id, size_t min_length) {
  g_dispatch_crossover[static_cast<int>(id)].store(min_length,
                                                   std::memory_order_relaxed);
}

size_t DispatchCrossover(KernelId id) {
  return g_dispatch_crossover[static_cast<int>(id)].load(
      std::memory_order_relaxed);
}

void ScaleRoundStochasticInto(const double* x, size_t n, double scale,
                              RandomGenerator& rng, int64_t* out) {
  const Kernels& k = ForLength(KernelId::kFloorFract, n);
  // Tile the vectorizable floor/fract phase through stack scratch; the
  // Bernoulli phase is inherently serial (one rng draw per nonzero
  // fraction, in coordinate order — the exact consumption pattern of the
  // historical rng.Bernoulli(frac) loop, including the quirk that a NaN
  // fraction draws and never rounds up).
  constexpr size_t kTile = 256;
  double flr[kTile];
  double frac[kTile];
  for (size_t base = 0; base < n; base += kTile) {
    const size_t len = n - base < kTile ? n - base : kTile;
    k.floor_fract_scaled(x + base, len, scale, flr, frac);
    for (size_t j = 0; j < len; ++j) {
      int64_t v = static_cast<int64_t>(flr[j]);
      if (frac[j] >= 1.0) {
        // g - floor(g) can round up to exactly 1.0 for g a hair below an
        // integer (e.g. -1e-300). Bernoulli's p >= 1 short-circuit rounds
        // up *without* drawing; doing anything else desynchronizes the
        // stream for every later coordinate.
        v += 1;
      } else if (!(frac[j] <= 0.0) && rng.UniformDouble() < frac[j]) {
        v += 1;
      }
      out[base + j] = v;
    }
  }
}

}  // namespace smm::simd
