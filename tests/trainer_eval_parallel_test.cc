// The sharded test-set evaluation must be bit-identical to a serial pass:
// integer correct-counts and example-order loss reduction make
// EvaluateMetrics thread-count invariant, and both metrics must match a
// hand-rolled serial evaluation of the same model.
#include "fl/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/fl_config.h"
#include "nn/mlp.h"

namespace smm::fl {
namespace {

data::SyntheticSplit SmallTask() {
  data::SyntheticImageOptions o;
  o.num_train = 200;
  o.num_test = 333;  // Deliberately not a multiple of any chunk count.
  o.feature_dim = 16;
  o.num_classes = 4;
  o.noise_scale = 0.3;
  o.seed = 21;
  return MakeSyntheticImages(o).value();
}

nn::Mlp SmallModel() {
  nn::Mlp::Options o;
  o.input_dim = 16;
  o.hidden_dims = {16};
  o.num_classes = 4;
  o.init_seed = 5;
  return nn::Mlp::Create(o).value();
}

FlConfig EvalConfig(int num_threads) {
  FlConfig c;
  c.mechanism = MechanismKind::kNonPrivate;
  c.expected_batch_size = 20;
  c.rounds = 1;
  c.seed = 9;
  c.num_threads = num_threads;
  return c;
}

TEST(TrainerEvalParallelTest, ShardedEvaluationMatchesSerialBitForBit) {
  const auto task = SmallTask();

  // Hand-rolled serial reference over the same (freshly initialized) model.
  const nn::Mlp model = SmallModel();
  size_t correct = 0;
  double loss_sum = 0.0;
  for (const data::Example& e : task.test.examples) {
    if (model.Predict(e.features) == e.label) ++correct;
    loss_sum += model.ComputeLoss(e.features, e.label);
  }
  const double expected_accuracy =
      static_cast<double>(correct) /
      static_cast<double>(task.test.examples.size());
  const double expected_loss =
      loss_sum / static_cast<double>(task.test.examples.size());

  for (int threads : {1, 2, 8}) {
    auto trainer = FederatedTrainer::Create(SmallModel(), task.train,
                                            task.test, EvalConfig(threads));
    ASSERT_TRUE(trainer.ok()) << threads << " threads";
    const EvalMetrics metrics = (*trainer)->EvaluateMetrics();
    EXPECT_EQ(metrics.accuracy, expected_accuracy) << threads << " threads";
    EXPECT_EQ(metrics.mean_loss, expected_loss) << threads << " threads";
    EXPECT_EQ((*trainer)->EvaluateAccuracy(), expected_accuracy)
        << threads << " threads";
  }
}

TEST(TrainerEvalParallelTest, EvalExampleCapIsRespectedAndInvariant) {
  const auto task = SmallTask();
  FlConfig base = EvalConfig(1);
  base.max_eval_examples = 100;
  auto reference =
      FederatedTrainer::Create(SmallModel(), task.train, task.test, base);
  ASSERT_TRUE(reference.ok());
  const EvalMetrics expected = (*reference)->EvaluateMetrics();

  const nn::Mlp model = SmallModel();
  size_t correct = 0;
  for (size_t i = 0; i < 100; ++i) {
    const data::Example& e = task.test.examples[i];
    if (model.Predict(e.features) == e.label) ++correct;
  }
  EXPECT_EQ(expected.accuracy, static_cast<double>(correct) / 100.0);

  for (int threads : {2, 8}) {
    FlConfig c = base;
    c.num_threads = threads;
    auto trainer =
        FederatedTrainer::Create(SmallModel(), task.train, task.test, c);
    ASSERT_TRUE(trainer.ok()) << threads << " threads";
    const EvalMetrics metrics = (*trainer)->EvaluateMetrics();
    EXPECT_EQ(metrics.accuracy, expected.accuracy) << threads << " threads";
    EXPECT_EQ(metrics.mean_loss, expected.mean_loss) << threads << " threads";
  }
}

}  // namespace
}  // namespace smm::fl
