#include "mechanisms/conditional_rounding.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"

namespace smm::mechanisms {
namespace {

/// The pre-SIMD stochastic-rounding loop, verbatim: the regression reference
/// for the kernel-backed StochasticRoundInto. Any divergence — in the
/// rounded values or in how many rng draws were consumed — would silently
/// change every mechanism's encoding.
std::vector<int64_t> HistoricalStochasticRound(const std::vector<double>& g,
                                               RandomGenerator& rng) {
  std::vector<int64_t> out(g.size());
  for (size_t j = 0; j < g.size(); ++j) {
    const double floor_x = std::floor(g[j]);
    int64_t v = static_cast<int64_t>(floor_x);
    if (rng.Bernoulli(g[j] - floor_x)) v += 1;
    out[j] = v;
  }
  return out;
}

TEST(StochasticRoundTest, KernelMatchesHistoricalLoopBitForBit) {
  RandomGenerator input_rng(71);
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 64u, 300u, 1000u}) {
    std::vector<double> g(n);
    for (size_t j = 0; j < n; ++j) {
      // Exact integers every third coordinate: their zero fraction must not
      // consume a draw, or the streams desynchronize mid-vector.
      g[j] = j % 3 == 0 ? std::floor(input_rng.Gaussian(0.0, 20.0))
                        : input_rng.Gaussian(0.0, 20.0);
    }
    if (n >= 4) {
      // Values a hair below an integer: g - floor(g) rounds to exactly 1.0,
      // which Bernoulli's p >= 1 short-circuit rounds up *without* a draw —
      // the other way the streams can desynchronize.
      g[1] = -1e-300;
      g[3] = -1e-17;
    }
    for (auto mode : {simd::DispatchMode::kForceScalar,
                      simd::DispatchMode::kAuto}) {
      simd::SetDispatchModeForTest(mode);
      RandomGenerator old_rng(1234);
      RandomGenerator new_rng(1234);
      const std::vector<int64_t> expected =
          HistoricalStochasticRound(g, old_rng);
      std::vector<int64_t> actual;
      StochasticRoundInto(g, new_rng, actual);
      EXPECT_EQ(expected, actual) << "n=" << n;
      // Same stream position afterwards: everything rounded later in the
      // same encode must also match.
      EXPECT_EQ(old_rng.NextBits(), new_rng.NextBits()) << "n=" << n;
    }
    simd::SetDispatchModeForTest(simd::DispatchMode::kAuto);
  }
}

TEST(ConditionalRoundTest, KernelBackedRoundingIsDispatchInvariant) {
  RandomGenerator input_rng(73);
  std::vector<double> g(257);
  for (auto& v : g) v = input_rng.Gaussian(0.0, 2.0);
  const double bound = ConditionalRoundingNormBound(1.0, 30.0, g.size(), 0.1);
  simd::SetDispatchModeForTest(simd::DispatchMode::kForceScalar);
  RandomGenerator scalar_rng(99);
  int64_t scalar_rejections = 0;
  const auto scalar_out =
      ConditionallyRound(g, bound, 10, scalar_rng, &scalar_rejections)
          .value();
  simd::SetDispatchModeForTest(simd::DispatchMode::kAuto);
  RandomGenerator auto_rng(99);
  int64_t auto_rejections = 0;
  const auto auto_out =
      ConditionallyRound(g, bound, 10, auto_rng, &auto_rejections).value();
  EXPECT_EQ(scalar_out, auto_out);
  EXPECT_EQ(scalar_rejections, auto_rejections);
  EXPECT_EQ(scalar_rng.NextBits(), auto_rng.NextBits());
}

TEST(StochasticRoundTest, IntegersPassThrough) {
  RandomGenerator rng(1);
  const std::vector<double> g = {0.0, 3.0, -2.0};
  const std::vector<int64_t> r = StochasticRound(g, rng);
  EXPECT_EQ(r, (std::vector<int64_t>{0, 3, -2}));
}

TEST(StochasticRoundTest, RoundsToNeighbors) {
  RandomGenerator rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::vector<int64_t> r = StochasticRound({1.3, -0.7}, rng);
    EXPECT_TRUE(r[0] == 1 || r[0] == 2);
    EXPECT_TRUE(r[1] == -1 || r[1] == 0);
  }
}

TEST(StochasticRoundTest, IsUnbiased) {
  RandomGenerator rng(3);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(StochasticRound({0.3}, rng)[0]);
  }
  EXPECT_NEAR(sum / kN, 0.3, 0.006);
}

TEST(StochasticRoundTest, WorstCaseNormInflation) {
  // The cpSGD pathology (Section 1): a vector of d small entries can round
  // to a vector of norm ~sqrt(count of nonzero roundings).
  RandomGenerator rng(4);
  const size_t d = 10000;
  std::vector<double> g(d, 0.01);  // Norm = 1.
  const std::vector<int64_t> r = StochasticRound(g, rng);
  double norm_sq = 0.0;
  for (int64_t v : r) norm_sq += static_cast<double>(v) * v;
  // Expected ~ d * 0.01 = 100 ones: norm ~ 10 >> 1.
  EXPECT_GT(std::sqrt(norm_sq), 5.0);
}

TEST(NormBoundTest, MatchesEq6) {
  const double gamma = 4.0, l2 = 1.0, beta = std::exp(-0.5);
  const size_t d = 65536;
  const double expected =
      std::sqrt(gamma * gamma + 65536.0 / 4.0 +
                std::sqrt(2.0 * 0.5) * (gamma + 256.0 / 2.0));
  EXPECT_NEAR(ConditionalRoundingNormBound(gamma, l2, d, beta), expected,
              1e-9);
}

TEST(NormBoundTest, DominatedByDimensionTermAtSmallGamma) {
  // The overhead driving Figure 1: at gamma = 4, d = 65536, the bound is
  // ~sqrt(d/4) = 128 despite the scaled signal norm being only 4.
  const double bound =
      ConditionalRoundingNormBound(4.0, 1.0, 65536, std::exp(-0.5));
  EXPECT_GT(bound, 100.0);
  EXPECT_LT(bound, 200.0);
}

TEST(ConditionallyRoundTest, OutputSatisfiesBound) {
  RandomGenerator rng(5);
  std::vector<double> g(512);
  for (double& v : g) v = rng.Gaussian(0.0, 0.5);
  const double bound = ConditionalRoundingNormBound(1.0, 16.0, 512,
                                                    std::exp(-0.5));
  auto r = ConditionallyRound(g, bound, 1000, rng, nullptr);
  ASSERT_TRUE(r.ok());
  double norm_sq = 0.0;
  for (int64_t v : *r) norm_sq += static_cast<double>(v) * v;
  EXPECT_LE(std::sqrt(norm_sq), bound);
}

TEST(ConditionallyRoundTest, CountsRejections) {
  RandomGenerator rng(6);
  // A tight bound forces rejections: 100 entries at 0.5 with bound 5 means
  // typical rounded norm ~ sqrt(50) ~ 7 > 5.
  std::vector<double> g(100, 0.5);
  int64_t rejections = 0;
  auto r = ConditionallyRound(g, 5.0, 2000, rng, &rejections);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(rejections, 0);
}

TEST(ConditionallyRoundTest, FallsBackToNearestAfterRetryBudget) {
  RandomGenerator rng(7);
  // Impossible bound: the fallback (round-to-nearest of 0.4 -> 0) applies.
  std::vector<double> g(100, 0.4);
  auto r = ConditionallyRound(g, 0.5, 3, rng, nullptr);
  ASSERT_TRUE(r.ok());
  for (int64_t v : *r) EXPECT_EQ(v, 0);
}

TEST(ConditionallyRoundTest, RejectsBadParameters) {
  RandomGenerator rng(8);
  EXPECT_FALSE(ConditionallyRound({0.5}, 0.0, 10, rng, nullptr).ok());
  EXPECT_FALSE(ConditionallyRound({0.5}, 1.0, 0, rng, nullptr).ok());
}

}  // namespace
}  // namespace smm::mechanisms
