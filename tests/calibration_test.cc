#include "accounting/calibration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "accounting/mechanism_rdp.h"

namespace smm::accounting {
namespace {

TEST(CalibrateSmmTest, AchievesTargetTightly) {
  // One full-batch release (Figure 1 setting): n = 100 participants,
  // c = gamma^2 = 16.
  auto result = CalibrateSmm(/*c=*/16.0, /*q=*/1.0, /*steps=*/1,
                             /*target_epsilon=*/1.0, /*delta=*/1e-5);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->guarantee.epsilon, 1.0);
  EXPECT_GE(result->guarantee.epsilon, 0.90);  // Binary search is tight.
  EXPECT_GT(result->noise_parameter, 0.0);
}

TEST(CalibrateSmmTest, MoreEpsilonNeedsLessNoise) {
  double prev = 1e300;
  for (double eps : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    auto result = CalibrateSmm(16.0, 1.0, 1, eps, 1e-5);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->noise_parameter, prev);
    prev = result->noise_parameter;
  }
}

TEST(CalibrateSmmTest, NoiseScalesWithClipThreshold) {
  auto small = CalibrateSmm(16.0, 1.0, 1, 3.0, 1e-5);
  auto large = CalibrateSmm(1600.0, 1.0, 1, 3.0, 1e-5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // n*lambda should scale roughly linearly with c (the ratio c / (2 n
  // lambda) drives the bound).
  const double ratio = large->noise_parameter / small->noise_parameter;
  EXPECT_GT(ratio, 50.0);
  EXPECT_LT(ratio, 200.0);
}

TEST(CalibrateSmmTest, SubsamplingReducesNoise) {
  auto full = CalibrateSmm(16.0, 1.0, 100, 3.0, 1e-5);
  auto sub = CalibrateSmm(16.0, 0.01, 100, 3.0, 1e-5);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sub.ok());
  EXPECT_LT(sub->noise_parameter, full->noise_parameter);
}

TEST(CalibrateGaussianTest, MatchesAnalyticOrder) {
  auto result = CalibrateGaussian(1.0, 1.0, 1, 1.0, 1e-5);
  ASSERT_TRUE(result.ok());
  // Classic Gaussian mechanism at eps = 1, delta = 1e-5 needs sigma ~ 3-5.
  EXPECT_GT(result->noise_parameter, 2.0);
  EXPECT_LT(result->noise_parameter, 6.0);
  EXPECT_LE(result->guarantee.epsilon, 1.0);
}

TEST(CalibrateDdgTest, AchievesTarget) {
  auto result = CalibrateDdg(/*n=*/100, /*l2_squared=*/100.0, /*l1=*/500.0,
                             /*d=*/1024, /*q=*/1.0, /*steps=*/1,
                             /*target_epsilon=*/2.0, /*delta=*/1e-5);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->guarantee.epsilon, 2.0);
  // Verify against the curve directly.
  auto check = ComputeDpEpsilon(
      DdgRdpCurve(100, result->noise_parameter, 100.0, 500.0, 1024), 1.0, 1,
      1e-5);
  ASSERT_TRUE(check.ok());
  EXPECT_NEAR(check->epsilon, result->guarantee.epsilon, 1e-9);
}

TEST(CalibrateSkellamAgarwalTest, AchievesTarget) {
  auto result = CalibrateSkellamAgarwal(/*l2_squared=*/100.0, /*l1=*/500.0,
                                        1.0, 1, 2.0, 1e-5);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->guarantee.epsilon, 2.0);
  EXPECT_GE(result->guarantee.epsilon, 1.8);
}

TEST(CalibrateDgmTest, AchievesTarget) {
  auto result = CalibrateDgm(/*n=*/100, /*c=*/16.0, /*l1=*/128.0, /*d=*/256,
                             /*delta_inf=*/0.0, /*q=*/1.0, /*steps=*/1,
                             /*target_epsilon=*/2.0, /*delta=*/1e-5);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->guarantee.epsilon, 2.0);
}

TEST(CalibrateSmmVsDdgTest, SensitivityOverheadDrivesNoiseGap) {
  // The headline phenomenon of Figure 1: at small gamma and large d, DDG's
  // conditionally-rounded sensitivity (~ d/4 term) forces far more noise
  // than SMM's c = gamma^2. Compare calibrated aggregate noise variances.
  const double gamma = 4.0;
  const int d = 65536;
  const int n = 100;
  const double c = gamma * gamma;  // SMM clip threshold.
  auto smm = CalibrateSmm(c, 1.0, 1, 3.0, 1e-5);
  ASSERT_TRUE(smm.ok());
  const double smm_variance = 2.0 * smm->noise_parameter;  // Var = 2 n lambda.

  const double d2r_sq = gamma * gamma + d / 4.0 +
                        std::sqrt(2.0 * 0.5) * (gamma + std::sqrt(d) / 2.0);
  const double l1 = std::min(std::sqrt(static_cast<double>(d)) *
                                 std::sqrt(d2r_sq),
                             d2r_sq);
  auto ddg = CalibrateDdg(n, d2r_sq, l1, d, 1.0, 1, 3.0, 1e-5);
  ASSERT_TRUE(ddg.ok());
  const double ddg_variance =
      n * ddg->noise_parameter * ddg->noise_parameter;
  // The DDG aggregate variance must exceed SMM's by orders of magnitude.
  EXPECT_GT(ddg_variance / smm_variance, 100.0);
}

TEST(CalibrateRdpNoiseTest, FailsWhenBracketTooSmall) {
  CurveFactory factory = [](double sigma) {
    return GaussianRdpCurve(1.0, sigma);
  };
  auto result = CalibrateRdpNoise(factory, 1.0, 1, /*target=*/0.001, 1e-5,
                                  /*lo=*/1e-3, /*hi=*/1e-2);
  EXPECT_FALSE(result.ok());
}

TEST(CalibrateRdpNoiseTest, RejectsBadBracket) {
  CurveFactory factory = [](double sigma) {
    return GaussianRdpCurve(1.0, sigma);
  };
  EXPECT_FALSE(CalibrateRdpNoise(factory, 1.0, 1, 1.0, 1e-5, 2.0, 1.0).ok());
  EXPECT_FALSE(CalibrateRdpNoise(factory, 1.0, 1, -1.0, 1e-5, 1.0, 2.0).ok());
}

}  // namespace
}  // namespace smm::accounting
