// Property tests for the per-connection frame reassembler: a concatenated
// frame stream split at EVERY byte boundary (and every pair of boundaries)
// reassembles byte-identically; structural header damage latches a fatal
// kDataLoss; payload/checksum damage passes through for DecodeFrame to
// reject — the invariant that keeps the socket backends byte-identical to
// the in-memory transport.
#include "net/frame_reassembler.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "secagg/transport.h"

namespace smm::net {
namespace {

using secagg::ContributionMsg;
using secagg::EncodeFrame;

std::vector<uint8_t> MakeFrame(uint64_t seed, size_t dim) {
  RandomGenerator rng(seed);
  ContributionMsg msg;
  msg.participant_id = static_cast<int>(seed);
  msg.modulus = 1ULL << 32;
  msg.payload.resize(dim);
  for (auto& v : msg.payload) v = rng.UniformUint64(msg.modulus);
  auto frame = EncodeFrame(msg);
  EXPECT_TRUE(frame.ok());
  return *frame;
}

std::vector<uint8_t> Concat(const std::vector<std::vector<uint8_t>>& frames) {
  std::vector<uint8_t> stream;
  for (const auto& f : frames) stream.insert(stream.end(), f.begin(), f.end());
  return stream;
}

std::vector<std::vector<uint8_t>> PopAll(FrameReassembler& reassembler) {
  std::vector<std::vector<uint8_t>> out;
  while (auto frame = reassembler.NextFrame()) out.push_back(std::move(*frame));
  return out;
}

TEST(FrameReassemblerTest, WholeStreamInOneIngest) {
  const std::vector<std::vector<uint8_t>> frames = {
      MakeFrame(1, 5), MakeFrame(2, 1), MakeFrame(3, 33)};
  const std::vector<uint8_t> stream = Concat(frames);
  FrameReassembler reassembler(1 << 20);
  ASSERT_TRUE(reassembler.Ingest(ByteSpan(stream.data(), stream.size())).ok());
  EXPECT_EQ(reassembler.ready(), frames.size());
  EXPECT_FALSE(reassembler.mid_frame());
  EXPECT_EQ(PopAll(reassembler), frames);
}

TEST(FrameReassemblerTest, ByteAtATimeIsByteIdentical) {
  const std::vector<std::vector<uint8_t>> frames = {
      MakeFrame(4, 7), MakeFrame(5, 1), MakeFrame(6, 12)};
  const std::vector<uint8_t> stream = Concat(frames);
  FrameReassembler reassembler(1 << 20);
  for (const uint8_t byte : stream) {
    ASSERT_TRUE(reassembler.Ingest(ByteSpan(&byte, 1)).ok());
  }
  EXPECT_EQ(PopAll(reassembler), frames);
  EXPECT_EQ(reassembler.buffered_bytes(), 0u);
}

// The exhaustive split property: for every single split point i, feeding
// [0, i) then [i, end) yields the identical frame sequence. This covers
// splits inside the magic, the length prefix, the payload, and the
// checksum of every frame in the stream.
TEST(FrameReassemblerTest, EverySingleSplitPointReassembles) {
  const std::vector<std::vector<uint8_t>> frames = {MakeFrame(7, 3),
                                                    MakeFrame(8, 9)};
  const std::vector<uint8_t> stream = Concat(frames);
  for (size_t i = 0; i <= stream.size(); ++i) {
    FrameReassembler reassembler(1 << 20);
    ASSERT_TRUE(reassembler.Ingest(ByteSpan(stream.data(), i)).ok());
    ASSERT_TRUE(
        reassembler.Ingest(ByteSpan(stream.data() + i, stream.size() - i))
            .ok());
    EXPECT_EQ(PopAll(reassembler), frames) << "split at byte " << i;
  }
}

// Every pair of split points (three chunks) over a smaller stream: the
// quadratic sweep catches interactions between a partial header and a
// partial payload in one stream.
TEST(FrameReassemblerTest, EveryDoubleSplitPointReassembles) {
  const std::vector<std::vector<uint8_t>> frames = {MakeFrame(9, 2),
                                                    MakeFrame(10, 1)};
  const std::vector<uint8_t> stream = Concat(frames);
  for (size_t i = 0; i <= stream.size(); ++i) {
    for (size_t j = i; j <= stream.size(); ++j) {
      FrameReassembler reassembler(1 << 20);
      ASSERT_TRUE(reassembler.Ingest(ByteSpan(stream.data(), i)).ok());
      ASSERT_TRUE(reassembler.Ingest(ByteSpan(stream.data() + i, j - i)).ok());
      ASSERT_TRUE(
          reassembler.Ingest(ByteSpan(stream.data() + j, stream.size() - j))
              .ok());
      EXPECT_EQ(PopAll(reassembler), frames)
          << "splits at bytes " << i << ", " << j;
    }
  }
}

TEST(FrameReassemblerTest, GarbageHeaderIsFatalAndLatched) {
  FrameReassembler reassembler(1 << 20);
  const std::vector<uint8_t> garbage = {'n', 'o', 'p', 'e', 1, 1, 0, 0,
                                        0,   0,   0,   0};
  const Status status =
      reassembler.Ingest(ByteSpan(garbage.data(), garbage.size()));
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(reassembler.stream_error().code(), StatusCode::kDataLoss);
  // Latched: even valid bytes are refused now.
  const std::vector<uint8_t> good = MakeFrame(11, 2);
  EXPECT_EQ(reassembler.Ingest(ByteSpan(good.data(), good.size())).code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(reassembler.NextFrame().has_value());
}

TEST(FrameReassemblerTest, BadVersionAndReservedBytesAreFatal) {
  for (const size_t corrupt_at : {size_t{4}, size_t{6}, size_t{7}}) {
    std::vector<uint8_t> frame = MakeFrame(12, 2);
    frame[corrupt_at] ^= 0xff;
    FrameReassembler reassembler(1 << 20);
    EXPECT_EQ(reassembler.Ingest(ByteSpan(frame.data(), frame.size())).code(),
              StatusCode::kDataLoss)
        << "corrupt header byte " << corrupt_at;
  }
}

TEST(FrameReassemblerTest, OversizeLengthPrefixRejectedBeforeAllocation) {
  std::vector<uint8_t> frame = MakeFrame(13, 2);
  // The policy cap is far below the announced length: bytes 8..11 hold the
  // LE payload length.
  frame[8] = 0xff;
  frame[9] = 0xff;
  frame[10] = 0xff;
  frame[11] = 0x3f;
  FrameReassembler reassembler(/*max_frame_bytes=*/1024);
  EXPECT_EQ(reassembler.Ingest(ByteSpan(frame.data(), frame.size())).code(),
            StatusCode::kDataLoss);
}

// Payload/checksum corruption keeps the frame boundary intact, so the
// reassembler delivers the frame and DecodeFrame rejects it — the same
// split of responsibilities the in-memory backend has.
TEST(FrameReassemblerTest, ChecksumDamagePassesThroughToDecodeFrame) {
  std::vector<uint8_t> frame = MakeFrame(14, 4);
  frame[frame.size() - 1] ^= 0x01;  // Flip a checksum bit.
  FrameReassembler reassembler(1 << 20);
  ASSERT_TRUE(reassembler.Ingest(ByteSpan(frame.data(), frame.size())).ok());
  auto delivered = reassembler.NextFrame();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, frame);
  auto decoded = secagg::DecodeFrame(
      ByteSpan(delivered->data(), delivered->size()));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(FrameReassemblerTest, BufferedBytesStayBoundedToOnePartialFrame) {
  const std::vector<uint8_t> frame = MakeFrame(15, 64);
  FrameReassembler reassembler(1 << 20);
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    const uint8_t byte = frame[i];
    ASSERT_TRUE(reassembler.Ingest(ByteSpan(&byte, 1)).ok());
    EXPECT_LE(reassembler.buffered_bytes(), frame.size());
    EXPECT_TRUE(reassembler.mid_frame());
  }
  const uint8_t last = frame.back();
  ASSERT_TRUE(reassembler.Ingest(ByteSpan(&last, 1)).ok());
  EXPECT_EQ(reassembler.buffered_bytes(), 0u);
  EXPECT_FALSE(reassembler.mid_frame());
  EXPECT_EQ(reassembler.ready(), 1u);
}

}  // namespace
}  // namespace smm::net
