#ifndef SMM_DATA_DATASET_H_
#define SMM_DATA_DATASET_H_

#include <vector>

namespace smm::data {

/// One labeled training/test record. In the FL experiments each record is
/// one participant (Section 6.2: "we regard each data record in the training
/// data as a participant").
struct Example {
  std::vector<double> features;
  int label = 0;
};

/// A labeled dataset.
struct Dataset {
  std::vector<Example> examples;
  int feature_dim = 0;
  int num_classes = 0;

  size_t size() const { return examples.size(); }
};

}  // namespace smm::data

#endif  // SMM_DATA_DATASET_H_
