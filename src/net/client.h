#ifndef SMM_NET_CLIENT_H_
#define SMM_NET_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "net/frame_reassembler.h"
#include "net/socket_util.h"
#include "secagg/shard_plan.h"
#include "secagg/transport.h"

namespace smm::net {

/// A participant's side of the TCP aggregation protocol: connect to the
/// port an AggregationServer session listens on, stream contribution /
/// shares frames, half-close the sending side, and block on the broadcast
/// SumMsg. One client = one TCP connection; a participant may also open a
/// fresh connection per frame — the server aggregates per session, not per
/// connection.
///
///   SMM_ASSIGN_OR_RETURN(auto client, BlockingClient::Connect(port));
///   SMM_RETURN_IF_ERROR(client.SendContribution(msg));
///   SMM_RETURN_IF_ERROR(client.FinishSending());
///   SMM_ASSIGN_OR_RETURN(secagg::SumMsg sum, client.ReadSum());
///
/// Blocking by design: a participant sends a handful of frames and waits
/// for one answer, so synchronous I/O keeps the client trivially correct;
/// all the async machinery lives on the server side where the fan-in is.
///
/// Move-only; not thread-safe (one participant, one driver).
class BlockingClient {
 public:
  struct Options {
    /// Payload cap for the SumMsg reassembled from the server.
    size_t max_frame_bytes = size_t{1} << 24;
  };

  /// Connects to 127.0.0.1:port (blocking, TCP_NODELAY).
  static StatusOr<BlockingClient> Connect(uint16_t port,
                                          const Options& options);
  static StatusOr<BlockingClient> Connect(uint16_t port) {
    return Connect(port, Options());
  }

  BlockingClient(BlockingClient&&) = default;
  BlockingClient& operator=(BlockingClient&&) = default;

  /// Writes one already-encoded SMM1 frame (blocking until fully written;
  /// the kernel TCP window is the backpressure).
  Status SendFrame(ByteSpan frame);

  /// Encode-and-send conveniences.
  Status SendContribution(const secagg::ContributionMsg& msg);
  Status SendShares(const secagg::SharesMsg& msg);

  /// Half-closes the sending side (shutdown(SHUT_WR)): tells the server
  /// this connection will contribute nothing more, while the socket stays
  /// open for ReadSum. Sending after this fails at the socket layer.
  Status FinishSending();

  /// Blocks until the server broadcasts the session's SumMsg and returns
  /// it. EOF before a sum arrives (the server dropped the connection or
  /// failed the session) is kDataLoss; a non-sum frame from the server is
  /// kInvalidArgument.
  StatusOr<secagg::SumMsg> ReadSum();

 private:
  BlockingClient(UniqueFd fd, size_t max_frame_bytes)
      : fd_(std::move(fd)), reassembler_(max_frame_bytes) {}

  UniqueFd fd_;
  FrameReassembler reassembler_;
};

/// A participant's fan-out side of a dimension-sharded round: one blocking
/// connection per shard worker (the ports of an OpenShardedRound handle, in
/// shard order). The participant slices and prepares its contribution once
/// (ShardedCoordinator::EncodeShardedContribution produces exactly the
/// per-shard sub-frames), sends sub-frame s on connection s, half-closes
/// all of them, and merges the workers' per-range sum broadcasts back into
/// the round's full-dimension sum.
///
/// Move-only; not thread-safe, like BlockingClient.
class ShardedFanoutClient {
 public:
  /// Connects to every port in shard order. Fails atomically: any refused
  /// connection fails the whole fan-out.
  static StatusOr<ShardedFanoutClient> Connect(
      const std::vector<uint16_t>& ports, const BlockingClient::Options& options);
  static StatusOr<ShardedFanoutClient> Connect(
      const std::vector<uint16_t>& ports) {
    return Connect(ports, BlockingClient::Options());
  }

  ShardedFanoutClient(ShardedFanoutClient&&) = default;
  ShardedFanoutClient& operator=(ShardedFanoutClient&&) = default;

  size_t shard_count() const { return clients_.size(); }

  /// Sends already-encoded sub-frame `frames[s]` to shard worker s.
  /// frames.size() must equal shard_count().
  Status SendShardFrames(const std::vector<std::vector<uint8_t>>& frames);

  /// Half-closes the sending side of every connection.
  Status FinishSending();

  /// Blocks for every worker's per-range SumMsg broadcast (in shard order)
  /// and tree-reduces them into the round's full SumMsg per `plan`, whose
  /// shard_count must equal shard_count(). With one shard this is the
  /// plain BlockingClient::ReadSum.
  StatusOr<secagg::SumMsg> ReadMergedSum(const secagg::ShardPlan& plan);

 private:
  explicit ShardedFanoutClient(std::vector<BlockingClient> clients)
      : clients_(std::move(clients)) {}

  std::vector<BlockingClient> clients_;
};

}  // namespace smm::net

#endif  // SMM_NET_CLIENT_H_
