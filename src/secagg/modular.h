#ifndef SMM_SECAGG_MODULAR_H_
#define SMM_SECAGG_MODULAR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace smm::secagg {

/// Arithmetic in Z_m (Lines 11 of Algorithm 4 and Line 1 of Algorithm 6).
/// The modulus m is the per-dimension communication budget of the secure
/// aggregation protocol: log2(m) bits per coordinate.

/// Reduces a signed integer into {0, ..., m-1}.
uint64_t ModReduce(int64_t value, uint64_t m);

/// The server-side unwrap of Algorithm 6 Line 1: maps {0, ..., m-1} back to
/// the centered representatives [-m/2, m/2): values in {m/2, ..., m-1} map
/// to {-m/2, ..., -1}, values in {0, ..., m/2 - 1} stay put.
int64_t CenterLift(uint64_t value, uint64_t m);

/// Element-wise (a + b) mod m. Vectors must have equal length.
StatusOr<std::vector<uint64_t>> AddMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m);

/// Element-wise (a - b) mod m.
StatusOr<std::vector<uint64_t>> SubMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m);

/// Reduces a signed vector into Z_m element-wise.
std::vector<uint64_t> ReduceVector(const std::vector<int64_t>& v, uint64_t m);

/// Center-lifts a Z_m vector element-wise.
std::vector<int64_t> LiftVector(const std::vector<uint64_t>& v, uint64_t m);

}  // namespace smm::secagg

#endif  // SMM_SECAGG_MODULAR_H_
