#ifndef SMM_SAMPLING_RATIONAL_H_
#define SMM_SAMPLING_RATIONAL_H_

#include <cstdint>

#include "common/status.h"

namespace smm::sampling {

/// A non-negative rational number num/den used to parameterize the exact
/// samplers (Appendix A of the paper requires rational noise parameters so
/// that sampling reduces to RandInt calls and integer arithmetic only).
struct Rational {
  int64_t num = 0;
  int64_t den = 1;

  /// Validates num >= 0, den > 0 and reduces by gcd.
  static StatusOr<Rational> Create(int64_t num, int64_t den);

  /// Best rational approximation of x (>= 0) with denominator bounded by
  /// max_den, via continued fractions. Used to feed double-calibrated noise
  /// parameters into the exact samplers; the approximation error is at most
  /// 1/max_den^2.
  static Rational FromDouble(double x, int64_t max_den);

  double ToDouble() const { return static_cast<double>(num) / den; }
};

}  // namespace smm::sampling

#endif  // SMM_SAMPLING_RATIONAL_H_
