// End-to-end tests for the frame-driven aggregation session: the
// client -> ContributionMsg frame -> AggregationSession -> streaming-sum
// path must be bit-identical to the batch Aggregate/AggregateParallel path
// for both provided aggregators, at any thread count and arrival order,
// with dropouts deferred to Finalize; and corrupt or protocol-violating
// frames must be rejected with a Status while the session keeps serving.
#include "secagg/session.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "secagg/secure_aggregator.h"
#include "secagg/transport.h"

namespace smm::secagg {
namespace {

/// Thread counts exercised everywhere: the issue's {1, 2, 8} plus the
/// SMM_THREADS override the TSan CI job sets.
std::vector<int> TestThreadCounts() {
  std::vector<int> counts = {1, 2, 8};
  if (const char* env = std::getenv("SMM_THREADS")) {
    const int t = std::atoi(env);
    if (t > 0 && std::find(counts.begin(), counts.end(), t) == counts.end()) {
      counts.push_back(t);
    }
  }
  return counts;
}

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

/// Runs the wire path: prepare each contribution (masking, under the masked
/// protocol), frame it, send it over the loopback transport in `order`, and
/// drain everything through a session. Returns the finalized SumMsg.
StatusOr<SumMsg> RunWireRound(SecureAggregator& aggregator,
                              const std::vector<std::vector<uint64_t>>& inputs,
                              const std::vector<int>& order, uint64_t m,
                              ThreadPool* pool, size_t tile_rows = 1) {
  AggregationSession::Options options;
  options.dim = inputs[0].size();
  options.modulus = m;
  options.pool = pool;
  options.tile_rows = tile_rows;
  SMM_ASSIGN_OR_RETURN(auto session,
                       AggregationSession::Open(aggregator, options));
  InMemoryTransport loopback;
  FrameTransport& transport = loopback;
  for (int participant : order) {
    ContributionMsg msg;
    msg.participant_id = participant;
    msg.modulus = m;
    SMM_ASSIGN_OR_RETURN(
        msg.payload,
        aggregator.PrepareContribution(
            participant, inputs[static_cast<size_t>(participant)], m, pool));
    SMM_ASSIGN_OR_RETURN(auto frame, EncodeFrame(msg));
    SMM_RETURN_IF_ERROR(transport.Send(participant, std::move(frame)));
  }
  SMM_RETURN_IF_ERROR(session->DrainTransport(transport));
  return session->Finalize();
}

TEST(AggregationSessionTest, OpenValidates) {
  IdealAggregator aggregator;
  AggregationSession::Options options;
  options.dim = 0;
  options.modulus = 8;
  EXPECT_FALSE(AggregationSession::Open(aggregator, options).ok());
  options.dim = 4;
  options.modulus = 1;
  EXPECT_FALSE(AggregationSession::Open(aggregator, options).ok());
}

TEST(AggregationSessionTest, IdealMatchesBatchAtEveryThreadCount) {
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59: wrap-prone.
  const auto inputs = RandomInputs(33, 29, m, 4);
  IdealAggregator aggregator;
  auto batch = aggregator.Aggregate(inputs, m);
  ASSERT_TRUE(batch.ok());
  std::vector<int> order(inputs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int threads : TestThreadCounts()) {
    ThreadPool pool(threads);
    auto sum = RunWireRound(aggregator, inputs, order, m, &pool);
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    EXPECT_EQ(sum->sum, *batch) << threads << " threads";
    EXPECT_EQ(sum->num_contributors, inputs.size());
    EXPECT_EQ(sum->modulus, m);
  }
}

TEST(AggregationSessionTest, TiledSessionsMatchPerFrameSessions) {
  // tile_rows only changes how many fork/joins absorption takes, never the
  // sum: per-frame (1), partial tiles (7 over 33 frames), and one big tile
  // must all finalize bit-identically, at every thread count.
  const uint64_t m = 18446744073709551557ULL;
  const auto inputs = RandomInputs(33, 17, m, 12);
  IdealAggregator aggregator;
  std::vector<int> order(inputs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  auto reference = RunWireRound(aggregator, inputs, order, m, nullptr);
  ASSERT_TRUE(reference.ok());
  for (int threads : TestThreadCounts()) {
    ThreadPool pool(threads);
    for (size_t tile_rows : {size_t{1}, size_t{7}, size_t{64}}) {
      auto sum = RunWireRound(aggregator, inputs, order, m, &pool,
                              tile_rows);
      ASSERT_TRUE(sum.ok()) << sum.status().ToString();
      EXPECT_EQ(sum->sum, reference->sum)
          << threads << " threads, tile_rows=" << tile_rows;
      EXPECT_EQ(sum->num_contributors, inputs.size());
    }
  }
}

TEST(AggregationSessionTest, TiledBadTileDroppedAndItsParticipantsCanRetry) {
  // In tile mode a bad contribution (out-of-range participant) is caught by
  // the masked stream's all-or-nothing tile admission: the error surfaces
  // at the flush, the whole pending tile is dropped (counted as rejected),
  // and — because the dropped contributions never landed — the same
  // participants may retry and are NOT swallowed as duplicates.
  MaskedAggregator::Options options;
  options.num_participants = 4;
  options.threshold = 1;
  options.session_seed = 11;
  auto aggregator = MaskedAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  const uint64_t m = 1 << 16;
  AggregationSession::Options session_options;
  session_options.dim = 2;
  session_options.modulus = m;
  session_options.tile_rows = 3;
  auto session = AggregationSession::Open(**aggregator, session_options);
  ASSERT_TRUE(session.ok());
  auto frame_for = [&](int participant) {
    ContributionMsg msg;
    msg.participant_id = participant;
    msg.modulus = m;
    msg.payload =
        (*aggregator)->PrepareContribution(participant, {1, 2}, m).value();
    return EncodeFrame(msg).value();
  };
  ASSERT_TRUE((*session)->HandleFrame(frame_for(0)).ok());
  // A buffered resend is acked first-wins, never double-buffered.
  ASSERT_TRUE((*session)->HandleFrame(frame_for(0)).ok());
  EXPECT_EQ((*session)->contributions(), 1u);
  EXPECT_EQ((*session)->duplicate_frames(), 1u);
  // Participant 7 is out of range for the 4-party round; the frame itself
  // is well-formed so it buffers, and the flush rejects the tile wholesale.
  ContributionMsg bad;
  bad.participant_id = 7;
  bad.modulus = m;
  bad.payload = {9, 9};
  ASSERT_TRUE((*session)->HandleFrame(*EncodeFrame(bad)).ok());
  EXPECT_FALSE((*session)->HandleFrame(frame_for(1)).ok());
  EXPECT_EQ((*session)->rejected_frames(), 3u);
  EXPECT_EQ((*session)->contributions(), 0u);
  // Still serving, and the dropped participants retry successfully: their
  // ids were erased with the tile, so the retries land as fresh frames.
  ASSERT_TRUE((*session)->HandleFrame(frame_for(0)).ok());
  ASSERT_TRUE((*session)->HandleFrame(frame_for(1)).ok());
  ASSERT_TRUE((*session)->HandleFrame(frame_for(2)).ok());
  auto sum = (*session)->Finalize();
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->num_contributors, 3u);
  // Dropout recovery removed participant 3's leftover masks.
  EXPECT_EQ(sum->sum, (std::vector<uint64_t>{3, 6}));
}

TEST(AggregationSessionTest, MaskedMatchesBatchInShuffledArrivalOrder) {
  const int n = 9;
  MaskedAggregator::Options options;
  options.num_participants = n;
  options.threshold = 4;
  options.session_seed = 21;
  auto aggregator = MaskedAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  const uint64_t m = 1ULL << 32;
  const auto inputs = RandomInputs(n, 13, m, 5);
  auto batch = (*aggregator)->Aggregate(inputs, m);
  ASSERT_TRUE(batch.ok());
  // Contributions arrive in an adversarial order; masking still cancels.
  std::vector<int> order = {7, 2, 8, 0, 5, 1, 6, 3, 4};
  for (int threads : TestThreadCounts()) {
    ThreadPool pool(threads);
    auto sum = RunWireRound(**aggregator, inputs, order, m, &pool);
    ASSERT_TRUE(sum.ok()) << sum.status().ToString();
    EXPECT_EQ(sum->sum, *batch) << threads << " threads";
  }
}

TEST(AggregationSessionTest, MaskedDropoutsRecoveredAtFinalize) {
  const int n = 8;
  MaskedAggregator::Options options;
  options.num_participants = n;
  options.threshold = 4;
  options.session_seed = 33;
  auto aggregator = MaskedAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  const uint64_t m = 1 << 16;
  const auto inputs = RandomInputs(n, 11, m, 6);
  // Participants 2 and 6 never send a frame; the session must recover
  // their leftover masks exactly as the batch UnmaskSum would.
  const std::vector<int> survivors = {0, 1, 3, 4, 5, 7};
  std::vector<std::vector<uint64_t>> masked;
  for (int i : survivors) {
    auto mi = (*aggregator)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
  }
  auto batch = (*aggregator)->UnmaskSum(masked, survivors,
                                        inputs[0].size(), m);
  ASSERT_TRUE(batch.ok());
  auto sum = RunWireRound(**aggregator, inputs, survivors, m, nullptr);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->sum, *batch);
  EXPECT_EQ(sum->num_contributors, survivors.size());
}

TEST(AggregationSessionTest, CorruptFramesRejectedWithoutPoisoningSession) {
  IdealAggregator aggregator;
  AggregationSession::Options options;
  options.dim = 4;
  options.modulus = 1 << 16;
  auto session = AggregationSession::Open(aggregator, options);
  ASSERT_TRUE(session.ok());

  ContributionMsg msg;
  msg.participant_id = 0;
  msg.modulus = 1 << 16;
  msg.payload = {1, 2, 3, 4};
  auto good = EncodeFrame(msg);
  ASSERT_TRUE(good.ok());

  // Malformed bytes, a truncation, and a corruption: all status-rejected.
  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE((*session)->HandleFrame(junk).ok());
  EXPECT_FALSE(
      (*session)->HandleFrame(ByteSpan(good->data(), good->size() - 3)).ok());
  std::vector<uint8_t> corrupt = *good;
  corrupt[kFrameHeaderBytes] ^= 1;
  EXPECT_FALSE((*session)->HandleFrame(corrupt).ok());
  // Wrong modulus and wrong dimension are protocol violations.
  ContributionMsg wrong_m = msg;
  wrong_m.modulus = 1 << 12;
  EXPECT_FALSE((*session)->HandleFrame(*EncodeFrame(wrong_m)).ok());
  ContributionMsg wrong_dim = msg;
  wrong_dim.payload = {1, 2};
  EXPECT_FALSE((*session)->HandleFrame(*EncodeFrame(wrong_dim)).ok());
  // A received SumMsg is server-outbound only.
  SumMsg sum_msg;
  sum_msg.modulus = 1 << 16;
  sum_msg.sum = {1, 2, 3, 4};
  EXPECT_FALSE((*session)->HandleFrame(*EncodeFrame(sum_msg)).ok());
  EXPECT_EQ((*session)->rejected_frames(), 6u);
  EXPECT_EQ((*session)->contributions(), 0u);

  // The session keeps serving: the good frame still lands, a resend of it
  // is acked first-wins, and the sum is exactly that one contribution.
  ASSERT_TRUE((*session)->HandleFrame(*good).ok());
  ASSERT_TRUE((*session)->HandleFrame(*EncodeFrame(msg)).ok());
  EXPECT_EQ((*session)->duplicate_frames(), 1u);
  auto sum = (*session)->Finalize();
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->sum, (std::vector<uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(sum->num_contributors, 1u);
}

TEST(AggregationSessionTest, DuplicateMaskedParticipantAckedFirstWins) {
  MaskedAggregator::Options options;
  options.num_participants = 4;
  options.threshold = 2;
  options.session_seed = 9;
  auto aggregator = MaskedAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  const uint64_t m = 1 << 16;
  AggregationSession::Options session_options;
  session_options.dim = 3;
  session_options.modulus = m;
  auto session = AggregationSession::Open(**aggregator, session_options);
  ASSERT_TRUE(session.ok());
  auto frame_for = [&](int participant, std::vector<uint64_t> input) {
    ContributionMsg msg;
    msg.participant_id = participant;
    msg.modulus = m;
    msg.payload =
        (*aggregator)->PrepareContribution(participant, input, m).value();
    return EncodeFrame(msg).value();
  };
  const auto frame = frame_for(1, {5, 6, 7});
  ASSERT_TRUE((*session)->HandleFrame(frame).ok());
  // Replaying the same frame is a retry after a lost ack: acknowledged OK,
  // counted as a duplicate, and the first absorption stands — exactly-once
  // accounting regardless of how many times the client resends.
  EXPECT_TRUE((*session)->HandleFrame(frame).ok());
  EXPECT_TRUE((*session)->HandleFrame(frame).ok());
  EXPECT_EQ((*session)->contributions(), 1u);
  EXPECT_EQ((*session)->rejected_frames(), 0u);
  EXPECT_EQ((*session)->duplicate_frames(), 2u);
  // The sum is the two distinct contributions, counted exactly once each.
  ASSERT_TRUE((*session)->HandleFrame(frame_for(2, {1, 2, 3})).ok());
  auto sum = (*session)->Finalize();
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->num_contributors, 2u);
  EXPECT_EQ(sum->sum, (std::vector<uint64_t>{6, 8, 10}));
}

TEST(AggregationSessionTest, SharesFramesAcknowledged) {
  IdealAggregator aggregator;
  AggregationSession::Options options;
  options.dim = 2;
  options.modulus = 64;
  auto session = AggregationSession::Open(aggregator, options);
  ASSERT_TRUE(session.ok());
  SharesMsg shares;
  shares.participant_id = 3;
  shares.shares = {{1, 17}, {2, 29}};
  auto frame = EncodeFrame(shares);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE((*session)->HandleFrame(*frame).ok());
  EXPECT_EQ((*session)->shares_received(), 1u);
  EXPECT_EQ((*session)->contributions(), 0u);
}

TEST(AggregationSessionTest, DrainTransportStopsAtFirstBadFrame) {
  IdealAggregator aggregator;
  AggregationSession::Options options;
  options.dim = 2;
  options.modulus = 64;
  auto session = AggregationSession::Open(aggregator, options);
  ASSERT_TRUE(session.ok());
  InMemoryTransport loopback;
  FrameTransport& transport = loopback;
  ContributionMsg msg;
  msg.modulus = 64;
  msg.payload = {1, 2};
  msg.participant_id = 0;
  ASSERT_TRUE(transport.Send(0, *EncodeFrame(msg)).ok());
  ASSERT_TRUE(transport.Send(1, {1, 2, 3}).ok());  // Garbage frame.
  msg.participant_id = 2;
  ASSERT_TRUE(transport.Send(2, *EncodeFrame(msg)).ok());
  EXPECT_FALSE((*session)->DrainTransport(transport).ok());
  // The bad frame was consumed and counted; the frame behind it is still
  // queued, and a second drain delivers it.
  EXPECT_EQ(transport.pending(), 1u);
  EXPECT_TRUE((*session)->DrainTransport(transport).ok());
  EXPECT_EQ((*session)->contributions(), 2u);
}

TEST(AggregationSessionTest, DrainAcceptsConcreteTransportViaInterface) {
  // The deprecated InMemoryTransport& forwarder is gone; a concrete
  // transport binds to the FrameTransport interface overload directly and
  // behaves identically.
  IdealAggregator aggregator;
  AggregationSession::Options options;
  options.dim = 2;
  options.modulus = 64;
  auto session = AggregationSession::Open(aggregator, options);
  ASSERT_TRUE(session.ok());
  InMemoryTransport transport;
  ContributionMsg msg;
  msg.modulus = 64;
  msg.payload = {3, 4};
  msg.participant_id = 0;
  ASSERT_TRUE(transport.Send(0, *EncodeFrame(msg)).ok());
  EXPECT_TRUE((*session)->DrainTransport(transport).ok());
  EXPECT_EQ((*session)->contributions(), 1u);
}

TEST(AggregationSessionTest, FinalizeBelowQuorumFailsAndSessionStaysOpen) {
  IdealAggregator aggregator;
  AggregationSession::Options options;
  options.dim = 2;
  options.modulus = 64;
  options.min_contributions = 2;
  auto session = AggregationSession::Open(aggregator, options);
  ASSERT_TRUE(session.ok());
  ContributionMsg msg;
  msg.modulus = 64;
  msg.payload = {1, 2};
  msg.participant_id = 0;
  ASSERT_TRUE((*session)->HandleFrame(*EncodeFrame(msg)).ok());
  // One of two required contributions: Finalize refuses, without consuming
  // the session.
  auto under = (*session)->Finalize();
  ASSERT_FALSE(under.ok());
  EXPECT_EQ(under.status().code(), StatusCode::kFailedPrecondition);
  // The quorum-filling contribution still lands and the round completes.
  msg.participant_id = 1;
  msg.payload = {10, 20};
  ASSERT_TRUE((*session)->HandleFrame(*EncodeFrame(msg)).ok());
  auto sum = (*session)->Finalize();
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->num_contributors, 2u);
  EXPECT_EQ(sum->sum, (std::vector<uint64_t>{11, 22}));
}

}  // namespace
}  // namespace smm::secagg
