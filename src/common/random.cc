#include "common/random.h"

#include <cassert>
#include <cmath>

// The generators below wrap uint64_t *by design* (splitmix64 and
// xoshiro256++ are defined over arithmetic mod 2^64); the shared
// SMM_NO_SANITIZE_UNSIGNED_WRAP annotation (common/math_util.h) keeps the
// unsigned-overflow sanitizer CI job from flagging the deliberate wraps.
#include "common/math_util.h"

namespace smm {

SMM_NO_SANITIZE_UNSIGNED_WRAP
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

int64_t RandomGenerator::RandInt(int64_t n) {
  assert(n >= 1);
  return static_cast<int64_t>(UniformUint64(static_cast<uint64_t>(n))) + 1;
}

SMM_NO_SANITIZE_UNSIGNED_WRAP
uint64_t RandomGenerator::UniformUint64(uint64_t bound) {
  assert(bound >= 1);
  // Rejection sampling: draw 64 bits, reject the biased tail. The unsigned
  // negation deliberately wraps: -bound == 2^64 - bound (mod 2^64).
  const uint64_t threshold = -bound % bound;  // == (2^64 - bound) % bound
  while (true) {
    uint64_t r = gen_.Next();
    if (r >= threshold) return r % bound;
  }
}

double RandomGenerator::Gaussian(double mean, double stddev) {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return mean + stddev * (u * factor);
}

RandomGenerator RandomGenerator::Fork() {
  // The child consumes the next 2^128 outputs of the current stream; the
  // parent jumps past that block, so parent and children never overlap.
  Xoshiro256 child = gen_;
  gen_.Jump();
  return RandomGenerator(child);
}

std::vector<RandomGenerator> MakeParticipantStreams(RandomGenerator& rng,
                                                    size_t n) {
  std::vector<RandomGenerator> streams;
  streams.reserve(n);
  for (size_t i = 0; i < n; ++i) streams.push_back(rng.Fork());
  return streams;
}

}  // namespace smm
