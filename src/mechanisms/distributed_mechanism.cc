#include "mechanisms/distributed_mechanism.h"

#include <algorithm>

namespace smm::mechanisms {

namespace {

/// Participants per batched-rotation tile in the shared EncodeBatch: bounds
/// workspace.batch to kRotationTile * dim doubles per thread while still
/// amortizing one batched Walsh-Hadamard dispatch over many rows. The tile
/// size never affects results (rotation consumes no randomness).
constexpr size_t kRotationTile = 32;

}  // namespace

Status DistributedSumMechanism::EncodeBatch(
    const std::vector<std::vector<double>>& inputs, size_t begin, size_t end,
    RandomGenerator* rng_streams, EncodeWorkspace& workspace,
    std::vector<std::vector<uint64_t>>* out) {
  (void)workspace;  // The fallback has no fused pipeline to reuse it in.
  for (size_t i = begin; i < end; ++i) {
    SMM_ASSIGN_OR_RETURN((*out)[i],
                         EncodeParticipant(inputs[i], rng_streams[i]));
  }
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> RotatedModularMechanism::EncodeParticipant(
    const std::vector<double>& x, RandomGenerator& rng) {
  EncodeWorkspace workspace;
  EncodeCounters counters;
  std::vector<uint64_t> out;
  SMM_RETURN_IF_ERROR(codec_.RotateScaleInto(x, workspace.real));
  SMM_RETURN_IF_ERROR(PerturbRotatedInto(rng, workspace, counters));
  codec_.WrapInto(workspace.ints, &counters.overflow, out);
  PublishCounters(counters);
  return out;
}

Status RotatedModularMechanism::EncodeBatch(
    const std::vector<std::vector<double>>& inputs, size_t begin, size_t end,
    RandomGenerator* rng_streams, EncodeWorkspace& workspace,
    std::vector<std::vector<uint64_t>>* out) {
  const size_t d = codec_.dim();
  EncodeCounters counters;
  for (size_t tile = begin; tile < end; tile += kRotationTile) {
    const size_t tile_end = std::min(end, tile + kRotationTile);
    // One batched rotate + scale pass over the whole tile. The per-row
    // result is bit-identical to RotateScaleInto, and rotation draws no
    // randomness, so tiling never changes the encoding.
    SMM_RETURN_IF_ERROR(codec_.RotateScaleBatchInto(inputs, tile, tile_end,
                                                    workspace.batch));
    for (size_t i = tile; i < tile_end; ++i) {
      const double* row = workspace.batch.data() + (i - tile) * d;
      workspace.real.assign(row, row + d);
      SMM_RETURN_IF_ERROR(PerturbRotatedInto(rng_streams[i], workspace,
                                             counters));
      codec_.WrapInto(workspace.ints, &counters.overflow, (*out)[i]);
    }
  }
  PublishCounters(counters);
  return OkStatus();
}

StatusOr<std::vector<double>> RotatedModularMechanism::DecodeSum(
    const std::vector<uint64_t>& zm_sum, int num_participants) {
  (void)num_participants;  // The default decode is unbiased for any count.
  return codec_.Decode(zm_sum);
}

StatusOr<std::vector<std::vector<uint64_t>>> EncodeBatchParallel(
    DistributedSumMechanism& mechanism,
    const std::vector<std::vector<double>>& inputs,
    std::vector<RandomGenerator>& rng_streams, ThreadPool* pool) {
  if (inputs.size() != rng_streams.size()) {
    return InvalidArgumentError("one rng stream per input required");
  }
  std::vector<std::vector<uint64_t>> encoded(inputs.size());
  if (inputs.empty()) return encoded;
  if (pool == nullptr || pool->num_threads() == 1) {
    EncodeWorkspace workspace;
    SMM_RETURN_IF_ERROR(mechanism.EncodeBatch(
        inputs, 0, inputs.size(), rng_streams.data(), workspace, &encoded));
    return encoded;
  }
  // Static contiguous shards, one workspace per shard. Results are
  // bit-identical to the sequential path because participant i's encode
  // reads only inputs[i] and rng_streams[i].
  std::vector<Status> shard_status(static_cast<size_t>(pool->num_threads()));
  pool->ParallelFor(inputs.size(), [&](int chunk, size_t begin, size_t end) {
    EncodeWorkspace workspace;
    shard_status[static_cast<size_t>(chunk)] = mechanism.EncodeBatch(
        inputs, begin, end, rng_streams.data(), workspace, &encoded);
  });
  for (const Status& status : shard_status) {
    if (!status.ok()) return status;
  }
  return encoded;
}

StatusOr<std::vector<double>> RunDistributedSum(
    DistributedSumMechanism& mechanism, secagg::SecureAggregator& aggregator,
    const std::vector<std::vector<double>>& inputs, RandomGenerator& rng,
    ThreadPool* pool) {
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  std::vector<RandomGenerator> streams =
      MakeParticipantStreams(rng, inputs.size());
  SMM_ASSIGN_OR_RETURN(auto encoded,
                       EncodeBatchParallel(mechanism, inputs, streams, pool));
  SMM_ASSIGN_OR_RETURN(
      auto zm_sum,
      aggregator.AggregateParallel(encoded, mechanism.modulus(), pool));
  return mechanism.DecodeSum(zm_sum, static_cast<int>(inputs.size()));
}

double MeanSquaredErrorPerDimension(
    const std::vector<double>& estimate,
    const std::vector<std::vector<double>>& inputs) {
  if (inputs.empty() || estimate.empty()) return 0.0;
  const size_t d = inputs[0].size();
  double sum_sq = 0.0;
  for (size_t j = 0; j < d; ++j) {
    double exact = 0.0;
    for (const auto& x : inputs) exact += x[j];
    const double e = (j < estimate.size() ? estimate[j] : 0.0) - exact;
    sum_sq += e * e;
  }
  return sum_sq / static_cast<double>(d);
}

}  // namespace smm::mechanisms
