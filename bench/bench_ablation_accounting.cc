// Ablation: the clean L2-only Skellam RDP bound of this paper (Theorem 4)
// vs the L1-dependent bound of Agarwal et al. 2021, for the *same* integer
// inputs. The L1 term matters when the noise parameter mu is small relative
// to the L1 sensitivity (low-noise / high-dimension regimes); the table
// prints the calibrated aggregate Skellam parameter under each bound.
#include <cmath>
#include <cstdio>
#include <vector>

#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "bench_util.h"

namespace smm::bench {
namespace {

void Run(Scale scale) {
  (void)scale;
  const double eps = 3.0, delta = 1e-5;
  std::printf("Ablation: Theorem 4 (L2-only) vs Agarwal et al. (L1 + L2)\n");
  std::printf("calibrated aggregate Skellam parameter mu = n*lambda at\n");
  std::printf("eps=%g delta=%g, integer input with ||s||2^2 = 16\n\n", eps,
              delta);
  std::printf("%-12s%16s%16s%12s\n", "||s||_1", "mu (Thm 4)",
              "mu (Agarwal)", "ratio");

  for (double l1 : {4.0, 64.0, 1024.0, 16384.0, 262144.0}) {
    // Theorem 4: L1-free. Calibrate via the Skellam noise curve.
    accounting::CurveFactory ours = [](double mu) {
      return accounting::SkellamNoiseRdpCurve(mu, 16.0, /*delta_inf=*/0.0);
    };
    auto ours_result = accounting::CalibrateRdpNoise(ours, 1.0, 1, eps,
                                                     delta, 1e-9, 1e15);
    accounting::CurveFactory theirs = [l1](double mu) {
      return accounting::SkellamAgarwalRdpCurve(mu, 16.0, l1);
    };
    auto theirs_result = accounting::CalibrateRdpNoise(theirs, 1.0, 1, eps,
                                                       delta, 1e-9, 1e15);
    if (!ours_result.ok() || !theirs_result.ok()) {
      std::printf("%-12g calibration failed\n", l1);
      continue;
    }
    std::printf("%-12s%16s%16s%12.3f\n", FormatSci(l1).c_str(),
                FormatSci(ours_result->noise_parameter).c_str(),
                FormatSci(theirs_result->noise_parameter).c_str(),
                theirs_result->noise_parameter /
                    ours_result->noise_parameter);
  }
  std::printf(
      "\nReading: Theorem 4's mu is independent of ||s||_1; the L1 term in\n"
      "the Agarwal bound is negligible at large mu but its leading constant\n"
      "differs — the clean bound is what makes the SMM mixture analysis\n"
      "(Theorem 5) tractable.\n");
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
