#ifndef SMM_MECHANISMS_SMM_MECHANISM_H_
#define SMM_MECHANISMS_SMM_MECHANISM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/rotation_codec.h"
#include "sampling/noise_sampler.h"

namespace smm::mechanisms {

/// The mixture perturbation at the heart of SMM (Algorithms 1 and 2): each
/// real value x is mapped to floor(x) + Bernoulli(x - floor(x)) and then
/// perturbed with symmetric Skellam noise Sk(lambda, lambda). The output is
/// integer-valued and an unbiased estimator of x; across one participant it
/// follows the mixture of two shifted Skellam distributions analyzed in
/// Section 3.
class SkellamMixtureNoiser {
 public:
  /// lambda > 0 is the per-participant Skellam parameter.
  static StatusOr<SkellamMixtureNoiser> Create(
      double lambda,
      sampling::SamplerMode mode = sampling::SamplerMode::kApproximate);

  /// Perturbs a single value (one iteration of Algorithm 1's loop body).
  int64_t Perturb(double x, RandomGenerator& rng);

  /// Perturbs every coordinate independently (Algorithm 2 / dSMM).
  std::vector<int64_t> PerturbVector(const std::vector<double>& x,
                                     RandomGenerator& rng);

  /// Allocation-free PerturbVector: the rounding phase (floor + Bernoulli,
  /// per coordinate) runs first, then one Skellam SampleBlock fills `noise`,
  /// and the two are summed into `out`. PerturbVector delegates here, so the
  /// scalar and batched encode paths consume the RNG identically.
  void PerturbVectorInto(const std::vector<double>& x, RandomGenerator& rng,
                         std::vector<int64_t>& out,
                         std::vector<int64_t>& noise);

  double lambda() const { return sampler_.lambda(); }

 private:
  explicit SkellamMixtureNoiser(sampling::SkellamSampler sampler)
      : sampler_(std::move(sampler)) {}

  sampling::SkellamSampler sampler_;
};

/// The full Skellam Mixture Mechanism for federated/distributed aggregation
/// (Algorithms 4 and 6): random rotation, scaling by gamma, the
/// mixed-sensitivity clipping of Algorithm 5, mixture-Skellam perturbation,
/// and reduction into Z_m; plus the server-side decoding.
class SmmMechanism final : public DistributedSumMechanism {
 public:
  struct Options {
    size_t dim = 0;           ///< Power-of-two dimension.
    double gamma = 1.0;       ///< Scale parameter.
    double c = 1.0;           ///< Mixed-sensitivity clip threshold (Eq. 4).
    double delta_inf = 1.0;   ///< Linf clip bound from Eq. (3).
    double lambda = 1.0;      ///< Per-participant Skellam parameter.
    uint64_t modulus = 256;   ///< SecAgg modulus m.
    uint64_t rotation_seed = 0;
    bool apply_rotation = true;
    sampling::SamplerMode sampler_mode = sampling::SamplerMode::kApproximate;
  };

  static StatusOr<std::unique_ptr<SmmMechanism>> Create(
      const Options& options);

  /// Algorithm 4.
  StatusOr<std::vector<uint64_t>> EncodeParticipant(
      const std::vector<double>& x, RandomGenerator& rng) override;

  /// Batched Algorithm 4 with scratch reuse (bit-identical to the fallback).
  Status EncodeBatch(const std::vector<std::vector<double>>& inputs,
                     size_t begin, size_t end, RandomGenerator* rng_streams,
                     EncodeWorkspace& workspace,
                     std::vector<std::vector<uint64_t>>* out) override;

  /// Algorithm 6.
  StatusOr<std::vector<double>> DecodeSum(const std::vector<uint64_t>& zm_sum,
                                          int num_participants) override;

  uint64_t modulus() const override { return codec_.modulus(); }
  size_t dim() const override { return codec_.dim(); }
  int64_t overflow_count() const override {
    return overflow_count_.load(std::memory_order_relaxed);
  }
  void ResetOverflowCount() override {
    overflow_count_.store(0, std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  SmmMechanism(Options options, RotationCodec codec,
               SkellamMixtureNoiser noiser)
      : options_(options),
        codec_(std::move(codec)),
        noiser_(std::move(noiser)) {}

  /// One participant through the fused rotate/clip/perturb/wrap pipeline,
  /// accumulating wrap-around events into *overflow (callers publish the
  /// total to overflow_count_ once per batch).
  Status EncodeOneInto(const std::vector<double>& x, RandomGenerator& rng,
                       EncodeWorkspace& workspace, int64_t* overflow,
                       std::vector<uint64_t>& out);

  Options options_;
  RotationCodec codec_;
  SkellamMixtureNoiser noiser_;
  /// Atomic so concurrent EncodeBatch shards never lose wrap-around events.
  std::atomic<int64_t> overflow_count_{0};
};

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_SMM_MECHANISM_H_
