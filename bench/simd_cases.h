#ifndef SMM_BENCH_SIMD_CASES_H_
#define SMM_BENCH_SIMD_CASES_H_

// The per-kernel benchmark cases of the SIMD layer, shared by the
// simd_kernels scenario (scalar-reference vs dispatched throughput with a
// bit-identity cross-check) and the dispatch-crossover calibration sweep
// (the same cases at small lengths). One SimdCaseSet owns every input and
// output buffer for a given element count, so a case can be re-run at
// arbitrary lengths without reallocating.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/simd.h"

namespace smm::bench {

struct SimdCase {
  /// Legacy section spelling ("scale_round_prep" for the floor_fract
  /// kernel); KernelIdName(id) gives the tuning.json spelling.
  const char* name;
  simd::KernelId id;
  /// Untimed per-repeat input restore (empty = none needed).
  std::function<void()> reset;
  /// One pass of the kernel over the case's buffers through `kernels`.
  std::function<void(const simd::Kernels&)> run;
  /// Output window for the bit-identity cross-check.
  const unsigned char* out;
  size_t out_bytes;
};

class SimdCaseSet {
 public:
  /// Builds the case set over `n` elements (n >= 2; the butterfly case
  /// spans min(1024, n/2) so any even n works). Inputs are deterministic
  /// (fixed seed), so two case sets of equal n hold identical data.
  explicit SimdCaseSet(size_t n)
      : n_(n),
        m_(18446744073709551557ULL),  // 2^64 - 59: wrap-prone.
        signed_vals_(n),
        residues_(n),
        residues_b_(n),
        reals_(n),
        u64_out_(n),
        i64_out_(n),
        acc_(n),
        real_work_(n),
        flr_(n),
        frac_(n) {
    RandomGenerator rng(43);
    for (auto& v : signed_vals_) {
      v = static_cast<int64_t>(rng.UniformUint64(m_)) -
          static_cast<int64_t>(m_ / 2);
    }
    for (auto& v : residues_) v = rng.UniformUint64(m_);
    for (auto& v : residues_b_) v = rng.UniformUint64(m_);
    for (auto& v : reals_) v = rng.Gaussian(0.0, 100.0);
    BuildCases();
  }

  size_t n() const { return n_; }
  uint64_t modulus() const { return m_; }
  const std::vector<SimdCase>& cases() const { return cases_; }

 private:
  void BuildCases() {
    const size_t n = n_;
    const uint64_t m = m_;
    const auto out = [](const auto& v) {
      return reinterpret_cast<const unsigned char*>(v.data());
    };
    cases_.push_back(
        {"wrap_centered", simd::KernelId::kWrapCentered, {},
         [this, n, m](const simd::Kernels& k) {
           k.wrap_centered_into(signed_vals_.data(), n, m, u64_out_.data());
         },
         out(u64_out_), n * sizeof(uint64_t)});
    cases_.push_back(
        {"center_lift", simd::KernelId::kCenterLift, {},
         [this, n, m](const simd::Kernels& k) {
           k.center_lift_into(residues_.data(), n, m, i64_out_.data());
         },
         out(i64_out_), n * sizeof(int64_t)});
    cases_.push_back(
        {"add_mod", simd::KernelId::kAddMod,
         [this, n] {
           std::memcpy(acc_.data(), residues_.data(), n * sizeof(uint64_t));
         },
         [this, n, m](const simd::Kernels& k) {
           k.add_mod_vec(acc_.data(), residues_b_.data(), n, m);
         },
         out(acc_), n * sizeof(uint64_t)});
    cases_.push_back(
        {"sub_mod", simd::KernelId::kSubMod,
         [this, n] {
           std::memcpy(acc_.data(), residues_.data(), n * sizeof(uint64_t));
         },
         [this, n, m](const simd::Kernels& k) {
           k.sub_mod_vec(acc_.data(), residues_b_.data(), n, m);
         },
         out(acc_), n * sizeof(uint64_t)});
    cases_.push_back(
        {"mod_reduce", simd::KernelId::kModReduce, {},
         [this, n, m](const simd::Kernels& k) {
           k.mod_reduce_into(residues_.data(), n, m, u64_out_.data());
         },
         out(u64_out_), n * sizeof(uint64_t)});
    cases_.push_back(
        {"scale_round_prep", simd::KernelId::kFloorFract, {},
         [this, n](const simd::Kernels& k) {
           k.floor_fract_scaled(reals_.data(), n, 64.0, flr_.data(),
                                frac_.data());
         },
         out(frac_), n * sizeof(double)});
    // One full stage at the cache-block span the transform's phase-1 stages
    // use (clamped so short calibration lengths still form one butterfly).
    const size_t h = n / 2 < size_t{1024} ? n / 2 : size_t{1024};
    cases_.push_back(
        {"wht_butterfly", simd::KernelId::kWhtButterfly,
         [this, n] {
           std::memcpy(real_work_.data(), reals_.data(), n * sizeof(double));
         },
         [this, n, h](const simd::Kernels& k) {
           k.wht_butterfly_pass(real_work_.data(), n, h);
         },
         out(real_work_), n * sizeof(double)});
    cases_.push_back(
        {"scale", simd::KernelId::kScale,
         [this, n] {
           std::memcpy(real_work_.data(), reals_.data(), n * sizeof(double));
         },
         [this, n](const simd::Kernels& k) {
           k.scale_inplace(real_work_.data(), n, 1.00000001);
         },
         out(real_work_), n * sizeof(double)});
  }

  size_t n_;
  uint64_t m_;
  std::vector<int64_t> signed_vals_;
  std::vector<uint64_t> residues_;
  std::vector<uint64_t> residues_b_;
  std::vector<double> reals_;
  std::vector<uint64_t> u64_out_;
  std::vector<int64_t> i64_out_;
  std::vector<uint64_t> acc_;
  std::vector<double> real_work_;
  std::vector<double> flr_;
  std::vector<double> frac_;

  std::vector<SimdCase> cases_;
};

}  // namespace smm::bench

#endif  // SMM_BENCH_SIMD_CASES_H_
