#include "sampling/discrete_gaussian_sampler.h"

#include <cassert>
#include <cmath>

namespace smm::sampling {

namespace {

using uint128 = unsigned __int128;

// Uniform integer in {1, ..., bound} for a 128-bit bound, by rejection over
// the full 128-bit space. Needed because the exact Bernoulli(num/den) checks
// inside the CKS sampler can involve denominators larger than 2^63.
uint128 RandInt128(uint128 bound, RandomGenerator& rng) {
  assert(bound >= 1);
  const uint128 full = ~static_cast<uint128>(0);
  const uint128 threshold = (full - bound + 1) % bound;  // (2^128 - b) mod b
  while (true) {
    const uint128 r = (static_cast<uint128>(rng.NextBits()) << 64) |
                      static_cast<uint128>(rng.NextBits());
    if (r >= threshold) return (r % bound) + 1;
  }
}

// Exact Bernoulli(num/den) with 128-bit operands.
bool Bernoulli128(uint128 num, uint128 den, RandomGenerator& rng) {
  assert(den > 0);
  if (num == 0) return false;
  if (num >= den) return true;
  return RandInt128(den, rng) <= num;
}

// Exact Bernoulli(exp(-num/den)) for 0 <= num/den <= 1 (CKS Algorithm 1,
// gamma <= 1 case): K <- 1; while Bernoulli(gamma / K) succeeds, K <- K + 1;
// accept iff K ends odd.
bool BernoulliExpMinusLeOne(uint128 num, uint128 den, RandomGenerator& rng) {
  assert(num <= den);
  uint128 k = 1;
  while (true) {
    // Bernoulli(gamma / k) = Bernoulli(num / (den * k)).
    if (!Bernoulli128(num, den * k, rng)) break;
    ++k;
    // gamma <= 1 makes this loop terminate quickly (E[K] <= e).
  }
  return (k % 2) == 1;
}

bool BernoulliExpMinus128(uint128 num, uint128 den, RandomGenerator& rng) {
  // Factor exp(-gamma) = exp(-1)^floor(gamma) * exp(-(gamma mod 1)).
  while (num > den) {
    if (!BernoulliExpMinusLeOne(1, 1, rng)) return false;
    num -= den;
  }
  return BernoulliExpMinusLeOne(num, den, rng);
}

uint128 Gcd128(uint128 a, uint128 b) {
  while (b != 0) {
    const uint128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

bool SampleBernoulliExpMinusExact(int64_t num, int64_t den,
                                  RandomGenerator& rng) {
  assert(num >= 0 && den > 0);
  return BernoulliExpMinus128(static_cast<uint128>(num),
                              static_cast<uint128>(den), rng);
}

int64_t SampleDiscreteLaplaceExact(int64_t t, RandomGenerator& rng) {
  assert(t >= 1);
  while (true) {
    // U uniform on {0, ..., t-1}; accept with probability exp(-U/t).
    const int64_t u = rng.RandInt(t) - 1;
    if (!SampleBernoulliExpMinusExact(u, t, rng)) continue;
    // V ~ Geometric(1 - exp(-1)): number of successes of Bernoulli(e^-1).
    int64_t v = 0;
    while (SampleBernoulliExpMinusExact(1, 1, rng)) ++v;
    const int64_t x = u + t * v;
    const bool negative = rng.RandInt(2) == 1;
    if (negative && x == 0) continue;  // Avoid double-counting zero.
    return negative ? -x : x;
  }
}

StatusOr<int64_t> SampleDiscreteGaussianExact(const Rational& sigma_squared,
                                              RandomGenerator& rng) {
  if (sigma_squared.num <= 0 || sigma_squared.den <= 0) {
    return InvalidArgumentError("sigma^2 must be a positive rational");
  }
  const uint128 p = static_cast<uint128>(sigma_squared.num);  // sigma^2 = p/q
  const uint128 q = static_cast<uint128>(sigma_squared.den);
  // t = floor(sigma) + 1, computed in integers: floor(sqrt(p/q)).
  const double sigma = std::sqrt(sigma_squared.ToDouble());
  int64_t t = static_cast<int64_t>(std::floor(sigma)) + 1;
  if (t < 1) t = 1;
  const uint128 t128 = static_cast<uint128>(t);

  while (true) {
    const int64_t y = SampleDiscreteLaplaceExact(t, rng);
    const uint128 abs_y = static_cast<uint128>(y >= 0 ? y : -y);
    // Acceptance probability exp(-(|Y| - sigma^2/t)^2 / (2 sigma^2)).
    // With sigma^2 = p/q:
    //   (|Y| - p/(q t))^2 / (2 p / q) = (|Y| q t - p)^2 / (2 p q t^2).
    const uint128 a = abs_y * q * t128;
    const uint128 diff = a >= p ? a - p : p - a;
    uint128 num = diff * diff;
    uint128 den = 2 * p * q * t128 * t128;
    const uint128 g = Gcd128(num, den);
    num /= g;
    den /= g;
    if (BernoulliExpMinus128(num, den, rng)) return y;
  }
}

}  // namespace smm::sampling
