// Thread-scaling benchmark for the batched encode pipeline: encodes a fixed
// participant batch through EncodeBatchParallel at 1/2/4/8 threads and
// reports throughput in encoded coordinates per second, plus the speedup
// over the single-threaded run.
//
// Expected shape: near-linear scaling up to the physical core count (the
// per-participant encodes are independent and allocation-free), then flat.
// The target regime of the ISSUE: >= 2.5x at 4 threads for SmmMechanism at
// dim 2^14 on hardware with >= 4 cores. The harness also cross-checks that
// every thread count produced bit-identical encodings — the determinism
// contract of the jump-ahead streams.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"

namespace smm::bench {
namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::vector<double>> MakeInputs(size_t n, size_t dim) {
  RandomGenerator rng(17);
  std::vector<std::vector<double>> inputs(n, std::vector<double>(dim));
  for (auto& x : inputs) {
    for (auto& v : x) v = rng.Gaussian(0.0, 0.01);
  }
  return inputs;
}

/// Encodes the batch `repeats` times at the given thread count and returns
/// the best wall time plus the last repeat's encodings. ok is false (and the
/// harness aborts) if any encode failed — a failed run must not feed the
/// throughput or invariance reporting.
struct EncodeTiming {
  bool ok = false;
  double best_seconds = 0.0;
  std::vector<std::vector<uint64_t>> encoded;
};

EncodeTiming TimeEncode(mechanisms::DistributedSumMechanism& mechanism,
                        const std::vector<std::vector<double>>& inputs,
                        int threads, int repeats) {
  ThreadPool pool(threads);
  EncodeTiming timing;
  timing.best_seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    RandomGenerator rng(4242);
    std::vector<RandomGenerator> streams =
        MakeParticipantStreams(rng, inputs.size());
    const auto start = Clock::now();
    auto encoded =
        mechanisms::EncodeBatchParallel(mechanism, inputs, streams, &pool);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!encoded.ok()) {
      std::printf("encode failed: %s\n",
                  encoded.status().ToString().c_str());
      timing.ok = false;
      return timing;
    }
    if (seconds < timing.best_seconds) timing.best_seconds = seconds;
    timing.encoded = std::move(*encoded);
    timing.ok = true;
  }
  return timing;
}

void RunMechanism(const char* name,
                  mechanisms::DistributedSumMechanism& mechanism,
                  const std::vector<std::vector<double>>& inputs,
                  int repeats) {
  const double coords = static_cast<double>(inputs.size()) *
                        static_cast<double>(mechanism.dim());
  std::printf("%s: dim=%zu, participants=%zu\n", name, mechanism.dim(),
              inputs.size());
  PrintRow("  threads", {"1", "2", "4", "8"}, 14, 12);
  std::vector<std::string> throughput_cells;
  std::vector<std::string> speedup_cells;
  double base_seconds = 0.0;
  std::vector<std::vector<uint64_t>> reference;
  bool deterministic = true;
  for (int threads : {1, 2, 4, 8}) {
    const EncodeTiming timing =
        TimeEncode(mechanism, inputs, threads, repeats);
    if (!timing.ok) {
      std::printf("  aborting %s: encode failed at %d threads\n", name,
                  threads);
      std::exit(1);
    }
    if (threads == 1) {
      base_seconds = timing.best_seconds;
      reference = timing.encoded;
    } else if (timing.encoded != reference) {
      deterministic = false;
    }
    throughput_cells.push_back(FormatSci(coords / timing.best_seconds));
    speedup_cells.push_back(FormatSci(base_seconds / timing.best_seconds));
  }
  PrintRow("  coords/sec", throughput_cells, 14, 12);
  PrintRow("  speedup", speedup_cells, 14, 12);
  std::printf("  thread-count invariance: %s\n",
              deterministic ? "bit-identical" : "MISMATCH (bug!)");
  // A determinism violation must fail the harness (and the CI smoke run).
  if (!deterministic) std::exit(1);
}

void Run(Scale scale) {
  const size_t dim = scale == Scale::kFast ? (1u << 10) : (1u << 14);
  const size_t participants = scale == Scale::kFull ? 64 : 32;
  const int repeats = scale == Scale::kFast ? 2 : 3;
  const auto inputs = MakeInputs(participants, dim);

  std::printf("Encode thread scaling (%s). Hardware threads: %d\n",
              ScaleName(scale), ThreadPool::HardwareThreads());
  std::printf(
      "Note: speedups > 1 require as many physical cores as threads.\n\n");

  {
    mechanisms::SmmMechanism::Options o;
    o.dim = dim;
    o.gamma = 64.0;
    o.c = 4096.0;
    o.delta_inf = 64.0;
    o.lambda = 2.0;
    o.modulus = 1 << 16;
    o.rotation_seed = 99;
    auto mech = mechanisms::SmmMechanism::Create(o).value();
    RunMechanism("SmmMechanism", *mech, inputs, repeats);
  }
  std::printf("\n");
  {
    mechanisms::DdgMechanism::Options o;
    o.dim = dim;
    o.gamma = 64.0;
    o.l2_bound = 1.0;
    o.sigma = 2.0;
    o.modulus = 1 << 16;
    o.rotation_seed = 99;
    auto mech = mechanisms::DdgMechanism::Create(o).value();
    RunMechanism("DdgMechanism", *mech, inputs, repeats);
  }
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
