#include "net/fault_proxy.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>

#include "common/random.h"
#include "common/span.h"
#include "net/frame_reassembler.h"

#if defined(__linux__)
#define SMM_NET_POSIX 1
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace smm::net {

#if defined(SMM_NET_POSIX)

namespace {

double NextUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

StatusOr<std::unique_ptr<FaultProxy>> FaultProxy::Start(
    const FaultProxyOptions& options) {
  if (options.upstream_port == 0) {
    return InvalidArgumentError("FaultProxy requires an upstream port");
  }
  SMM_ASSIGN_OR_RETURN(UniqueFd listener, ListenLoopback(0, /*backlog=*/128));
  SMM_ASSIGN_OR_RETURN(const uint16_t port, BoundPort(listener.get()));
  UniqueFd wake_fd(::eventfd(0, EFD_CLOEXEC));
  if (!wake_fd) {
    return InternalError(std::string("eventfd: ") + std::strerror(errno));
  }
  auto proxy = std::unique_ptr<FaultProxy>(new FaultProxy(
      options, std::move(listener), port, std::move(wake_fd)));
  proxy->accept_thread_ = std::thread([p = proxy.get()] { p->AcceptLoop(); });
  return proxy;
}

FaultProxy::FaultProxy(const FaultProxyOptions& options, UniqueFd listener,
                       uint16_t port, UniqueFd wake_fd)
    : options_(options),
      listener_(std::move(listener)),
      port_(port),
      wake_fd_(std::move(wake_fd)) {}

FaultProxy::~FaultProxy() { Stop(); }

void FaultProxy::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  // Broadcast shutdown: the tick is never consumed, so every poll over
  // wake_fd_ reports readable from here on.
  const uint64_t one = 1;
  while (::write(wake_fd_.get(), &one, sizeof(one)) < 0 && errno == EINTR) {
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> pairs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pairs.swap(pair_threads_);
  }
  for (std::thread& t : pairs) {
    if (t.joinable()) t.join();
  }
}

FaultProxyStats FaultProxy::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultProxy::AcceptLoop() {
  uint64_t conn_index = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{listener_.get(), POLLIN, 0},
                      {wake_fd_.get(), POLLIN, 0}};
    const int n = ::poll(pfds, 2, /*timeout_ms=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((pfds[1].revents & POLLIN) != 0) return;  // Stop broadcast.
    if ((pfds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept4(listener_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return;
    }
    UniqueFd client(fd);
    auto upstream = ConnectLoopback(options_.upstream_port);
    if (!upstream.ok()) continue;  // Upstream gone; drop the client.

    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    ++stats_.connections;
    pair_threads_.emplace_back(
        [this, c = std::move(client), u = std::move(*upstream),
         idx = conn_index]() mutable {
          RelayPair(std::move(c), std::move(u), idx);
        });
    ++conn_index;
  }
}

void FaultProxy::RelayPair(UniqueFd client, UniqueFd upstream,
                           uint64_t conn_index) {
  // Per-connection PRG: seed mixed with the connection index keeps the
  // schedule deterministic per connection even when accept order races.
  uint64_t rng = options_.seed + conn_index * 0x9E3779B97F4A7C15ULL;
  FrameReassembler reassembler(options_.max_frame_bytes);
  std::optional<std::vector<uint8_t>> stashed;
  bool client_eof = false;
  bool upstream_eof = false;
  std::vector<uint8_t> chunk(64 * 1024);

  auto throttle = [this](size_t bytes) {
    if (options_.throttle_bytes_per_sec == 0) return;
    const auto ms = static_cast<int64_t>(
        (bytes * 1000.0) /
        static_cast<double>(options_.throttle_bytes_per_sec));
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };

  // Forwards one frame upstream with the per-frame fault draws. Returns
  // false when the pair was killed (caller must stop relaying upstream).
  auto forward_frame = [&](std::vector<uint8_t> frame) -> bool {
    const bool drop = NextUniform(&rng) < options_.drop;
    const bool duplicate = NextUniform(&rng) < options_.duplicate;
    const bool reorder = NextUniform(&rng) < options_.reorder;
    const bool truncate = NextUniform(&rng) < options_.truncate;
    const bool kill = NextUniform(&rng) < options_.kill;

    if (drop) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames_dropped;
      return true;
    }
    if (options_.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.delay_ms));
    }
    if (kill || truncate) {
      // A strict prefix, then an abrupt close: the server sees EOF
      // mid-frame, the client sees EOF before its sum.
      const size_t keep =
          frame.size() > 1
              ? 1 + static_cast<size_t>(SplitMix64(&rng) % (frame.size() - 1))
              : frame.size();
      (void)SendAll(upstream.get(), ByteSpan(frame.data(), keep));
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (truncate) ++stats_.frames_truncated;
        ++stats_.connections_killed;
      }
      return false;
    }
    if (reorder) {
      std::vector<uint8_t> out_first;
      bool have_first = false;
      if (stashed) {
        out_first = std::move(*stashed);
        have_first = true;
      }
      stashed = std::move(frame);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_reordered;
      }
      if (have_first) {
        throttle(out_first.size());
        if (!SendAll(upstream.get(), out_first).ok()) return false;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.frames_forwarded;
      }
      return true;
    }
    const int copies = duplicate ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      throttle(frame.size());
      if (!SendAll(upstream.get(), frame).ok()) return false;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.frames_forwarded += static_cast<uint64_t>(copies);
      if (duplicate) ++stats_.frames_duplicated;
    }
    // Flush a pending stash behind this frame (that is the swap).
    if (stashed) {
      std::vector<uint8_t> flush = std::move(*stashed);
      stashed.reset();
      throttle(flush.size());
      if (!SendAll(upstream.get(), flush).ok()) return false;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames_forwarded;
    }
    return true;
  };

  while (!stopping_.load(std::memory_order_acquire) &&
         !(client_eof && upstream_eof)) {
    pollfd pfds[3] = {
        {client_eof ? -1 : client.get(), POLLIN, 0},
        {upstream_eof ? -1 : upstream.get(), POLLIN, 0},
        {wake_fd_.get(), POLLIN, 0},
    };
    const int n = ::poll(pfds, 3, /*timeout_ms=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((pfds[2].revents & POLLIN) != 0) return;  // Stop broadcast.

    if (!client_eof && (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t got =
          ::recv(client.get(), chunk.data(), chunk.size(), 0);
      if (got < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) return;
      } else if (got == 0) {
        client_eof = true;
        // Flush the stash, then pass the half-close upstream so the
        // session sees this participant's end-of-stream.
        if (stashed) {
          std::vector<uint8_t> flush = std::move(*stashed);
          stashed.reset();
          if (!SendAll(upstream.get(), flush).ok()) return;
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.frames_forwarded;
        }
        (void)ShutdownSend(upstream.get());
      } else {
        if (!reassembler
                 .Ingest(ByteSpan(chunk.data(), static_cast<size_t>(got)))
                 .ok()) {
          return;  // Client stream desynchronized; nothing sane to forward.
        }
        while (auto frame = reassembler.NextFrame()) {
          if (!forward_frame(std::move(*frame))) return;
        }
      }
    }

    if (!upstream_eof &&
        (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t got =
          ::recv(upstream.get(), chunk.data(), chunk.size(), 0);
      if (got < 0) {
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) return;
      } else if (got == 0) {
        upstream_eof = true;
        (void)ShutdownSend(client.get());
      } else {
        // The sum broadcast relays byte-exact: faults only hit the
        // contribution direction.
        if (!SendAll(client.get(),
                     ByteSpan(chunk.data(), static_cast<size_t>(got)))
                 .ok()) {
          return;
        }
      }
    }
  }
}

#else  // !SMM_NET_POSIX

StatusOr<std::unique_ptr<FaultProxy>> FaultProxy::Start(
    const FaultProxyOptions&) {
  return UnimplementedError("smm::net requires Linux sockets/epoll");
}
FaultProxy::FaultProxy(const FaultProxyOptions& options, UniqueFd listener,
                       uint16_t port, UniqueFd wake_fd)
    : options_(options),
      listener_(std::move(listener)),
      port_(port),
      wake_fd_(std::move(wake_fd)) {}
FaultProxy::~FaultProxy() = default;
void FaultProxy::Stop() {}
FaultProxyStats FaultProxy::Stats() const { return FaultProxyStats(); }
void FaultProxy::AcceptLoop() {}
void FaultProxy::RelayPair(UniqueFd, UniqueFd, uint64_t) {}

#endif  // SMM_NET_POSIX

}  // namespace smm::net
