#ifndef SMM_ACCOUNTING_MECHANISM_RDP_H_
#define SMM_ACCOUNTING_MECHANISM_RDP_H_

#include "accounting/rdp_accountant.h"
#include "common/status.h"

namespace smm::accounting {

/// RDP curves for every mechanism in the paper's evaluation. Each factory
/// captures the noise/sensitivity parameters and returns an RdpCurve
/// (integer alpha -> tau(alpha)); orders where the theorem's feasibility
/// constraints fail yield an error and are skipped by the accountant.

/// Theorem 4 (this paper): aggregate symmetric Skellam noise
/// Sk(lambda_total, lambda_total) on an integer shift vector s with
/// ||s||_2^2 <= l2_squared and ||s||_inf <= delta_inf:
///   tau(alpha) = (1.09 alpha + 0.91)/2 * l2_squared / (2 lambda_total),
/// valid while alpha < 2 lambda_total / delta_inf + 1.
RdpCurve SkellamNoiseRdpCurve(double lambda_total, double l2_squared,
                              double delta_inf);

/// Corollary 1 (this paper, SMM): n participants, each adding Sk(lambda),
/// inputs satisfying the mixed-sensitivity bound Eq. (4) with threshold c
/// and ceil(|x|) <= delta_inf element-wise:
///   tau(alpha) = (1.2 alpha + 1)/2 * c / (2 n lambda),
/// valid while Eq. (3) holds:
///   alpha < 2 n lambda / delta_inf + 1  and
///   10.9 alpha^2 - 1.8 alpha - 9.1 < 4 n lambda / delta_inf^2.
/// n_lambda is the product n * lambda (the aggregate Skellam parameter).
RdpCurve SmmRdpCurve(double n_lambda, double c, double delta_inf);

/// Largest L-infinity clipping bound permitted by Eq. (3) at order alpha
/// (the paper computes Delta_inf "from Eq. (3) using the optimal alpha").
double SmmMaxDeltaInf(double n_lambda, int alpha);

/// Eq. (7) (Canonne et al. / Kairouz et al.): divergence correction tau_n
/// between the sum of n discrete Gaussians NZ(0, sigma^2) and a single
/// NZ(0, n sigma^2):
///   tau_n = 10 * sum_{k=1}^{n-1} exp(-2 pi^2 sigma^2 k / (k + 1)).
double DdgTauN(int n, double sigma);

/// Theorem 7 (Kairouz et al.), vectorized: distributed discrete Gaussian
/// noise (n clients, per-client NZ(0, sigma^2)) on an integer vector with
/// ||s||_2^2 <= l2_squared, ||s||_1 <= l1 in d dimensions:
///   tau(alpha) = alpha l2_squared / (2 n sigma^2)
///                + min(d tau_n, alpha l1 tau_n / (sqrt(n) sigma)
///                               + d tau_n^2).
RdpCurve DdgRdpCurve(int n, double sigma, double l2_squared, double l1,
                     int d);

/// Theorem 8 / Corollary 3 (this paper, Appendix B, DGM): the discrete
/// Gaussian mixture with mixed-sensitivity bound c:
///   tau(alpha) = min(1.1 alpha c / (2 n sigma^2) + 1.1 d tau_n,
///                    1.1 alpha c / (2 n sigma^2)
///                    + 1.1 alpha l1 tau_n / (sqrt(n) sigma)
///                    + 1.1 d tau_n^2),
/// valid while Eq. (8) holds.
RdpCurve DgmRdpCurve(int n, double sigma, double c, double l1, int d,
                     double delta_inf);

/// Continuous Gaussian mechanism N(0, sigma^2 I) with L2 sensitivity
/// sensitivity_l2 (Mironov 2017): tau(alpha) = alpha sensitivity_l2^2 /
/// (2 sigma^2). The centralized baseline (and DPSGD's per-step curve).
RdpCurve GaussianRdpCurve(double sensitivity_l2, double sigma);

/// Agarwal et al. 2021 ("The Skellam Mechanism"): RDP of aggregate Skellam
/// noise Sk(mu, mu) whose bound involves both norms of the integer input
/// (the bound Theorem 3 of this paper supersedes):
///   tau(alpha) = alpha l2_squared / (4 mu)
///                + min((2 alpha - 1) l2_squared + 6 l1, 3 l1) / (4 mu^2).
/// The second (1/mu^2) term transcribes the structure of their bound; in the
/// evaluated regimes it is dominated by the first term, which carries the
/// privacy-utility trade-off.
RdpCurve SkellamAgarwalRdpCurve(double mu, double l2_squared, double l1);

}  // namespace smm::accounting

#endif  // SMM_ACCOUNTING_MECHANISM_RDP_H_
