// Secure aggregation as a network service: the async epoll server hosts
// concurrent aggregation rounds on real loopback TCP sockets, participants
// connect with the blocking client library, stream framed contributions,
// and read back the broadcast SumMsg.
//
// Round A uses the masked (Bonawitz-style) aggregator: the server only
// ever sees uniform-garbage payloads, yet every client receives the exact
// modular sum. Round B runs 32 small ideal-aggregator rounds concurrently
// on the same fixed 2-thread event-loop pool to show the many-sessions
// multiplexing the server exists for. A garbage byte stream is thrown at a
// session along the way: the server drops that connection (a byte stream
// cannot resynchronize after header garbage) and the round is unharmed.
//
// Build & run:  ./build/example_tcp_aggregation
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "secagg/secure_aggregator.h"
#include "secagg/transport.h"

namespace {

void PrintVector(const char* label, const std::vector<uint64_t>& v) {
  std::printf("%s", label);
  for (uint64_t x : v) std::printf("%6llu", (unsigned long long)x);
}

/// One participant's sending half: connect, stream the masked frame,
/// half-close. The returned client stays open so it can read the broadcast
/// once every participant has contributed.
smm::StatusOr<smm::net::BlockingClient> Contribute(
    const smm::secagg::MaskedAggregator& aggregator, uint16_t port,
    int participant, const std::vector<uint64_t>& input, uint64_t modulus) {
  SMM_ASSIGN_OR_RETURN(auto client, smm::net::BlockingClient::Connect(port));
  smm::secagg::ContributionMsg msg;
  msg.participant_id = participant;
  msg.modulus = modulus;
  SMM_ASSIGN_OR_RETURN(
      msg.payload, aggregator.PrepareContribution(participant, input, modulus));
  SMM_RETURN_IF_ERROR(client.SendContribution(msg));
  SMM_RETURN_IF_ERROR(client.FinishSending());
  return client;
}

}  // namespace

int main() {
  if (!smm::net::NetSupported()) {
    std::printf("this example needs the Linux socket/epoll backend\n");
    return 0;
  }
  constexpr int kParticipants = 8;
  constexpr uint64_t kModulus = 1 << 16;
  constexpr size_t kDim = 6;

  smm::net::AggregationServer::Options server_options;
  server_options.event_loop_threads = 2;
  auto server = smm::net::AggregationServer::Start(server_options);
  if (!server.ok()) {
    std::printf("server start failed: %s\n",
                server.status().ToString().c_str());
    return 1;
  }
  std::printf("aggregation server up: %d event-loop threads\n\n",
              (*server)->event_loop_threads());

  // --- Round A: one masked round over TCP. ---
  smm::secagg::MaskedAggregator::Options options;
  options.num_participants = kParticipants;
  options.threshold = 5;
  options.session_seed = 2024;
  auto aggregator = smm::secagg::MaskedAggregator::Create(options);
  if (!aggregator.ok()) {
    std::printf("setup failed: %s\n", aggregator.status().ToString().c_str());
    return 1;
  }
  smm::RandomGenerator rng(5);
  std::vector<std::vector<uint64_t>> inputs(kParticipants);
  for (auto& v : inputs) {
    v.resize(kDim);
    for (auto& x : v) x = rng.UniformUint64(100);
  }

  smm::net::AggregationServer::SessionOptions session_options;
  session_options.session.dim = kDim;
  session_options.session.modulus = kModulus;
  session_options.expected_contributions = kParticipants;
  auto round = (*server)->OpenSession(**aggregator, session_options);
  if (!round.ok()) {
    std::printf("open session failed: %s\n",
                round.status().ToString().c_str());
    return 1;
  }
  std::printf("round A: session %llu listening on 127.0.0.1:%u\n",
              (unsigned long long)round->id, round->port);

  // A rogue peer sends garbage first: the server drops that connection and
  // the session keeps serving (see Stats below).
  {
    auto rogue = smm::net::ConnectLoopback(round->port);
    if (rogue.ok()) {
      const std::vector<uint8_t> garbage(24, 0x5a);
      (void)smm::net::SendAll(rogue->get(),
                              smm::ByteSpan(garbage.data(), garbage.size()));
    }
  }

  // Every participant contributes before anyone blocks on ReadSum: the
  // server finalizes at the eighth contribution and broadcasts to all.
  std::vector<smm::net::BlockingClient> clients;
  for (int i = 0; i < kParticipants; ++i) {
    auto client = Contribute(**aggregator, round->port, i,
                             inputs[static_cast<size_t>(i)], kModulus);
    if (!client.ok()) {
      std::printf("participant %d failed: %s\n", i,
                  client.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(*client));
  }
  smm::secagg::SumMsg sum;
  for (int i = 0; i < kParticipants; ++i) {
    auto got = clients[static_cast<size_t>(i)].ReadSum();
    if (!got.ok()) {
      std::printf("participant %d read failed: %s\n", i,
                  got.status().ToString().c_str());
      return 1;
    }
    sum = std::move(*got);
  }
  std::vector<uint64_t> exact(kDim, 0);
  for (const auto& v : inputs) {
    for (size_t j = 0; j < kDim; ++j) exact[j] = (exact[j] + v[j]) % kModulus;
  }
  PrintVector("broadcast sum over TCP:  ", sum.sum);
  PrintVector("\nexact sum:               ", exact);
  std::printf("   -> masks cancelled exactly\n\n");

  // --- Round B: 32 concurrent ideal rounds on the same 2 loops. ---
  constexpr size_t kRounds = 32;
  smm::secagg::IdealAggregator ideal;
  std::vector<smm::net::AggregationServer::SessionInfo> sessions(kRounds);
  smm::net::AggregationServer::SessionOptions small;
  small.session.dim = 2;
  small.session.modulus = kModulus;
  small.expected_contributions = 2;
  for (size_t s = 0; s < kRounds; ++s) {
    auto info = (*server)->OpenSession(ideal, small);
    if (!info.ok()) return 1;
    sessions[s] = *info;
  }
  size_t correct = 0;
  for (size_t s = 0; s < kRounds; ++s) {
    std::vector<smm::net::BlockingClient> peers;
    for (int p = 0; p < 2; ++p) {
      auto client = smm::net::BlockingClient::Connect(sessions[s].port);
      if (!client.ok()) return 1;
      smm::secagg::ContributionMsg msg;
      msg.participant_id = p;
      msg.modulus = kModulus;
      msg.payload = {static_cast<uint64_t>(s), static_cast<uint64_t>(p)};
      if (!client->SendContribution(msg).ok()) return 1;
      peers.push_back(std::move(*client));
    }
    bool exact_here = true;
    for (auto& peer : peers) {
      auto got = peer.ReadSum();
      exact_here =
          exact_here && got.ok() &&
          got->sum == std::vector<uint64_t>{2 * static_cast<uint64_t>(s), 1};
    }
    if (exact_here) ++correct;
  }
  std::printf("round B: %zu/%zu concurrent ideal rounds exact\n\n", correct,
              kRounds);

  const smm::net::ServerStats stats = (*server)->Stats();
  std::printf("server stats: sessions %llu opened / %llu completed, "
              "connections %llu accepted / %llu dropped (the rogue), "
              "frames %llu delivered / %llu rejected\n",
              (unsigned long long)stats.sessions_opened,
              (unsigned long long)stats.sessions_completed,
              (unsigned long long)stats.connections_accepted,
              (unsigned long long)stats.connections_dropped,
              (unsigned long long)stats.frames_delivered,
              (unsigned long long)stats.frames_rejected);
  return 0;
}
