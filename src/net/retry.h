#ifndef SMM_NET_RETRY_H_
#define SMM_NET_RETRY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "net/client.h"
#include "secagg/shard_plan.h"
#include "secagg/transport.h"

namespace smm::net {

/// Capped exponential backoff with seeded jitter for client-side retries.
///
/// The schedule is deterministic given `seed`: attempt k (k = 1 is the
/// first retry) backs off min(initial * multiplier^(k-1), max) plus a
/// uniform jitter of up to +/- jitter * backoff drawn from a seeded PRG.
/// Determinism matters for tests — a chaos run with a pinned seed replays
/// the identical sleep schedule.
///
/// Retries are safe against an AggregationServer session because resends
/// are idempotent: the session acks a duplicate contribution first-wins,
/// so "ack lost, contribution absorbed" and "contribution lost" both
/// converge to exactly-once accounting under resend.
struct RetryPolicy {
  /// Total attempts, including the first (so 1 = no retries).
  int max_attempts = 4;
  int64_t initial_backoff_ms = 10;
  int64_t max_backoff_ms = 1000;
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1]: each sleep is backoff +/- jitter*backoff.
  double jitter = 0.2;
  /// Seed of the jitter PRG (deterministic schedule per seed).
  uint64_t seed = 1;
  /// Sleep override for tests (ms). Default: real sleep_for.
  std::function<void(int64_t)> sleep_fn;
};

/// True for failures a retry can plausibly fix: kUnavailable (peer not
/// reachable right now — connect refused/reset) and kDataLoss (the channel
/// broke mid-round; resending is harmless by first-wins idempotency).
/// kDeadlineExceeded is NOT retryable — the round is over.
bool IsRetryableStatus(const Status& status);

/// One operation's walk through a RetryPolicy's schedule.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy);

  /// Consumes one retry: sleeps the next backoff (deterministic jitter)
  /// and returns true, or returns false without sleeping when the policy's
  /// attempts are exhausted.
  bool BackoffAndRetry();

  /// Attempts consumed so far: 1 (the initial try) + retries taken.
  int attempts() const { return attempts_; }

 private:
  const RetryPolicy policy_;
  int attempts_ = 1;
  int64_t next_backoff_ms_;
  uint64_t rng_state_;
};

/// Runs one participant's full contribution round against the session
/// listening on `port`, with reconnect-and-resend under `retry`: each
/// attempt connects, writes `frame`, half-closes, and blocks for the sum
/// broadcast; a retryable failure anywhere in that sequence reconnects and
/// resends the whole frame (safe — the session acks resends first-wins).
/// `attempts_out` (optional) reports how many attempts were consumed.
StatusOr<secagg::SumMsg> RunContributionRound(
    uint16_t port, ByteSpan frame, const BlockingClient::Options& options,
    const RetryPolicy& retry, int* attempts_out = nullptr);

/// Sharded analog: each attempt connects a fan-out to `ports` (shard
/// order), sends sub-frame s to worker s, half-closes, and reads the
/// merged sum per `plan`. A retryable failure retries the whole fan-out —
/// every worker session dedups resends, so re-sending all sub-frames is
/// exactly as safe as one.
StatusOr<secagg::SumMsg> RunShardedContributionRound(
    const std::vector<uint16_t>& ports,
    const std::vector<std::vector<uint8_t>>& frames,
    const secagg::ShardPlan& plan, const BlockingClient::Options& options,
    const RetryPolicy& retry, int* attempts_out = nullptr);

}  // namespace smm::net

#endif  // SMM_NET_RETRY_H_
