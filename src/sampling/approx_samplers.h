#ifndef SMM_SAMPLING_APPROX_SAMPLERS_H_
#define SMM_SAMPLING_APPROX_SAMPLERS_H_

#include <cstdint>
#include <random>

#include "common/random.h"

namespace smm::sampling {

/// Fast floating-point ("approximate") samplers standing in for the
/// TensorFlow samplers used in the paper's experiments (Section 6: "all
/// experiments are done using the approximate samplers ... which are based
/// on floating point approximations"). Their output distributions match the
/// analytical forms only up to double rounding; the exact samplers in
/// exact_samplers.h / discrete_gaussian_sampler.h are the strict-DP path.

/// Adapts RandomGenerator to the standard UniformRandomBitGenerator concept
/// so that <random> distributions can consume our deterministic stream.
struct UrbgAdapter {
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<uint64_t>(0); }
  RandomGenerator* rng;
  result_type operator()() { return rng->NextBits(); }
};

/// Approximate Poisson(lambda) via the standard library implementation.
int64_t SamplePoissonApprox(double lambda, RandomGenerator& rng);

/// Approximate symmetric Skellam Sk(lambda, lambda): difference of two
/// approximate Poisson(lambda) draws.
int64_t SampleSkellamApprox(double lambda, RandomGenerator& rng);

/// Approximate discrete Gaussian N_Z(0, sigma^2): the CKS rejection scheme
/// (discrete Laplace proposal, Gaussian-weight acceptance) evaluated in
/// double precision.
int64_t SampleDiscreteGaussianApprox(double sigma, RandomGenerator& rng);

}  // namespace smm::sampling

#endif  // SMM_SAMPLING_APPROX_SAMPLERS_H_
