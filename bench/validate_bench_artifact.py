#!/usr/bin/env python3
"""Validates a bench_matrix --json artifact against its schema.

Usage:
    validate_bench_artifact.py ARTIFACT.json [SCHEMA.json]

SCHEMA.json defaults to bench_matrix_schema.json next to this script.
Exits 0 when the artifact conforms, 1 with a path-qualified error list
otherwise. Stdlib only: implements exactly the JSON-Schema subset the
schema file uses — type, properties, required, additionalProperties,
items, enum, minimum — rather than depending on the jsonschema package
(CI images do not ship it, and the subset keeps the failure messages
short and deterministic).
"""

import json
import os
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def _check_type(value, expected):
    py = _TYPES[expected]
    if isinstance(value, bool):
        # bool is an int subclass in Python; only "boolean" may accept it.
        return expected == "boolean"
    return isinstance(value, py)


def validate(value, schema, path="$", errors=None):
    """Collects violations of `schema` at `value` into the returned list."""
    if errors is None:
        errors = []

    expected = schema.get("type")
    if expected is not None and not _check_type(value, expected):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(value).__name__}")
        return errors

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required field '{key}'")
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            key_path = f"{path}.{key}"
            if key in props:
                validate(sub, props[key], key_path, errors)
            elif isinstance(extra, dict):
                validate(sub, extra, key_path, errors)
            elif extra is False:
                errors.append(f"{path}: unexpected field '{key}'")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    schema_path = argv[2] if len(argv) > 2 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "bench_matrix_schema.json")
    try:
        with open(argv[1]) as f:
            artifact = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot read artifact {argv[1]}: {e}")
        return 1
    with open(schema_path) as f:
        schema = json.load(f)

    errors = validate(artifact, schema)
    if errors:
        print(f"{argv[1]} FAILS schema validation:")
        for e in errors:
            print(f"  {e}")
        return 1
    n_scenarios = len(artifact.get("scenarios", []))
    n_runs = sum(len(s.get("runs", [])) for s in artifact.get("scenarios", []))
    print(f"{argv[1]} conforms to schema_version "
          f"{artifact.get('schema_version')}: "
          f"{n_scenarios} scenarios, {n_runs} runs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
