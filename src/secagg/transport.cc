#include "secagg/transport.h"

#include <limits>
#include <utility>

#include "common/math_util.h"

namespace smm::secagg {

namespace {

constexpr uint8_t kMagic[4] = {'S', 'M', 'M', '1'};

// FNV-1a is defined over arithmetic mod 2^64; its multiply wraps by design
// and carries the shared deliberate-wrap annotation (common/math_util.h).
SMM_NO_SANITIZE_UNSIGNED_WRAP
uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int b = 3; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int b = 7; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

/// Reserves the frame buffer, writes the header with the (known a priori)
/// payload length, and returns the buffer ready for payload appends.
std::vector<uint8_t> BeginFrame(uint8_t version, MessageType type,
                                size_t payload_len) {
  std::vector<uint8_t> out;
  out.reserve(kFrameOverheadBytes + payload_len);
  // push_back (not a range insert): gcc 12's -Wstringop-overflow misfires
  // on vector::insert into a freshly reserved buffer.
  for (uint8_t b : kMagic) out.push_back(b);
  out.push_back(version);
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(0);  // reserved
  out.push_back(0);  // reserved
  AppendU32(out, static_cast<uint32_t>(payload_len));
  return out;
}

void AppendShardSpec(std::vector<uint8_t>& out, const ShardSpec& spec) {
  AppendU32(out, spec.shard_index);
  AppendU32(out, spec.shard_count);
  AppendU32(out, spec.dim_offset);
  AppendU32(out, spec.shard_dim);
}

ShardSpec LoadShardSpec(const uint8_t* p) {
  ShardSpec spec;
  spec.shard_index = LoadU32(p);
  spec.shard_count = LoadU32(p + 4);
  spec.dim_offset = LoadU32(p + 8);
  spec.shard_dim = LoadU32(p + 12);
  return spec;
}

/// Shard spec validity plus its agreement with the payload element count,
/// shared by the encoder and the version-2 decoder.
Status CheckShardAgainstPayload(const ShardSpec& spec, size_t count) {
  SMM_RETURN_IF_ERROR(ValidateShardSpec(spec));
  if (spec.shard_dim != count) {
    return InvalidArgumentError(
        "shard_dim disagrees with the payload element count");
  }
  return OkStatus();
}

/// Appends the checksum over everything written so far.
std::vector<uint8_t> FinishFrame(std::vector<uint8_t> frame) {
  AppendU64(frame, Fnv1a64(frame.data(), frame.size()));
  return frame;
}

Status CheckParticipantId(int participant_id) {
  if (participant_id < 0) {
    return InvalidArgumentError("participant id must be non-negative");
  }
  return OkStatus();
}

Status CheckElementCount(size_t count, size_t bytes_per_element,
                         size_t fixed_bytes) {
  if (count > std::numeric_limits<uint32_t>::max() ||
      count > (kMaxPayloadBytes - fixed_bytes) / bytes_per_element) {
    return InvalidArgumentError("message payload exceeds the frame limit");
  }
  return OkStatus();
}

}  // namespace

Status ValidateShardSpec(const ShardSpec& spec) {
  if (spec.shard_index >= spec.shard_count) {
    return InvalidArgumentError("shard_index must be < shard_count");
  }
  if (spec.shard_dim == 0) {
    return InvalidArgumentError("shard_dim must be >= 1");
  }
  if (uint64_t{spec.dim_offset} + uint64_t{spec.shard_dim} >
      std::numeric_limits<uint32_t>::max()) {
    return InvalidArgumentError("shard dimension range overflows uint32");
  }
  return OkStatus();
}

StatusOr<std::vector<uint8_t>> EncodeFrame(const ContributionMsg& msg) {
  SMM_RETURN_IF_ERROR(CheckParticipantId(msg.participant_id));
  if (msg.modulus < 2) {
    return InvalidArgumentError("contribution modulus must be >= 2");
  }
  if (msg.payload.empty()) {
    return InvalidArgumentError("contribution payload must be non-empty");
  }
  if (msg.shard.has_value()) {
    SMM_RETURN_IF_ERROR(
        CheckShardAgainstPayload(*msg.shard, msg.payload.size()));
    SMM_RETURN_IF_ERROR(CheckElementCount(msg.payload.size(), 8, 32));
    std::vector<uint8_t> frame =
        BeginFrame(kWireVersionSharded, MessageType::kContribution,
                   32 + 8 * msg.payload.size());
    AppendU32(frame, static_cast<uint32_t>(msg.participant_id));
    AppendU32(frame, static_cast<uint32_t>(msg.payload.size()));
    AppendU64(frame, msg.modulus);
    AppendShardSpec(frame, *msg.shard);
    for (uint64_t v : msg.payload) AppendU64(frame, v);
    return FinishFrame(std::move(frame));
  }
  SMM_RETURN_IF_ERROR(CheckElementCount(msg.payload.size(), 8, 16));
  std::vector<uint8_t> frame = BeginFrame(
      kWireVersion, MessageType::kContribution, 16 + 8 * msg.payload.size());
  AppendU32(frame, static_cast<uint32_t>(msg.participant_id));
  AppendU32(frame, static_cast<uint32_t>(msg.payload.size()));
  AppendU64(frame, msg.modulus);
  for (uint64_t v : msg.payload) AppendU64(frame, v);
  return FinishFrame(std::move(frame));
}

StatusOr<std::vector<uint8_t>> EncodeFrame(const SharesMsg& msg) {
  SMM_RETURN_IF_ERROR(CheckParticipantId(msg.participant_id));
  if (msg.shares.empty()) {
    return InvalidArgumentError("shares message must carry shares");
  }
  SMM_RETURN_IF_ERROR(CheckElementCount(msg.shares.size(), 16, 8));
  std::vector<uint8_t> frame = BeginFrame(kWireVersion, MessageType::kShares,
                                          8 + 16 * msg.shares.size());
  AppendU32(frame, static_cast<uint32_t>(msg.participant_id));
  AppendU32(frame, static_cast<uint32_t>(msg.shares.size()));
  for (const ShamirShare& share : msg.shares) {
    AppendU64(frame, share.x);
    AppendU64(frame, share.y);
  }
  return FinishFrame(std::move(frame));
}

StatusOr<std::vector<uint8_t>> EncodeFrame(const SumMsg& msg) {
  if (msg.modulus < 2) {
    return InvalidArgumentError("sum modulus must be >= 2");
  }
  if (msg.sum.empty()) {
    return InvalidArgumentError("sum payload must be non-empty");
  }
  SMM_RETURN_IF_ERROR(CheckElementCount(msg.sum.size(), 8, 16));
  std::vector<uint8_t> frame =
      BeginFrame(kWireVersion, MessageType::kSum, 16 + 8 * msg.sum.size());
  AppendU32(frame, msg.num_contributors);
  AppendU32(frame, static_cast<uint32_t>(msg.sum.size()));
  AppendU64(frame, msg.modulus);
  for (uint64_t v : msg.sum) AppendU64(frame, v);
  return FinishFrame(std::move(frame));
}

StatusOr<std::vector<uint8_t>> EncodeFrame(const PartialSumMsg& msg) {
  if (msg.modulus < 2) {
    return InvalidArgumentError("partial sum modulus must be >= 2");
  }
  if (msg.sum.empty()) {
    return InvalidArgumentError("partial sum payload must be non-empty");
  }
  SMM_RETURN_IF_ERROR(CheckShardAgainstPayload(msg.shard, msg.sum.size()));
  SMM_RETURN_IF_ERROR(CheckElementCount(msg.sum.size(), 8, 32));
  std::vector<uint8_t> frame =
      BeginFrame(kWireVersionSharded, MessageType::kPartialSum,
                 32 + 8 * msg.sum.size());
  AppendU32(frame, msg.num_contributors);
  AppendU32(frame, static_cast<uint32_t>(msg.sum.size()));
  AppendU64(frame, msg.modulus);
  AppendShardSpec(frame, msg.shard);
  for (uint64_t v : msg.sum) AppendU64(frame, v);
  return FinishFrame(std::move(frame));
}

StatusOr<WireMessage> DecodeFrame(ByteSpan frame) {
  const uint8_t* data = frame.data();
  const size_t size = frame.size();
  if (data == nullptr) return InvalidArgumentError("null frame");
  if (size < kFrameOverheadBytes) {
    return DataLossError("frame truncated: shorter than the overhead");
  }
  for (int i = 0; i < 4; ++i) {
    if (data[i] != kMagic[i]) {
      return InvalidArgumentError("bad frame magic");
    }
  }
  const uint8_t version = data[4];
  if (version != kWireVersion && version != kWireVersionSharded) {
    return InvalidArgumentError("unsupported wire version");
  }
  const uint8_t raw_type = data[5];
  if (data[6] != 0 || data[7] != 0) {
    return InvalidArgumentError("reserved frame bytes must be zero");
  }
  const uint64_t payload_len = LoadU32(data + 8);
  if (payload_len > kMaxPayloadBytes) {
    return InvalidArgumentError("frame payload exceeds the size limit");
  }
  if (size != kFrameOverheadBytes + payload_len) {
    // A short frame lost bytes in transit (kDataLoss); trailing bytes mean
    // the caller mis-framed the input (kInvalidArgument).
    if (size < kFrameOverheadBytes + payload_len) {
      return DataLossError(
          "frame truncated: payload shorter than its length prefix");
    }
    return InvalidArgumentError("frame carries trailing bytes");
  }
  const size_t body = kFrameHeaderBytes + payload_len;
  if (LoadU64(data + body) != Fnv1a64(data, body)) {
    return DataLossError("frame checksum mismatch");
  }
  const uint8_t* payload = data + kFrameHeaderBytes;
  switch (raw_type) {
    case static_cast<uint8_t>(MessageType::kContribution): {
      // Version 2 inserts a 16-byte ShardSpec between the modulus and the
      // values; everything before and after it keeps the version-1 layout.
      const uint64_t fixed =
          version == kWireVersionSharded ? 32 : 16;
      if (payload_len < fixed) {
        return InvalidArgumentError("contribution payload truncated");
      }
      ContributionMsg msg;
      const uint32_t participant = LoadU32(payload);
      const uint64_t count = LoadU32(payload + 4);
      msg.modulus = LoadU64(payload + 8);
      if (participant > static_cast<uint32_t>(
                            std::numeric_limits<int32_t>::max())) {
        return InvalidArgumentError("participant id out of range");
      }
      if (msg.modulus < 2) {
        return InvalidArgumentError("contribution modulus must be >= 2");
      }
      if (count == 0 || payload_len != fixed + 8 * count) {
        return InvalidArgumentError(
            "contribution count disagrees with the payload length");
      }
      if (version == kWireVersionSharded) {
        msg.shard = LoadShardSpec(payload + 16);
        SMM_RETURN_IF_ERROR(CheckShardAgainstPayload(*msg.shard, count));
      }
      msg.participant_id = static_cast<int>(participant);
      msg.payload.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        msg.payload[i] = LoadU64(payload + fixed + 8 * i);
      }
      return WireMessage(std::move(msg));
    }
    case static_cast<uint8_t>(MessageType::kShares): {
      if (version != kWireVersion) {
        return InvalidArgumentError(
            "shares frames are only defined at wire version 1");
      }
      if (payload_len < 8) {
        return InvalidArgumentError("shares payload truncated");
      }
      SharesMsg msg;
      const uint32_t participant = LoadU32(payload);
      const uint64_t count = LoadU32(payload + 4);
      if (participant > static_cast<uint32_t>(
                            std::numeric_limits<int32_t>::max())) {
        return InvalidArgumentError("participant id out of range");
      }
      if (count == 0 || payload_len != 8 + 16 * count) {
        return InvalidArgumentError(
            "share count disagrees with the payload length");
      }
      msg.participant_id = static_cast<int>(participant);
      msg.shares.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        msg.shares[i].x = LoadU64(payload + 8 + 16 * i);
        msg.shares[i].y = LoadU64(payload + 16 + 16 * i);
      }
      return WireMessage(std::move(msg));
    }
    case static_cast<uint8_t>(MessageType::kSum): {
      if (version != kWireVersion) {
        return InvalidArgumentError(
            "sum frames are only defined at wire version 1");
      }
      if (payload_len < 16) {
        return InvalidArgumentError("sum payload truncated");
      }
      SumMsg msg;
      msg.num_contributors = LoadU32(payload);
      const uint64_t count = LoadU32(payload + 4);
      msg.modulus = LoadU64(payload + 8);
      if (msg.modulus < 2) {
        return InvalidArgumentError("sum modulus must be >= 2");
      }
      if (count == 0 || payload_len != 16 + 8 * count) {
        return InvalidArgumentError(
            "sum count disagrees with the payload length");
      }
      msg.sum.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        msg.sum[i] = LoadU64(payload + 16 + 8 * i);
      }
      return WireMessage(std::move(msg));
    }
    case static_cast<uint8_t>(MessageType::kPartialSum): {
      if (version != kWireVersionSharded) {
        return InvalidArgumentError(
            "partial sum frames require wire version 2");
      }
      if (payload_len < 32) {
        return InvalidArgumentError("partial sum payload truncated");
      }
      PartialSumMsg msg;
      msg.num_contributors = LoadU32(payload);
      const uint64_t count = LoadU32(payload + 4);
      msg.modulus = LoadU64(payload + 8);
      if (msg.modulus < 2) {
        return InvalidArgumentError("partial sum modulus must be >= 2");
      }
      if (count == 0 || payload_len != 32 + 8 * count) {
        return InvalidArgumentError(
            "partial sum count disagrees with the payload length");
      }
      msg.shard = LoadShardSpec(payload + 16);
      SMM_RETURN_IF_ERROR(CheckShardAgainstPayload(msg.shard, count));
      msg.sum.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        msg.sum[i] = LoadU64(payload + 32 + 8 * i);
      }
      return WireMessage(std::move(msg));
    }
    default:
      return InvalidArgumentError("unknown frame message type");
  }
}

Status InMemoryTransport::Send(int client_id, std::vector<uint8_t> frame) {
  if (client_id < 0) {
    return InvalidArgumentError("client id must be non-negative");
  }
  std::lock_guard<std::mutex> lock(mu_);
  queues_[client_id].push_back(std::move(frame));
  ++pending_;
  return OkStatus();
}

std::optional<std::vector<uint8_t>> InMemoryTransport::Receive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queues_.empty()) return std::nullopt;
  const auto it = queues_.begin();
  std::vector<uint8_t> frame = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  --pending_;
  return frame;
}

size_t InMemoryTransport::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace smm::secagg
