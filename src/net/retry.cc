#include "net/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/random.h"

namespace smm::net {

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDataLoss;
}

RetryState::RetryState(const RetryPolicy& policy)
    : policy_(policy),
      next_backoff_ms_(std::max<int64_t>(policy.initial_backoff_ms, 0)),
      rng_state_(policy.seed) {}

bool RetryState::BackoffAndRetry() {
  if (attempts_ >= std::max(policy_.max_attempts, 1)) return false;
  ++attempts_;
  int64_t delay = next_backoff_ms_;
  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  const auto half_band = static_cast<int64_t>(
      static_cast<double>(delay) * jitter);
  if (half_band > 0) {
    // SplitMix64 keeps the schedule a pure function of the seed.
    const uint64_t draw =
        SplitMix64(&rng_state_) %
        (static_cast<uint64_t>(half_band) * 2 + 1);
    delay += static_cast<int64_t>(draw) - half_band;
  }
  if (delay > 0) {
    if (policy_.sleep_fn) {
      policy_.sleep_fn(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  const double grown =
      static_cast<double>(next_backoff_ms_) * std::max(policy_.multiplier, 1.0);
  next_backoff_ms_ = std::min<int64_t>(
      policy_.max_backoff_ms > 0 ? policy_.max_backoff_ms : next_backoff_ms_,
      static_cast<int64_t>(grown));
  return true;
}

namespace {

/// One connect + send + half-close + read-sum attempt.
StatusOr<secagg::SumMsg> AttemptContributionRound(
    uint16_t port, ByteSpan frame, const BlockingClient::Options& options) {
  SMM_ASSIGN_OR_RETURN(BlockingClient client,
                       BlockingClient::Connect(port, options));
  SMM_RETURN_IF_ERROR(client.SendFrame(frame));
  SMM_RETURN_IF_ERROR(client.FinishSending());
  return client.ReadSum();
}

StatusOr<secagg::SumMsg> AttemptShardedRound(
    const std::vector<uint16_t>& ports,
    const std::vector<std::vector<uint8_t>>& frames,
    const secagg::ShardPlan& plan, const BlockingClient::Options& options) {
  SMM_ASSIGN_OR_RETURN(ShardedFanoutClient client,
                       ShardedFanoutClient::Connect(ports, options));
  SMM_RETURN_IF_ERROR(client.SendShardFrames(frames));
  SMM_RETURN_IF_ERROR(client.FinishSending());
  return client.ReadMergedSum(plan);
}

template <typename Attempt>
StatusOr<secagg::SumMsg> RunWithRetry(Attempt&& attempt,
                                      const RetryPolicy& retry,
                                      int* attempts_out) {
  RetryState state(retry);
  while (true) {
    StatusOr<secagg::SumMsg> result = attempt();
    if (result.ok() || !IsRetryableStatus(result.status()) ||
        !state.BackoffAndRetry()) {
      if (attempts_out != nullptr) *attempts_out = state.attempts();
      return result;
    }
  }
}

}  // namespace

StatusOr<secagg::SumMsg> RunContributionRound(
    uint16_t port, ByteSpan frame, const BlockingClient::Options& options,
    const RetryPolicy& retry, int* attempts_out) {
  return RunWithRetry(
      [&] { return AttemptContributionRound(port, frame, options); }, retry,
      attempts_out);
}

StatusOr<secagg::SumMsg> RunShardedContributionRound(
    const std::vector<uint16_t>& ports,
    const std::vector<std::vector<uint8_t>>& frames,
    const secagg::ShardPlan& plan, const BlockingClient::Options& options,
    const RetryPolicy& retry, int* attempts_out) {
  return RunWithRetry(
      [&] { return AttemptShardedRound(ports, frames, plan, options); },
      retry, attempts_out);
}

}  // namespace smm::net
