#ifndef SMM_SECAGG_STREAMING_AGGREGATOR_H_
#define SMM_SECAGG_STREAMING_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/span.h"
#include "common/status.h"

namespace smm::secagg {

/// One in-progress streaming aggregation session over Z_m^dim, opened with
/// SecureAggregator::Open(dim, m). Contributions arrive one participant (or
/// one tile of participants) at a time and are folded into bounded state
/// immediately, so the server never materializes all client vectors at once
/// — the assumption Bonawitz-style secure aggregation and the DDP-SA line
/// of work make for participant counts that exceed memory.
///
///   Open(dim, m) -> Absorb(participant_id, span)* -> Finalize()
///
/// Memory model: the provided implementations hold one O(dim) running sum
/// (plus O(threads·dim) transient partials while a tile is absorbed and an
/// O(num_participants)-bit survivor set for the masked protocol), fully
/// independent of how many participants are absorbed.
///
/// Determinism: all accumulation is exact integer arithmetic mod m, so
/// Finalize() is bit-identical to the batch Aggregate/AggregateParallel
/// path for any thread count, any absorb order, and any tiling.
///
/// Streams are single-session: after Finalize() every further call fails
/// with FailedPrecondition. Not thread-safe — one caller drives a stream
/// (internally it may shard work across the pool it was opened with).
class StreamingAggregator {
 public:
  virtual ~StreamingAggregator() = default;

  StreamingAggregator(const StreamingAggregator&) = delete;
  StreamingAggregator& operator=(const StreamingAggregator&) = delete;

  virtual size_t dim() const = 0;
  virtual uint64_t modulus() const = 0;
  /// Participants absorbed so far.
  virtual size_t absorbed() const = 0;

  /// Absorbs one participant's contribution (`input.size()` must equal
  /// dim()). Entries need not be pre-reduced; each is reduced once before
  /// the overflow-safe accumulation. Implementations define what
  /// `participant_id` means (the masked protocol requires a valid,
  /// not-yet-absorbed index; the ideal sum ignores it). ConstSpan is
  /// implicitly constructible from std::vector<uint64_t>, so vector-based
  /// callers pass their buffers unchanged.
  virtual Status Absorb(int participant_id, ConstSpan<uint64_t> input) = 0;

  /// Absorbs a tile of participants (inputs[i] belongs to
  /// participant_ids[i]), equivalent to absorbing them one by one in order
  /// but letting implementations shard the tile across the pool. The
  /// default loops Absorb.
  virtual Status AbsorbTile(const std::vector<int>& participant_ids,
                            const std::vector<std::vector<uint64_t>>& inputs);

  /// Completes the session and returns the element-wise sum mod m of every
  /// absorbed contribution (running any deferred protocol work first, e.g.
  /// dropout recovery for the masked protocol). Fails if nothing was
  /// absorbed. The stream is consumed.
  virtual StatusOr<std::vector<uint64_t>> Finalize() = 0;

 protected:
  StreamingAggregator() = default;
};

/// The bounded-memory running-sum core behind both provided aggregators:
/// one O(dim) accumulator updated through overflow-safe AddMod, with tiles
/// sharded across the pool via ShardedModularAccumulate (transient
/// O(threads·dim) partials). Used directly by IdealAggregator::Open;
/// protocol-specific streams (e.g. the masked protocol's) subclass it and
/// override the two hooks.
class RunningSumStream : public StreamingAggregator {
 public:
  /// Requires dim >= 1 and m >= 2 (validated by the Open factories).
  RunningSumStream(size_t dim, uint64_t m, ThreadPool* pool);

  size_t dim() const override { return dim_; }
  uint64_t modulus() const override { return m_; }
  size_t absorbed() const override { return absorbed_; }

  Status Absorb(int participant_id, ConstSpan<uint64_t> input) override;

  Status AbsorbTile(const std::vector<int>& participant_ids,
                    const std::vector<std::vector<uint64_t>>& inputs) override;

  StatusOr<std::vector<uint64_t>> Finalize() override;

 protected:
  /// Admission hook, called once per participant before its data is folded
  /// in. Protocol streams validate/record the id here; the default accepts
  /// everything (the ideal sum has no notion of identity).
  virtual Status AdmitParticipant(int participant_id);

  /// Tile admission hook, called once with the whole tile's ids before any
  /// of its data is folded in. Must be all-or-nothing: on error no id may
  /// remain recorded, so a rejected tile leaves the stream exactly as it
  /// was. The default loops AdmitParticipant — fine only when admission is
  /// infallible; protocol streams with fallible admission must override.
  virtual Status AdmitTile(const std::vector<int>& participant_ids);

  /// Finalize hook, called once with the running sum before it is returned.
  /// Protocol streams run deferred work here (e.g. dropout recovery); the
  /// default is a no-op.
  virtual Status FinalizeInto(std::vector<uint64_t>& sum);

  ThreadPool* pool() const { return pool_; }

 private:
  Status CheckOpen() const;

  size_t dim_;
  uint64_t m_;
  ThreadPool* pool_;
  std::vector<uint64_t> sum_;
  size_t absorbed_ = 0;
  bool finalized_ = false;
};

}  // namespace smm::secagg

#endif  // SMM_SECAGG_STREAMING_AGGREGATOR_H_
