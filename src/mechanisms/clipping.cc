#include "mechanisms/clipping.h"

#include <algorithm>
#include <cmath>

namespace smm::mechanisms {

double SmmSensitivityContribution(double magnitude) {
  const double t = std::abs(magnitude);
  const double f = t - std::floor(t);
  return t * t + f - f * f;
}

double SmmSensitivityInverse(double w) {
  if (w <= 0.0) return 0.0;
  double k = std::floor(std::sqrt(w));
  // Guard against floating-point sqrt landing one integer too high/low.
  while (k * k > w) k -= 1.0;
  while ((k + 1.0) * (k + 1.0) <= w) k += 1.0;
  const double f = (w - k * k) / (2.0 * k + 1.0);
  return k + f;
}

Status SmmClip(std::vector<double>& g, double c, double delta_inf) {
  if (!(c > 0.0)) return InvalidArgumentError("clip threshold c must be > 0");
  if (!(delta_inf > 0.0)) {
    return InvalidArgumentError("delta_inf must be > 0");
  }
  const double dinf = std::max(1.0, std::floor(delta_inf));
  // Map to sensitivity contributions (the helper vector v of Algorithm 5).
  double l1 = 0.0;
  std::vector<double> v(g.size());
  for (size_t j = 0; j < g.size(); ++j) {
    v[j] = SmmSensitivityContribution(g[j]);
    l1 += v[j];
  }
  // L1-clip the contribution vector to c.
  const double scale = l1 > c ? c / l1 : 1.0;
  // Map back and apply the Linf clip.
  for (size_t j = 0; j < g.size(); ++j) {
    const double sign = g[j] < 0.0 ? -1.0 : 1.0;  // 0/0 := 1 per the paper.
    double magnitude = SmmSensitivityInverse(v[j] * scale);
    magnitude = std::min(magnitude, dinf);
    g[j] = sign * magnitude;
  }
  return OkStatus();
}

void L2Clip(std::vector<double>& g, double threshold) {
  const double norm = L2Norm(g);
  if (norm > threshold && norm > 0.0) {
    const double scale = threshold / norm;
    for (double& x : g) x *= scale;
  }
}

double L2Norm(const std::vector<double>& g) {
  double sum = 0.0;
  for (double x : g) sum += x * x;
  return std::sqrt(sum);
}

}  // namespace smm::mechanisms
