#include "secagg/secure_aggregator.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/simd.h"
#include "secagg/modular.h"

namespace smm::secagg {

namespace {

/// The fallback stream behind the default SecureAggregator::Open: buffers
/// every absorbed input and delegates to AggregateParallel at Finalize.
/// Correct for any aggregator, but O(n·dim) resident — the bounded-memory
/// implementations live with their aggregators below.
class BufferingStream final : public StreamingAggregator {
 public:
  BufferingStream(SecureAggregator& aggregator, size_t dim, uint64_t m,
                  ThreadPool* pool)
      : aggregator_(aggregator), dim_(dim), m_(m), pool_(pool) {}

  size_t dim() const override { return dim_; }
  uint64_t modulus() const override { return m_; }
  size_t absorbed() const override { return buffered_.size(); }

  Status Absorb(int participant_id, ConstSpan<uint64_t> input) override {
    (void)participant_id;
    if (finalized_) return FailedPreconditionError("stream already finalized");
    if (input.size() != dim_) {
      return InvalidArgumentError("input dimension mismatch");
    }
    buffered_.emplace_back(input.begin(), input.end());
    return OkStatus();
  }

  StatusOr<std::vector<uint64_t>> Finalize() override {
    if (finalized_) return FailedPreconditionError("stream already finalized");
    finalized_ = true;
    return aggregator_.AggregateParallel(buffered_, m_, pool_);
  }

 private:
  SecureAggregator& aggregator_;
  size_t dim_;
  uint64_t m_;
  ThreadPool* pool_;
  std::vector<std::vector<uint64_t>> buffered_;
  bool finalized_ = false;
};

Status ValidateStreamParams(size_t dim, uint64_t m) {
  if (dim == 0) return InvalidArgumentError("dimension must be >= 1");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<uint64_t>> SecureAggregator::PrepareContribution(
    int participant, const std::vector<uint64_t>& input, uint64_t m,
    ThreadPool* pool) const {
  (void)participant;
  (void)pool;
  if (input.empty()) return InvalidArgumentError("empty input");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  std::vector<uint64_t> out(input.size());
  simd::ModReduceInto(input.data(), input.size(), m, out.data());
  return out;
}

StatusOr<std::unique_ptr<StreamingAggregator>> SecureAggregator::Open(
    size_t dim, uint64_t m, ThreadPool* pool) {
  SMM_RETURN_IF_ERROR(ValidateStreamParams(dim, m));
  return std::unique_ptr<StreamingAggregator>(
      new BufferingStream(*this, dim, m, pool));
}

StatusOr<std::unique_ptr<SecureAggregator>>
SecureAggregator::CreateShardAggregator(size_t shard_index,
                                        size_t shard_count) const {
  if (shard_count < 1 || shard_index >= shard_count) {
    return InvalidArgumentError("shard index out of range");
  }
  return std::unique_ptr<SecureAggregator>(nullptr);
}

StatusOr<std::vector<uint64_t>> IdealAggregator::Aggregate(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  return AggregateParallel(inputs, m, nullptr);
}

StatusOr<std::vector<uint64_t>> IdealAggregator::AggregateParallel(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
    ThreadPool* pool) {
  if (inputs.empty()) return InvalidArgumentError("no inputs to aggregate");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  const size_t dim = inputs[0].size();
  for (const auto& input : inputs) {
    if (input.size() != dim) {
      return InvalidArgumentError("input dimension mismatch");
    }
  }
  std::vector<uint64_t> sum(dim, 0);
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool, inputs.size(), m, sum,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        for (size_t i = begin; i < end; ++i) {
          simd::AddModVec(acc.data(), inputs[i].data(), dim, m);
        }
        return OkStatus();
      }));
  return sum;
}

StatusOr<std::unique_ptr<StreamingAggregator>> IdealAggregator::Open(
    size_t dim, uint64_t m, ThreadPool* pool) {
  SMM_RETURN_IF_ERROR(ValidateStreamParams(dim, m));
  return std::unique_ptr<StreamingAggregator>(
      new RunningSumStream(dim, m, pool));
}

/// The masked protocol's server-side stream: a running sum of masked
/// inputs plus an O(n)-bit record of who contributed. Dropout recovery is
/// deferred to Finalize, where everyone not absorbed counts as dropped.
class MaskedAggregator::Stream final : public RunningSumStream {
 public:
  Stream(const MaskedAggregator& parent, size_t dim, uint64_t m,
         ThreadPool* pool)
      : RunningSumStream(dim, m, pool),
        parent_(parent),
        seen_(static_cast<size_t>(parent.options_.num_participants), false) {}

 protected:
  Status AdmitParticipant(int participant_id) override {
    SMM_RETURN_IF_ERROR(ValidateParticipant(participant_id));
    seen_[static_cast<size_t>(participant_id)] = true;
    return OkStatus();
  }

  Status AdmitTile(const std::vector<int>& participant_ids) override {
    // Validate the whole tile (including duplicates *within* it) before
    // recording anyone, so a rejected tile leaves no participant marked
    // absorbed whose input was never accumulated.
    std::vector<bool> in_tile(seen_.size(), false);
    for (int id : participant_ids) {
      SMM_RETURN_IF_ERROR(ValidateParticipant(id));
      if (in_tile[static_cast<size_t>(id)]) {
        return InvalidArgumentError("participant absorbed twice");
      }
      in_tile[static_cast<size_t>(id)] = true;
    }
    for (int id : participant_ids) seen_[static_cast<size_t>(id)] = true;
    return OkStatus();
  }

  Status FinalizeInto(std::vector<uint64_t>& sum) override {
    std::vector<int> survivors;
    for (int i = 0; i < parent_.options_.num_participants; ++i) {
      if (seen_[static_cast<size_t>(i)]) survivors.push_back(i);
    }
    if (static_cast<int>(survivors.size()) < parent_.options_.threshold) {
      return FailedPreconditionError(
          "fewer survivors than the Shamir threshold; cannot unmask");
    }
    return parent_.RecoverDroppedMasks(survivors, modulus(), pool(), sum);
  }

 private:
  Status ValidateParticipant(int participant_id) const {
    if (participant_id < 0 ||
        participant_id >= parent_.options_.num_participants) {
      return InvalidArgumentError("participant index out of range");
    }
    if (seen_[static_cast<size_t>(participant_id)]) {
      return InvalidArgumentError("participant absorbed twice");
    }
    return OkStatus();
  }

  const MaskedAggregator& parent_;
  std::vector<bool> seen_;
};

MaskedAggregator::MaskedAggregator(
    Options options, std::vector<std::vector<uint64_t>> seeds,
    std::vector<std::vector<std::vector<ShamirShare>>> shares)
    : options_(options),
      seeds_(std::move(seeds)),
      shares_(std::move(shares)) {}

StatusOr<std::unique_ptr<MaskedAggregator>> MaskedAggregator::Create(
    const Options& options) {
  const int n = options.num_participants;
  if (n < 2) return InvalidArgumentError("need at least 2 participants");
  if (options.threshold < 1 || options.threshold > n) {
    return InvalidArgumentError("need 1 <= threshold <= num_participants");
  }
  RandomGenerator rng(options.session_seed);
  // Pairwise seed agreement (simulating the DH key exchange of SecAgg
  // round 0): one uniform seed per unordered pair.
  std::vector<std::vector<uint64_t>> seeds(
      n, std::vector<uint64_t>(static_cast<size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Keep seeds in the Shamir field so they can be shared verbatim.
      seeds[i][j] = rng.UniformUint64(kShamirPrime);
    }
  }
  // Each pair seed is Shamir-shared among all n participants so the server
  // can recover masks of dropped participants from any `threshold`
  // survivors.
  std::vector<std::vector<std::vector<ShamirShare>>> shares(
      n, std::vector<std::vector<ShamirShare>>(static_cast<size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      SMM_ASSIGN_OR_RETURN(
          shares[i][j], ShamirSplit(seeds[i][j], options.threshold, n, rng));
    }
  }
  return std::unique_ptr<MaskedAggregator>(new MaskedAggregator(
      options, std::move(seeds), std::move(shares)));
}

void MaskedAggregator::AccumulateMask(uint64_t seed, uint64_t m, int sign,
                                      std::vector<uint64_t>& acc) {
  RandomGenerator prg(seed);
  // The PRG expansion is inherently serial (rejection sampling per draw),
  // but the modular accumulate is not: draw one stack tile at a time — in
  // exactly the per-coordinate order the historical fused loop used — and
  // fold it in with the vector kernel.
  constexpr size_t kTile = 256;
  uint64_t draws[kTile];
  const size_t n = acc.size();
  for (size_t base = 0; base < n; base += kTile) {
    const size_t len = n - base < kTile ? n - base : kTile;
    for (size_t k = 0; k < len; ++k) draws[k] = prg.UniformUint64(m);
    if (sign > 0) {
      simd::AddModVec(acc.data() + base, draws, len, m);
    } else {
      simd::SubModVec(acc.data() + base, draws, len, m);
    }
  }
}

uint64_t MaskedAggregator::PairSeed(int i, int j) const {
  return seeds_[std::min(i, j)][std::max(i, j)];
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::MaskInput(
    int participant, const std::vector<uint64_t>& input, uint64_t m,
    ThreadPool* pool) const {
  const int n = options_.num_participants;
  if (participant < 0 || participant >= n) {
    return InvalidArgumentError("participant index out of range");
  }
  if (input.empty()) return InvalidArgumentError("empty input");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  std::vector<uint64_t> out(input.size());
  simd::ModReduceInto(input.data(), input.size(), m, out.data());
  // Participant i adds +PRG(s_ij) for j > i and -PRG(s_ij) for j < i; the
  // contributions cancel pairwise in the full sum. Pair index p enumerates
  // the n - 1 counterparties in increasing j order.
  const size_t num_pairs = static_cast<size_t>(n - 1);
  const auto accumulate_pairs = [&](size_t begin, size_t end,
                                    std::vector<uint64_t>& acc) {
    for (size_t p = begin; p < end; ++p) {
      const int j = static_cast<int>(p) < participant
                        ? static_cast<int>(p)
                        : static_cast<int>(p) + 1;
      AccumulateMask(PairSeed(participant, j), m, j > participant ? 1 : -1,
                     acc);
    }
  };
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool, num_pairs, m, out,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        accumulate_pairs(begin, end, acc);
        return OkStatus();
      }));
  return out;
}

Status MaskedAggregator::RecoverDroppedMasks(const std::vector<int>& survivors,
                                             uint64_t m, ThreadPool* pool,
                                             std::vector<uint64_t>& sum) const {
  const int n = options_.num_participants;
  // Masks between two survivors cancel. For every (survivor, dropped) pair,
  // reconstruct the pair seed from the survivors' shares and remove the
  // leftover mask term. The pairs are enumerated up front and sharded
  // across the pool; each pair's mask comes from its own PRG stream, so the
  // chunking never changes the result.
  std::unordered_set<int> survivor_set(survivors.begin(), survivors.end());
  std::vector<std::pair<int, int>> recovery_pairs;
  for (int i : survivors) {
    for (int j = 0; j < n; ++j) {
      if (j == i || survivor_set.count(j) > 0) continue;
      recovery_pairs.emplace_back(i, j);
    }
  }
  const auto recover_range = [&](size_t begin, size_t end,
                                 std::vector<uint64_t>& acc) -> Status {
    std::vector<ShamirShare> collected;
    collected.reserve(survivors.size());
    for (size_t p = begin; p < end; ++p) {
      const auto [i, j] = recovery_pairs[p];
      const auto& pair_shares = shares_[std::min(i, j)][std::max(i, j)];
      collected.clear();
      for (int s : survivors) {
        collected.push_back(pair_shares[static_cast<size_t>(s)]);
      }
      SMM_ASSIGN_OR_RETURN(const uint64_t seed,
                           ShamirReconstruct(collected, options_.threshold));
      // Survivor i added +mask for j > i expecting j to cancel it
      // (subtract); for j < i it added -mask (add back).
      AccumulateMask(seed, m, j > i ? -1 : 1, acc);
    }
    return OkStatus();
  };
  return ShardedModularAccumulate(pool, recovery_pairs.size(), m, sum,
                                  recover_range);
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::UnmaskSum(
    const std::vector<std::vector<uint64_t>>& masked_inputs,
    const std::vector<int>& survivors, size_t dim, uint64_t m,
    ThreadPool* pool) const {
  if (dim == 0) return InvalidArgumentError("dimension must be >= 1");
  if (m < 2) return InvalidArgumentError("modulus must be >= 2");
  if (masked_inputs.size() != survivors.size()) {
    return InvalidArgumentError("one masked input per survivor required");
  }
  if (static_cast<int>(survivors.size()) < options_.threshold) {
    return FailedPreconditionError(
        "fewer survivors than the Shamir threshold; cannot unmask");
  }
  std::unordered_set<int> survivor_set(survivors.begin(), survivors.end());
  if (survivor_set.size() != survivors.size()) {
    return InvalidArgumentError("duplicate survivor index");
  }
  for (const auto& input : masked_inputs) {
    if (input.size() != dim) {
      return InvalidArgumentError("masked input dimension mismatch");
    }
  }
  // Stage 1: element-wise sum of the masked inputs, sharded over survivors
  // when a pool is given.
  std::vector<uint64_t> sum(dim, 0);
  SMM_RETURN_IF_ERROR(ShardedModularAccumulate(
      pool, masked_inputs.size(), m, sum,
      [&](size_t begin, size_t end, std::vector<uint64_t>& acc) {
        for (size_t i = begin; i < end; ++i) {
          simd::AddModVec(acc.data(), masked_inputs[i].data(), dim, m);
        }
        return OkStatus();
      }));

  // Stage 2: recover the masks that involve dropped participants.
  SMM_RETURN_IF_ERROR(RecoverDroppedMasks(survivors, m, pool, sum));
  return sum;
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::PrepareContribution(
    int participant, const std::vector<uint64_t>& input, uint64_t m,
    ThreadPool* pool) const {
  return MaskInput(participant, input, m, pool);
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::Aggregate(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  return AggregateParallel(inputs, m, nullptr);
}

StatusOr<std::vector<uint64_t>> MaskedAggregator::AggregateParallel(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m,
    ThreadPool* pool) {
  const int n = options_.num_participants;
  if (static_cast<int>(inputs.size()) != n) {
    return InvalidArgumentError(
        "Aggregate expects one input per participant");
  }
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  const size_t dim = inputs[0].size();
  std::vector<std::vector<uint64_t>> masked(inputs.size());
  std::vector<int> survivors(inputs.size());
  for (int i = 0; i < n; ++i) survivors[static_cast<size_t>(i)] = i;
  if (pool == nullptr || pool->num_threads() == 1 || n < 2) {
    for (int i = 0; i < n; ++i) {
      SMM_ASSIGN_OR_RETURN(masked[static_cast<size_t>(i)],
                           MaskInput(i, inputs[static_cast<size_t>(i)], m));
    }
  } else {
    // Each participant's masking is independent (it reads only the shared
    // seed table), so the participant range shards cleanly; the per-pair
    // PRG streams keep every shard's masks identical to the sequential run.
    std::vector<Status> chunk_status(
        static_cast<size_t>(pool->num_threads()));
    pool->ParallelFor(inputs.size(), [&](int chunk, size_t begin,
                                         size_t end) {
      Status& status = chunk_status[static_cast<size_t>(chunk)];
      for (size_t i = begin; i < end; ++i) {
        auto mi = MaskInput(static_cast<int>(i), inputs[i], m);
        if (!mi.ok()) {
          status = mi.status();
          return;
        }
        masked[i] = std::move(*mi);
      }
    });
    for (const Status& status : chunk_status) {
      if (!status.ok()) return status;
    }
  }
  return UnmaskSum(masked, survivors, dim, m, pool);
}

StatusOr<std::unique_ptr<StreamingAggregator>> MaskedAggregator::Open(
    size_t dim, uint64_t m, ThreadPool* pool) {
  SMM_RETURN_IF_ERROR(ValidateStreamParams(dim, m));
  return std::unique_ptr<StreamingAggregator>(
      new Stream(*this, dim, m, pool));
}

StatusOr<std::unique_ptr<SecureAggregator>>
MaskedAggregator::CreateShardAggregator(size_t shard_index,
                                        size_t shard_count) const {
  if (shard_count < 1 || shard_index >= shard_count) {
    return InvalidArgumentError("shard index out of range");
  }
  if (shard_count == 1) return std::unique_ptr<SecureAggregator>(nullptr);
  Options shard_options = options_;
  // Each shard runs an independent protocol instance: distinct pairwise
  // seeds per shard (mask streams must not repeat across dimension ranges)
  // and its own Shamir sharing, so dropout recovery is local to the shard.
  shard_options.session_seed = options_.session_seed + shard_index;
  SMM_ASSIGN_OR_RETURN(auto aggregator, Create(shard_options));
  return std::unique_ptr<SecureAggregator>(std::move(aggregator));
}

}  // namespace smm::secagg
