#include "net/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame_reassembler.h"
#include "net/socket_util.h"
#include "secagg/sharded_coordinator.h"

#if defined(__linux__)
#define SMM_NET_POSIX 1
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace smm::net {

#if defined(SMM_NET_POSIX)

namespace {

/// What an epoll_event.data.ptr points at. Every registered fd carries one
/// Tag whose lifetime matches the registration.
enum class TagKind : uint8_t { kWake, kListener, kConn };

struct ServedSession;

struct Tag {
  TagKind kind;
  void* target = nullptr;  // ServedSession* or Connection* (kWake: unused).
};

using SteadyClock = std::chrono::steady_clock;

/// One accepted client connection, pinned to its session's event loop.
struct Connection {
  UniqueFd fd;
  ServedSession* session = nullptr;
  FrameReassembler reassembler;
  /// Last time this connection completed a frame (or was accepted). Bytes
  /// that never finish a frame do NOT refresh it — that is exactly the
  /// slow-loris signature the idle timeout evicts on.
  SteadyClock::time_point last_frame_activity = SteadyClock::now();
  /// The queued broadcast (at most one SumMsg frame — the bounded
  /// per-connection outbound buffer) and the flush cursor into it.
  std::vector<uint8_t> outbound;
  size_t outbound_off = 0;
  /// Close gracefully once outbound is flushed.
  bool closing = false;
  /// Count the eventual close as dropped (abnormal teardown) in stats.
  bool drop_on_close = false;
  /// The peer half-closed its sending side (clean EOF seen).
  bool read_closed = false;
  Tag tag{TagKind::kConn, this};

  Connection(UniqueFd f, ServedSession* s, size_t max_frame)
      : fd(std::move(f)), session(s), reassembler(max_frame) {}
};

/// One aggregation round: listener + session + its open connections, all
/// owned by (and only touched from) one event loop thread.
struct ServedSession {
  uint64_t id = 0;
  UniqueFd listener;
  std::unique_ptr<secagg::AggregationSession> session;
  size_t expected = 0;
  std::vector<Connection*> conns;
  bool finalized = false;
  /// Round deadline (valid iff has_deadline): at expiry the loop finalizes
  /// with the survivor set when contributions() >= min_contributions, else
  /// fails the round with kDeadlineExceeded.
  bool has_deadline = false;
  SteadyClock::time_point deadline{};
  size_t min_contributions = 0;
  Tag tag{TagKind::kListener, this};
};

Status EpollCtl(int epfd, int op, int fd, uint32_t events, Tag* tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  if (::epoll_ctl(epfd, op, fd, op == EPOLL_CTL_DEL ? nullptr : &ev) != 0) {
    return InternalError(std::string("epoll_ctl: ") + std::strerror(errno));
  }
  return OkStatus();
}

}  // namespace

struct AggregationServer::Impl {
  struct AtomicStats {
    std::atomic<uint64_t> sessions_opened{0};
    std::atomic<uint64_t> sessions_completed{0};
    std::atomic<uint64_t> sessions_failed{0};
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_dropped{0};
    std::atomic<uint64_t> frames_delivered{0};
    std::atomic<uint64_t> frames_rejected{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> sessions_deadline_exceeded{0};
    std::atomic<uint64_t> sessions_quorum_finalized{0};
    std::atomic<uint64_t> connections_evicted{0};
  };

  struct Loop {
    Impl* impl = nullptr;
    UniqueFd epoll_fd;
    UniqueFd wake_fd;
    std::thread thread;
    Tag wake_tag{TagKind::kWake, nullptr};

    /// Commands posted by other threads, run on this loop's thread.
    std::mutex mu;
    std::vector<std::function<void()>> commands;

    /// Loop-thread-only state.
    std::unordered_map<uint64_t, std::unique_ptr<ServedSession>> sessions;
    std::unordered_map<Connection*, std::unique_ptr<Connection>> conns;

    /// Objects closed/retired during the current epoll batch. epoll_wait
    /// snapshots Tag pointers; a later event in the same batch may still
    /// carry a pointer into an object an earlier event tore down, so the
    /// memory must stay valid until the batch ends.
    std::vector<std::unique_ptr<Connection>> conn_graveyard;
    std::vector<std::unique_ptr<ServedSession>> session_graveyard;
  };

  Options options;
  std::vector<std::unique_ptr<Loop>> loops;
  std::atomic<bool> stopping{false};
  bool joined = false;
  std::mutex stop_mu;  // Serializes Stop against itself.

  std::atomic<uint64_t> next_session_id{1};
  std::atomic<size_t> next_loop{0};

  /// Which loop owns which session id (written at OpenSession, read by
  /// FinalizeSession / WaitForSum / Stop).
  std::mutex routes_mu;
  std::unordered_map<uint64_t, size_t> routes;

  /// Finished rounds: the broadcast SumMsg or the failure status.
  std::mutex results_mu;
  std::condition_variable results_cv;
  std::unordered_map<uint64_t, StatusOr<secagg::SumMsg>> results;

  AtomicStats stats;

  void Wake(Loop& loop) {
    const uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
    (void)!::write(loop.wake_fd.get(), &one, sizeof(one));
  }

  void Post(Loop& loop, std::function<void()> command) {
    {
      std::lock_guard<std::mutex> lock(loop.mu);
      loop.commands.push_back(std::move(command));
    }
    Wake(loop);
  }

  void PublishResult(uint64_t id, StatusOr<secagg::SumMsg> result) {
    if (result.ok()) {
      stats.sessions_completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats.sessions_failed.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(results_mu);
      results.emplace(id, std::move(result));
    }
    results_cv.notify_all();
  }

  // ---- Loop-thread handlers -------------------------------------------

  void CloseConn(Loop& loop, Connection* conn, bool dropped) {
    (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_DEL, conn->fd.get(), 0,
                   nullptr);
    if (dropped) {
      stats.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    }
    ServedSession* ss = conn->session;
    auto& peers = ss->conns;
    for (auto it = peers.begin(); it != peers.end(); ++it) {
      if (*it == conn) {
        peers.erase(it);
        break;
      }
    }
    // Unregister now, free at end-of-batch: the fd closes with the
    // Connection, and stale Tag pointers in this epoll batch must stay
    // dereferenceable until then.
    auto it = loop.conns.find(conn);
    if (it != loop.conns.end()) {
      loop.conn_graveyard.push_back(std::move(it->second));
      loop.conns.erase(it);
    }
    MaybeRetireSession(loop, ss);
  }

  /// A finalized session with no connections left has nothing to do;
  /// release it (deferred to end-of-batch, like connections, so its
  /// listener Tag stays valid for stale events in the current batch).
  void MaybeRetireSession(Loop& loop, ServedSession* ss) {
    if (ss->finalized && ss->conns.empty()) {
      auto it = loop.sessions.find(ss->id);
      if (it != loop.sessions.end()) {
        loop.session_graveyard.push_back(std::move(it->second));
        loop.sessions.erase(it);
      }
    }
  }

  void FinalizeAndBroadcast(Loop& loop, ServedSession* ss) {
    ss->finalized = true;
    // The listener goes first: the round is over, late connections belong
    // to nobody.
    if (ss->listener.valid()) {
      (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_DEL, ss->listener.get(),
                     0, nullptr);
      ss->listener.reset();
    }
    StatusOr<secagg::SumMsg> result = ss->session->Finalize();
    std::vector<uint8_t> sum_frame;
    if (result.ok()) {
      auto frame = secagg::EncodeFrame(*result);
      if (frame.ok()) {
        sum_frame = std::move(*frame);
      } else {
        result = frame.status();
      }
    }
    // Whether there is a SumMsg frame to broadcast or not, never close a
    // connection inline here: the HandleRead that triggered this finalize
    // still holds its Connection (and, transitively, this ServedSession)
    // on the stack. Queue the outcome — the broadcast bytes, or an empty
    // outbound with closing set — and let EPOLLOUT drive the flush/close
    // on a later loop turn.
    for (Connection* conn : ss->conns) {
      conn->outbound = sum_frame;
      conn->outbound_off = 0;
      conn->closing = true;
      conn->drop_on_close = sum_frame.empty();
      const uint32_t events =
          (conn->read_closed ? 0u : EPOLLIN) | EPOLLOUT;
      (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_MOD, conn->fd.get(),
                     events, &conn->tag);
    }
    PublishResult(ss->id, std::move(result));
    MaybeRetireSession(loop, ss);
  }

  /// Fails the round without a broadcast: publish `status` to the waiters
  /// and tear the session down exactly like a finalize failure — listener
  /// first, then every connection queued for a graceful EPOLLOUT-driven
  /// close (never closed inline: the caller may still hold a Connection of
  /// this session on its stack).
  void FailSession(Loop& loop, ServedSession* ss, Status status) {
    ss->finalized = true;
    if (ss->listener.valid()) {
      (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_DEL, ss->listener.get(),
                     0, nullptr);
      ss->listener.reset();
    }
    for (Connection* conn : ss->conns) {
      conn->outbound.clear();
      conn->outbound_off = 0;
      conn->closing = true;
      conn->drop_on_close = true;
      const uint32_t events = (conn->read_closed ? 0u : EPOLLIN) | EPOLLOUT;
      (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_MOD, conn->fd.get(),
                     events, &conn->tag);
    }
    PublishResult(ss->id, std::move(status));
    MaybeRetireSession(loop, ss);
  }

  /// The epoll_wait timeout for this loop: the nearest session deadline or
  /// connection idle expiry, or -1 (park indefinitely) when no timer is
  /// armed — the common case stays scan-free of wakeup ticks.
  int NextTimeoutMs(const Loop& loop) const {
    bool have = false;
    SteadyClock::time_point next{};
    auto consider = [&](SteadyClock::time_point t) {
      if (!have || t < next) next = t;
      have = true;
    };
    for (const auto& [id, ss] : loop.sessions) {
      (void)id;
      if (ss->has_deadline && !ss->finalized) consider(ss->deadline);
    }
    if (options.idle_timeout_ms > 0) {
      const auto idle = std::chrono::milliseconds(options.idle_timeout_ms);
      for (const auto& [raw, conn] : loop.conns) {
        (void)raw;
        if (!conn->read_closed && !conn->closing) {
          consider(conn->last_frame_activity + idle);
        }
      }
    }
    if (!have) return -1;
    const auto now = SteadyClock::now();
    if (next <= now) return 0;
    const auto ms = std::chrono::ceil<std::chrono::milliseconds>(next - now);
    return static_cast<int>(std::min<int64_t>(ms.count(), 60'000));
  }

  /// Runs between epoll batches: expire session deadlines (quorum decides
  /// survivor-set finalize vs. kDeadlineExceeded failure) and evict
  /// connections that stopped completing frames.
  void ExpireTimers(Loop& loop) {
    const auto now = SteadyClock::now();
    std::vector<ServedSession*> expired;
    for (const auto& [id, ss] : loop.sessions) {
      (void)id;
      if (!ss->finalized && ss->has_deadline && now >= ss->deadline) {
        expired.push_back(ss.get());
      }
    }
    for (ServedSession* ss : expired) {
      if (ss->session->contributions() >= ss->min_contributions) {
        stats.sessions_quorum_finalized.fetch_add(1,
                                                  std::memory_order_relaxed);
        FinalizeAndBroadcast(loop, ss);
      } else {
        stats.sessions_deadline_exceeded.fetch_add(1,
                                                   std::memory_order_relaxed);
        FailSession(loop, ss,
                    DeadlineExceededError(
                        "round deadline expired below the contribution "
                        "quorum"));
      }
    }
    if (options.idle_timeout_ms > 0) {
      const auto idle = std::chrono::milliseconds(options.idle_timeout_ms);
      std::vector<Connection*> evict;
      for (const auto& [raw, conn] : loop.conns) {
        if (!conn->read_closed && !conn->closing &&
            now - conn->last_frame_activity >= idle) {
          evict.push_back(raw);
        }
      }
      for (Connection* conn : evict) {
        stats.connections_evicted.fetch_add(1, std::memory_order_relaxed);
        CloseConn(loop, conn, /*dropped=*/true);
      }
    }
  }

  void HandleAccept(Loop& loop, ServedSession* ss) {
    while (ss->listener.valid()) {
      const int raw = ::accept4(ss->listener.get(), nullptr, nullptr,
                                SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (raw < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (queue empty) or transient accept failure.
      }
      UniqueFd fd(raw);
      (void)SetNoDelay(fd.get());
      auto conn = std::make_unique<Connection>(std::move(fd), ss,
                                              options.max_frame_bytes);
      Connection* raw_conn = conn.get();
      if (!EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_ADD, raw_conn->fd.get(),
                    EPOLLIN, &raw_conn->tag)
               .ok()) {
        continue;  // Registration failed; the fd closes with `conn`.
      }
      ss->conns.push_back(raw_conn);
      loop.conns.emplace(raw_conn, std::move(conn));
      stats.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void HandleRead(Loop& loop, Connection* conn) {
    ServedSession* ss = conn->session;
    // One bounded read per readiness event: level-triggered epoll
    // re-signals while more bytes wait, so large backlogs interleave
    // fairly across this loop's connections instead of one connection
    // monopolizing the thread. Unread bytes stay in the kernel buffer and
    // shrink the TCP window — that is the backpressure path.
    std::vector<uint8_t> chunk(options.read_chunk_bytes);
    const ssize_t n =
        ::recv(conn->fd.get(), chunk.data(), chunk.size(), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(loop, conn, /*dropped=*/true);
      return;
    }
    if (n == 0) {
      // Clean EOF: the peer half-closed after sending. The connection
      // stays open to receive the broadcast; stop watching for reads
      // (level-triggered EPOLLIN would spin on the EOF condition).
      if (conn->reassembler.mid_frame() ||
          !conn->reassembler.stream_error().ok()) {
        CloseConn(loop, conn, /*dropped=*/true);
        return;
      }
      conn->read_closed = true;
      if (conn->closing && conn->outbound.empty()) {
        // Nothing left to flush (finalize-failure teardown): close now
        // rather than disarm every event and strand the connection.
        CloseConn(loop, conn, conn->drop_on_close);
        return;
      }
      const uint32_t events = conn->outbound.empty() ? 0u : EPOLLOUT;
      (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_MOD, conn->fd.get(),
                     events, &conn->tag);
      return;
    }
    stats.bytes_read.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
    if (!conn->reassembler.Ingest(ByteSpan(chunk.data(),
                                           static_cast<size_t>(n)))
             .ok()) {
      // Byte stream desynchronized: no further frame boundary is knowable.
      CloseConn(loop, conn, /*dropped=*/true);
      return;
    }
    while (auto frame = conn->reassembler.NextFrame()) {
      // A completed frame is real progress; bytes alone are not (the idle
      // eviction keys off this).
      conn->last_frame_activity = SteadyClock::now();
      if (ss->session->HandleFrame(*frame).ok()) {
        stats.frames_delivered.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Frame-level rejection: the boundary held, the connection
        // survives, only this frame is lost (and counted).
        stats.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      }
      if (!ss->finalized && ss->expected > 0 &&
          ss->session->contributions() >= ss->expected) {
        FinalizeAndBroadcast(loop, ss);
        // `conn` and `ss` are still alive (finalize never closes a
        // connection inline, success or failure); keep draining the
        // reassembled frames — the finalized session rejects them, which
        // is the right count.
      }
    }
  }

  void HandleWrite(Loop& loop, Connection* conn) {
    while (conn->outbound_off < conn->outbound.size()) {
      const ssize_t n = ::send(conn->fd.get(),
                               conn->outbound.data() + conn->outbound_off,
                               conn->outbound.size() - conn->outbound_off,
                               MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n > 0) {
        conn->outbound_off += static_cast<size_t>(n);
        stats.bytes_written.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // EPOLLOUT stays armed; the flush resumes when writable.
      }
      CloseConn(loop, conn, /*dropped=*/true);
      return;
    }
    // Fully flushed.
    conn->outbound.clear();
    conn->outbound_off = 0;
    if (conn->closing) {
      CloseConn(loop, conn, conn->drop_on_close);
      return;
    }
    // Disarm EPOLLOUT (level-triggered: it would fire on every loop turn).
    const uint32_t events = conn->read_closed ? 0u : EPOLLIN;
    (void)EpollCtl(loop.epoll_fd.get(), EPOLL_CTL_MOD, conn->fd.get(),
                   events, &conn->tag);
  }

  void RunCommands(Loop& loop) {
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(loop.mu);
      batch.swap(loop.commands);
    }
    for (auto& command : batch) command();
  }

  void LoopThread(Loop& loop) {
    epoll_event events[128];
    while (!stopping.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(loop.epoll_fd.get(), events, 128,
                                 NextTimeoutMs(loop));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        // Reading tag->kind is safe even for objects torn down by an
        // earlier event in this batch: closes/retires park the owning
        // unique_ptr in the graveyards below, so the memory outlives the
        // batch. Liveness is then decided per kind — conns through the
        // owning map, listeners through ss->listener.valid() (reset at
        // finalize, so a retired session's accept loop no-ops).
        Tag* tag = static_cast<Tag*>(events[i].data.ptr);
        switch (tag->kind) {
          case TagKind::kWake: {
            uint64_t drained = 0;
            (void)!::read(loop.wake_fd.get(), &drained, sizeof(drained));
            RunCommands(loop);
            break;
          }
          case TagKind::kListener:
            HandleAccept(loop, static_cast<ServedSession*>(tag->target));
            break;
          case TagKind::kConn: {
            auto* conn = static_cast<Connection*>(tag->target);
            if (loop.conns.find(conn) == loop.conns.end()) break;
            if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
                (events[i].events & (EPOLLIN | EPOLLOUT)) == 0) {
              CloseConn(loop, conn, /*dropped=*/true);
              break;
            }
            if ((events[i].events & EPOLLIN) != 0) {
              HandleRead(loop, conn);
              if (loop.conns.find(conn) == loop.conns.end()) break;
            }
            if ((events[i].events & EPOLLOUT) != 0) {
              HandleWrite(loop, conn);
            }
            break;
          }
        }
      }
      // The batch's Tag pointers are settled; timers may now tear down
      // sessions/connections without any stale-pointer hazard.
      ExpireTimers(loop);
      // Batch done: no stale Tag pointer can be pending, free for real.
      loop.conn_graveyard.clear();
      loop.session_graveyard.clear();
    }
  }
};

AggregationServer::AggregationServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

StatusOr<std::unique_ptr<AggregationServer>> AggregationServer::Start(
    const Options& options) {
  if (options.event_loop_threads < 1) {
    return InvalidArgumentError("event_loop_threads must be >= 1");
  }
  if (options.max_frame_bytes < 1 || options.read_chunk_bytes < 1) {
    return InvalidArgumentError("frame and read chunk sizes must be >= 1");
  }
  if (options.idle_timeout_ms < 0) {
    return InvalidArgumentError("idle_timeout_ms must be >= 0");
  }
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  for (int i = 0; i < options.event_loop_threads; ++i) {
    auto loop = std::make_unique<Impl::Loop>();
    loop->impl = impl.get();
    loop->epoll_fd = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
    if (!loop->epoll_fd) return InternalError("epoll_create1 failed");
    loop->wake_fd =
        UniqueFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!loop->wake_fd) return InternalError("eventfd failed");
    SMM_RETURN_IF_ERROR(EpollCtl(loop->epoll_fd.get(), EPOLL_CTL_ADD,
                                 loop->wake_fd.get(), EPOLLIN,
                                 &loop->wake_tag));
    impl->loops.push_back(std::move(loop));
  }
  for (auto& loop : impl->loops) {
    Impl* raw = impl.get();
    Impl::Loop* raw_loop = loop.get();
    loop->thread = std::thread([raw, raw_loop] { raw->LoopThread(*raw_loop); });
  }
  return std::unique_ptr<AggregationServer>(
      new AggregationServer(std::move(impl)));
}

AggregationServer::~AggregationServer() {
  if (impl_ != nullptr) Stop();
}

void AggregationServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(impl_->stop_mu);
  if (impl_->joined) return;
  impl_->stopping.store(true, std::memory_order_release);
  for (auto& loop : impl_->loops) impl_->Wake(*loop);
  for (auto& loop : impl_->loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  impl_->joined = true;
  // The loops are quiescent; every session without a published result —
  // registered or still sitting in an unexecuted command — fails now, so
  // no WaitForSum caller parks forever.
  std::vector<uint64_t> unfinished;
  {
    std::lock_guard<std::mutex> routes_lock(impl_->routes_mu);
    std::lock_guard<std::mutex> results_lock(impl_->results_mu);
    for (const auto& [id, loop_index] : impl_->routes) {
      (void)loop_index;
      if (impl_->results.find(id) == impl_->results.end()) {
        unfinished.push_back(id);
      }
    }
  }
  for (uint64_t id : unfinished) {
    impl_->PublishResult(
        id, FailedPreconditionError("server stopped before the session "
                                    "finalized"));
  }
  // Destroy sessions and connections (closes every fd).
  for (auto& loop : impl_->loops) {
    loop->conns.clear();
    loop->sessions.clear();
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->commands.clear();
  }
}

StatusOr<AggregationServer::SessionInfo> AggregationServer::OpenSession(
    secagg::SecureAggregator& aggregator, const SessionOptions& options) {
  if (impl_->stopping.load(std::memory_order_acquire)) {
    return FailedPreconditionError("server is stopping");
  }
  // Bind on the caller's thread so the port is known synchronously and a
  // client may connect the moment this returns (connections queue in the
  // listen backlog until the loop registers the listener).
  SMM_ASSIGN_OR_RETURN(UniqueFd listener,
                       ListenLoopback(0, impl_->options.listen_backlog));
  SMM_ASSIGN_OR_RETURN(const uint16_t port, BoundPort(listener.get()));
  SMM_RETURN_IF_ERROR(SetNonBlocking(listener.get()));
  SMM_ASSIGN_OR_RETURN(auto session, secagg::AggregationSession::Open(
                                         aggregator, options.session));

  auto ss = std::make_unique<ServedSession>();
  ss->id = impl_->next_session_id.fetch_add(1, std::memory_order_relaxed);
  ss->listener = std::move(listener);
  ss->session = std::move(session);
  ss->expected = options.expected_contributions;
  if (options.deadline_ms < 0) {
    return InvalidArgumentError("session deadline must be >= 0 ms");
  }
  if (options.deadline_ms > 0) {
    // Measured from here: queueing delay before the loop adopts the
    // session counts against the round, not in its favor.
    ss->has_deadline = true;
    ss->deadline = SteadyClock::now() +
                   std::chrono::milliseconds(options.deadline_ms);
    ss->min_contributions = options.session.min_contributions;
  }
  const uint64_t id = ss->id;

  const size_t loop_index =
      impl_->next_loop.fetch_add(1, std::memory_order_relaxed) %
      impl_->loops.size();
  {
    std::lock_guard<std::mutex> lock(impl_->routes_mu);
    impl_->routes.emplace(id, loop_index);
  }
  impl_->stats.sessions_opened.fetch_add(1, std::memory_order_relaxed);

  Impl* impl = impl_.get();
  Impl::Loop* loop = impl_->loops[loop_index].get();
  // The command owns the session until the loop adopts it.
  auto shared = std::make_shared<std::unique_ptr<ServedSession>>(
      std::move(ss));
  impl_->Post(*loop, [impl, loop, shared] {
    ServedSession* raw = shared->get();
    if (raw == nullptr) return;
    if (!EpollCtl(loop->epoll_fd.get(), EPOLL_CTL_ADD, raw->listener.get(),
                  EPOLLIN, &raw->tag)
             .ok()) {
      impl->PublishResult(raw->id,
                          InternalError("failed to register listener"));
      return;
    }
    loop->sessions.emplace(raw->id, std::move(*shared));
    // Connections may already be waiting in the backlog.
    impl->HandleAccept(*loop, raw);
  });
  // Close the race against Stop: if Stop ran to completion between the
  // `stopping` check above and the Post (loops joined, commands cleared),
  // the registration never executes and Stop's unfinished-session sweep
  // may have run before the route existed — so publish the failure that
  // sweep would have published, or no WaitForSum caller ever wakes.
  {
    std::lock_guard<std::mutex> stop_lock(impl_->stop_mu);
    if (impl_->joined) {
      bool published;
      {
        std::lock_guard<std::mutex> results_lock(impl_->results_mu);
        published = impl_->results.find(id) != impl_->results.end();
      }
      if (!published) {
        impl_->PublishResult(
            id, FailedPreconditionError("server stopped before the session "
                                        "finalized"));
      }
      return FailedPreconditionError("server is stopping");
    }
  }
  return SessionInfo{id, port};
}

Status AggregationServer::FinalizeSession(uint64_t session_id) {
  size_t loop_index;
  {
    std::lock_guard<std::mutex> lock(impl_->routes_mu);
    const auto it = impl_->routes.find(session_id);
    if (it == impl_->routes.end()) {
      return NotFoundError("unknown session id");
    }
    loop_index = it->second;
  }
  if (impl_->stopping.load(std::memory_order_acquire)) {
    return FailedPreconditionError("server is stopping");
  }
  Impl* impl = impl_.get();
  Impl::Loop* loop = impl_->loops[loop_index].get();
  impl_->Post(*loop, [impl, loop, session_id] {
    const auto it = loop->sessions.find(session_id);
    if (it == loop->sessions.end()) return;  // Already finalized/retired.
    ServedSession* ss = it->second.get();
    if (!ss->finalized) impl->FinalizeAndBroadcast(*loop, ss);
  });
  return OkStatus();
}

StatusOr<secagg::SumMsg> AggregationServer::WaitForSum(uint64_t session_id) {
  {
    std::lock_guard<std::mutex> lock(impl_->routes_mu);
    if (impl_->routes.find(session_id) == impl_->routes.end()) {
      return NotFoundError("unknown session id");
    }
  }
  StatusOr<secagg::SumMsg> result = [&]() -> StatusOr<secagg::SumMsg> {
    std::unique_lock<std::mutex> lock(impl_->results_mu);
    impl_->results_cv.wait(lock, [this, session_id] {
      return impl_->results.find(session_id) != impl_->results.end();
    });
    // One-shot: consume the result so a long-running server does not
    // accumulate a SumMsg per completed round.
    auto node = impl_->results.extract(session_id);
    return std::move(node.mapped());
  }();
  {
    std::lock_guard<std::mutex> lock(impl_->routes_mu);
    impl_->routes.erase(session_id);
  }
  return result;
}

ServerStats AggregationServer::Stats() const {
  const auto& s = impl_->stats;
  ServerStats out;
  out.sessions_opened = s.sessions_opened.load(std::memory_order_relaxed);
  out.sessions_completed =
      s.sessions_completed.load(std::memory_order_relaxed);
  out.sessions_failed = s.sessions_failed.load(std::memory_order_relaxed);
  out.connections_accepted =
      s.connections_accepted.load(std::memory_order_relaxed);
  out.connections_dropped =
      s.connections_dropped.load(std::memory_order_relaxed);
  out.frames_delivered = s.frames_delivered.load(std::memory_order_relaxed);
  out.frames_rejected = s.frames_rejected.load(std::memory_order_relaxed);
  out.bytes_read = s.bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = s.bytes_written.load(std::memory_order_relaxed);
  out.sessions_deadline_exceeded =
      s.sessions_deadline_exceeded.load(std::memory_order_relaxed);
  out.sessions_quorum_finalized =
      s.sessions_quorum_finalized.load(std::memory_order_relaxed);
  out.connections_evicted =
      s.connections_evicted.load(std::memory_order_relaxed);
  return out;
}

int AggregationServer::event_loop_threads() const {
  return static_cast<int>(impl_->loops.size());
}

#else  // !SMM_NET_POSIX

struct AggregationServer::Impl {};

AggregationServer::AggregationServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
AggregationServer::~AggregationServer() = default;

StatusOr<std::unique_ptr<AggregationServer>> AggregationServer::Start(
    const Options&) {
  return UnimplementedError("smm::net requires Linux sockets/epoll");
}
void AggregationServer::Stop() {}
StatusOr<AggregationServer::SessionInfo> AggregationServer::OpenSession(
    secagg::SecureAggregator&, const SessionOptions&) {
  return UnimplementedError("smm::net requires Linux sockets/epoll");
}
Status AggregationServer::FinalizeSession(uint64_t) {
  return UnimplementedError("smm::net requires Linux sockets/epoll");
}
StatusOr<secagg::SumMsg> AggregationServer::WaitForSum(uint64_t) {
  return UnimplementedError("smm::net requires Linux sockets/epoll");
}
ServerStats AggregationServer::Stats() const { return ServerStats{}; }
int AggregationServer::event_loop_threads() const { return 0; }

#endif  // SMM_NET_POSIX

// The sharded-round surface is a pure composition of OpenSession /
// WaitForSum plus the secagg merge, so it is platform-independent (on
// non-Linux builds the first OpenSession returns kUnimplemented).

namespace {

/// The SessionOptions one shard worker of a sharded round runs with.
AggregationServer::SessionOptions ShardWorkerOptions(
    const secagg::ShardPlan& plan,
    const AggregationServer::ShardedRoundOptions& options, size_t s) {
  AggregationServer::SessionOptions session_options;
  session_options.session.dim = plan.Width(s);
  session_options.session.modulus = options.modulus;
  session_options.session.tile_rows = options.tile_rows;
  session_options.session.min_contributions = options.min_contributions;
  session_options.expected_contributions = options.expected_contributions;
  session_options.deadline_ms = options.deadline_ms;
  if (plan.shard_count() > 1) {
    session_options.session.expected_shard = plan.Spec(s);
  }
  return session_options;
}

}  // namespace

StatusOr<AggregationServer::ShardedRoundInfo>
AggregationServer::OpenShardedRound(secagg::SecureAggregator& aggregator,
                                    const ShardedRoundOptions& options) {
  SMM_ASSIGN_OR_RETURN(
      secagg::ShardPlan plan,
      secagg::ShardPlan::Create(options.dim, options.shard_count));
  if (options.max_shard_retries < 0) {
    return InvalidArgumentError("max_shard_retries must be >= 0");
  }
  ShardedRoundInfo round{plan, {}, {}, {}, {}, options, &aggregator};
  const size_t shards = plan.shard_count();
  round.shards.reserve(shards);
  round.shard_aggregators.reserve(shards);
  round.collected.resize(shards);
  round.shard_retries.assign(shards, 0);
  for (size_t s = 0; s < shards; ++s) {
    std::unique_ptr<secagg::SecureAggregator> derived;
    if (shards > 1) {
      SMM_ASSIGN_OR_RETURN(derived,
                           aggregator.CreateShardAggregator(s, shards));
    }
    secagg::SecureAggregator& shard_aggregator =
        derived ? *derived : aggregator;
    SMM_ASSIGN_OR_RETURN(
        SessionInfo info,
        OpenSession(shard_aggregator, ShardWorkerOptions(plan, options, s)));
    round.shards.push_back(info);
    round.shard_aggregators.push_back(std::move(derived));
  }
  return round;
}

Status AggregationServer::ReopenShardWorker(ShardedRoundInfo& round,
                                            size_t s) {
  // The spare worker runs over the SAME derived shard aggregator: its
  // fresh stream re-derives the identical per-pair masks from the
  // session seed, so sub-frames the participants already encoded (or
  // byte-identically re-encode) stay valid on the new session.
  secagg::SecureAggregator& shard_aggregator =
      round.shard_aggregators[s] ? *round.shard_aggregators[s] : *round.base;
  SMM_ASSIGN_OR_RETURN(
      round.shards[s],
      OpenSession(shard_aggregator,
                  ShardWorkerOptions(round.plan, round.options, s)));
  return OkStatus();
}

StatusOr<secagg::SumMsg> AggregationServer::WaitForShardedSum(
    ShardedRoundInfo& round) {
  if (round.shards.size() != round.plan.shard_count()) {
    return InvalidArgumentError(
        "sharded round handle does not match its plan");
  }
  if (round.collected.size() != round.shards.size()) {
    round.collected.resize(round.shards.size());
  }
  if (round.shard_retries.size() != round.shards.size()) {
    round.shard_retries.assign(round.shards.size(), 0);
  }
  size_t reopened = 0;
  for (size_t s = 0; s < round.shards.size(); ++s) {
    if (round.collected[s].has_value()) continue;  // Survived a prior wait.
    StatusOr<secagg::SumMsg> shard_sum = WaitForSum(round.shards[s].id);
    if (shard_sum.ok()) {
      round.collected[s] = std::move(*shard_sum);
      continue;
    }
    if (round.options.failure_policy == ShardFailurePolicy::kFailFast ||
        round.shard_retries[s] >= round.options.max_shard_retries) {
      return shard_sum.status();
    }
    ++round.shard_retries[s];
    SMM_RETURN_IF_ERROR(ReopenShardWorker(round, s));
    ++reopened;
  }
  if (reopened > 0) {
    return UnavailableError(
        "failed shard workers were reopened on spare sessions; resend "
        "their sub-frames to the updated ports and wait again");
  }
  std::vector<secagg::PartialSumMsg> partials;
  partials.reserve(round.shards.size());
  uint64_t modulus = 0;
  for (size_t s = 0; s < round.shards.size(); ++s) {
    secagg::SumMsg shard_sum = std::move(*round.collected[s]);
    round.collected[s].reset();
    if (round.shards.size() == 1) return shard_sum;
    modulus = shard_sum.modulus;
    secagg::PartialSumMsg partial;
    partial.modulus = shard_sum.modulus;
    partial.num_contributors = shard_sum.num_contributors;
    partial.shard = round.plan.Spec(s);
    partial.sum = std::move(shard_sum.sum);
    partials.push_back(std::move(partial));
  }
  return secagg::MergePartialSums(std::move(partials), round.plan.dim(),
                                  modulus);
}

}  // namespace smm::net
