#ifndef SMM_MECHANISMS_DGM_MECHANISM_H_
#define SMM_MECHANISMS_DGM_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/rotation_codec.h"
#include "sampling/noise_sampler.h"

namespace smm::mechanisms {

/// The Discrete Gaussian Mixture of Appendix B (Algorithms 11, 12, 14): the
/// same floor/ceil Bernoulli mixture as SMM but with discrete Gaussian noise
/// NZ(0, sigma^2) instead of Skellam. Its privacy analysis (Theorems 8-9)
/// pays an extra tau_n divergence because sums of discrete Gaussians are not
/// discrete Gaussian.
class DiscreteGaussianMixtureNoiser {
 public:
  static StatusOr<DiscreteGaussianMixtureNoiser> Create(
      double sigma,
      sampling::SamplerMode mode = sampling::SamplerMode::kApproximate);

  /// Perturbs one value: floor(x) + Bernoulli(frac) + NZ(0, sigma^2).
  int64_t Perturb(double x, RandomGenerator& rng);

  /// Algorithm 12 (dDGM): independent per-coordinate perturbation.
  std::vector<int64_t> PerturbVector(const std::vector<double>& x,
                                     RandomGenerator& rng);

  /// Allocation-free PerturbVector: Bernoulli rounding phase, then one
  /// discrete-Gaussian SampleBlock into `noise`, summed into `out`.
  /// PerturbVector delegates here (same RNG consumption on both paths).
  void PerturbVectorInto(const std::vector<double>& x, RandomGenerator& rng,
                         std::vector<int64_t>& out,
                         std::vector<int64_t>& noise);

  /// The noise half of PerturbVectorInto on its own, for the fused encode
  /// pipeline's blocked noise sweep (same blockwise RNG-consumption
  /// guarantee as SkellamMixtureNoiser::SampleNoiseBlock).
  void SampleNoiseBlock(size_t n, int64_t* out, RandomGenerator& rng) {
    sampler_.SampleBlock(n, out, rng);
  }

  double sigma() const { return sampler_.sigma(); }

 private:
  explicit DiscreteGaussianMixtureNoiser(
      sampling::DiscreteGaussianSampler sampler)
      : sampler_(std::move(sampler)) {}

  sampling::DiscreteGaussianSampler sampler_;
};

/// DGM applied to federated aggregation (Algorithm 14 + Algorithm 6): same
/// pipeline as SmmMechanism with the noise distribution swapped.
class DgmMechanism final : public RotatedModularMechanism {
 public:
  struct Options {
    size_t dim = 0;
    double gamma = 1.0;
    double c = 1.0;          ///< Mixed-sensitivity clip threshold (Eq. 4).
    double delta_inf = 1.0;  ///< Linf clip bound (Eq. 8 feasibility).
    double sigma = 1.0;      ///< Per-participant discrete Gaussian sigma.
    uint64_t modulus = 256;
    uint64_t rotation_seed = 0;
    bool apply_rotation = true;
    sampling::SamplerMode sampler_mode = sampling::SamplerMode::kApproximate;
  };

  static StatusOr<std::unique_ptr<DgmMechanism>> Create(
      const Options& options);

  const Options& options() const { return options_; }

 protected:
  /// The Algorithm 5 clip followed by the discrete-Gaussian mixture
  /// perturbation of Algorithm 12.
  Status PerturbRotatedInto(RandomGenerator& rng, EncodeWorkspace& workspace,
                            EncodeCounters& counters) override;

 private:
  /// Defined in the .cc: installs the FusedPerturbSpec (Algorithm 5 clip +
  /// discrete-Gaussian noise callback) alongside the member setup.
  DgmMechanism(Options options, RotationCodec codec,
               DiscreteGaussianMixtureNoiser noiser);

  Options options_;
  DiscreteGaussianMixtureNoiser noiser_;
};

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_DGM_MECHANISM_H_
