#include "secagg/modular.h"

#include <cassert>

namespace smm::secagg {

uint64_t ModReduce(int64_t value, uint64_t m) {
  assert(m >= 2);
  const int64_t mod = static_cast<int64_t>(m);
  int64_t r = value % mod;
  if (r < 0) r += mod;
  return static_cast<uint64_t>(r);
}

int64_t CenterLift(uint64_t value, uint64_t m) {
  assert(m >= 2);
  assert(value < m);
  if (value >= m / 2) return static_cast<int64_t>(value) -
                             static_cast<int64_t>(m);
  return static_cast<int64_t>(value);
}

StatusOr<std::vector<uint64_t>> AddMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("AddMod: length mismatch");
  }
  std::vector<uint64_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] + b[i]) % m;
  return out;
}

StatusOr<std::vector<uint64_t>> SubMod(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b,
                                       uint64_t m) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("SubMod: length mismatch");
  }
  std::vector<uint64_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = (a[i] + m - b[i] % m) % m;
  return out;
}

std::vector<uint64_t> ReduceVector(const std::vector<int64_t>& v, uint64_t m) {
  std::vector<uint64_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = ModReduce(v[i], m);
  return out;
}

std::vector<int64_t> LiftVector(const std::vector<uint64_t>& v, uint64_t m) {
  std::vector<int64_t> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = CenterLift(v[i], m);
  return out;
}

}  // namespace smm::secagg
