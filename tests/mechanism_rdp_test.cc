#include "accounting/mechanism_rdp.h"

#include <cmath>

#include <gtest/gtest.h>

namespace smm::accounting {
namespace {

TEST(SkellamNoiseRdpTest, MatchesTheorem4Formula) {
  // tau(alpha) = (1.09 a + 0.91)/2 * c / (2 lambda).
  const RdpCurve curve = SkellamNoiseRdpCurve(100.0, 4.0, 1.0);
  auto tau = curve(3);
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, (1.09 * 3 + 0.91) / 2.0 * 4.0 / 200.0, 1e-12);
}

TEST(SkellamNoiseRdpTest, ComparableToGaussianOfSameVariance) {
  // Theorem 3 discussion: Skellam of variance 2*lambda is within a constant
  // factor of Gaussian RDP alpha*s^2 / (2 * 2lambda).
  const double lambda = 50.0, s2 = 1.0;
  const RdpCurve skellam = SkellamNoiseRdpCurve(lambda, s2, 1.0);
  const RdpCurve gauss = GaussianRdpCurve(1.0, std::sqrt(2.0 * lambda));
  for (int alpha : {2, 4, 8, 16}) {
    const double ts = skellam(alpha).value();
    const double tg = gauss(alpha).value();
    EXPECT_GT(ts, tg);          // Slightly worse than Gaussian...
    EXPECT_LT(ts, 2.0 * tg);    // ...but within a factor of 2.
  }
}

TEST(SkellamNoiseRdpTest, EnforcesOrderConstraint) {
  // alpha < 2 lambda / delta_inf + 1 = 2*5/10 + 1 = 2: alpha = 2 infeasible.
  const RdpCurve curve = SkellamNoiseRdpCurve(5.0, 1.0, 10.0);
  EXPECT_FALSE(curve(2).ok());
  // Large lambda admits all small orders.
  const RdpCurve ok = SkellamNoiseRdpCurve(1000.0, 1.0, 10.0);
  EXPECT_TRUE(ok(2).ok());
}

TEST(SmmRdpTest, MatchesCorollary1Formula) {
  const RdpCurve curve = SmmRdpCurve(200.0, 16.0, 0.0);
  auto tau = curve(5);
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(*tau, (1.2 * 5 + 1.0) / 2.0 * 16.0 / 400.0, 1e-12);
}

TEST(SmmRdpTest, Eq3ConstraintsRejectInfeasibleOrders) {
  // Small n*lambda with large delta_inf violates the quadratic constraint.
  const RdpCurve curve = SmmRdpCurve(10.0, 1.0, 5.0);
  EXPECT_FALSE(curve(10).ok());
}

TEST(SmmMaxDeltaInfTest, SatisfiesBothConstraints) {
  for (double n_lambda : {10.0, 100.0, 1e4, 1e6}) {
    for (int alpha : {2, 4, 8, 32}) {
      const double dinf = SmmMaxDeltaInf(n_lambda, alpha);
      ASSERT_GT(dinf, 0.0);
      const double a = static_cast<double>(alpha);
      EXPECT_LT(a, 2.0 * n_lambda / dinf + 1.0);
      const double quad = 10.9 * a * a - 1.8 * a - 9.1;
      EXPECT_LT(quad, 4.0 * n_lambda / (dinf * dinf));
      // The curve itself must accept this (alpha, delta_inf) pair.
      const RdpCurve curve = SmmRdpCurve(n_lambda, 1.0, dinf);
      EXPECT_TRUE(curve(alpha).ok());
    }
  }
}

TEST(SmmRdpTest, OnlyTwentyPercentWorseThanGaussianLeadingConstant) {
  // Corollary 2 discussion: the SMM multiplier (1.2a+1)/2 vs Gaussian a/2.
  const double n_lambda = 1000.0, c = 1.0;
  const RdpCurve smm = SmmRdpCurve(n_lambda, c, 0.0);
  const RdpCurve gauss = GaussianRdpCurve(1.0, std::sqrt(2.0 * n_lambda));
  for (int alpha : {4, 16, 64}) {
    const double ratio = smm(alpha).value() / gauss(alpha).value();
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.2 + 2.0 / alpha);
  }
}

TEST(DdgTauNTest, DecreasesInSigmaIncreasesInN) {
  EXPECT_GT(DdgTauN(100, 0.5), DdgTauN(100, 1.0));
  EXPECT_GT(DdgTauN(100, 1.0), DdgTauN(100, 2.0));
  EXPECT_GT(DdgTauN(200, 1.0), DdgTauN(100, 1.0));
  EXPECT_EQ(DdgTauN(1, 1.0), 0.0);  // Single client: no divergence.
  EXPECT_LT(DdgTauN(100, 10.0), 1e-100);  // Vanishes for large sigma.
}

TEST(DdgRdpTest, DominatedByGaussianTermForLargeSigma) {
  const int n = 100, d = 1024;
  const double sigma = 10.0, l2sq = 4.0, l1 = 20.0;
  const RdpCurve curve = DdgRdpCurve(n, sigma, l2sq, l1, d);
  for (int alpha : {2, 8, 32}) {
    const double expected = alpha * l2sq / (2.0 * n * sigma * sigma);
    EXPECT_NEAR(curve(alpha).value(), expected, 1e-6 * expected + 1e-30);
  }
}

TEST(DdgRdpTest, TauNCorrectionVisibleForSmallSigma) {
  const int n = 100, d = 1024;
  const RdpCurve curve = DdgRdpCurve(n, 0.5, 4.0, 20.0, d);
  const double base = 2.0 * 4.0 / (2.0 * n * 0.25);
  EXPECT_GT(curve(2).value(), base);  // Correction strictly adds.
}

TEST(DgmRdpTest, MatchesCorollary3Structure) {
  const int n = 100, d = 256;
  const double sigma = 20.0, c = 4.0, l1 = 16.0;
  const RdpCurve curve = DgmRdpCurve(n, sigma, c, l1, d, /*delta_inf=*/1.0);
  auto tau = curve(4);
  ASSERT_TRUE(tau.ok());
  const double base = 1.1 * 4.0 * c / (2.0 * n * sigma * sigma);
  EXPECT_GE(*tau, base);
  EXPECT_LT(*tau, base + 1e-3);
}

TEST(DgmRdpTest, Eq8RejectsTinySigma) {
  // sigma so small that the mixture expansion is invalid at alpha = 8.
  const RdpCurve curve = DgmRdpCurve(2, 0.4, 1.0, 1.0, 16, /*delta_inf=*/5.0);
  EXPECT_FALSE(curve(8).ok());
}

TEST(GaussianRdpTest, LinearInAlpha) {
  const RdpCurve curve = GaussianRdpCurve(2.0, 4.0);
  EXPECT_NEAR(curve(2).value(), 2.0 * 4.0 / 32.0, 1e-12);
  EXPECT_NEAR(curve(8).value(), 4.0 * curve(2).value(), 1e-12);
}

TEST(AgarwalSkellamRdpTest, ReducesToLeadingTermForLargeMu) {
  const double mu = 1e6, l2sq = 4.0, l1 = 64.0;
  const RdpCurve curve = SkellamAgarwalRdpCurve(mu, l2sq, l1);
  const double expected = 8.0 * l2sq / (4.0 * mu);
  EXPECT_NEAR(curve(8).value(), expected, 1e-3 * expected);
}

TEST(AgarwalSkellamRdpTest, L1TermPenalizesSmallMu) {
  // For small mu the correction term (with L1 dependence) is visible —
  // the weakness SMM's clean bound avoids.
  const double mu = 10.0, l2sq = 1.0, l1 = 100.0;
  const RdpCurve with_l1 = SkellamAgarwalRdpCurve(mu, l2sq, l1);
  const RdpCurve no_l1 = SkellamAgarwalRdpCurve(mu, l2sq, 0.0);
  EXPECT_GT(with_l1(4).value(), no_l1(4).value());
}

class NoiseMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(NoiseMonotoneTest, AllCurvesDecreaseWithNoise) {
  const int alpha = GetParam();
  double prev_smm = 1e300, prev_ddg = 1e300, prev_ag = 1e300;
  for (double scale : {10.0, 100.0, 1000.0, 10000.0}) {
    const double smm = SmmRdpCurve(scale, 1.0, 0.0)(alpha).value();
    const double ddg =
        DdgRdpCurve(100, std::sqrt(scale), 1.0, 10.0, 64)(alpha).value();
    const double ag = SkellamAgarwalRdpCurve(scale, 1.0, 10.0)(alpha).value();
    EXPECT_LT(smm, prev_smm);
    EXPECT_LT(ddg, prev_ddg);
    EXPECT_LT(ag, prev_ag);
    prev_smm = smm;
    prev_ddg = ddg;
    prev_ag = ag;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, NoiseMonotoneTest,
                         ::testing::Values(2, 4, 8, 16, 64));

}  // namespace
}  // namespace smm::accounting
