#ifndef SMM_MECHANISMS_CLIPPING_H_
#define SMM_MECHANISMS_CLIPPING_H_

#include <vector>

#include "common/status.h"

namespace smm::mechanisms {

/// The per-coordinate sensitivity contribution of SMM (the summand of
/// Eq. (4)): psi(t) = t^2 + (t - floor(t)) - (t - floor(t))^2 for t = |g_j|.
/// Writing t = k + f with integer k and f in [0, 1), psi(t) = k^2 + (2k+1)f,
/// which is continuous, strictly increasing, and maps [k, k+1) onto
/// [k^2, (k+1)^2) — hence exactly invertible, which is what Algorithm 5
/// exploits.
double SmmSensitivityContribution(double magnitude);

/// Inverse of SmmSensitivityContribution: given w >= 0 returns t >= 0 with
/// psi(t) = w (Algorithm 5 lines 6-8: k = floor(sqrt(w)),
/// f = (w - k^2) / (2k + 1)).
double SmmSensitivityInverse(double w);

/// Algorithm 5: clips g in place so that
///   sum_j psi(|g_j|) <= c   and   ceil(|g_j|) <= delta_inf.
/// Each coordinate is mapped to its sensitivity contribution, the
/// contribution vector is L1-clipped to c, coordinates are mapped back, and
/// finally each is clipped to delta_inf in magnitude. delta_inf should be a
/// positive integer so that the ceil bound is respected; non-integer values
/// are floored (with a minimum of 1).
///
/// Note: line 3 of Algorithm 5 as printed shows "+ (|g|-floor|g|)^2"; the
/// sensitivity bound it must enforce (Eq. (4), Theorem 5) subtracts that
/// term, and only the subtracted form makes lines 6-8 the exact inverse map.
/// We implement the subtracted (correct) form.
Status SmmClip(std::vector<double>& g, double c, double delta_inf);

/// Standard L2 clipping (DPSGD): scales g so that ||g||_2 <= threshold.
void L2Clip(std::vector<double>& g, double threshold);

/// L2 norm helper.
double L2Norm(const std::vector<double>& g);

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_CLIPPING_H_
