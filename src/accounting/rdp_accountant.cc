#include "accounting/rdp_accountant.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/math_util.h"

namespace smm::accounting {

StatusOr<double> RdpToDpEpsilon(int alpha, double tau, double delta) {
  if (alpha < 2) return InvalidArgumentError("alpha must be >= 2");
  if (tau < 0.0) return InvalidArgumentError("tau must be >= 0");
  if (!(delta > 0.0 && delta < 1.0)) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  const double a = static_cast<double>(alpha);
  const double eps = tau + (std::log(1.0 / delta) +
                            (a - 1.0) * std::log(1.0 - 1.0 / a) -
                            std::log(a)) /
                               (a - 1.0);
  return eps;
}

StatusOr<double> PoissonSubsampledRdp(double q, int alpha,
                                      const RdpCurve& curve) {
  if (!(q >= 0.0 && q <= 1.0)) {
    return InvalidArgumentError("sampling rate q must be in [0, 1]");
  }
  if (alpha < 2) return InvalidArgumentError("alpha must be >= 2");
  if (q == 0.0) return 0.0;
  if (q == 1.0) return curve(alpha);

  const double a = static_cast<double>(alpha);
  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);

  std::vector<double> log_terms;
  log_terms.reserve(alpha);
  // l = 0 and l = 1 terms combine into (1-q)^{alpha-1} (alpha q - q + 1).
  log_terms.push_back((a - 1.0) * log_1mq + std::log(a * q - q + 1.0));
  for (int l = 2; l <= alpha; ++l) {
    SMM_ASSIGN_OR_RETURN(const double tau_l, curve(l));
    log_terms.push_back(LogBinomial(alpha, l) +
                        (a - static_cast<double>(l)) * log_1mq +
                        static_cast<double>(l) * log_q +
                        (static_cast<double>(l) - 1.0) * tau_l);
  }
  const double log_sum = LogSumExp(log_terms);
  // The sum is >= 1 analytically; clamp tiny negative drift from rounding.
  return std::max(0.0, log_sum / (a - 1.0));
}

StatusOr<DpGuarantee> ComputeDpEpsilon(const RdpCurve& curve, double q,
                                       int steps, double delta,
                                       const AccountantOptions& options) {
  if (steps < 1) return InvalidArgumentError("steps must be >= 1");
  if (options.min_alpha < 2 || options.max_alpha < options.min_alpha) {
    return InvalidArgumentError("invalid alpha search range");
  }
  DpGuarantee best;
  best.epsilon = std::numeric_limits<double>::infinity();
  for (int alpha = options.min_alpha; alpha <= options.max_alpha; ++alpha) {
    auto tau_or = PoissonSubsampledRdp(q, alpha, curve);
    if (!tau_or.ok()) continue;  // Order infeasible for this mechanism.
    const double tau_total = static_cast<double>(steps) * *tau_or;
    auto eps_or = RdpToDpEpsilon(alpha, tau_total, delta);
    if (!eps_or.ok()) continue;
    if (*eps_or < best.epsilon) {
      best.epsilon = *eps_or;
      best.best_alpha = alpha;
      best.tau_at_best_alpha = tau_total;
    }
  }
  if (!std::isfinite(best.epsilon)) {
    return FailedPreconditionError(
        "no feasible Renyi order in the search range");
  }
  return best;
}

}  // namespace smm::accounting
