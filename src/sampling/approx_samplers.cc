#include "sampling/approx_samplers.h"

#include <cassert>
#include <cmath>

namespace smm::sampling {

namespace {

/// log(Gamma(x)) for x > 0.5 via the Lanczos approximation (g = 7, 9
/// terms; ~1e-13 relative accuracy). Self-contained on purpose: glibc's
/// lgamma() writes the process-global `signgam`, a data race when the
/// parallel encode shards sample concurrently.
double LogGammaPositive(double x) {
  static constexpr double kCoeffs[9] = {
      0.99999999999980993,     676.5203681218851,     -1259.1392167224028,
      771.32342877765313,      -176.61502916214059,   12.507343278686905,
      -0.13857109526572012,    9.9843695780195716e-6, 1.5056327351493116e-7};
  constexpr double kHalfLog2Pi = 0.91893853320467274178;
  double series = kCoeffs[0];
  for (int i = 1; i < 9; ++i) {
    series += kCoeffs[i] / (x + static_cast<double>(i) - 1.0);
  }
  const double t = x + 6.5;
  return kHalfLog2Pi + (x - 0.5) * std::log(t) - t + std::log(series);
}

}  // namespace

int64_t SamplePoissonApprox(double lambda, RandomGenerator& rng) {
  assert(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  // Self-contained Poisson sampler (no libstdc++ distribution objects): the
  // standard ones route through glibc lgamma(), whose global-signgam write
  // races under concurrent EncodeBatch shards, and their internal Gaussian
  // caches leak state across draws, breaking stream determinism.
  if (lambda < 10.0) {
    // Knuth's multiplication method: expected lambda + 1 uniforms.
    const double threshold = std::exp(-lambda);
    int64_t k = 0;
    double product = rng.UniformDouble();
    while (product > threshold) {
      ++k;
      product *= rng.UniformDouble();
    }
    return k;
  }
  // Hormann's transformed rejection with squeeze (PTRS), the standard
  // O(1) method for lambda >= 10 (used by NumPy).
  const double log_lambda = std::log(lambda);
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    const double u = rng.UniformDouble() - 0.5;
    const double v = rng.UniformDouble();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<int64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * log_lambda - lambda - LogGammaPositive(k + 1.0)) {
      return static_cast<int64_t>(k);
    }
  }
}

int64_t SampleSkellamApprox(double lambda, RandomGenerator& rng) {
  // Named draws pin the order; operand order of `-` is unspecified.
  const int64_t first = SamplePoissonApprox(lambda, rng);
  const int64_t second = SamplePoissonApprox(lambda, rng);
  return first - second;
}

int64_t SampleDiscreteGaussianApprox(double sigma, RandomGenerator& rng) {
  assert(sigma > 0.0);
  const int64_t t = static_cast<int64_t>(std::floor(sigma)) + 1;
  const double sigma2 = sigma * sigma;
  const double geo_success = 1.0 - std::exp(-1.0);
  while (true) {
    // Discrete Laplace proposal with scale t, floating-point variant of
    // SampleDiscreteLaplaceExact.
    const int64_t u =
        static_cast<int64_t>(rng.UniformDouble() * static_cast<double>(t));
    if (!rng.Bernoulli(std::exp(-static_cast<double>(u) / t))) continue;
    int64_t v = 0;
    while (!rng.Bernoulli(geo_success)) ++v;
    const int64_t x = u + t * v;
    const bool negative = rng.Bernoulli(0.5);
    if (negative && x == 0) continue;
    const int64_t y = negative ? -x : x;
    const double dev = std::abs(static_cast<double>(y)) - sigma2 / t;
    if (rng.Bernoulli(std::exp(-dev * dev / (2.0 * sigma2)))) return y;
  }
}

}  // namespace smm::sampling
