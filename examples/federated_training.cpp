// End-to-end federated learning with differential privacy (Algorithm 3).
//
// Trains the paper's MLP architecture (scaled down) on the synthetic
// MNIST-like task under three regimes — non-private, central DPSGD, and
// SMM over secure aggregation at a one-byte-per-parameter communication
// budget (m = 2^8) — and prints the accuracy trajectory of each.
//
// Build & run:  ./build/examples/federated_training
#include <cstdio>

#include "data/synthetic.h"
#include "fl/fl_config.h"
#include "fl/trainer.h"
#include "nn/mlp.h"

namespace {

smm::StatusOr<smm::fl::TrainingResult> TrainWith(
    smm::fl::MechanismKind mechanism, const smm::data::SyntheticSplit& split) {
  smm::nn::Mlp::Options model_options;
  model_options.input_dim = split.train.feature_dim;
  model_options.hidden_dims = {32};
  model_options.num_classes = split.train.num_classes;
  model_options.init_seed = 3;
  SMM_ASSIGN_OR_RETURN(auto model, smm::nn::Mlp::Create(model_options));

  smm::fl::FlConfig config;
  config.mechanism = mechanism;
  config.epsilon = 3.0;
  config.delta = 1e-5;
  config.expected_batch_size = 32;
  config.rounds = 150;
  config.gamma = 64.0;
  config.modulus = 1 << 8;  // One byte per model parameter.
  config.learning_rate = 0.01;
  config.eval_every = 30;
  config.seed = 11;

  SMM_ASSIGN_OR_RETURN(auto trainer,
                       smm::fl::FederatedTrainer::Create(
                           std::move(model), split.train, split.test,
                           config));
  return trainer->Train();
}

}  // namespace

int main() {
  smm::data::SyntheticImageOptions data_options =
      smm::data::MnistLikeOptions();
  data_options.num_train = 1500;
  data_options.num_test = 500;
  data_options.feature_dim = 64;
  auto split = smm::data::MakeSyntheticImages(data_options);
  if (!split.ok()) {
    std::printf("data generation failed: %s\n",
                split.status().ToString().c_str());
    return 1;
  }

  const smm::fl::MechanismKind regimes[] = {
      smm::fl::MechanismKind::kNonPrivate,
      smm::fl::MechanismKind::kCentralDpSgd,
      smm::fl::MechanismKind::kSmm,
  };

  for (smm::fl::MechanismKind kind : regimes) {
    std::printf("=== %s ===\n", smm::fl::MechanismKindName(kind));
    auto result = TrainWith(kind, *split);
    if (!result.ok()) {
      std::printf("  training failed: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    if (kind != smm::fl::MechanismKind::kNonPrivate) {
      std::printf("  noise parameter: %.4f   achieved epsilon: %.3f\n",
                  result->noise_parameter, result->guarantee.epsilon);
    }
    for (const auto& record : result->history) {
      std::printf("  round %4d  train loss %.3f  test accuracy %.1f%%\n",
                  record.round, record.train_loss,
                  100.0 * record.test_accuracy);
    }
    std::printf("  final accuracy: %.1f%%  (modular wraps: %lld)\n\n",
                100.0 * result->final_accuracy,
                static_cast<long long>(result->total_overflows));
  }
  std::printf(
      "Expected: SMM tracks DPSGD within a few points at epsilon = 3 with\n"
      "one byte of communication per parameter (Figure 2(d) regime).\n");
  return 0;
}
