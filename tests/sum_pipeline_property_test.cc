// Property sweeps over the full distributed-sum pipeline: for every integer
// mechanism and a grid of (gamma, m), the decoded estimate must be close to
// the exact sum when noise is small and the modulus ample, and the error
// must track the predicted noise variance.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synthetic.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/dgm_mechanism.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "secagg/secure_aggregator.h"

namespace smm::mechanisms {
namespace {

struct PipelineCase {
  double gamma;
  int log2_m;
};

class SumPipelineTest : public ::testing::TestWithParam<PipelineCase> {
 protected:
  void SetUp() override {
    RandomGenerator data_rng(55);
    inputs_ = data::SampleSphereDataset(20, 256, 1.0, data_rng);
  }
  std::vector<std::vector<double>> inputs_;
};

TEST_P(SumPipelineTest, SmmTracksExactSumWithTinyNoise) {
  const auto [gamma, log2_m] = GetParam();
  SmmMechanism::Options o;
  o.dim = 256;
  o.gamma = gamma;
  o.c = gamma * gamma;
  o.delta_inf = std::max(8.0, gamma);
  o.lambda = 0.05;
  o.modulus = 1ULL << log2_m;
  o.rotation_seed = 9;
  auto mech = SmmMechanism::Create(o);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(7);
  secagg::IdealAggregator agg;
  auto estimate = RunDistributedSum(**mech, agg, inputs_, rng);
  ASSERT_TRUE(estimate.ok());
  // Per-dim error: (n * (2 lambda + 1/4 Bernoulli)) / gamma^2 plus clip
  // bias; allow 5x headroom. No wraps expected at these moduli.
  const double predicted =
      20.0 * (2.0 * 0.05 + 0.25) / (gamma * gamma);
  EXPECT_LT(MeanSquaredErrorPerDimension(*estimate, inputs_).value(),
            5.0 * predicted + 0.02);
  EXPECT_EQ((*mech)->overflow_count(), 0);
}

TEST_P(SumPipelineTest, DgmMatchesSmmErrorAtEqualVariance) {
  const auto [gamma, log2_m] = GetParam();
  RandomGenerator rng(13);
  secagg::IdealAggregator agg;

  SmmMechanism::Options so;
  so.dim = 256;
  so.gamma = gamma;
  so.c = gamma * gamma;
  so.delta_inf = std::max(8.0, gamma);
  so.lambda = 0.5;  // Variance 1.
  so.modulus = 1ULL << log2_m;
  so.rotation_seed = 9;
  auto smm = SmmMechanism::Create(so);
  ASSERT_TRUE(smm.ok());

  DgmMechanism::Options go;
  go.dim = 256;
  go.gamma = gamma;
  go.c = gamma * gamma;
  go.delta_inf = std::max(8.0, gamma);
  go.sigma = 1.0;  // Variance 1 = 2 * 0.5.
  go.modulus = 1ULL << log2_m;
  go.rotation_seed = 9;
  auto dgm = DgmMechanism::Create(go);
  ASSERT_TRUE(dgm.ok());

  double smm_mse = 0.0, dgm_mse = 0.0;
  constexpr int kReps = 8;
  for (int r = 0; r < kReps; ++r) {
    auto se = RunDistributedSum(**smm, agg, inputs_, rng);
    auto ge = RunDistributedSum(**dgm, agg, inputs_, rng);
    ASSERT_TRUE(se.ok());
    ASSERT_TRUE(ge.ok());
    smm_mse += MeanSquaredErrorPerDimension(*se, inputs_).value() / kReps;
    dgm_mse += MeanSquaredErrorPerDimension(*ge, inputs_).value() / kReps;
  }
  // Same pipeline, same noise variance: errors within 2x of each other.
  EXPECT_LT(smm_mse, 2.0 * dgm_mse + 1e-6);
  EXPECT_LT(dgm_mse, 2.0 * smm_mse + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SumPipelineTest,
    ::testing::Values(PipelineCase{8.0, 16}, PipelineCase{16.0, 16},
                      PipelineCase{16.0, 20}, PipelineCase{64.0, 20},
                      PipelineCase{128.0, 24}));

TEST(SumPipelineFailureInjection, WrongLengthAggregateRejected) {
  SmmMechanism::Options o;
  o.dim = 64;
  o.gamma = 8.0;
  o.c = 64.0;
  o.delta_inf = 8.0;
  o.lambda = 0.5;
  o.modulus = 1 << 16;
  auto mech = SmmMechanism::Create(o);
  ASSERT_TRUE(mech.ok());
  std::vector<uint64_t> wrong(32, 0);
  EXPECT_FALSE((*mech)->DecodeSum(wrong, 1).ok());
}

TEST(SumPipelineFailureInjection, MixedDimensionInputsRejected) {
  SmmMechanism::Options o;
  o.dim = 64;
  o.gamma = 8.0;
  o.c = 64.0;
  o.delta_inf = 8.0;
  o.lambda = 0.5;
  o.modulus = 1 << 16;
  auto mech = SmmMechanism::Create(o);
  ASSERT_TRUE(mech.ok());
  secagg::IdealAggregator agg;
  RandomGenerator rng(3);
  std::vector<std::vector<double>> inputs = {std::vector<double>(64, 0.1),
                                             std::vector<double>(32, 0.1)};
  EXPECT_FALSE(RunDistributedSum(**mech, agg, inputs, rng).ok());
}

TEST(SumPipelineFailureInjection, EmptyInputsRejected) {
  SmmMechanism::Options o;
  o.dim = 64;
  o.gamma = 8.0;
  o.c = 64.0;
  o.delta_inf = 8.0;
  o.lambda = 0.5;
  o.modulus = 1 << 16;
  auto mech = SmmMechanism::Create(o);
  ASSERT_TRUE(mech.ok());
  secagg::IdealAggregator agg;
  RandomGenerator rng(3);
  EXPECT_FALSE(RunDistributedSum(**mech, agg, {}, rng).ok());
}

TEST(SumPipelineDeterminism, SessionPathMatchesBatchPathAtEveryThreadCount) {
  // The wire path RunDistributedSum now runs (tile-encode -> mask -> frame
  // -> session -> stream) must be bit-identical to the former
  // batch-materializing pipeline (encode everything, AggregateParallel,
  // decode) at thread counts {1, 2, 8}, for both aggregators.
  SmmMechanism::Options o;
  o.dim = 128;
  o.gamma = 16.0;
  o.c = 256.0;
  o.delta_inf = 16.0;
  o.lambda = 1.0;
  o.modulus = 1 << 16;
  o.rotation_seed = 8;
  RandomGenerator data_rng(21);
  // More inputs than one session tile per thread count, so tiling kicks in.
  const auto inputs = data::SampleSphereDataset(100, 128, 1.0, data_rng);

  // The batch path, composed by hand exactly as RunDistributedSum used to.
  auto run_batch = [&](secagg::SecureAggregator& agg) {
    auto mech = SmmMechanism::Create(o).value();
    RandomGenerator rng(42);
    std::vector<RandomGenerator> streams =
        MakeParticipantStreams(rng, inputs.size());
    auto encoded = EncodeBatchParallel(*mech, inputs, streams).value();
    auto zm_sum = agg.Aggregate(encoded, mech->modulus()).value();
    return mech->DecodeSum(zm_sum, static_cast<int>(inputs.size())).value();
  };
  auto run_session = [&](secagg::SecureAggregator& agg, int threads) {
    auto mech = SmmMechanism::Create(o).value();
    RandomGenerator rng(42);
    ThreadPool pool(threads);
    return RunDistributedSum(*mech, agg, inputs, rng, &pool).value();
  };

  secagg::IdealAggregator ideal;
  const std::vector<double> batch = run_batch(ideal);
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(run_session(ideal, threads), batch) << threads << " threads";
  }

  // Masked protocol: masking + frame transport + deferred recovery must
  // cancel to the identical estimate.
  secagg::MaskedAggregator::Options mo;
  mo.num_participants = static_cast<int>(inputs.size());
  mo.threshold = 50;
  mo.session_seed = 2;
  auto masked = secagg::MaskedAggregator::Create(mo).value();
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(run_session(*masked, threads), batch) << threads << " threads";
  }
}

TEST(SumPipelineFailureInjection, MseValidatesDimensions) {
  // Ragged rows and estimate/input mismatches must surface as errors, not
  // out-of-bounds reads or silent zero-padding.
  const std::vector<std::vector<double>> inputs = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_FALSE(MeanSquaredErrorPerDimension({}, inputs).ok());
  EXPECT_FALSE(MeanSquaredErrorPerDimension({1.0}, inputs).ok());
  EXPECT_FALSE(MeanSquaredErrorPerDimension({1.0, 2.0, 3.0}, inputs).ok());
  EXPECT_FALSE(MeanSquaredErrorPerDimension({1.0, 2.0}, {}).ok());
  EXPECT_FALSE(
      MeanSquaredErrorPerDimension({1.0, 2.0}, {{1.0, 2.0}, {3.0}}).ok());
  EXPECT_FALSE(MeanSquaredErrorPerDimension({}, {{}, {}}).ok());
  auto mse = MeanSquaredErrorPerDimension({4.0, 7.0}, inputs);
  ASSERT_TRUE(mse.ok());
  EXPECT_DOUBLE_EQ(*mse, 0.5);  // ((4-4)^2 + (7-6)^2) / 2.
}

TEST(SumPipelineDeterminism, SameSeedSameEstimate) {
  SmmMechanism::Options o;
  o.dim = 128;
  o.gamma = 16.0;
  o.c = 256.0;
  o.delta_inf = 16.0;
  o.lambda = 1.0;
  o.modulus = 1 << 16;
  o.rotation_seed = 4;
  RandomGenerator data_rng(5);
  const auto inputs = data::SampleSphereDataset(10, 128, 1.0, data_rng);
  secagg::IdealAggregator agg;

  auto run = [&]() {
    auto mech = SmmMechanism::Create(o).value();
    RandomGenerator rng(77);
    return RunDistributedSum(*mech, agg, inputs, rng).value();
  };
  const std::vector<double> a = run();
  const std::vector<double> b = run();
  EXPECT_EQ(a, b);
}

TEST(SumPipelineAggregatorEquivalence, MaskedAndIdealAgree) {
  // The DP mechanisms must be oblivious to which SecAgg implementation runs
  // underneath: same inputs + same mechanism RNG -> identical estimates.
  SmmMechanism::Options o;
  o.dim = 32;
  o.gamma = 16.0;
  o.c = 256.0;
  o.delta_inf = 16.0;
  o.lambda = 1.0;
  o.modulus = 1 << 12;
  o.rotation_seed = 4;
  RandomGenerator data_rng(6);
  const auto inputs = data::SampleSphereDataset(4, 32, 1.0, data_rng);

  auto run = [&](secagg::SecureAggregator& agg) {
    auto mech = SmmMechanism::Create(o).value();
    RandomGenerator rng(99);
    return RunDistributedSum(*mech, agg, inputs, rng).value();
  };
  secagg::IdealAggregator ideal;
  secagg::MaskedAggregator::Options mo;
  mo.num_participants = 4;
  mo.threshold = 2;
  mo.session_seed = 1;
  auto masked = secagg::MaskedAggregator::Create(mo).value();
  EXPECT_EQ(run(ideal), run(*masked));
}

}  // namespace
}  // namespace smm::mechanisms
