// Integration test for the Section 6.1 distributed sum estimation pipeline:
// calibrate every mechanism to the same (epsilon, delta) target and verify
// the relative error ordering the paper reports in Figure 1.
#include <cmath>

#include <gtest/gtest.h>

#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/conditional_rounding.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"
#include "secagg/secure_aggregator.h"

namespace smm {
namespace {

constexpr int kN = 50;
constexpr size_t kDim = 4096;
constexpr double kEpsilon = 3.0;
constexpr double kDelta = 1e-5;

double RunSmm(const std::vector<std::vector<double>>& inputs, double gamma,
              uint64_t modulus, RandomGenerator& rng) {
  const double c = gamma * gamma;
  auto calib = accounting::CalibrateSmm(c, 1.0, 1, kEpsilon, kDelta).value();
  mechanisms::SmmMechanism::Options o;
  o.dim = kDim;
  o.gamma = gamma;
  o.c = c;
  o.delta_inf = accounting::SmmMaxDeltaInf(calib.noise_parameter,
                                           calib.guarantee.best_alpha);
  o.lambda = calib.noise_parameter / kN;
  o.modulus = modulus;
  o.rotation_seed = 1;
  auto mech = mechanisms::SmmMechanism::Create(o).value();
  secagg::IdealAggregator agg;
  auto estimate =
      mechanisms::RunDistributedSum(*mech, agg, inputs, rng).value();
  return mechanisms::MeanSquaredErrorPerDimension(estimate, inputs).value();
}

double RunDdg(const std::vector<std::vector<double>>& inputs, double gamma,
              uint64_t modulus, RandomGenerator& rng) {
  const double bound = mechanisms::ConditionalRoundingNormBound(
      gamma, 1.0, kDim, std::exp(-0.5));
  const double l2sq = bound * bound;
  const double l1 = std::min(std::sqrt(static_cast<double>(kDim)) * bound,
                             l2sq);
  auto calib = accounting::CalibrateDdg(kN, l2sq, l1, kDim, 1.0, 1, kEpsilon,
                                        kDelta)
                   .value();
  mechanisms::DdgMechanism::Options o;
  o.dim = kDim;
  o.gamma = gamma;
  o.l2_bound = 1.0;
  o.sigma = calib.noise_parameter;
  o.modulus = modulus;
  o.rotation_seed = 1;
  auto mech = mechanisms::DdgMechanism::Create(o).value();
  secagg::IdealAggregator agg;
  auto estimate =
      mechanisms::RunDistributedSum(*mech, agg, inputs, rng).value();
  return mechanisms::MeanSquaredErrorPerDimension(estimate, inputs).value();
}

double RunGaussian(const std::vector<std::vector<double>>& inputs,
                   RandomGenerator& rng) {
  auto calib =
      accounting::CalibrateGaussian(1.0, 1.0, 1, kEpsilon, kDelta).value();
  mechanisms::CentralGaussianBaseline::Options o;
  o.sigma = calib.noise_parameter;
  o.l2_bound = 1.0;
  mechanisms::CentralGaussianBaseline baseline(o);
  auto estimate = baseline.PerturbedSum(inputs, rng).value();
  return mechanisms::MeanSquaredErrorPerDimension(estimate, inputs).value();
}

class DistributedSumIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RandomGenerator data_rng(1234);
    inputs_ = data::SampleSphereDataset(kN, kDim, 1.0, data_rng);
  }
  std::vector<std::vector<double>> inputs_;
};

TEST_F(DistributedSumIntegrationTest, SmmBeatsDdgAtSmallBitwidth) {
  // Figure 1(a) regime: m = 2^10, gamma = 4. DDG's conditionally-rounded
  // sensitivity (~d/4) forces orders of magnitude more noise.
  RandomGenerator rng(7);
  const double smm_mse = RunSmm(inputs_, 4.0, 1 << 10, rng);
  const double ddg_mse = RunDdg(inputs_, 4.0, 1 << 10, rng);
  EXPECT_LT(smm_mse * 20.0, ddg_mse)
      << "smm=" << smm_mse << " ddg=" << ddg_mse;
}

TEST_F(DistributedSumIntegrationTest, GapClosesAtLargeBitwidth) {
  // Figure 1(e) regime: m = 2^18, gamma = 1024. DDG approaches the
  // continuous Gaussian baseline and SMM is within a small factor.
  RandomGenerator rng(11);
  const double smm_mse = RunSmm(inputs_, 1024.0, 1 << 18, rng);
  const double ddg_mse = RunDdg(inputs_, 1024.0, 1 << 18, rng);
  EXPECT_LT(ddg_mse, smm_mse * 10.0);
  EXPECT_LT(smm_mse, ddg_mse * 10.0);
}

TEST_F(DistributedSumIntegrationTest, ContinuousGaussianIsTheFloor) {
  RandomGenerator rng(13);
  const double gauss_mse = RunGaussian(inputs_, rng);
  const double smm_mse = RunSmm(inputs_, 1024.0, 1 << 18, rng);
  // SMM at fine quantization sits within a small constant of the central
  // baseline (the 1.2 factor of Corollary 2 plus quantization).
  EXPECT_LT(gauss_mse, smm_mse * 1.5);
  EXPECT_LT(smm_mse, gauss_mse * 5.0);
}

TEST_F(DistributedSumIntegrationTest, SmmErrorMatchesCorollary2Prediction) {
  // Corollary 2: Err = (1.2 a + 1)/2 * c / tau / gamma^2 ... per dimension:
  // (2 n lambda + sum p(1-p)) / gamma^2. Check the measured error is within
  // a factor of ~3 of the noise-variance prediction.
  RandomGenerator rng(17);
  const double gamma = 64.0;
  const double c = gamma * gamma;
  auto calib = accounting::CalibrateSmm(c, 1.0, 1, kEpsilon, kDelta).value();
  mechanisms::SmmMechanism::Options o;
  o.dim = kDim;
  o.gamma = gamma;
  o.c = c;
  o.delta_inf = accounting::SmmMaxDeltaInf(calib.noise_parameter,
                                           calib.guarantee.best_alpha);
  o.lambda = calib.noise_parameter / kN;
  o.modulus = 1ULL << 32;  // No overflow.
  o.rotation_seed = 3;
  auto mech = mechanisms::SmmMechanism::Create(o).value();
  secagg::IdealAggregator agg;
  auto estimate =
      mechanisms::RunDistributedSum(*mech, agg, inputs_, rng).value();
  const double mse =
      mechanisms::MeanSquaredErrorPerDimension(estimate, inputs_).value();
  const double noise_var_per_dim =
      2.0 * calib.noise_parameter / (gamma * gamma);
  EXPECT_LT(mse, 3.0 * (noise_var_per_dim + 0.25 * kN / (gamma * gamma)));
  EXPECT_GT(mse, 0.3 * noise_var_per_dim);
}

}  // namespace
}  // namespace smm
