#ifndef SMM_MECHANISMS_SMM_MECHANISM_H_
#define SMM_MECHANISMS_SMM_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/rotation_codec.h"
#include "sampling/noise_sampler.h"

namespace smm::mechanisms {

/// The mixture perturbation at the heart of SMM (Algorithms 1 and 2): each
/// real value x is mapped to floor(x) + Bernoulli(x - floor(x)) and then
/// perturbed with symmetric Skellam noise Sk(lambda, lambda). The output is
/// integer-valued and an unbiased estimator of x; across one participant it
/// follows the mixture of two shifted Skellam distributions analyzed in
/// Section 3.
class SkellamMixtureNoiser {
 public:
  /// lambda > 0 is the per-participant Skellam parameter.
  static StatusOr<SkellamMixtureNoiser> Create(
      double lambda,
      sampling::SamplerMode mode = sampling::SamplerMode::kApproximate);

  /// Perturbs a single value (one iteration of Algorithm 1's loop body).
  int64_t Perturb(double x, RandomGenerator& rng);

  /// Perturbs every coordinate independently (Algorithm 2 / dSMM).
  std::vector<int64_t> PerturbVector(const std::vector<double>& x,
                                     RandomGenerator& rng);

  /// Allocation-free PerturbVector: the rounding phase (floor + Bernoulli,
  /// per coordinate) runs first, then one Skellam SampleBlock fills `noise`,
  /// and the two are summed into `out`. PerturbVector delegates here, so the
  /// scalar and batched encode paths consume the RNG identically.
  void PerturbVectorInto(const std::vector<double>& x, RandomGenerator& rng,
                         std::vector<int64_t>& out,
                         std::vector<int64_t>& noise);

  /// The noise half of PerturbVectorInto on its own — n i.i.d. Skellam
  /// draws into out[0..n) — exposed for the fused encode pipeline's blocked
  /// noise sweep. SampleBlock draws scalars in order, so blockwise calls
  /// consume the rng identically to one whole-vector call.
  void SampleNoiseBlock(size_t n, int64_t* out, RandomGenerator& rng) {
    sampler_.SampleBlock(n, out, rng);
  }

  double lambda() const { return sampler_.lambda(); }

 private:
  explicit SkellamMixtureNoiser(sampling::SkellamSampler sampler)
      : sampler_(std::move(sampler)) {}

  sampling::SkellamSampler sampler_;
};

/// The full Skellam Mixture Mechanism for federated/distributed aggregation
/// (Algorithms 4 and 6): random rotation, scaling by gamma, the
/// mixed-sensitivity clipping of Algorithm 5, mixture-Skellam perturbation,
/// and reduction into Z_m; plus the server-side decoding. Rotation, wrap,
/// decode, and the batched encode loop live in RotatedModularMechanism; this
/// class contributes only the Algorithm 5 clip + mixture perturbation.
class SmmMechanism final : public RotatedModularMechanism {
 public:
  struct Options {
    size_t dim = 0;           ///< Power-of-two dimension.
    double gamma = 1.0;       ///< Scale parameter.
    double c = 1.0;           ///< Mixed-sensitivity clip threshold (Eq. 4).
    double delta_inf = 1.0;   ///< Linf clip bound from Eq. (3).
    double lambda = 1.0;      ///< Per-participant Skellam parameter.
    uint64_t modulus = 256;   ///< SecAgg modulus m.
    uint64_t rotation_seed = 0;
    bool apply_rotation = true;
    sampling::SamplerMode sampler_mode = sampling::SamplerMode::kApproximate;
  };

  static StatusOr<std::unique_ptr<SmmMechanism>> Create(
      const Options& options);

  const Options& options() const { return options_; }

 protected:
  /// Lines 3-10 of Algorithm 4: the mixed-sensitivity clip of Algorithm 5
  /// followed by the Skellam mixture perturbation.
  Status PerturbRotatedInto(RandomGenerator& rng, EncodeWorkspace& workspace,
                            EncodeCounters& counters) override;

 private:
  /// Defined in the .cc: installs the FusedPerturbSpec (Algorithm 5 clip +
  /// Skellam noise callback) alongside the member setup.
  SmmMechanism(Options options, RotationCodec codec,
               SkellamMixtureNoiser noiser);

  Options options_;
  SkellamMixtureNoiser noiser_;
};

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_SMM_MECHANISM_H_
