// Secure aggregation walkthrough: pairwise masking, mask cancellation, and
// dropout recovery via Shamir secret sharing — the substrate Algorithm 3
// treats as a black box.
//
// Eight participants mask their integer vectors; the server only ever sees
// masked inputs (uniform garbage individually) yet recovers the exact
// modular sum. Two participants then drop out, and the server unmasks the
// surviving sum by reconstructing the dropped pairs' seeds from the
// survivors' Shamir shares.
//
// Build & run:  ./build/examples/secure_aggregation
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "secagg/modular.h"
#include "secagg/secure_aggregator.h"

int main() {
  constexpr int kParticipants = 8;
  constexpr int kThreshold = 5;  // Any 5 survivors can unmask.
  constexpr uint64_t kModulus = 1 << 16;
  constexpr size_t kDim = 6;

  smm::secagg::MaskedAggregator::Options options;
  options.num_participants = kParticipants;
  options.threshold = kThreshold;
  options.session_seed = 2024;
  auto aggregator = smm::secagg::MaskedAggregator::Create(options);
  if (!aggregator.ok()) {
    std::printf("setup failed: %s\n",
                aggregator.status().ToString().c_str());
    return 1;
  }

  // Private integer inputs (already in Z_m, e.g. quantized gradients).
  smm::RandomGenerator rng(5);
  std::vector<std::vector<uint64_t>> inputs(kParticipants);
  for (auto& v : inputs) {
    v.resize(kDim);
    for (auto& x : v) x = rng.UniformUint64(100);
  }

  std::printf("participant 0 raw input:    ");
  for (uint64_t v : inputs[0]) std::printf("%6llu", (unsigned long long)v);
  std::printf("\n");

  auto masked0 = (*aggregator)->MaskInput(0, inputs[0], kModulus);
  std::printf("participant 0 masked input: ");
  for (uint64_t v : *masked0) std::printf("%6llu", (unsigned long long)v);
  std::printf("   <- uniform in Z_m, reveals nothing\n\n");

  // --- Round 1: everyone participates. ---
  auto full_sum = (*aggregator)->Aggregate(inputs, kModulus);
  std::vector<uint64_t> exact(kDim, 0);
  for (const auto& v : inputs) {
    for (size_t j = 0; j < kDim; ++j) exact[j] = (exact[j] + v[j]) % kModulus;
  }
  std::printf("full-participation sum:  ");
  for (uint64_t v : *full_sum) std::printf("%6llu", (unsigned long long)v);
  std::printf("\nexact sum:               ");
  for (uint64_t v : exact) std::printf("%6llu", (unsigned long long)v);
  std::printf("   -> masks cancelled exactly\n\n");

  // --- Round 2: participants 2 and 6 drop out mid-protocol. ---
  const std::vector<int> survivors = {0, 1, 3, 4, 5, 7};
  std::vector<std::vector<uint64_t>> masked;
  for (int i : survivors) {
    auto mi = (*aggregator)->MaskInput(i, inputs[static_cast<size_t>(i)],
                                       kModulus);
    masked.push_back(std::move(*mi));
  }
  auto surviving_sum =
      (*aggregator)->UnmaskSum(masked, survivors, kDim, kModulus);
  if (!surviving_sum.ok()) {
    std::printf("unmask failed: %s\n",
                surviving_sum.status().ToString().c_str());
    return 1;
  }
  std::vector<uint64_t> exact_surviving(kDim, 0);
  for (int i : survivors) {
    for (size_t j = 0; j < kDim; ++j) {
      exact_surviving[j] =
          (exact_surviving[j] + inputs[static_cast<size_t>(i)][j]) % kModulus;
    }
  }
  std::printf("participants 2 and 6 dropped out; Shamir recovery kicks in\n");
  std::printf("survivors' unmasked sum: ");
  for (uint64_t v : *surviving_sum) {
    std::printf("%6llu", (unsigned long long)v);
  }
  std::printf("\nexact survivors' sum:    ");
  for (uint64_t v : exact_surviving) {
    std::printf("%6llu", (unsigned long long)v);
  }
  std::printf("\n");
  return 0;
}
