#include "net/frame_reassembler.h"

#include <algorithm>
#include <utility>

#include "secagg/transport.h"

namespace smm::net {

using secagg::kFrameHeaderBytes;
using secagg::kFrameOverheadBytes;
using secagg::kMaxPayloadBytes;
using secagg::kWireVersion;
using secagg::kWireVersionSharded;

FrameReassembler::FrameReassembler(size_t max_frame_bytes)
    : max_frame_bytes_(std::min(max_frame_bytes, kMaxPayloadBytes)) {}

StatusOr<size_t> FrameReassembler::ValidateHeader(size_t at) const {
  static constexpr uint8_t kMagic[4] = {'S', 'M', 'M', '1'};
  const uint8_t* h = buffer_.data() + at;
  for (int i = 0; i < 4; ++i) {
    if (h[i] != kMagic[i]) {
      return DataLossError("byte stream desynchronized: bad frame magic");
    }
  }
  if (h[4] != kWireVersion && h[4] != kWireVersionSharded) {
    return DataLossError(
        "byte stream desynchronized: unsupported wire version");
  }
  // Byte 5 is the message type; unknown types are a frame-level concern
  // (DecodeFrame rejects them) — the length prefix still frames the bytes,
  // so the stream stays in sync and the connection survives.
  if (h[6] != 0 || h[7] != 0) {
    return DataLossError(
        "byte stream desynchronized: reserved frame bytes not zero");
  }
  uint32_t payload_len = 0;
  for (int b = 3; b >= 0; --b) {
    payload_len = (payload_len << 8) | h[8 + b];
  }
  if (payload_len > max_frame_bytes_) {
    return DataLossError("frame payload exceeds the stream's size limit");
  }
  return kFrameOverheadBytes + static_cast<size_t>(payload_len);
}

Status FrameReassembler::Ingest(ByteSpan bytes) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Peel off every complete frame the buffer now holds. `start` tracks the
  // consumed prefix so a multi-frame chunk compacts the buffer once at the
  // end, not once per frame.
  size_t start = 0;
  while (buffer_.size() - start >= kFrameHeaderBytes) {
    auto total = ValidateHeader(start);
    if (!total.ok()) {
      error_ = total.status();
      buffer_.clear();
      return error_;
    }
    if (buffer_.size() - start < *total) break;  // Payload still in flight.
    const auto begin = buffer_.begin() + static_cast<ptrdiff_t>(start);
    frames_.emplace_back(begin, begin + static_cast<ptrdiff_t>(*total));
    start += *total;
  }
  if (start > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(start));
  }
  return OkStatus();
}

std::optional<std::vector<uint8_t>> FrameReassembler::NextFrame() {
  if (frames_.empty()) return std::nullopt;
  std::vector<uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

}  // namespace smm::net
