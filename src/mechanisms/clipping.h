#ifndef SMM_MECHANISMS_CLIPPING_H_
#define SMM_MECHANISMS_CLIPPING_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace smm::mechanisms {

/// The per-coordinate sensitivity contribution of SMM (the summand of
/// Eq. (4)): psi(t) = t^2 + (t - floor(t)) - (t - floor(t))^2 for t = |g_j|.
/// Writing t = k + f with integer k and f in [0, 1), psi(t) = k^2 + (2k+1)f,
/// which is continuous, strictly increasing, and maps [k, k+1) onto
/// [k^2, (k+1)^2) — hence exactly invertible, which is what Algorithm 5
/// exploits.
double SmmSensitivityContribution(double magnitude);

/// Inverse of SmmSensitivityContribution: given w >= 0 returns t >= 0 with
/// psi(t) = w (Algorithm 5 lines 6-8: k = floor(sqrt(w)),
/// f = (w - k^2) / (2k + 1)).
double SmmSensitivityInverse(double w);

/// Algorithm 5: clips g in place so that
///   sum_j psi(|g_j|) <= c   and   ceil(|g_j|) <= delta_inf.
/// Each coordinate is mapped to its sensitivity contribution, the
/// contribution vector is L1-clipped to c, coordinates are mapped back, and
/// finally each is clipped to delta_inf in magnitude. delta_inf should be a
/// positive integer so that the ceil bound is respected; non-integer values
/// are floored (with a minimum of 1).
///
/// Note: line 3 of Algorithm 5 as printed shows "+ (|g|-floor|g|)^2"; the
/// sensitivity bound it must enforce (Eq. (4), Theorem 5) subtracts that
/// term, and only the subtracted form makes lines 6-8 the exact inverse map.
/// We implement the subtracted (correct) form.
Status SmmClip(std::vector<double>& g, double c, double delta_inf);

/// The blocked halves of SmmClip, exposed for the fused encode pipeline so
/// the clip exists exactly once: SmmClip == one SmmClipReduce pass over the
/// whole vector (seeded with 0.0) followed by one SmmClipApply pass with
/// scale = l1 > c ? c / l1 : 1 and dinf = max(1, floor(delta_inf)).
/// Chaining SmmClipReduce block by block — feeding each call the previous
/// running sum — performs the identical addition sequence as one full-vector
/// call, and SmmClipApply is per-element, so blocked and full-vector
/// clipping are bit-identical by construction.
///
/// SmmClipReduce returns l1_so_far plus the contributions
/// SmmSensitivityContribution(g[j]) accumulated in coordinate order.
double SmmClipReduce(const double* g, size_t n, double l1_so_far);

/// Maps each contribution back through SmmSensitivityInverse at the given
/// L1 scale and applies the Linf clip (dinf must already be floored with the
/// minimum of 1 that SmmClip applies). Recomputes the contribution from
/// g[j] — bit-identical to reusing a stored contribution vector, since g is
/// unchanged between the reduce and apply passes.
void SmmClipApply(double* g, size_t n, double scale, double dinf);

/// Standard L2 clipping (DPSGD): scales g so that ||g||_2 <= threshold.
void L2Clip(std::vector<double>& g, double threshold);

/// L2 norm helper.
double L2Norm(const std::vector<double>& g);

/// The blocked half of L2Norm: sum_so_far plus sum_j g[j]^2 accumulated in
/// coordinate order, so chaining blocks reproduces L2Norm's sum exactly
/// (L2Norm == sqrt of the full-vector call seeded with 0.0).
double L2NormSqReduce(const double* g, size_t n, double sum_so_far);

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_CLIPPING_H_
