#include "secagg/modular.h"

#include <gtest/gtest.h>

namespace smm::secagg {
namespace {

TEST(ModReduceTest, NonNegativeValues) {
  EXPECT_EQ(ModReduce(0, 8), 0u);
  EXPECT_EQ(ModReduce(5, 8), 5u);
  EXPECT_EQ(ModReduce(8, 8), 0u);
  EXPECT_EQ(ModReduce(13, 8), 5u);
}

TEST(ModReduceTest, NegativeValues) {
  EXPECT_EQ(ModReduce(-1, 8), 7u);
  EXPECT_EQ(ModReduce(-8, 8), 0u);
  EXPECT_EQ(ModReduce(-13, 8), 3u);
}

TEST(CenterLiftTest, MatchesAlgorithm6Mapping) {
  // Values in {0, ..., m/2 - 1} stay; {m/2, ..., m-1} map to negatives.
  const uint64_t m = 8;
  EXPECT_EQ(CenterLift(0, m), 0);
  EXPECT_EQ(CenterLift(3, m), 3);
  EXPECT_EQ(CenterLift(4, m), -4);
  EXPECT_EQ(CenterLift(7, m), -1);
}

TEST(CenterLiftTest, OddModulusBoundaryStaysPositive) {
  // For odd m the centered window is symmetric, [-(m-1)/2, (m-1)/2], so the
  // boundary value floor(m/2) is the most-positive representative — the old
  // `value >= m / 2` condition lifted it to -(m+1)/2, outside the window.
  EXPECT_EQ(CenterLift(1, 3), 1);
  EXPECT_EQ(CenterLift(2, 3), -1);
  EXPECT_EQ(CenterLift(2, 5), 2);
  EXPECT_EQ(CenterLift(3, 5), -2);
  EXPECT_EQ(CenterLift(4, 5), -1);
}

class WrapRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WrapRoundTripTest, LiftInvertsReduceInCenteredRange) {
  const uint64_t m = GetParam();
  // The representable window for either parity: [-floor(m/2), (m-1)/2].
  const int64_t lo = -static_cast<int64_t>(m / 2);
  const int64_t hi = static_cast<int64_t>((m - 1) / 2);
  for (int64_t v = lo; v <= hi; ++v) {
    EXPECT_EQ(CenterLift(ModReduce(v, m), m), v) << "m=" << m << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, WrapRoundTripTest,
                         ::testing::Values(2, 3, 5, 7, 8, 64, 255, 256, 1023,
                                           1024));

TEST(WrapRoundTripTest, ValuesOutsideRangeWrapIrrecoverably) {
  const uint64_t m = 8;
  // +4 is outside [-4, 4): wraps to -4.
  EXPECT_EQ(CenterLift(ModReduce(4, m), m), -4);
  EXPECT_EQ(CenterLift(ModReduce(-5, m), m), 3);
  // Odd m = 5: +3 is outside [-2, 2] and wraps to -2; -3 wraps to +2.
  EXPECT_EQ(CenterLift(ModReduce(3, 5), 5), -2);
  EXPECT_EQ(CenterLift(ModReduce(-3, 5), 5), 2);
}

TEST(VectorOpsTest, AddSubMod) {
  const std::vector<uint64_t> a = {1, 7, 3};
  const std::vector<uint64_t> b = {2, 5, 6};
  auto sum = AddMod(a, b, 8);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, (std::vector<uint64_t>{3, 4, 1}));
  auto diff = SubMod(a, b, 8);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, (std::vector<uint64_t>{7, 2, 5}));
}

TEST(VectorOpsTest, LengthMismatchRejected) {
  EXPECT_FALSE(AddMod({1}, {1, 2}, 8).ok());
  EXPECT_FALSE(SubMod({1, 2}, {1}, 8).ok());
}

TEST(VectorOpsTest, ReduceAndLiftVectors) {
  const std::vector<int64_t> v = {-3, 0, 3, -1};
  const std::vector<uint64_t> reduced = ReduceVector(v, 8);
  EXPECT_EQ(reduced, (std::vector<uint64_t>{5, 0, 3, 7}));
  EXPECT_EQ(LiftVector(reduced, 8), v);
}

}  // namespace
}  // namespace smm::secagg
