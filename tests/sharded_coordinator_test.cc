// Sharded-round correctness pins: a round split across K shard workers and
// tree-reduced by the coordinator must be bit-identical to the unsharded
// AggregationSession for every shard count, thread count, arrival order,
// dropout pattern, and modulus (including the wrap-prone prime 2^64 - 59);
// the K = 1 path must be byte-identical on the wire; and MergePartialSums
// must reject overlapping or gapped range tilings.
#include "secagg/sharded_coordinator.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/shard_plan.h"
#include "secagg/transport.h"

namespace smm::secagg {
namespace {

constexpr uint64_t kPrime64 = 18446744073709551557ULL;  // 2^64 - 59.

std::vector<int> TestThreadCounts() {
  std::vector<int> counts = {1, 2, 8};
  if (const char* env = std::getenv("SMM_THREADS")) {
    const int t = std::atoi(env);
    if (t > 0 && std::find(counts.begin(), counts.end(), t) == counts.end()) {
      counts.push_back(t);
    }
  }
  return counts;
}

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

/// Exact per-coordinate modular sum of `senders`' inputs — the ground truth
/// every protocol path must reproduce bit for bit.
std::vector<uint64_t> PlainSum(const std::vector<std::vector<uint64_t>>& inputs,
                               const std::vector<int>& senders, uint64_t m) {
  std::vector<uint64_t> sum(inputs[0].size(), 0);
  for (const int p : senders) {
    const auto& v = inputs[static_cast<size_t>(p)];
    for (size_t j = 0; j < sum.size(); ++j) {
      sum[j] = AddMod(sum[j], v[j] % m, m);
    }
  }
  return sum;
}

/// One full sharded round over the loopback transport: the `senders` encode
/// sharded contributions, every sub-frame is delivered in a deterministic
/// shuffle of (sender, shard) order, and the coordinator merge returns the
/// round SumMsg.
StatusOr<SumMsg> RunShardedRound(
    SecureAggregator& aggregator,
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<int>& senders, size_t shard_count, uint64_t m,
    ThreadPool* pool, uint64_t shuffle_seed) {
  ShardedCoordinator::Options options;
  options.dim = inputs[0].size();
  options.modulus = m;
  options.shard_count = shard_count;
  options.pool = pool;
  options.tile_rows = 4;
  SMM_ASSIGN_OR_RETURN(auto round,
                       ShardedCoordinator::Open(aggregator, options));

  std::vector<std::vector<uint8_t>> frames;
  for (const int p : senders) {
    SMM_ASSIGN_OR_RETURN(
        auto sub_frames,
        round->EncodeShardedContribution(p, inputs[static_cast<size_t>(p)]));
    for (auto& frame : sub_frames) frames.push_back(std::move(frame));
  }
  // Deterministic Fisher-Yates shuffle: arrivals interleave across
  // participants and shards.
  RandomGenerator rng(shuffle_seed);
  for (size_t i = frames.size(); i > 1; --i) {
    std::swap(frames[i - 1],
              frames[static_cast<size_t>(rng.UniformUint64(i))]);
  }
  InMemoryTransport transport;
  for (size_t i = 0; i < frames.size(); ++i) {
    SMM_RETURN_IF_ERROR(
        transport.Send(static_cast<int>(i), std::move(frames[i])));
  }
  SMM_RETURN_IF_ERROR(round->DrainTransport(transport));
  return round->Finalize();
}

/// The unsharded reference: the pre-shard frame -> session -> stream path.
StatusOr<SumMsg> RunUnshardedRound(
    SecureAggregator& aggregator,
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<int>& senders, uint64_t m, ThreadPool* pool) {
  AggregationSession::Options options;
  options.dim = inputs[0].size();
  options.modulus = m;
  options.pool = pool;
  SMM_ASSIGN_OR_RETURN(auto session,
                       AggregationSession::Open(aggregator, options));
  for (const int p : senders) {
    SMM_ASSIGN_OR_RETURN(
        auto payload,
        aggregator.PrepareContribution(p, inputs[static_cast<size_t>(p)], m,
                                       pool));
    ContributionMsg msg;
    msg.participant_id = p;
    msg.modulus = m;
    msg.payload = std::move(payload);
    SMM_ASSIGN_OR_RETURN(auto frame, EncodeFrame(msg));
    SMM_RETURN_IF_ERROR(session->HandleFrame(frame));
  }
  return session->Finalize();
}

StatusOr<std::unique_ptr<MaskedAggregator>> MakeMasked(int participants,
                                                       int threshold,
                                                       uint64_t seed) {
  MaskedAggregator::Options options;
  options.num_participants = participants;
  options.threshold = threshold;
  options.session_seed = seed;
  return MaskedAggregator::Create(options);
}

// The acceptance property: K in {1, 2, 3, 8} x threads {1, 2, 8} x shuffled
// arrivals x dropouts x moduli including 2^64 - 59, sharded == unsharded
// bit for bit, for both provided aggregators. dim = 53 is divisible by none
// of 2, 3, 8, so every K > 1 point also exercises the uneven ceil/floor
// width split.
TEST(ShardedCoordinatorTest, ShardedBitIdenticalToUnsharded) {
  constexpr int kParticipants = 10;
  constexpr size_t kDim = 53;
  for (const uint64_t m : {uint64_t{1} << 16, kPrime64}) {
    const auto inputs = RandomInputs(kParticipants, kDim, m, /*seed=*/m % 97);
    // The last two participants drop out: they never send any sub-frame,
    // and the masked protocol recovers their leftover masks at Finalize.
    std::vector<int> senders;
    for (int p = 0; p < kParticipants - 2; ++p) senders.push_back(p);
    const std::vector<uint64_t> expected = PlainSum(inputs, senders, m);

    auto masked = MakeMasked(kParticipants, /*threshold=*/5, /*seed=*/m % 89);
    ASSERT_TRUE(masked.ok());
    IdealAggregator ideal;
    SecureAggregator* const aggregators[] = {&ideal, masked->get()};
    for (SecureAggregator* aggregator : aggregators) {
      auto reference =
          RunUnshardedRound(*aggregator, inputs, senders, m, nullptr);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      ASSERT_EQ(reference->sum, expected);
      for (const size_t shards : {1u, 2u, 3u, 8u}) {
        for (const int threads : TestThreadCounts()) {
          ThreadPool pool(threads);
          auto sharded = RunShardedRound(*aggregator, inputs, senders,
                                         shards, m, &pool,
                                         /*shuffle_seed=*/shards * 31 +
                                             static_cast<uint64_t>(threads));
          ASSERT_TRUE(sharded.ok())
              << "m=" << m << " shards=" << shards << " threads=" << threads
              << ": " << sharded.status().ToString();
          EXPECT_EQ(sharded->sum, reference->sum)
              << "m=" << m << " shards=" << shards
              << " threads=" << threads;
          EXPECT_EQ(sharded->num_contributors, reference->num_contributors);
          EXPECT_EQ(sharded->modulus, m);
        }
      }
    }
  }
}

// K = 1 is the pre-shard pipeline byte for byte: the coordinator's encoded
// frames are identical to manual version-1 EncodeFrame output, and the
// round result equals the plain session's.
TEST(ShardedCoordinatorTest, SingleShardFramesByteIdenticalToUnsharded) {
  constexpr uint64_t kModulus = uint64_t{1} << 32;
  constexpr size_t kDim = 24;
  auto masked = MakeMasked(4, /*threshold=*/2, /*seed=*/55);
  ASSERT_TRUE(masked.ok());
  const auto inputs = RandomInputs(4, kDim, kModulus, 7);

  ShardedCoordinator::Options options;
  options.dim = kDim;
  options.modulus = kModulus;
  options.shard_count = 1;
  auto round = ShardedCoordinator::Open(**masked, options);
  ASSERT_TRUE(round.ok());
  for (int p = 0; p < 4; ++p) {
    auto frames = (*round)->EncodeShardedContribution(
        p, inputs[static_cast<size_t>(p)]);
    ASSERT_TRUE(frames.ok());
    ASSERT_EQ(frames->size(), 1u);

    ContributionMsg msg;
    msg.participant_id = p;
    msg.modulus = kModulus;
    auto payload = (*masked)->PrepareContribution(
        p, inputs[static_cast<size_t>(p)], kModulus);
    ASSERT_TRUE(payload.ok());
    msg.payload = std::move(*payload);
    auto manual = EncodeFrame(msg);
    ASSERT_TRUE(manual.ok());
    EXPECT_EQ((*frames)[0], *manual) << "participant " << p;
    ASSERT_TRUE((*round)->HandleFrame((*frames)[0]).ok());
  }
  auto sum = (*round)->Finalize();
  ASSERT_TRUE(sum.ok());
  std::vector<int> all = {0, 1, 2, 3};
  EXPECT_EQ(sum->sum, PlainSum(inputs, all, kModulus));
  EXPECT_EQ(sum->num_contributors, 4u);
}

TEST(ShardedCoordinatorTest, RejectsMoreShardsThanDimensions) {
  IdealAggregator aggregator;
  ShardedCoordinator::Options options;
  options.dim = 4;
  options.modulus = 97;
  options.shard_count = 5;
  EXPECT_EQ(ShardedCoordinator::Open(aggregator, options).status().code(),
            StatusCode::kInvalidArgument);
}

// Each shard worker recovers its own dropouts locally: shards may end up
// with different survivor sets (a participant's sub-frame reached one
// worker but not another), and each range's sum covers exactly the
// participants that worker saw.
TEST(ShardedCoordinatorTest, PerShardDropoutRecoveryWithDifferentSurvivors) {
  constexpr uint64_t kModulus = uint64_t{1} << 16;
  constexpr size_t kDim = 10;  // Shards own [0, 5) and [5, 10).
  constexpr int kParticipants = 6;
  auto masked = MakeMasked(kParticipants, /*threshold=*/3, /*seed=*/91);
  ASSERT_TRUE(masked.ok());
  const auto inputs = RandomInputs(kParticipants, kDim, kModulus, 13);

  ShardedCoordinator::Options options;
  options.dim = kDim;
  options.modulus = kModulus;
  options.shard_count = 2;
  auto round = ShardedCoordinator::Open(**masked, options);
  ASSERT_TRUE(round.ok());

  // Shard 0 hears from {0, 1, 2, 3}; shard 1 from {0, 1, 4, 5}. Encode
  // every participant's sub-frames, deliver only the selected ones.
  const std::vector<int> shard0 = {0, 1, 2, 3};
  const std::vector<int> shard1 = {0, 1, 4, 5};
  for (int p = 0; p < kParticipants; ++p) {
    auto frames = (*round)->EncodeShardedContribution(
        p, inputs[static_cast<size_t>(p)]);
    ASSERT_TRUE(frames.ok());
    ASSERT_EQ(frames->size(), 2u);
    if (std::count(shard0.begin(), shard0.end(), p) != 0) {
      ASSERT_TRUE((*round)->HandleFrame((*frames)[0]).ok());
    }
    if (std::count(shard1.begin(), shard1.end(), p) != 0) {
      ASSERT_TRUE((*round)->HandleFrame((*frames)[1]).ok());
    }
  }
  auto sum = (*round)->Finalize();
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();

  // Each range equals the plain sum over exactly its own survivor set.
  const std::vector<uint64_t> front = PlainSum(inputs, shard0, kModulus);
  const std::vector<uint64_t> back = PlainSum(inputs, shard1, kModulus);
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(sum->sum[j], front[j]) << "coordinate " << j;
    EXPECT_EQ(sum->sum[5 + j], back[5 + j]) << "coordinate " << (5 + j);
  }
  EXPECT_EQ(sum->num_contributors, 4u);  // max over the two ranges.
}

TEST(ShardedCoordinatorTest, RoutingRejectsMismatchedFrames) {
  constexpr uint64_t kModulus = 257;
  IdealAggregator aggregator;

  // An unsharded (version-1) contribution sent to a sharded round.
  ShardedCoordinator::Options sharded_options;
  sharded_options.dim = 8;
  sharded_options.modulus = kModulus;
  sharded_options.shard_count = 2;
  auto sharded = ShardedCoordinator::Open(aggregator, sharded_options);
  ASSERT_TRUE(sharded.ok());
  ContributionMsg plain;
  plain.participant_id = 0;
  plain.modulus = kModulus;
  plain.payload.assign(8, 1);
  auto plain_frame = EncodeFrame(plain);
  ASSERT_TRUE(plain_frame.ok());
  EXPECT_EQ((*sharded)->HandleFrame(*plain_frame).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*sharded)->rejected_frames(), 1u);

  // A sharded sub-frame sent to a single-shard round.
  ShardedCoordinator::Options single_options;
  single_options.dim = 4;
  single_options.modulus = kModulus;
  single_options.shard_count = 1;
  auto single = ShardedCoordinator::Open(aggregator, single_options);
  ASSERT_TRUE(single.ok());
  ContributionMsg sliced;
  sliced.participant_id = 0;
  sliced.modulus = kModulus;
  sliced.payload.assign(4, 1);
  sliced.shard = ShardSpec{0, 2, 0, 4};
  auto sliced_frame = EncodeFrame(sliced);
  ASSERT_TRUE(sliced_frame.ok());
  EXPECT_EQ((*single)->HandleFrame(*sliced_frame).code(),
            StatusCode::kInvalidArgument);

  // A spec whose shard_index addresses a worker the round does not have
  // (well-formed on the wire: index 3 < count 4, but the round has 2).
  ContributionMsg foreign;
  foreign.participant_id = 1;
  foreign.modulus = kModulus;
  foreign.payload.assign(2, 1);
  foreign.shard = ShardSpec{3, 4, 6, 2};
  auto foreign_frame = EncodeFrame(foreign);
  ASSERT_TRUE(foreign_frame.ok());
  EXPECT_EQ((*sharded)->HandleFrame(*foreign_frame).code(),
            StatusCode::kInvalidArgument);
}

TEST(MergePartialSumsTest, SameRangeCohortsCombineAndCountsAdd) {
  constexpr uint64_t kModulus = kPrime64;
  PartialSumMsg a;
  a.modulus = kModulus;
  a.num_contributors = 2;
  a.shard = ShardSpec{0, 1, 0, 3};
  a.sum = {kModulus - 1, 5, 7};
  PartialSumMsg b = a;
  b.num_contributors = 3;
  b.sum = {2, kModulus - 2, 11};
  auto merged = MergePartialSums({a, b}, 3, kModulus);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_contributors, 5u);
  // (m-1 + 2) mod m = 1; (5 + m-2) mod m = 3; 7 + 11 = 18.
  EXPECT_EQ(merged->sum, (std::vector<uint64_t>{1, 3, 18}));
}

TEST(MergePartialSumsTest, RejectsOverlapGapAndModulusMismatch) {
  constexpr uint64_t kModulus = 1000;
  const auto partial = [](uint32_t offset, uint32_t width, uint64_t m) {
    PartialSumMsg p;
    p.modulus = m;
    p.num_contributors = 1;
    p.shard = ShardSpec{0, 4, offset, width};
    p.sum.assign(width, 1);
    return p;
  };
  // Overlap: [0, 4) and [2, 6).
  EXPECT_EQ(MergePartialSums({partial(0, 4, kModulus),
                              partial(2, 4, kModulus)},
                             6, kModulus)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Interior gap: [0, 2) and [4, 6).
  EXPECT_EQ(MergePartialSums({partial(0, 2, kModulus),
                              partial(4, 2, kModulus)},
                             6, kModulus)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Tail gap: [0, 4) alone over dim 6.
  EXPECT_EQ(MergePartialSums({partial(0, 4, kModulus)}, 6, kModulus)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Range past the round dimension.
  EXPECT_EQ(MergePartialSums({partial(4, 4, kModulus)}, 6, kModulus)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Modulus mismatch.
  EXPECT_EQ(MergePartialSums({partial(0, 6, kModulus + 1)}, 6, kModulus)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // The happy tiling those rejections bracket.
  EXPECT_TRUE(MergePartialSums({partial(0, 4, kModulus),
                                partial(4, 2, kModulus)},
                               6, kModulus)
                  .ok());
}

}  // namespace
}  // namespace smm::secagg
