#include "secagg/secure_aggregator.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "secagg/modular.h"

namespace smm::secagg {
namespace {

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

std::vector<uint64_t> ExactSum(const std::vector<std::vector<uint64_t>>& in,
                               uint64_t m) {
  std::vector<uint64_t> sum(in[0].size(), 0);
  for (const auto& v : in) {
    for (size_t j = 0; j < v.size(); ++j) sum[j] = (sum[j] + v[j]) % m;
  }
  return sum;
}

TEST(IdealAggregatorTest, SumsModM) {
  IdealAggregator agg;
  const auto inputs = RandomInputs(5, 16, 256, 1);
  auto sum = agg.Aggregate(inputs, 256);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, ExactSum(inputs, 256));
}

TEST(IdealAggregatorTest, RejectsBadInputs) {
  IdealAggregator agg;
  EXPECT_FALSE(agg.Aggregate({}, 256).ok());
  EXPECT_FALSE(agg.Aggregate({{1, 2}, {3}}, 256).ok());
  EXPECT_FALSE(agg.Aggregate({{1}}, 1).ok());
}

MaskedAggregator::Options BasicOptions(int n, int threshold) {
  MaskedAggregator::Options o;
  o.num_participants = n;
  o.threshold = threshold;
  o.session_seed = 33;
  return o;
}

TEST(MaskedAggregatorTest, CreateValidates) {
  EXPECT_FALSE(MaskedAggregator::Create(BasicOptions(1, 1)).ok());
  EXPECT_FALSE(MaskedAggregator::Create(BasicOptions(4, 0)).ok());
  EXPECT_FALSE(MaskedAggregator::Create(BasicOptions(4, 5)).ok());
  EXPECT_TRUE(MaskedAggregator::Create(BasicOptions(4, 2)).ok());
}

TEST(MaskedAggregatorTest, MatchesIdealSum) {
  auto agg = MaskedAggregator::Create(BasicOptions(6, 3));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 1024;
  const auto inputs = RandomInputs(6, 32, m, 2);
  auto masked_sum = (*agg)->Aggregate(inputs, m);
  ASSERT_TRUE(masked_sum.ok());
  EXPECT_EQ(*masked_sum, ExactSum(inputs, m));
}

TEST(MaskedAggregatorTest, MaskedInputsHideRawValues) {
  auto agg = MaskedAggregator::Create(BasicOptions(4, 2));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 1 << 16;
  std::vector<uint64_t> zeros(64, 0);
  auto masked = (*agg)->MaskInput(0, zeros, m);
  ASSERT_TRUE(masked.ok());
  // An all-zero input must not come out (near-)zero after masking.
  int nonzero = 0;
  for (uint64_t v : *masked) {
    if (v != 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 48);
}

TEST(MaskedAggregatorTest, PairwiseMasksCancelOnlyInFullSum) {
  auto agg = MaskedAggregator::Create(BasicOptions(3, 1));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 1 << 12;
  const auto inputs = RandomInputs(3, 8, m, 3);
  std::vector<std::vector<uint64_t>> masked;
  for (int i = 0; i < 3; ++i) {
    auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
  }
  // Sum of any two masked inputs should NOT equal the corresponding exact
  // partial sum (the unmatched masks remain).
  std::vector<uint64_t> partial(8, 0);
  for (size_t j = 0; j < 8; ++j) {
    partial[j] = (masked[0][j] + masked[1][j]) % m;
  }
  std::vector<uint64_t> exact_partial(8, 0);
  for (size_t j = 0; j < 8; ++j) {
    exact_partial[j] = (inputs[0][j] + inputs[1][j]) % m;
  }
  EXPECT_NE(partial, exact_partial);
}

TEST(MaskedAggregatorTest, DropoutRecoveryReconstructsSum) {
  const int n = 5;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 3));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 4096;
  const size_t dim = 16;
  const auto inputs = RandomInputs(n, dim, m, 4);

  // Participants 1 and 3 drop out AFTER masking is configured but before
  // submitting; survivors are 0, 2, 4.
  const std::vector<int> survivors = {0, 2, 4};
  std::vector<std::vector<uint64_t>> masked;
  for (int i : survivors) {
    auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
  }
  auto sum = (*agg)->UnmaskSum(masked, survivors, dim, m);
  ASSERT_TRUE(sum.ok());

  std::vector<uint64_t> expected(dim, 0);
  for (int i : survivors) {
    for (size_t j = 0; j < dim; ++j) {
      expected[j] = (expected[j] + inputs[static_cast<size_t>(i)][j]) % m;
    }
  }
  EXPECT_EQ(*sum, expected);
}

TEST(MaskedAggregatorTest, TooManyDropoutsFail) {
  auto agg = MaskedAggregator::Create(BasicOptions(5, 4));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 256;
  const auto inputs = RandomInputs(5, 4, m, 5);
  const std::vector<int> survivors = {0, 1};  // Below threshold 4.
  std::vector<std::vector<uint64_t>> masked;
  for (int i : survivors) {
    auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
  }
  EXPECT_FALSE((*agg)->UnmaskSum(masked, survivors, 4, m).ok());
}

TEST(MaskedAggregatorTest, MaskInputValidatesArguments) {
  auto agg = MaskedAggregator::Create(BasicOptions(4, 2));
  ASSERT_TRUE(agg.ok());
  const std::vector<uint64_t> input(8, 1);
  // A zero or unit modulus used to reach `% 0` / degenerate masking.
  EXPECT_FALSE((*agg)->MaskInput(0, input, 0).ok());
  EXPECT_FALSE((*agg)->MaskInput(0, input, 1).ok());
  // Empty inputs carry no dimension to mask.
  EXPECT_FALSE((*agg)->MaskInput(0, {}, 256).ok());
  // Out-of-range participants.
  EXPECT_FALSE((*agg)->MaskInput(-1, input, 256).ok());
  EXPECT_FALSE((*agg)->MaskInput(4, input, 256).ok());
  EXPECT_TRUE((*agg)->MaskInput(3, input, 256).ok());
}

TEST(MaskedAggregatorTest, UnmaskSumValidatesArguments) {
  auto agg = MaskedAggregator::Create(BasicOptions(4, 2));
  ASSERT_TRUE(agg.ok());
  std::vector<std::vector<uint64_t>> masked(3, std::vector<uint64_t>(4, 0));
  const std::vector<int> survivors = {0, 1, 2};
  EXPECT_FALSE((*agg)->UnmaskSum(masked, survivors, 4, 0).ok());
  EXPECT_FALSE((*agg)->UnmaskSum(masked, survivors, 4, 1).ok());
  EXPECT_FALSE((*agg)->UnmaskSum(masked, survivors, 0, 256).ok());
  EXPECT_TRUE((*agg)->UnmaskSum(masked, survivors, 4, 256).ok());
}

TEST(MaskedAggregatorTest, DuplicateSurvivorRejected) {
  auto agg = MaskedAggregator::Create(BasicOptions(4, 2));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 256;
  std::vector<std::vector<uint64_t>> masked(2, std::vector<uint64_t>(4, 0));
  EXPECT_FALSE((*agg)->UnmaskSum(masked, {1, 1}, 4, m).ok());
}

class MaskedAggregatorParamTest
    : public ::testing::TestWithParam<std::pair<int, uint64_t>> {};

TEST_P(MaskedAggregatorParamTest, MatchesIdealAcrossSizesAndModuli) {
  const auto [n, m] = GetParam();
  MaskedAggregator::Options o;
  o.num_participants = n;
  o.threshold = std::max(1, n / 2);
  o.session_seed = static_cast<uint64_t>(n) * m;
  auto agg = MaskedAggregator::Create(o);
  ASSERT_TRUE(agg.ok());
  const auto inputs = RandomInputs(n, 8, m, static_cast<uint64_t>(n) + m);
  auto sum = (*agg)->Aggregate(inputs, m);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, ExactSum(inputs, m));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MaskedAggregatorParamTest,
    ::testing::Values(std::pair<int, uint64_t>{2, 64},
                      std::pair<int, uint64_t>{3, 256},
                      std::pair<int, uint64_t>{8, 1024},
                      std::pair<int, uint64_t>{16, 1 << 18}));

}  // namespace
}  // namespace smm::secagg
