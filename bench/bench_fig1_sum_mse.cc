// Reproduces Figure 1: distributed sum estimation on synthetic unit-sphere
// data, reporting per-dimension MSE for continuous Gaussian, SMM, Skellam,
// DDG, and cpSGD across privacy budgets epsilon in {1..5} and the paper's
// ten (m, gamma) communication settings (subplots a-j).
//
// Expected shape (paper): SMM wins by orders of magnitude at small bitwidths
// (m = 2^10..2^14); DDG/Skellam approach the continuous Gaussian and close
// the gap at m = 2^16..2^18; cpSGD is off the chart everywhere (> 1e4).
//
// Every integer-mechanism run goes over the wire: encode -> ContributionMsg
// frame -> AggregationSession -> streaming sum (see RunDistributedSum), so
// resident memory is one participant tile, independent of n.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "data/synthetic.h"
#include "sum_experiment.h"

namespace smm::bench {
namespace {

struct Subplot {
  const char* name;
  int log2_m;
  double gamma;
};

void Run(Scale scale) {
  // Paper: n = 100, d = 65536. Default: reduced d for runtime; the
  // sensitivity-overhead ratio d/4 vs gamma^2 that drives the figure is
  // preserved (documented in EXPERIMENTS.md).
  const int n = scale == Scale::kFull ? 100 : 50;
  const size_t d = scale == Scale::kFull ? 65536 : 4096;
  const std::vector<double> epsilons =
      scale == Scale::kFast ? std::vector<double>{1.0, 3.0, 5.0}
                            : std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<Subplot> subplots =
      scale == Scale::kFast
          ? std::vector<Subplot>{{"(a)", 10, 4.0}, {"(e)", 18, 1024.0}}
          : std::vector<Subplot>{{"(a)", 10, 4.0},    {"(b)", 12, 16.0},
                                 {"(c)", 14, 64.0},   {"(d)", 16, 256.0},
                                 {"(e)", 18, 1024.0}, {"(f)", 10, 8.0},
                                 {"(g)", 12, 32.0},   {"(h)", 14, 128.0},
                                 {"(i)", 16, 512.0},  {"(j)", 18, 2048.0}};

  std::printf("Figure 1: distributed sum estimation, per-dimension MSE\n");
  std::printf("scale=%s  n=%d  d=%zu  delta=1e-5\n\n", ScaleName(scale), n,
              d);

  RandomGenerator data_rng(1234);
  const auto inputs = data::SampleSphereDataset(n, d, 1.0, data_rng);

  const int threads =
      BenchThreads() == 0 ? ThreadPool::HardwareThreads() : BenchThreads();
  std::unique_ptr<ThreadPool> pool =
      threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;

  for (const Subplot& sp : subplots) {
    SumExperimentConfig cfg;
    cfg.gamma = sp.gamma;
    cfg.modulus = 1ULL << sp.log2_m;
    cfg.pool = pool.get();
    std::printf("--- Figure 1%s: m = 2^%d, gamma = %g ---\n", sp.name,
                sp.log2_m, sp.gamma);
    PrintRow("method \\ eps",
             [&] {
               std::vector<std::string> heads;
               for (double e : epsilons) heads.push_back(FormatSci(e));
               return heads;
             }(),
             14, 12);
    struct Method {
      const char* name;
      double (*run)(const std::vector<std::vector<double>>&,
                    const SumExperimentConfig&, RandomGenerator&);
    };
    const Method methods[] = {
        {"Gaussian", RunSumGaussian},   {"SMM", RunSumSmm},
        {"Skellam", RunSumAgarwalSkellam}, {"DDG", RunSumDdg},
        {"cpSGD", RunSumCpSgd},
    };
    for (const Method& method : methods) {
      std::vector<std::string> cells;
      for (double eps : epsilons) {
        cfg.epsilon = eps;
        RandomGenerator rng(777 + static_cast<uint64_t>(eps * 10));
        const double mse = method.run(inputs, cfg, rng);
        cells.push_back(mse < 0.0 ? "n/a" : FormatSci(mse));
      }
      PrintRow(method.name, cells, 14, 12);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
