#include "net/client.h"

#include <utility>
#include <variant>
#include <vector>

namespace smm::net {

StatusOr<BlockingClient> BlockingClient::Connect(uint16_t port,
                                                 const Options& options) {
  SMM_ASSIGN_OR_RETURN(UniqueFd fd, ConnectLoopback(port));
  return BlockingClient(std::move(fd), options.max_frame_bytes);
}

Status BlockingClient::SendFrame(ByteSpan frame) {
  return SendAll(fd_.get(), frame);
}

Status BlockingClient::SendContribution(const secagg::ContributionMsg& msg) {
  SMM_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                       secagg::EncodeFrame(msg));
  return SendFrame(ByteSpan(frame.data(), frame.size()));
}

Status BlockingClient::SendShares(const secagg::SharesMsg& msg) {
  SMM_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                       secagg::EncodeFrame(msg));
  return SendFrame(ByteSpan(frame.data(), frame.size()));
}

Status BlockingClient::FinishSending() { return ShutdownSend(fd_.get()); }

StatusOr<secagg::SumMsg> BlockingClient::ReadSum() {
  std::vector<uint8_t> chunk(64 * 1024);
  while (true) {
    if (auto frame = reassembler_.NextFrame()) {
      SMM_ASSIGN_OR_RETURN(secagg::WireMessage message,
                           secagg::DecodeFrame(ByteSpan(frame->data(),
                                                        frame->size())));
      auto* sum = std::get_if<secagg::SumMsg>(&message);
      if (sum == nullptr) {
        return InvalidArgumentError(
            "server sent a non-sum frame to a client");
      }
      return std::move(*sum);
    }
    SMM_ASSIGN_OR_RETURN(const size_t n,
                         RecvSome(fd_.get(), chunk.data(), chunk.size()));
    if (n == 0) {
      return DataLossError(
          "connection closed before the sum broadcast arrived");
    }
    SMM_RETURN_IF_ERROR(reassembler_.Ingest(ByteSpan(chunk.data(), n)));
  }
}

}  // namespace smm::net
