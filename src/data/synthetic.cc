#include "data/synthetic.h"

#include <cmath>

namespace smm::data {

namespace {

/// Draws a vector of iid N(0, 1/dim) entries (expected unit squared norm).
std::vector<double> GaussianDirection(int dim, RandomGenerator& rng) {
  std::vector<double> v(static_cast<size_t>(dim));
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
  for (double& x : v) x = rng.Gaussian(0.0, scale);
  return v;
}

void NormalizeToUnit(std::vector<double>& v) {
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
}

Example MakeExample(const std::vector<double>& prototype, int label,
                    double noise_scale, RandomGenerator& rng) {
  Example e;
  e.label = label;
  e.features = prototype;
  // Isotropic per-coordinate noise: the projection of the noise onto any
  // class-difference direction has standard deviation noise_scale, which is
  // what controls class confusion (prototypes are ~sqrt(2) apart).
  for (double& x : e.features) x += rng.Gaussian(0.0, noise_scale);
  return e;
}

}  // namespace

StatusOr<SyntheticSplit> MakeSyntheticImages(
    const SyntheticImageOptions& options) {
  if (options.feature_dim < 1) {
    return InvalidArgumentError("feature_dim must be >= 1");
  }
  if (options.num_classes < 2) {
    return InvalidArgumentError("num_classes must be >= 2");
  }
  if (options.num_train < options.num_classes || options.num_test < 1) {
    return InvalidArgumentError("need at least one example per class");
  }
  if (!(options.noise_scale >= 0.0)) {
    return InvalidArgumentError("noise_scale must be >= 0");
  }
  if (!(options.label_noise >= 0.0 && options.label_noise <= 1.0)) {
    return InvalidArgumentError("label_noise must be in [0, 1]");
  }
  RandomGenerator rng(options.seed);
  std::vector<std::vector<double>> prototypes(
      static_cast<size_t>(options.num_classes));
  for (auto& p : prototypes) {
    p = GaussianDirection(options.feature_dim, rng);
    NormalizeToUnit(p);
  }

  auto fill = [&](Dataset& ds, int count) {
    ds.feature_dim = options.feature_dim;
    ds.num_classes = options.num_classes;
    ds.examples.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      const int label = i % options.num_classes;  // Balanced classes.
      Example e = MakeExample(prototypes[static_cast<size_t>(label)], label,
                              options.noise_scale, rng);
      if (options.label_noise > 0.0 && rng.Bernoulli(options.label_noise)) {
        e.label = static_cast<int>(rng.UniformUint64(
            static_cast<uint64_t>(options.num_classes)));
      }
      ds.examples.push_back(std::move(e));
    }
  };

  SyntheticSplit split;
  fill(split.train, options.num_train);
  fill(split.test, options.num_test);
  return split;
}

SyntheticImageOptions MnistLikeOptions() {
  // Margin sqrt(2)/2 over sigma 0.22 ~ 3.2 sigma per competing class:
  // nearest-centroid accuracy ~98%, matching MNIST's MLP ceiling.
  SyntheticImageOptions o;
  o.noise_scale = 0.22;
  o.seed = 42;
  return o;
}

SyntheticImageOptions FashionLikeOptions() {
  // ~2 sigma margin: accuracy ceiling in the high 80s, matching
  // Fashion-MNIST's MLP ceiling.
  SyntheticImageOptions o;
  o.noise_scale = 0.35;
  o.seed = 4242;
  return o;
}

std::vector<std::vector<double>> SampleSphereDataset(int n, size_t d,
                                                     double radius,
                                                     RandomGenerator& rng) {
  std::vector<std::vector<double>> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<double> v(d);
    for (double& x : v) x = rng.Gaussian(0.0, 1.0);
    NormalizeToUnit(v);
    for (double& x : v) x *= radius;
    points.push_back(std::move(v));
  }
  return points;
}

}  // namespace smm::data
