#ifndef SMM_MECHANISMS_DISTRIBUTED_MECHANISM_H_
#define SMM_MECHANISMS_DISTRIBUTED_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "secagg/secure_aggregator.h"

namespace smm::mechanisms {

/// A distributed-DP mechanism for the sum estimation problem of Section 3.1,
/// split into the participant-side encoding (noise injection + reduction
/// into Z_m; e.g. Algorithm 4) and the server-side decoding of the
/// aggregated Z_m sum (e.g. Algorithm 6). All competitor mechanisms of the
/// paper implement this interface, so the experiment harnesses and the FL
/// trainer are mechanism-agnostic.
class DistributedSumMechanism {
 public:
  virtual ~DistributedSumMechanism() = default;

  /// Participant procedure: perturbs x (length dim()) and returns the
  /// integer vector in Z_m^d destined for secure aggregation.
  virtual StatusOr<std::vector<uint64_t>> EncodeParticipant(
      const std::vector<double>& x, RandomGenerator& rng) = 0;

  /// Server procedure: converts the aggregated Z_m sum into an unbiased
  /// estimate of sum_i x_i. num_participants is the count that contributed.
  virtual StatusOr<std::vector<double>> DecodeSum(
      const std::vector<uint64_t>& zm_sum, int num_participants) = 0;

  /// The SecAgg modulus m (per-dimension communication of log2(m) bits).
  virtual uint64_t modulus() const = 0;

  /// The (power-of-two) dimension the mechanism operates in.
  virtual size_t dim() const = 0;

  /// Coordinates whose encoded value fell outside [-m/2, m/2) across all
  /// EncodeParticipant calls since Reset — the modular wrap-around events
  /// that destroy utility at small bitwidths (Section 6.2).
  virtual int64_t overflow_count() const { return 0; }
  virtual void ResetOverflowCount() {}
};

/// Runs the full pipeline: encodes every input, aggregates through
/// `aggregator`, and decodes. Returns the estimated sum (same length as the
/// inputs).
StatusOr<std::vector<double>> RunDistributedSum(
    DistributedSumMechanism& mechanism, secagg::SecureAggregator& aggregator,
    const std::vector<std::vector<double>>& inputs, RandomGenerator& rng);

/// Mean squared error per dimension between an estimate and the exact sum of
/// `inputs` — the Err_M metric of Section 3.1.
double MeanSquaredErrorPerDimension(
    const std::vector<double>& estimate,
    const std::vector<std::vector<double>>& inputs);

}  // namespace smm::mechanisms

#endif  // SMM_MECHANISMS_DISTRIBUTED_MECHANISM_H_
