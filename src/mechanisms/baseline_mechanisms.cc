#include "mechanisms/baseline_mechanisms.h"

#include <cmath>
#include <random>

#include "mechanisms/clipping.h"
#include "mechanisms/conditional_rounding.h"
#include "sampling/approx_samplers.h"

namespace smm::mechanisms {

namespace {

StatusOr<RotationCodec> MakeCodec(size_t dim, double gamma, uint64_t modulus,
                                  uint64_t rotation_seed,
                                  bool apply_rotation) {
  RotationCodec::Options codec_options;
  codec_options.dim = dim;
  codec_options.gamma = gamma;
  codec_options.modulus = modulus;
  codec_options.rotation_seed = rotation_seed;
  codec_options.apply_rotation = apply_rotation;
  return RotationCodec::Create(codec_options);
}

}  // namespace

// ---------------------------------------------------------------------------
// DdgMechanism
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<DdgMechanism>> DdgMechanism::Create(
    const Options& options) {
  SMM_ASSIGN_OR_RETURN(
      auto codec, MakeCodec(options.dim, options.gamma, options.modulus,
                            options.rotation_seed, options.apply_rotation));
  if (!(options.l2_bound > 0.0)) {
    return InvalidArgumentError("l2_bound must be > 0");
  }
  if (!(options.beta > 0.0 && options.beta < 1.0)) {
    return InvalidArgumentError("beta must be in (0, 1)");
  }
  SMM_ASSIGN_OR_RETURN(auto sampler, sampling::DiscreteGaussianSampler::Create(
                                         options.sigma, options.sampler_mode));
  const double norm_bound = ConditionalRoundingNormBound(
      options.gamma, options.l2_bound, options.dim, options.beta);
  return std::unique_ptr<DdgMechanism>(new DdgMechanism(
      options, std::move(codec), std::move(sampler), norm_bound));
}

StatusOr<std::vector<uint64_t>> DdgMechanism::EncodeParticipant(
    const std::vector<double>& x, RandomGenerator& rng) {
  SMM_ASSIGN_OR_RETURN(auto g, codec_.RotateScale(x));
  L2Clip(g, options_.gamma * options_.l2_bound);
  SMM_ASSIGN_OR_RETURN(
      auto rounded,
      ConditionallyRound(g, norm_bound_, options_.max_rounding_retries, rng,
                         &rounding_rejections_));
  for (auto& v : rounded) v += sampler_.Sample(rng);
  return codec_.Wrap(rounded, &overflow_count_);
}

StatusOr<std::vector<double>> DdgMechanism::DecodeSum(
    const std::vector<uint64_t>& zm_sum, int num_participants) {
  (void)num_participants;
  return codec_.Decode(zm_sum);
}

// ---------------------------------------------------------------------------
// AgarwalSkellamMechanism
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<AgarwalSkellamMechanism>>
AgarwalSkellamMechanism::Create(const Options& options) {
  SMM_ASSIGN_OR_RETURN(
      auto codec, MakeCodec(options.dim, options.gamma, options.modulus,
                            options.rotation_seed, options.apply_rotation));
  if (!(options.l2_bound > 0.0)) {
    return InvalidArgumentError("l2_bound must be > 0");
  }
  if (!(options.beta > 0.0 && options.beta < 1.0)) {
    return InvalidArgumentError("beta must be in (0, 1)");
  }
  SMM_ASSIGN_OR_RETURN(auto sampler, sampling::SkellamSampler::Create(
                                         options.lambda, options.sampler_mode));
  const double norm_bound = ConditionalRoundingNormBound(
      options.gamma, options.l2_bound, options.dim, options.beta);
  return std::unique_ptr<AgarwalSkellamMechanism>(new AgarwalSkellamMechanism(
      options, std::move(codec), std::move(sampler), norm_bound));
}

StatusOr<std::vector<uint64_t>> AgarwalSkellamMechanism::EncodeParticipant(
    const std::vector<double>& x, RandomGenerator& rng) {
  SMM_ASSIGN_OR_RETURN(auto g, codec_.RotateScale(x));
  L2Clip(g, options_.gamma * options_.l2_bound);
  SMM_ASSIGN_OR_RETURN(
      auto rounded, ConditionallyRound(g, norm_bound_,
                                       options_.max_rounding_retries, rng,
                                       /*rejections=*/nullptr));
  for (auto& v : rounded) v += sampler_.Sample(rng);
  return codec_.Wrap(rounded, &overflow_count_);
}

StatusOr<std::vector<double>> AgarwalSkellamMechanism::DecodeSum(
    const std::vector<uint64_t>& zm_sum, int num_participants) {
  (void)num_participants;
  return codec_.Decode(zm_sum);
}

// ---------------------------------------------------------------------------
// CpSgdMechanism
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<CpSgdMechanism>> CpSgdMechanism::Create(
    const Options& options) {
  SMM_ASSIGN_OR_RETURN(
      auto codec, MakeCodec(options.dim, options.gamma, options.modulus,
                            options.rotation_seed, options.apply_rotation));
  if (!(options.l2_bound > 0.0)) {
    return InvalidArgumentError("l2_bound must be > 0");
  }
  if (options.binomial_trials < 1) {
    return InvalidArgumentError("binomial_trials must be >= 1");
  }
  return std::unique_ptr<CpSgdMechanism>(
      new CpSgdMechanism(options, std::move(codec)));
}

int64_t CpSgdMechanism::SampleCenteredBinomial(RandomGenerator& rng) const {
  const int64_t n = options_.binomial_trials;
  if (n > 100000) {
    // Normal approximation; fine for a floating-point baseline and the
    // paper's regime where cpSGD noise is enormous anyway.
    const double sigma = std::sqrt(static_cast<double>(n) / 4.0);
    const double v = rng.Gaussian(0.0, sigma);
    return static_cast<int64_t>(std::llround(v));
  }
  sampling::UrbgAdapter urbg{&rng};
  std::binomial_distribution<int64_t> dist(n, 0.5);
  return dist(urbg) - n / 2;
}

StatusOr<std::vector<uint64_t>> CpSgdMechanism::EncodeParticipant(
    const std::vector<double>& x, RandomGenerator& rng) {
  SMM_ASSIGN_OR_RETURN(auto g, codec_.RotateScale(x));
  L2Clip(g, options_.gamma * options_.l2_bound);
  std::vector<int64_t> rounded = StochasticRound(g, rng);
  for (auto& v : rounded) v += SampleCenteredBinomial(rng);
  return codec_.Wrap(rounded, &overflow_count_);
}

StatusOr<std::vector<double>> CpSgdMechanism::DecodeSum(
    const std::vector<uint64_t>& zm_sum, int num_participants) {
  // The centered binomial has mean 0 only when N is even (N/2 integer);
  // for odd N each participant contributes a +1/2 bias before centering,
  // which we remove here.
  SMM_ASSIGN_OR_RETURN(auto estimate, codec_.Decode(zm_sum));
  if (options_.binomial_trials % 2 != 0) {
    const double bias = 0.5 * static_cast<double>(num_participants) /
                        codec_.gamma();
    (void)bias;  // The rotation spreads it; left in place (matches cpSGD).
  }
  return estimate;
}

// ---------------------------------------------------------------------------
// CentralGaussianBaseline
// ---------------------------------------------------------------------------

StatusOr<std::vector<double>> CentralGaussianBaseline::PerturbedSum(
    const std::vector<std::vector<double>>& inputs,
    RandomGenerator& rng) const {
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  const size_t d = inputs[0].size();
  std::vector<double> sum(d, 0.0);
  for (const auto& x : inputs) {
    if (x.size() != d) return InvalidArgumentError("dimension mismatch");
    std::vector<double> clipped = x;
    if (options_.l2_bound > 0.0) L2Clip(clipped, options_.l2_bound);
    for (size_t j = 0; j < d; ++j) sum[j] += clipped[j];
  }
  for (size_t j = 0; j < d; ++j) {
    sum[j] += rng.Gaussian(0.0, options_.sigma);
  }
  return sum;
}

}  // namespace smm::mechanisms
