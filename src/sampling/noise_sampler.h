#ifndef SMM_SAMPLING_NOISE_SAMPLER_H_
#define SMM_SAMPLING_NOISE_SAMPLER_H_

#include <cstdint>
#include <random>

#include "common/random.h"
#include "common/status.h"
#include "sampling/rational.h"

namespace smm::sampling {

/// Whether a noise sampler uses the exact integer-arithmetic algorithms
/// (strict DP; Appendix A) or the fast floating-point approximations
/// (what the paper's experiments use; Section 6).
enum class SamplerMode { kApproximate, kExact };

/// Samples symmetric Skellam noise Sk(lambda, lambda) in either mode.
///
/// In exact mode, lambda is rationalized with denominator <= max_denominator
/// (the sampled distribution is exactly Sk(p/q, p/q) for that rational).
class SkellamSampler {
 public:
  /// Creates a sampler. lambda must be > 0.
  static StatusOr<SkellamSampler> Create(
      double lambda, SamplerMode mode = SamplerMode::kApproximate,
      int64_t max_denominator = 1000000);

  /// Draws one variate. Non-const: the approximate path keeps distribution
  /// state for speed.
  int64_t Sample(RandomGenerator& rng);

  double lambda() const { return lambda_; }
  SamplerMode mode() const { return mode_; }
  /// Variance of the sampled distribution (2 * lambda).
  double variance() const { return 2.0 * lambda_; }

 private:
  SkellamSampler(double lambda, SamplerMode mode, Rational rational_lambda)
      : lambda_(lambda),
        mode_(mode),
        rational_lambda_(rational_lambda),
        poisson_(lambda) {}

  double lambda_;
  SamplerMode mode_;
  Rational rational_lambda_;
  std::poisson_distribution<int64_t> poisson_;
};

/// Samples discrete Gaussian noise N_Z(0, sigma^2) in either mode.
class DiscreteGaussianSampler {
 public:
  /// Creates a sampler. sigma must be > 0.
  static StatusOr<DiscreteGaussianSampler> Create(
      double sigma, SamplerMode mode = SamplerMode::kApproximate,
      int64_t max_denominator = 1000000);

  int64_t Sample(RandomGenerator& rng);

  double sigma() const { return sigma_; }
  SamplerMode mode() const { return mode_; }
  double variance() const { return sigma_ * sigma_; }

 private:
  DiscreteGaussianSampler(double sigma, SamplerMode mode,
                          Rational rational_sigma2)
      : sigma_(sigma), mode_(mode), rational_sigma2_(rational_sigma2) {}

  double sigma_;
  SamplerMode mode_;
  Rational rational_sigma2_;
};

}  // namespace smm::sampling

#endif  // SMM_SAMPLING_NOISE_SAMPLER_H_
