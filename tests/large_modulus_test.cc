// Regression tests for the large-modulus regime (m > 2^63), where the old
// `(acc + v) % m` accumulators silently wrapped uint64_t: every aggregation
// and modular-arithmetic path must now be exact against an unsigned
// __int128 reference at m = 2^64 - 59 — the regime the paper's
// communication analysis (Section 5) sweeps. These tests are the payload of
// the unsigned-integer-overflow sanitizer CI job.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "secagg/modular.h"
#include "secagg/secure_aggregator.h"

namespace smm::secagg {
namespace {

constexpr uint64_t kLargePrime = 18446744073709551557ULL;  // 2^64 - 59.

using uint128 = unsigned __int128;

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

/// Exact reference sum through 128-bit arithmetic.
std::vector<uint64_t> ExactSum128(
    const std::vector<std::vector<uint64_t>>& inputs, uint64_t m) {
  std::vector<uint64_t> sum(inputs[0].size(), 0);
  for (size_t j = 0; j < sum.size(); ++j) {
    uint128 acc = 0;
    for (const auto& v : inputs) acc += v[j];
    sum[j] = static_cast<uint64_t>(acc % m);
  }
  return sum;
}

TEST(LargeModulusTest, ScalarAddSubModMatch128BitReference) {
  RandomGenerator rng(2);
  for (uint64_t m : std::vector<uint64_t>{kLargePrime, ~0ULL,
                                          (1ULL << 63) + 1, 1ULL << 63}) {
    for (int trial = 0; trial < 2000; ++trial) {
      const uint64_t a = rng.UniformUint64(m);
      const uint64_t b = rng.UniformUint64(m);
      EXPECT_EQ(smm::AddMod(a, b, m),
                static_cast<uint64_t>((static_cast<uint128>(a) + b) % m));
      EXPECT_EQ(smm::SubMod(a, b, m),
                static_cast<uint64_t>(
                    (static_cast<uint128>(a) + m - b) % m));
    }
    // Boundary values.
    EXPECT_EQ(smm::AddMod(m - 1, m - 1, m),
              static_cast<uint64_t>((static_cast<uint128>(m - 1) * 2) % m));
    EXPECT_EQ(smm::AddMod(m - 1, 1, m), 0ULL);
    EXPECT_EQ(smm::AddMod(0, 0, m), 0ULL);
    EXPECT_EQ(smm::SubMod(0, m - 1, m), 1ULL);
    EXPECT_EQ(smm::SubMod(m - 1, 0, m), m - 1);
  }
}

TEST(LargeModulusTest, VectorAddSubModAreExact) {
  const uint64_t m = kLargePrime;
  const std::vector<uint64_t> a = {m - 1, m - 2, 0, m / 2, m / 2 + 1};
  const std::vector<uint64_t> b = {m - 1, 5, m - 1, m / 2, m / 2 + 3};
  auto add = AddMod(a, b, m);
  ASSERT_TRUE(add.ok());
  auto sub = SubMod(a, b, m);
  ASSERT_TRUE(sub.ok());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ((*add)[i],
              static_cast<uint64_t>((static_cast<uint128>(a[i]) + b[i]) % m));
    EXPECT_EQ((*sub)[i], static_cast<uint64_t>(
                             (static_cast<uint128>(a[i]) + m - b[i]) % m));
  }
}

TEST(LargeModulusTest, ModReduceAndCenterLiftRoundTrip) {
  const uint64_t m = kLargePrime;
  // ModReduce must fold arbitrary signed values into [0, m) without the
  // int64 cast of m (negative for m > 2^63) the old implementation used.
  EXPECT_EQ(ModReduce(0, m), 0ULL);
  EXPECT_EQ(ModReduce(-1, m), m - 1);
  EXPECT_EQ(ModReduce(INT64_MAX, m), static_cast<uint64_t>(INT64_MAX));
  EXPECT_EQ(ModReduce(INT64_MIN, m), m - (1ULL << 63));
  // Centered lift: values inside [-(m-1)/2, (m-1)/2] round-trip (m is odd,
  // so the centered window is symmetric and includes both boundary
  // representatives). INT64_MAX and INT64_MIN fall *outside* that range for
  // m = 2^64 - 59 — its centered representatives stop about 30 short of the
  // int64 limits — so they lift to their congruent in-range representatives
  // instead.
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456},
                    int64_t{-123456}, static_cast<int64_t>(m / 2 - 1),
                    static_cast<int64_t>(m / 2),
                    -static_cast<int64_t>(m / 2)}) {
    EXPECT_EQ(CenterLift(ModReduce(v, m), m), v) << v;
  }
  EXPECT_EQ(CenterLift(static_cast<uint64_t>(INT64_MAX), m),
            -static_cast<int64_t>(m - static_cast<uint64_t>(INT64_MAX)));
  EXPECT_EQ(CenterLift(m - 1, m), -1);
  EXPECT_EQ(CenterLift(m / 2 - 1, m), static_cast<int64_t>(m / 2 - 1));
  // The odd-m boundary point floor(m/2) is the *positive* end of the
  // centered window (+(m-1)/2), not a negative wrap — the off-by-one the
  // old `value >= m / 2` condition got wrong.
  EXPECT_EQ(CenterLift(m / 2, m), static_cast<int64_t>(m / 2));
  EXPECT_EQ(CenterLift(m / 2 + 1, m), -static_cast<int64_t>(m / 2));
  // m = 2^64 - 1: the largest magnitude is now floor(m/2) = 2^63 - 1 on
  // both sides, so INT64_MIN is no longer reachable.
  EXPECT_EQ(CenterLift((~0ULL) / 2, ~0ULL), INT64_MAX);
  EXPECT_EQ(CenterLift((~0ULL) / 2 + 1, ~0ULL), -INT64_MAX);
}

TEST(LargeModulusTest, CenterLiftMatches128BitReferenceAtBothParities) {
  // Cross-check CenterLift against a signed 128-bit reference — value, then
  // subtract m iff the value exceeds the centered window's positive end —
  // at odd and even moduli spanning the full range, including the wrap-prone
  // m > 2^63 regime and the odd boundary cases of the ISSUE-4 regression.
  RandomGenerator rng(3);
  for (uint64_t m : std::vector<uint64_t>{3, 5, 8, 1024, (1ULL << 63) - 1,
                                          1ULL << 63, (1ULL << 63) + 1,
                                          kLargePrime, ~0ULL - 1, ~0ULL}) {
    const auto reference = [m](uint64_t value) {
      __int128 lifted = static_cast<__int128>(value);
      if (lifted > static_cast<__int128>((m - 1) / 2)) {
        lifted -= static_cast<__int128>(m);
      }
      return static_cast<int64_t>(lifted);
    };
    // Every boundary-adjacent value plus random probes.
    std::vector<uint64_t> probes = {0, 1, m - 1, m - 2, m / 2, (m - 1) / 2};
    if (m / 2 >= 1) probes.push_back(m / 2 - 1);
    if (m / 2 + 1 < m) probes.push_back(m / 2 + 1);
    for (int trial = 0; trial < 200; ++trial) {
      probes.push_back(rng.UniformUint64(m));
    }
    for (uint64_t value : probes) {
      ASSERT_LT(value, m);
      EXPECT_EQ(CenterLift(value, m), reference(value))
          << "m=" << m << " value=" << value;
      // And the round trip the decode path relies on.
      EXPECT_EQ(ModReduce(CenterLift(value, m), m), value)
          << "m=" << m << " value=" << value;
    }
  }
}

TEST(LargeModulusTest, IdealAggregatorIsExact) {
  const uint64_t m = kLargePrime;
  const auto inputs = RandomInputs(23, 17, m, 6);
  const auto expected = ExactSum128(inputs, m);
  IdealAggregator agg;
  auto sequential = agg.Aggregate(inputs, m);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(*sequential, expected);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    auto parallel = agg.AggregateParallel(inputs, m, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*parallel, expected) << threads << " threads";
  }
}

TEST(LargeModulusTest, MaskedAggregatorIsExact) {
  const int n = 7;
  MaskedAggregator::Options o;
  o.num_participants = n;
  o.threshold = 3;
  o.session_seed = 99;
  auto agg = MaskedAggregator::Create(o);
  ASSERT_TRUE(agg.ok());
  const uint64_t m = kLargePrime;
  const size_t dim = 19;
  const auto inputs = RandomInputs(n, dim, m, 8);
  // Full participation: every pairwise mask must cancel exactly even though
  // individual masked coordinates live right below 2^64.
  auto full = (*agg)->Aggregate(inputs, m);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, ExactSum128(inputs, m));

  // Dropout recovery at the same modulus.
  const std::vector<int> survivors = {0, 2, 3, 5, 6};
  std::vector<std::vector<uint64_t>> masked;
  std::vector<std::vector<uint64_t>> survivor_inputs;
  for (int i : survivors) {
    auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
    survivor_inputs.push_back(inputs[static_cast<size_t>(i)]);
  }
  auto recovered = (*agg)->UnmaskSum(masked, survivors, dim, m);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, ExactSum128(survivor_inputs, m));
}

TEST(LargeModulusTest, StreamingAggregationIsExact) {
  const uint64_t m = kLargePrime;
  const size_t dim = 31;
  const auto inputs = RandomInputs(41, dim, m, 9);
  const auto expected = ExactSum128(inputs, m);
  IdealAggregator agg;
  for (int threads : {1, 8}) {
    ThreadPool pool(threads);
    auto stream = agg.Open(dim, m, &pool);
    ASSERT_TRUE(stream.ok());
    for (size_t i = 0; i < inputs.size(); ++i) {
      ASSERT_TRUE((*stream)->Absorb(static_cast<int>(i), inputs[i]).ok());
    }
    auto sum = (*stream)->Finalize();
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(*sum, expected) << threads << " threads";
  }
}

}  // namespace
}  // namespace smm::secagg
