#ifndef SMM_SECAGG_SHARDED_COORDINATOR_H_
#define SMM_SECAGG_SHARDED_COORDINATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/shard_plan.h"
#include "secagg/transport.h"

namespace smm::secagg {

/// Tree-reduces per-shard partial sums into the round's SumMsg. Partials
/// covering the same dimension range are combined with AddModVec (their
/// contributor counts add — same range, disjoint participant cohorts); the
/// distinct ranges must then tile [0, dim) exactly — any overlap or gap is
/// rejected with kInvalidArgument — and are stitched in dim_offset order.
/// The reduction runs as a deterministic binary tree per range, though the
/// order is immaterial for the result: modular addition is exact and
/// commutative, so any reduction shape yields bit-identical sums. The
/// merged num_contributors is the maximum across ranges (when every shard
/// saw the same survivor set — the aligned case — that is exactly the
/// unsharded count). Requires at least one partial; every partial must
/// carry `modulus`.
StatusOr<SumMsg> MergePartialSums(std::vector<PartialSumMsg> partials,
                                  size_t dim, uint64_t modulus);

/// One logical aggregation round run as K shard workers plus a coordinator:
/// each worker is an AggregationSession over one contiguous dimension range
/// of a ShardPlan, and Finalize tree-reduces the workers' partial sums into
/// a SumMsg bit-identical to the unsharded AggregationSession path at every
/// shard count, thread count, and arrival order.
///
/// Per-shard protocol state: each worker aggregates under the instance
/// SecureAggregator::CreateShardAggregator derives for its shard (the
/// masked protocol re-keys per shard and recovers dropouts locally — each
/// worker runs its own Shamir recovery over its own range; see
/// docs/ARCHITECTURE.md for the trust/bandwidth tradeoff). At
/// shard_count == 1 the coordinator degenerates to exactly today's
/// unsharded pipeline: one plain session, version-1 frames, byte-identical
/// wire bytes and sum.
///
/// The coordinator also plays the simulation's client side:
/// EncodeShardedContribution slices a participant's vector per the plan,
/// masks each slice under the owning shard's aggregator, and returns the
/// ready-to-send sub-frames — the same bytes a remote fan-out client would
/// put on K sockets.
///
/// Not thread-safe, like AggregationSession: one server loop drives it
/// (absorption may still shard across the opened pool). The base
/// aggregator must outlive the coordinator.
class ShardedCoordinator {
 public:
  struct Options {
    /// Full round dimension; sliced per the ShardPlan across workers.
    size_t dim = 0;
    uint64_t modulus = 0;
    /// Shard workers. 1 = the unsharded degenerate path. kInvalidArgument
    /// if < 1 or > dim (no empty shards).
    size_t shard_count = 1;
    /// Optional pool, handed to every worker session (not owned).
    ThreadPool* pool = nullptr;
    /// Per-worker tile buffering, as AggregationSession::Options::tile_rows.
    size_t tile_rows = 1;
  };

  static StatusOr<std::unique_ptr<ShardedCoordinator>> Open(
      SecureAggregator& aggregator, const Options& options);

  /// Client side: slices `input` (size dim) per the plan, prepares each
  /// slice under its shard's aggregator (masking for the masked protocol),
  /// and encodes one sub-frame per shard. At shard_count == 1 returns one
  /// unsharded version-1 frame, byte-identical to the pre-shard pipeline.
  StatusOr<std::vector<std::vector<uint8_t>>> EncodeShardedContribution(
      int participant, const std::vector<uint64_t>& input) const;

  /// Routes one frame: sharded contributions go to the worker their
  /// ShardSpec addresses, shares frames are acknowledged, PartialSumMsg
  /// frames (from remote workers) are buffered for the Finalize merge.
  /// Rejected frames never disturb any worker's running sum.
  Status HandleFrame(ByteSpan frame);

  /// Drains `transport` in its order, stopping at the first frame error
  /// (remaining frames stay queued), as AggregationSession::DrainTransport.
  Status DrainTransport(FrameTransport& transport);

  /// Finalizes every worker session, collects their partial sums plus any
  /// buffered remote partials, and tree-reduces them into the round's
  /// SumMsg. The coordinator is consumed.
  StatusOr<SumMsg> Finalize();

  const ShardPlan& plan() const { return plan_; }
  size_t shard_count() const { return plan_.shard_count(); }
  size_t dim() const { return plan_.dim(); }
  uint64_t modulus() const { return modulus_; }

  /// Running-sum bytes resident on shard `shard`'s worker — the per-worker
  /// memory that scales as ~d/K (each worker holds only its range).
  size_t ShardResidentBytes(size_t shard) const {
    return plan_.Width(shard) * sizeof(uint64_t);
  }

  /// Contributions accepted across all workers (sub-frames, not logical
  /// participants: one participant lands K sub-frames at shard count K).
  size_t contributions() const;
  /// Frames rejected by routing or by any worker session.
  size_t rejected_frames() const;
  size_t shares_received() const { return shares_received_; }

 private:
  ShardedCoordinator(ShardPlan plan, uint64_t modulus, ThreadPool* pool,
                     SecureAggregator& base)
      : plan_(plan), modulus_(modulus), pool_(pool), base_(&base) {}

  /// The aggregator serving `shard`: the derived per-shard instance, or the
  /// base when CreateShardAggregator returned nullptr.
  const SecureAggregator& ShardAggregator(size_t shard) const {
    return shard_aggregators_[shard] ? *shard_aggregators_[shard] : *base_;
  }

  ShardPlan plan_;
  uint64_t modulus_;
  ThreadPool* pool_;
  SecureAggregator* base_;
  /// One entry per shard; nullptr = the base aggregator serves that shard.
  std::vector<std::unique_ptr<SecureAggregator>> shard_aggregators_;
  std::vector<std::unique_ptr<AggregationSession>> sessions_;
  std::vector<PartialSumMsg> remote_partials_;
  size_t shares_received_ = 0;
  size_t rejected_frames_ = 0;
};

}  // namespace smm::secagg

#endif  // SMM_SECAGG_SHARDED_COORDINATOR_H_
