// The socket backend property: a SocketTransport round over real loopback
// TCP finalizes to a SumMsg frame BYTE-IDENTICAL to the same round over
// InMemoryTransport — for both aggregators, at every tested thread count,
// under shuffled arrival orders and dropouts — and corrupt frames are
// rejected with the same counts. Plus the byte-stream-specific properties:
// writes split at every byte offset reassemble, desynchronized streams
// drop only their own connection.
#include "net/socket_transport.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "net/socket_util.h"
#include "secagg/secure_aggregator.h"
#include "secagg/session.h"
#include "secagg/transport.h"

namespace smm::net {
namespace {

using secagg::AggregationSession;
using secagg::ContributionMsg;
using secagg::EncodeFrame;
using secagg::FrameTransport;
using secagg::IdealAggregator;
using secagg::InMemoryTransport;
using secagg::MaskedAggregator;
using secagg::SecureAggregator;
using secagg::SumMsg;

std::vector<int> TestThreadCounts() {
  std::vector<int> counts = {1, 2, 8};
  if (const char* env = std::getenv("SMM_THREADS")) {
    const int t = std::atoi(env);
    if (t > 0 && std::find(counts.begin(), counts.end(), t) == counts.end()) {
      counts.push_back(t);
    }
  }
  return counts;
}

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

/// One aggregation round over ANY FrameTransport backend — the whole point
/// of the interface extraction: this function cannot tell loopback memory
/// from loopback TCP. Returns the finalized SumMsg re-encoded as its wire
/// frame, the strongest byte-identity witness.
StatusOr<std::vector<uint8_t>> RunWireRound(
    SecureAggregator& aggregator, FrameTransport& transport,
    const std::vector<std::vector<uint64_t>>& inputs,
    const std::vector<int>& order, uint64_t m, ThreadPool* pool) {
  AggregationSession::Options options;
  options.dim = inputs[0].size();
  options.modulus = m;
  options.pool = pool;
  SMM_ASSIGN_OR_RETURN(auto session,
                       AggregationSession::Open(aggregator, options));
  for (int participant : order) {
    ContributionMsg msg;
    msg.participant_id = participant;
    msg.modulus = m;
    SMM_ASSIGN_OR_RETURN(
        msg.payload,
        aggregator.PrepareContribution(
            participant, inputs[static_cast<size_t>(participant)], m, pool));
    SMM_ASSIGN_OR_RETURN(auto frame, EncodeFrame(msg));
    SMM_RETURN_IF_ERROR(transport.Send(participant, std::move(frame)));
  }
  SMM_RETURN_IF_ERROR(transport.FinishSending());
  SMM_RETURN_IF_ERROR(session->DrainTransport(transport));
  SMM_ASSIGN_OR_RETURN(const SumMsg sum, session->Finalize());
  return EncodeFrame(sum);
}

TEST(SocketTransportTest, IdealRoundIsByteIdenticalToInMemory) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  const uint64_t m = 18446744073709551557ULL;  // 2^64 - 59: wrap-prone.
  const auto inputs = RandomInputs(17, 23, m, 40);
  std::vector<int> order(inputs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  IdealAggregator aggregator;
  for (int threads : TestThreadCounts()) {
    ThreadPool pool(threads);
    InMemoryTransport loopback;
    auto reference =
        RunWireRound(aggregator, loopback, inputs, order, m, &pool);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    auto socket_transport = SocketTransport::Listen();
    ASSERT_TRUE(socket_transport.ok()) << socket_transport.status().ToString();
    auto via_tcp = RunWireRound(aggregator, **socket_transport, inputs, order,
                                m, &pool);
    ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().ToString();
    EXPECT_EQ(*via_tcp, *reference) << threads << " threads";
    EXPECT_EQ((*socket_transport)->dropped_connections(), 0u);
  }
}

TEST(SocketTransportTest, MaskedShuffledRoundIsByteIdenticalToInMemory) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  const int n = 9;
  const uint64_t m = 1ULL << 32;
  const auto inputs = RandomInputs(n, 13, m, 41);
  // Adversarial arrival order — and the socket backend additionally
  // delivers by arrival timing rather than the in-memory lowest-id rule,
  // so this pins the order-independence of the finalized sum itself.
  const std::vector<int> order = {7, 2, 8, 0, 5, 1, 6, 3, 4};
  MaskedAggregator::Options options;
  options.num_participants = n;
  options.threshold = 4;
  options.session_seed = 42;
  for (int threads : TestThreadCounts()) {
    ThreadPool pool(threads);
    auto ref_aggregator = MaskedAggregator::Create(options);
    ASSERT_TRUE(ref_aggregator.ok());
    InMemoryTransport loopback;
    auto reference =
        RunWireRound(**ref_aggregator, loopback, inputs, order, m, &pool);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    auto tcp_aggregator = MaskedAggregator::Create(options);
    ASSERT_TRUE(tcp_aggregator.ok());
    auto socket_transport = SocketTransport::Listen();
    ASSERT_TRUE(socket_transport.ok());
    auto via_tcp = RunWireRound(**tcp_aggregator, **socket_transport, inputs,
                                order, m, &pool);
    ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().ToString();
    EXPECT_EQ(*via_tcp, *reference) << threads << " threads";
  }
}

TEST(SocketTransportTest, MaskedDropoutRoundIsByteIdenticalToInMemory) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  const int n = 8;
  const uint64_t m = 1 << 16;
  const auto inputs = RandomInputs(n, 11, m, 43);
  // Participants 2 and 6 never connect; Finalize-time mask recovery must
  // behave identically over both backends.
  const std::vector<int> survivors = {0, 1, 3, 4, 5, 7};
  MaskedAggregator::Options options;
  options.num_participants = n;
  options.threshold = 4;
  options.session_seed = 44;
  auto ref_aggregator = MaskedAggregator::Create(options);
  ASSERT_TRUE(ref_aggregator.ok());
  InMemoryTransport loopback;
  auto reference =
      RunWireRound(**ref_aggregator, loopback, inputs, survivors, m, nullptr);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto tcp_aggregator = MaskedAggregator::Create(options);
  ASSERT_TRUE(tcp_aggregator.ok());
  auto socket_transport = SocketTransport::Listen();
  ASSERT_TRUE(socket_transport.ok());
  auto via_tcp = RunWireRound(**tcp_aggregator, **socket_transport, inputs,
                              survivors, m, nullptr);
  ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().ToString();
  EXPECT_EQ(*via_tcp, *reference);
}

TEST(SocketTransportTest, CorruptFrameRejectedIdenticallyOnBothBackends) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  const uint64_t m = 1 << 16;
  ContributionMsg msg;
  msg.modulus = m;
  msg.payload = {1, 2, 3, 4};
  auto run = [&](FrameTransport& transport) -> StatusOr<std::vector<uint8_t>> {
    IdealAggregator aggregator;
    AggregationSession::Options options;
    options.dim = 4;
    options.modulus = m;
    SMM_ASSIGN_OR_RETURN(auto session,
                         AggregationSession::Open(aggregator, options));
    // One client streams good, corrupt, good — a single connection (and a
    // single in-memory queue) preserves this order on both backends. The
    // corruption flips a payload byte, so the frame boundary stays intact
    // and only DecodeFrame rejects it.
    msg.participant_id = 0;
    SMM_ASSIGN_OR_RETURN(auto good0, EncodeFrame(msg));
    std::vector<uint8_t> corrupt = good0;
    corrupt[secagg::kFrameHeaderBytes + 3] ^= 0x40;
    msg.participant_id = 1;
    SMM_ASSIGN_OR_RETURN(auto good1, EncodeFrame(msg));
    SMM_RETURN_IF_ERROR(transport.Send(0, std::move(good0)));
    SMM_RETURN_IF_ERROR(transport.Send(0, std::move(corrupt)));
    SMM_RETURN_IF_ERROR(transport.Send(0, std::move(good1)));
    SMM_RETURN_IF_ERROR(transport.FinishSending());
    // The drain stops at the corrupt frame with kDataLoss on both backends.
    const Status drain = session->DrainTransport(transport);
    EXPECT_EQ(drain.code(), StatusCode::kDataLoss);
    SMM_RETURN_IF_ERROR(session->DrainTransport(transport));
    EXPECT_EQ(session->contributions(), 2u);
    EXPECT_EQ(session->rejected_frames(), 1u);
    SMM_ASSIGN_OR_RETURN(const SumMsg sum, session->Finalize());
    return EncodeFrame(sum);
  };
  InMemoryTransport loopback;
  auto reference = run(loopback);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  auto socket_transport = SocketTransport::Listen();
  ASSERT_TRUE(socket_transport.ok());
  auto via_tcp = run(**socket_transport);
  ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().ToString();
  EXPECT_EQ(*via_tcp, *reference);
  // A delivered-but-corrupt frame is not a connection drop.
  EXPECT_EQ((*socket_transport)->dropped_connections(), 0u);
}

// The byte-stream property the in-memory backend cannot even express:
// a client's frames written with a split at EVERY byte offset — partial
// header, partial length prefix, partial payload, partial checksum —
// reassemble into the identical frame sequence.
TEST(SocketTransportTest, WritesSplitAtEveryByteOffsetReassemble) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  ContributionMsg msg;
  msg.modulus = 257;
  msg.payload = {11, 22, 33};
  msg.participant_id = 0;
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  for (size_t split = 0; split <= frame->size(); ++split) {
    auto transport = SocketTransport::Listen();
    ASSERT_TRUE(transport.ok());
    auto fd = ConnectLoopback((*transport)->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(SendAll(fd->get(), ByteSpan(frame->data(), split)).ok());
    ASSERT_TRUE(SendAll(fd->get(), ByteSpan(frame->data() + split,
                                            frame->size() - split))
                    .ok());
    fd->reset();  // Full close: clean EOF at a frame boundary.
    auto received = (*transport)->Receive();
    ASSERT_TRUE(received.has_value()) << "split at byte " << split;
    EXPECT_EQ(*received, *frame) << "split at byte " << split;
    EXPECT_FALSE((*transport)->Receive().has_value());
    EXPECT_EQ((*transport)->dropped_connections(), 0u);
  }
}

TEST(SocketTransportTest, DesyncDropsOnlyItsOwnConnection) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  ContributionMsg msg;
  msg.modulus = 257;
  msg.payload = {5};
  msg.participant_id = 0;
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  auto transport = SocketTransport::Listen();
  ASSERT_TRUE(transport.ok());
  // Connection A streams garbage where a header must be; connection B
  // streams a good frame. Only A is dropped.
  auto bad_fd = ConnectLoopback((*transport)->port());
  ASSERT_TRUE(bad_fd.ok());
  const std::vector<uint8_t> garbage(32, 0xee);
  ASSERT_TRUE(
      SendAll(bad_fd->get(), ByteSpan(garbage.data(), garbage.size())).ok());
  bad_fd->reset();
  auto good_fd = ConnectLoopback((*transport)->port());
  ASSERT_TRUE(good_fd.ok());
  ASSERT_TRUE(
      SendAll(good_fd->get(), ByteSpan(frame->data(), frame->size())).ok());
  good_fd->reset();
  auto received = (*transport)->Receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, *frame);
  EXPECT_FALSE((*transport)->Receive().has_value());
  EXPECT_EQ((*transport)->dropped_connections(), 1u);
}

TEST(SocketTransportTest, EofMidFrameCountsAsDrop) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  ContributionMsg msg;
  msg.modulus = 257;
  msg.payload = {5, 6};
  msg.participant_id = 0;
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  auto transport = SocketTransport::Listen();
  ASSERT_TRUE(transport.ok());
  auto fd = ConnectLoopback((*transport)->port());
  ASSERT_TRUE(fd.ok());
  // The peer dies after half a frame: nothing is deliverable, the drop is
  // counted, and Receive still terminates.
  ASSERT_TRUE(
      SendAll(fd->get(), ByteSpan(frame->data(), frame->size() / 2)).ok());
  fd->reset();
  EXPECT_FALSE((*transport)->Receive().has_value());
  EXPECT_EQ((*transport)->dropped_connections(), 1u);
  // The drained nullopt above must not read as "every frame delivered":
  // the hard loss is latched as kDataLoss for the session to check.
  EXPECT_EQ((*transport)->receive_status().code(), StatusCode::kDataLoss);
}

TEST(SocketTransportTest, ReceiveStatusStaysOkOnCleanStreams) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  ContributionMsg msg;
  msg.modulus = 257;
  msg.payload = {5, 6};
  msg.participant_id = 0;
  auto frame = EncodeFrame(msg);
  ASSERT_TRUE(frame.ok());
  auto transport = SocketTransport::Listen();
  ASSERT_TRUE(transport.ok());
  auto fd = ConnectLoopback((*transport)->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(SendAll(fd->get(), ByteSpan(frame->data(), frame->size())).ok());
  fd->reset();  // Clean EOF on a frame boundary: no loss.
  auto received = (*transport)->Receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, *frame);
  EXPECT_FALSE((*transport)->Receive().has_value());
  EXPECT_TRUE((*transport)->receive_status().ok());
  EXPECT_EQ((*transport)->dropped_connections(), 0u);
}

TEST(SocketTransportTest, SendValidatesAndFinishSendingLatches) {
  if (!NetSupported()) GTEST_SKIP() << "no socket backend on this platform";
  auto transport = SocketTransport::Listen();
  ASSERT_TRUE(transport.ok());
  EXPECT_EQ((*transport)->Send(-1, {1, 2, 3}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*transport)->FinishSending().ok());
  EXPECT_EQ((*transport)->Send(0, {1, 2, 3}).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace smm::net
