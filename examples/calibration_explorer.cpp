// Calibration explorer: prints, for a grid of privacy budgets, the noise
// each mechanism must inject for one release of a d-dimensional sum with
// unit L2 sensitivity at scale gamma — the numbers behind Figure 1, usable
// as a planning tool ("how much bandwidth do I need before DDG becomes
// competitive with SMM?").
//
// Usage: ./build/examples/calibration_explorer [gamma] [d]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "accounting/calibration.h"
#include "accounting/mechanism_rdp.h"
#include "mechanisms/conditional_rounding.h"

int main(int argc, char** argv) {
  const double gamma = argc > 1 ? std::atof(argv[1]) : 16.0;
  const int d = argc > 2 ? std::atoi(argv[2]) : 4096;
  const int n = 100;
  const double delta = 1e-5;

  const double c = gamma * gamma;  // SMM mixed-sensitivity clip.
  const double cond_bound = smm::mechanisms::ConditionalRoundingNormBound(
      gamma, 1.0, static_cast<size_t>(d), std::exp(-0.5));
  const double cond_l2sq = cond_bound * cond_bound;
  const double cond_l1 = std::min(std::sqrt(static_cast<double>(d)) *
                                      cond_bound,
                                  cond_l2sq);

  std::printf("Noise calibration for one d=%d sum release, gamma=%g, "
              "n=%d, delta=%g\n", d, gamma, n, delta);
  std::printf("SMM sensitivity c = %.0f; conditional-rounding L2^2 = %.0f "
              "(the d/4 overhead = %.0f)\n\n", c, cond_l2sq, d / 4.0);
  std::printf("%-8s%18s%18s%16s%14s\n", "eps", "SMM noise var",
              "DDG noise var", "Skellam var", "DDG/SMM");

  for (double eps : {0.5, 1.0, 2.0, 3.0, 5.0, 10.0}) {
    auto smm_result = smm::accounting::CalibrateSmm(c, 1.0, 1, eps, delta);
    auto ddg_result = smm::accounting::CalibrateDdg(n, cond_l2sq, cond_l1, d,
                                                    1.0, 1, eps, delta);
    auto agarwal_result = smm::accounting::CalibrateSkellamAgarwal(
        cond_l2sq, cond_l1, 1.0, 1, eps, delta);
    if (!smm_result.ok() || !ddg_result.ok() || !agarwal_result.ok()) {
      std::printf("%-8g calibration failed\n", eps);
      continue;
    }
    const double smm_var = 2.0 * smm_result->noise_parameter;
    const double ddg_var = n * ddg_result->noise_parameter *
                           ddg_result->noise_parameter;
    const double agarwal_var = 2.0 * agarwal_result->noise_parameter;
    std::printf("%-8g%18.1f%18.1f%16.1f%14.1f\n", eps, smm_var, ddg_var,
                agarwal_var, ddg_var / smm_var);
  }
  std::printf(
      "\nThe DDG/SMM column is the variance penalty conditional rounding\n"
      "pays at this (gamma, d); it collapses toward ~1 as gamma^2 grows\n"
      "past d/4 — the crossover visible across Figure 1's panels.\n");
  return 0;
}
