#include "transform/random_rotation.h"

#include "common/bit_util.h"
#include "common/random.h"
#include "transform/walsh_hadamard.h"

namespace smm::transform {

StatusOr<RandomRotation> RandomRotation::Create(size_t dim,
                                                uint64_t public_seed) {
  if (dim == 0 || !IsPowerOfTwo(dim)) {
    return InvalidArgumentError(
        "RandomRotation requires a power-of-two dimension");
  }
  RandomGenerator rng(public_seed);
  std::vector<int8_t> signs(dim);
  for (auto& s : signs) s = static_cast<int8_t>(rng.Sign());
  return RandomRotation(std::move(signs));
}

StatusOr<std::vector<double>> RandomRotation::Apply(
    const std::vector<double>& x) const {
  std::vector<double> y;
  SMM_RETURN_IF_ERROR(ApplyInto(x, y));
  return y;
}

Status RandomRotation::ApplyInto(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  if (x.size() != signs_.size()) {
    return InvalidArgumentError("input dimension mismatch");
  }
  y.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = signs_[i] * x[i];
  return FastWalshHadamard(y);
}

Status RandomRotation::ApplyBatchInto(
    const std::vector<std::vector<double>>& xs, size_t begin, size_t end,
    std::vector<double>& flat, ThreadPool* pool) const {
  return ApplyBatchImpl(xs, begin, end, flat, pool, /*normalized=*/true);
}

Status RandomRotation::ApplyRawBatchInto(
    const std::vector<std::vector<double>>& xs, size_t begin, size_t end,
    std::vector<double>& flat, ThreadPool* pool) const {
  return ApplyBatchImpl(xs, begin, end, flat, pool, /*normalized=*/false);
}

Status RandomRotation::ApplyBatchImpl(
    const std::vector<std::vector<double>>& xs, size_t begin, size_t end,
    std::vector<double>& flat, ThreadPool* pool, bool normalized) const {
  const size_t d = signs_.size();
  if (begin > end || end > xs.size()) {
    return InvalidArgumentError("batch range out of bounds");
  }
  for (size_t i = begin; i < end; ++i) {
    if (xs[i].size() != d) {
      return InvalidArgumentError("input dimension mismatch");
    }
  }
  const size_t rows = end - begin;
  flat.resize(rows * d);
  const auto rotate_rows = [&](size_t row_begin, size_t row_end) {
    for (size_t r = row_begin; r < row_end; ++r) {
      const std::vector<double>& x = xs[begin + r];
      double* row = flat.data() + r * d;
      for (size_t k = 0; k < d; ++k) row[k] = signs_[k] * x[k];
      if (normalized) {
        FastWalshHadamardKernel(row, d);
      } else {
        FastWalshHadamardKernelUnnormalized(row, d);
      }
    }
  };
  if (pool == nullptr || pool->num_threads() == 1 || rows < 2) {
    rotate_rows(0, rows);
  } else {
    pool->ParallelFor(rows, [&](int /*chunk*/, size_t row_begin,
                                size_t row_end) {
      rotate_rows(row_begin, row_end);
    });
  }
  return OkStatus();
}

StatusOr<std::vector<double>> RandomRotation::Inverse(
    const std::vector<double>& y) const {
  if (y.size() != signs_.size()) {
    return InvalidArgumentError("input dimension mismatch");
  }
  std::vector<double> x = y;
  SMM_RETURN_IF_ERROR(FastWalshHadamard(x));
  for (size_t i = 0; i < x.size(); ++i) x[i] *= signs_[i];
  return x;
}

}  // namespace smm::transform
