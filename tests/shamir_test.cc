#include "secagg/shamir.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace smm::secagg {
namespace {

TEST(ShamirTest, SplitRejectsBadParameters) {
  RandomGenerator rng(1);
  EXPECT_FALSE(ShamirSplit(kShamirPrime, 2, 3, rng).ok());  // Secret too big.
  EXPECT_FALSE(ShamirSplit(5, 0, 3, rng).ok());
  EXPECT_FALSE(ShamirSplit(5, 4, 3, rng).ok());
}

TEST(ShamirTest, RoundTripWithExactThreshold) {
  RandomGenerator rng(2);
  const uint64_t secret = 123456789ULL;
  auto shares = ShamirSplit(secret, 3, 5, rng);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), 5u);
  const std::vector<ShamirShare> subset(shares->begin(), shares->begin() + 3);
  auto recovered = ShamirReconstruct(subset, 3);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

TEST(ShamirTest, AnyThresholdSubsetReconstructs) {
  RandomGenerator rng(3);
  const uint64_t secret = 987654321ULL;
  auto shares = ShamirSplit(secret, 2, 4, rng);
  ASSERT_TRUE(shares.ok());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      const std::vector<ShamirShare> subset = {(*shares)[i], (*shares)[j]};
      auto recovered = ShamirReconstruct(subset, 2);
      ASSERT_TRUE(recovered.ok());
      EXPECT_EQ(*recovered, secret) << "subset {" << i << "," << j << "}";
    }
  }
}

TEST(ShamirTest, TooFewSharesFail) {
  RandomGenerator rng(4);
  auto shares = ShamirSplit(42, 3, 5, rng);
  ASSERT_TRUE(shares.ok());
  const std::vector<ShamirShare> subset(shares->begin(), shares->begin() + 2);
  EXPECT_FALSE(ShamirReconstruct(subset, 3).ok());
}

TEST(ShamirTest, DuplicatePointsRejected) {
  RandomGenerator rng(5);
  auto shares = ShamirSplit(42, 2, 3, rng);
  ASSERT_TRUE(shares.ok());
  const std::vector<ShamirShare> dup = {(*shares)[0], (*shares)[0]};
  EXPECT_FALSE(ShamirReconstruct(dup, 2).ok());
}

TEST(ShamirTest, BelowThresholdSharesLookUnrelatedToSecret) {
  // With threshold 2, a single share value should vary wildly across
  // splits of the same secret (information-theoretic hiding).
  RandomGenerator rng(6);
  const uint64_t secret = 7;
  std::vector<uint64_t> first_share_values;
  for (int trial = 0; trial < 8; ++trial) {
    auto shares = ShamirSplit(secret, 2, 3, rng);
    ASSERT_TRUE(shares.ok());
    first_share_values.push_back((*shares)[0].y);
  }
  std::sort(first_share_values.begin(), first_share_values.end());
  first_share_values.erase(
      std::unique(first_share_values.begin(), first_share_values.end()),
      first_share_values.end());
  EXPECT_GE(first_share_values.size(), 7u);
}

TEST(ShamirTest, ThresholdOneIsConstantPolynomial) {
  RandomGenerator rng(7);
  auto shares = ShamirSplit(55, 1, 3, rng);
  ASSERT_TRUE(shares.ok());
  for (const auto& s : *shares) EXPECT_EQ(s.y, 55u);
}

class ShamirParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShamirParamTest, RoundTripAcrossConfigurations) {
  const auto [threshold, num_shares] = GetParam();
  RandomGenerator rng(static_cast<uint64_t>(threshold * 100 + num_shares));
  const uint64_t secret = rng.UniformUint64(kShamirPrime);
  auto shares = ShamirSplit(secret, threshold, num_shares, rng);
  ASSERT_TRUE(shares.ok());
  // Use the *last* threshold shares (not the first) to vary the points.
  const std::vector<ShamirShare> subset(shares->end() - threshold,
                                        shares->end());
  auto recovered = ShamirReconstruct(subset, threshold);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShamirParamTest,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{2, 2},
                      std::pair<int, int>{2, 5}, std::pair<int, int>{5, 8},
                      std::pair<int, int>{10, 20}));

}  // namespace
}  // namespace smm::secagg
