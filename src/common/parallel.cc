#include "common/parallel.h"

#include <algorithm>
#include <cassert>

namespace smm {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(1, num_threads) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::TryRunOneQueuedTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    if (pending_ == 0) work_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
    }
    TryRunOneQueuedTask();
  }
}

void ThreadPool::ParallelFor(
    size_t n,
    const std::function<void(int chunk, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  const bool was_active = loop_active_.exchange(true);
  assert(!was_active && "ParallelFor is not reentrant on the same pool");
  (void)was_active;
  const std::vector<size_t> bounds = StaticChunkBounds(n, num_threads());
  const int num_chunks = static_cast<int>(bounds.size()) - 1;
  if (num_chunks == 1 || workers_.empty()) {
    for (int c = 0; c < num_chunks; ++c) fn(c, bounds[c], bounds[c + 1]);
    loop_active_.store(false);
    return;
  }
  // Chunks 1..k-1 go to the workers; the calling thread runs chunk 0 and
  // then helps drain the queue before waiting.
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += static_cast<size_t>(num_chunks - 1);
    for (int c = 1; c < num_chunks; ++c) {
      const size_t begin = bounds[c];
      const size_t end = bounds[c + 1];
      tasks_.push([&fn, c, begin, end] { fn(c, begin, end); });
    }
  }
  work_ready_.notify_all();
  fn(0, bounds[0], bounds[1]);
  while (TryRunOneQueuedTask()) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  lock.unlock();
  loop_active_.store(false);
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<size_t> StaticChunkBounds(size_t n, int max_chunks) {
  if (n == 0) return {0};
  const size_t k =
      std::min(n, static_cast<size_t>(std::max(1, max_chunks)));
  std::vector<size_t> bounds(k + 1, 0);
  const size_t base = n / k;
  const size_t extra = n % k;
  for (size_t c = 0; c < k; ++c) {
    bounds[c + 1] = bounds[c] + base + (c < extra ? 1 : 0);
  }
  return bounds;
}

}  // namespace smm
