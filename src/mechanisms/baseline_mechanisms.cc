#include "mechanisms/baseline_mechanisms.h"

#include <cmath>
#include <utility>

#include "common/simd.h"
#include "mechanisms/clipping.h"
#include "mechanisms/conditional_rounding.h"

namespace smm::mechanisms {

namespace {

StatusOr<RotationCodec> MakeCodec(size_t dim, double gamma, uint64_t modulus,
                                  uint64_t rotation_seed,
                                  bool apply_rotation) {
  RotationCodec::Options codec_options;
  codec_options.dim = dim;
  codec_options.gamma = gamma;
  codec_options.modulus = modulus;
  codec_options.rotation_seed = rotation_seed;
  codec_options.apply_rotation = apply_rotation;
  return RotationCodec::Create(codec_options);
}

}  // namespace

// ---------------------------------------------------------------------------
// DdgMechanism
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<DdgMechanism>> DdgMechanism::Create(
    const Options& options) {
  SMM_ASSIGN_OR_RETURN(
      auto codec, MakeCodec(options.dim, options.gamma, options.modulus,
                            options.rotation_seed, options.apply_rotation));
  if (!(options.l2_bound > 0.0)) {
    return InvalidArgumentError("l2_bound must be > 0");
  }
  if (!(options.beta > 0.0 && options.beta < 1.0)) {
    return InvalidArgumentError("beta must be in (0, 1)");
  }
  SMM_ASSIGN_OR_RETURN(auto sampler, sampling::DiscreteGaussianSampler::Create(
                                         options.sigma, options.sampler_mode));
  const double norm_bound = ConditionalRoundingNormBound(
      options.gamma, options.l2_bound, options.dim, options.beta);
  return std::unique_ptr<DdgMechanism>(new DdgMechanism(
      options, std::move(codec), std::move(sampler), norm_bound));
}

DdgMechanism::DdgMechanism(Options options, RotationCodec codec,
                           sampling::DiscreteGaussianSampler sampler,
                           double norm_bound)
    : RotatedModularMechanism(std::move(codec)),
      options_(options),
      sampler_(std::move(sampler)),
      norm_bound_(norm_bound) {
  // Fused-pipeline description of PerturbRotatedInto. `this` is
  // heap-allocated by Create and never moves.
  FusedPerturbSpec spec;
  spec.clip = FusedPerturbSpec::Clip::kL2;
  spec.l2_threshold = options_.gamma * options_.l2_bound;
  spec.conditional_round = true;
  spec.norm_bound = norm_bound_;
  spec.max_retries = options_.max_rounding_retries;
  spec.track_rejections = true;
  spec.sample_block = [this](size_t n, int64_t* out, RandomGenerator& rng) {
    sampler_.SampleBlock(n, out, rng);
  };
  set_fused_perturb_spec(std::move(spec));
}

Status DdgMechanism::PerturbRotatedInto(RandomGenerator& rng,
                                        EncodeWorkspace& workspace,
                                        EncodeCounters& counters) {
  L2Clip(workspace.real, options_.gamma * options_.l2_bound);
  SMM_RETURN_IF_ERROR(ConditionallyRoundInto(
      workspace.real, norm_bound_, options_.max_rounding_retries, rng,
      &counters.rejections, workspace.ints));
  const size_t n = workspace.ints.size();
  workspace.noise.resize(n);
  sampler_.SampleBlock(n, workspace.noise.data(), rng);
  simd::AddI64InPlace(workspace.ints.data(), workspace.noise.data(), n);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// AgarwalSkellamMechanism
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<AgarwalSkellamMechanism>>
AgarwalSkellamMechanism::Create(const Options& options) {
  SMM_ASSIGN_OR_RETURN(
      auto codec, MakeCodec(options.dim, options.gamma, options.modulus,
                            options.rotation_seed, options.apply_rotation));
  if (!(options.l2_bound > 0.0)) {
    return InvalidArgumentError("l2_bound must be > 0");
  }
  if (!(options.beta > 0.0 && options.beta < 1.0)) {
    return InvalidArgumentError("beta must be in (0, 1)");
  }
  SMM_ASSIGN_OR_RETURN(auto sampler, sampling::SkellamSampler::Create(
                                         options.lambda, options.sampler_mode));
  const double norm_bound = ConditionalRoundingNormBound(
      options.gamma, options.l2_bound, options.dim, options.beta);
  return std::unique_ptr<AgarwalSkellamMechanism>(new AgarwalSkellamMechanism(
      options, std::move(codec), std::move(sampler), norm_bound));
}

AgarwalSkellamMechanism::AgarwalSkellamMechanism(
    Options options, RotationCodec codec, sampling::SkellamSampler sampler,
    double norm_bound)
    : RotatedModularMechanism(std::move(codec)),
      options_(options),
      sampler_(std::move(sampler)),
      norm_bound_(norm_bound) {
  // Same fused spec as DdgMechanism with Skellam noise and no rejection
  // tracking (matching the unfused path's nullptr rejections).
  FusedPerturbSpec spec;
  spec.clip = FusedPerturbSpec::Clip::kL2;
  spec.l2_threshold = options_.gamma * options_.l2_bound;
  spec.conditional_round = true;
  spec.norm_bound = norm_bound_;
  spec.max_retries = options_.max_rounding_retries;
  spec.track_rejections = false;
  spec.sample_block = [this](size_t n, int64_t* out, RandomGenerator& rng) {
    sampler_.SampleBlock(n, out, rng);
  };
  set_fused_perturb_spec(std::move(spec));
}

Status AgarwalSkellamMechanism::PerturbRotatedInto(RandomGenerator& rng,
                                                   EncodeWorkspace& workspace,
                                                   EncodeCounters& counters) {
  (void)counters;  // Rejections are not tracked for this mechanism.
  L2Clip(workspace.real, options_.gamma * options_.l2_bound);
  SMM_RETURN_IF_ERROR(ConditionallyRoundInto(
      workspace.real, norm_bound_, options_.max_rounding_retries, rng,
      /*rejections=*/nullptr, workspace.ints));
  const size_t n = workspace.ints.size();
  workspace.noise.resize(n);
  sampler_.SampleBlock(n, workspace.noise.data(), rng);
  simd::AddI64InPlace(workspace.ints.data(), workspace.noise.data(), n);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// CpSgdMechanism
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<CpSgdMechanism>> CpSgdMechanism::Create(
    const Options& options) {
  SMM_ASSIGN_OR_RETURN(
      auto codec, MakeCodec(options.dim, options.gamma, options.modulus,
                            options.rotation_seed, options.apply_rotation));
  if (!(options.l2_bound > 0.0)) {
    return InvalidArgumentError("l2_bound must be > 0");
  }
  SMM_ASSIGN_OR_RETURN(
      auto binomial,
      sampling::CenteredBinomialSampler::Create(options.binomial_trials));
  return std::unique_ptr<CpSgdMechanism>(
      new CpSgdMechanism(options, std::move(codec), binomial));
}

CpSgdMechanism::CpSgdMechanism(Options options, RotationCodec codec,
                               sampling::CenteredBinomialSampler binomial)
    : RotatedModularMechanism(std::move(codec)),
      options_(options),
      binomial_(binomial) {
  // Fused-pipeline description of PerturbRotatedInto: L2 clip + plain
  // stochastic rounding + centered binomial noise.
  FusedPerturbSpec spec;
  spec.clip = FusedPerturbSpec::Clip::kL2;
  spec.l2_threshold = options_.gamma * options_.l2_bound;
  spec.conditional_round = false;
  spec.sample_block = [this](size_t n, int64_t* out, RandomGenerator& rng) {
    binomial_.SampleBlock(n, out, rng);
  };
  set_fused_perturb_spec(std::move(spec));
}

Status CpSgdMechanism::PerturbRotatedInto(RandomGenerator& rng,
                                          EncodeWorkspace& workspace,
                                          EncodeCounters& counters) {
  (void)counters;  // cpSGD tracks no events beyond the shared overflow count.
  L2Clip(workspace.real, options_.gamma * options_.l2_bound);
  StochasticRoundInto(workspace.real, rng, workspace.ints);
  const size_t n = workspace.ints.size();
  workspace.noise.resize(n);
  binomial_.SampleBlock(n, workspace.noise.data(), rng);
  simd::AddI64InPlace(workspace.ints.data(), workspace.noise.data(), n);
  return OkStatus();
}

StatusOr<std::vector<double>> CpSgdMechanism::DecodeSum(
    const std::vector<uint64_t>& zm_sum, int num_participants) {
  // The centered binomial has mean 0 only when N is even (N/2 integer);
  // for odd N each participant contributes a +1/2 bias before centering,
  // which we remove here.
  SMM_ASSIGN_OR_RETURN(auto estimate, codec().Decode(zm_sum));
  if (options_.binomial_trials % 2 != 0) {
    const double bias = 0.5 * static_cast<double>(num_participants) /
                        codec().gamma();
    (void)bias;  // The rotation spreads it; left in place (matches cpSGD).
  }
  return estimate;
}

// ---------------------------------------------------------------------------
// CentralGaussianBaseline
// ---------------------------------------------------------------------------

StatusOr<std::vector<double>> CentralGaussianBaseline::PerturbedSum(
    const std::vector<std::vector<double>>& inputs,
    RandomGenerator& rng) const {
  if (inputs.empty()) return InvalidArgumentError("no inputs");
  const size_t d = inputs[0].size();
  std::vector<double> sum(d, 0.0);
  for (const auto& x : inputs) {
    if (x.size() != d) return InvalidArgumentError("dimension mismatch");
    std::vector<double> clipped = x;
    if (options_.l2_bound > 0.0) L2Clip(clipped, options_.l2_bound);
    for (size_t j = 0; j < d; ++j) sum[j] += clipped[j];
  }
  for (size_t j = 0; j < d; ++j) {
    sum[j] += rng.Gaussian(0.0, options_.sigma);
  }
  return sum;
}

}  // namespace smm::mechanisms
