// Reproduces Table 1: running time of exact vs approximate samplers for the
// Skellam and Discrete Gaussian distributions across noise variances
// {32, 16, 8, 4, 2, 1}.
//
// Expected shape (paper): the exact Skellam sampler is faster than the exact
// Discrete Gaussian (increasingly so at small variance, where exact Skellam
// gets cheaper while exact DG gets slightly more expensive); the approximate
// samplers are orders of magnitude faster than the exact ones, and
// approximate Skellam is faster than approximate DG. Absolute times differ
// from the paper's Python/TensorFlow measurements; the orderings are the
// reproducible claim.
#include <cmath>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "sampling/approx_samplers.h"
#include "sampling/discrete_gaussian_sampler.h"
#include "sampling/exact_samplers.h"
#include "sampling/noise_sampler.h"
#include "sampling/rational.h"

namespace smm::sampling {
namespace {

// Arg(0): variance v. Skellam: lambda = v/2; Discrete Gaussian: sigma^2 = v.

void BM_ExactSkellam(benchmark::State& state) {
  const int64_t variance = state.range(0);
  // lambda = variance / 2 as an exact rational.
  const Rational lambda{variance, 2};
  RandomGenerator rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkellamExact(lambda, rng).value());
  }
  state.SetLabel("variance=" + std::to_string(variance));
}
BENCHMARK(BM_ExactSkellam)->Arg(32)->Arg(16)->Arg(8)->Arg(4)->Arg(2)->Arg(1);

void BM_ExactDiscreteGaussian(benchmark::State& state) {
  const int64_t variance = state.range(0);
  const Rational sigma2{variance, 1};
  RandomGenerator rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleDiscreteGaussianExact(sigma2, rng).value());
  }
  state.SetLabel("variance=" + std::to_string(variance));
}
BENCHMARK(BM_ExactDiscreteGaussian)
    ->Arg(32)
    ->Arg(16)
    ->Arg(8)
    ->Arg(4)
    ->Arg(2)
    ->Arg(1);

void BM_ApproxSkellam(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0)) / 2.0;
  RandomGenerator rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkellamApprox(lambda, rng));
  }
  state.SetLabel("variance=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ApproxSkellam)->Arg(32)->Arg(16)->Arg(8)->Arg(4)->Arg(2)->Arg(1);

void BM_ApproxDiscreteGaussian(benchmark::State& state) {
  const double sigma = std::sqrt(static_cast<double>(state.range(0)));
  RandomGenerator rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleDiscreteGaussianApprox(sigma, rng));
  }
  state.SetLabel("variance=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ApproxDiscreteGaussian)
    ->Arg(32)
    ->Arg(16)
    ->Arg(8)
    ->Arg(4)
    ->Arg(2)
    ->Arg(1);

// Block-sampler variants: same distributions drawn through the
// SampleBlock(n, out) API the batched encode path uses, amortizing the
// adapter/dispatch overhead per block of 1024 coordinates.

void BM_ApproxSkellamBlock(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0)) / 2.0;
  auto sampler = SkellamSampler::Create(lambda).value();
  RandomGenerator rng(7);
  constexpr size_t kBlock = 1024;
  std::vector<int64_t> out(kBlock);
  for (auto _ : state) {
    sampler.SampleBlock(kBlock, out.data(), rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBlock);
  state.SetLabel("variance=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ApproxSkellamBlock)->Arg(32)->Arg(8)->Arg(1);

void BM_ApproxDiscreteGaussianBlock(benchmark::State& state) {
  const double sigma = std::sqrt(static_cast<double>(state.range(0)));
  auto sampler = DiscreteGaussianSampler::Create(sigma).value();
  RandomGenerator rng(8);
  constexpr size_t kBlock = 1024;
  std::vector<int64_t> out(kBlock);
  for (auto _ : state) {
    sampler.SampleBlock(kBlock, out.data(), rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBlock);
  state.SetLabel("variance=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ApproxDiscreteGaussianBlock)->Arg(32)->Arg(8)->Arg(1);

void BM_ExactSkellamBlock(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0)) / 2.0;
  auto sampler = SkellamSampler::Create(lambda, SamplerMode::kExact).value();
  RandomGenerator rng(9);
  constexpr size_t kBlock = 1024;
  std::vector<int64_t> out(kBlock);
  for (auto _ : state) {
    sampler.SampleBlock(kBlock, out.data(), rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBlock);
  state.SetLabel("variance=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ExactSkellamBlock)->Arg(8)->Arg(1);

// The building blocks of the exact samplers, for profiling context.
void BM_ExactPoissonOne(benchmark::State& state) {
  RandomGenerator rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamplePoissonOneExact(rng));
  }
}
BENCHMARK(BM_ExactPoissonOne);

void BM_ExactBernoulliExpMinusOne(benchmark::State& state) {
  RandomGenerator rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBernoulliExpMinusExact(1, 1, rng));
  }
}
BENCHMARK(BM_ExactBernoulliExpMinusOne);

}  // namespace
}  // namespace smm::sampling

BENCHMARK_MAIN();
