// Property suite for the runtime-dispatched SIMD kernel layer: every vector
// table the build carries (AVX2 and AVX-512, whichever the host supports)
// must be bit-identical to the scalar reference for all ten kernels across
// the full modulus range — including the wrap-prone m > 2^63 regime — odd
// and even lengths, and unaligned offsets into the input/output buffers
// (the vector loops use unaligned loads, so a misaligned view must not
// change results). The scalar reference itself is pinned against the
// canonical single-element helpers (secagg::ModReduce / CenterLift,
// smm::AddMod / SubMod), so the whole tower grounds out in the arithmetic
// the rest of the library already tests.
#include "common/simd.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "secagg/modular.h"
#include "transform/walsh_hadamard.h"

namespace smm::simd {
namespace {

constexpr uint64_t kModuli[] = {
    1ull << 16,
    1ull << 32,
    (1ull << 63) + 1,            // Odd, just past the int64 boundary.
    18446744073709551557ull,     // 2^64 - 59: the largest prime modulus used.
};

/// Odd and even lengths, including sub-vector-width ones and a few that
/// leave every possible 4-lane tail.
constexpr size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 257};

/// Extra leading elements so tests can run every kernel at a deliberately
/// misaligned offset into the same allocation.
constexpr size_t kOffsets[] = {0, 1, 3};

/// Signed test values stressing the wrap fast path's boundaries for modulus
/// m: in-window values, the window edges, +-m and beyond, and the int64
/// extremes.
std::vector<int64_t> SignedValues(uint64_t m, size_t n, uint64_t seed) {
  RandomGenerator rng(seed);
  const int64_t lo = -static_cast<int64_t>(m / 2);
  const int64_t hi = static_cast<int64_t>((m - 1) / 2);
  std::vector<int64_t> fixed = {0, 1, -1, lo, hi, INT64_MIN, INT64_MAX};
  if (m <= static_cast<uint64_t>(INT64_MAX) / 2) {
    const int64_t sm = static_cast<int64_t>(m);
    fixed.insert(fixed.end(), {sm, -sm, sm - 1, -(sm - 1), sm + 1, 2 * sm});
  }
  std::vector<int64_t> out(n);
  for (size_t j = 0; j < n; ++j) {
    if (j < fixed.size()) {
      out[j] = fixed[j];
    } else if (j % 3 == 0) {
      out[j] = static_cast<int64_t>(rng.NextBits());  // Full-range.
    } else {
      out[j] = static_cast<int64_t>(rng.UniformUint64(m)) + lo;  // In-window.
    }
  }
  return out;
}

/// Unsigned test values: mostly reduced residues, with a sprinkle of
/// unreduced values (>= m) to exercise the rare-lane `% m` spill.
std::vector<uint64_t> UnsignedValues(uint64_t m, size_t n, uint64_t seed,
                                     bool reduced_only) {
  RandomGenerator rng(seed);
  std::vector<uint64_t> fixed = {0, 1, m - 1, m / 2, (m - 1) / 2,
                                 (m - 1) / 2 + 1};
  std::vector<uint64_t> out(n);
  for (size_t j = 0; j < n; ++j) {
    if (j < fixed.size()) {
      out[j] = fixed[j];
    } else if (!reduced_only && j % 5 == 0) {
      out[j] = rng.NextBits();  // Possibly >= m.
    } else {
      out[j] = rng.UniformUint64(m);
    }
  }
  if (reduced_only) {
    for (auto& v : out) v %= m;
  }
  return out;
}

/// Every vector table the host supports — each must match the scalar
/// reference bit-for-bit in every test below.
std::vector<const Kernels*> VectorTables() {
  std::vector<const Kernels*> tables;
  if (const Kernels* t = Avx2KernelsIfSupported()) tables.push_back(t);
  if (const Kernels* t = Avx512KernelsIfSupported()) tables.push_back(t);
  return tables;
}

/// Runs `fn(kernels, data_view)` for the scalar table and every available
/// vector table, each on its own copy, and compares the copies
/// bit-for-bit.
template <typename T, typename Fn>
void ExpectPathsAgree(const std::vector<T>& input, size_t offset, Fn fn,
                      const char* what) {
  std::vector<T> scalar_copy = input;
  fn(ScalarKernels(), scalar_copy.data() + offset);
  for (const Kernels* vec : VectorTables()) {
    std::vector<T> vec_copy = input;
    fn(*vec, vec_copy.data() + offset);
    EXPECT_EQ(scalar_copy, vec_copy) << what << " path=" << vec->name;
  }
}

TEST(SimdDispatchTest, ActiveResolvesToARealTable) {
  const Kernels& active = Active();
  EXPECT_TRUE(std::string(active.name) == "scalar" ||
              std::string(active.name) == "avx2" ||
              std::string(active.name) == "avx512");
  // Forcing scalar must stick until reset.
  SetDispatchModeForTest(DispatchMode::kForceScalar);
  EXPECT_STREQ(Active().name, "scalar");
  // kForceAvx2 caps resolution at the AVX2 table (scalar when AVX2 is
  // unavailable) — it must never resolve to the AVX-512 table.
  SetDispatchModeForTest(DispatchMode::kForceAvx2);
  if (Avx2KernelsIfSupported() != nullptr) {
    EXPECT_STREQ(Active().name, "avx2");
  } else {
    EXPECT_STREQ(Active().name, "scalar");
  }
  SetDispatchModeForTest(DispatchMode::kAuto);
  EXPECT_STREQ(Active().name, active.name);
}

TEST(SimdKernelTest, WrapCenteredMatchesScalarAndModReduce) {
  for (uint64_t m : kModuli) {
    for (size_t n : kLengths) {
      for (size_t offset : kOffsets) {
        const auto values = SignedValues(m, n + offset, 17 * m + n);
        std::vector<uint64_t> scalar_out(n + offset, 0xabababab);
        const size_t scalar_count = ScalarKernels().wrap_centered_into(
            values.data() + offset, n, m, scalar_out.data() + offset);
        // Ground truth: the canonical per-element helper and window.
        const int64_t lo = -static_cast<int64_t>(m / 2);
        const int64_t hi = static_cast<int64_t>((m - 1) / 2);
        size_t expected_count = 0;
        for (size_t j = 0; j < n; ++j) {
          const int64_t v = values[offset + j];
          if (v < lo || v > hi) ++expected_count;
          ASSERT_EQ(scalar_out[offset + j], secagg::ModReduce(v, m))
              << "m=" << m << " v=" << v;
        }
        EXPECT_EQ(scalar_count, expected_count) << "m=" << m << " n=" << n;
        for (const Kernels* vec : VectorTables()) {
          std::vector<uint64_t> vec_out(n + offset, 0xcdcdcdcd);
          const size_t vec_count = vec->wrap_centered_into(
              values.data() + offset, n, m, vec_out.data() + offset);
          EXPECT_EQ(vec_count, scalar_count)
              << "m=" << m << " n=" << n << " path=" << vec->name;
          for (size_t j = 0; j < n; ++j) {
            ASSERT_EQ(vec_out[offset + j], scalar_out[offset + j])
                << "m=" << m << " v=" << values[offset + j]
                << " path=" << vec->name;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, CenterLiftMatchesScalarAndCanonicalLift) {
  for (uint64_t m : kModuli) {
    for (size_t n : kLengths) {
      for (size_t offset : kOffsets) {
        const auto values =
            UnsignedValues(m, n + offset, 23 * m + n, /*reduced_only=*/true);
        std::vector<int64_t> scalar_out(n + offset, -7);
        ScalarKernels().center_lift_into(values.data() + offset, n, m,
                                         scalar_out.data() + offset);
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(scalar_out[offset + j],
                    secagg::CenterLift(values[offset + j], m))
              << "m=" << m << " v=" << values[offset + j];
        }
        for (const Kernels* vec : VectorTables()) {
          std::vector<int64_t> vec_out(n + offset, -9);
          vec->center_lift_into(values.data() + offset, n, m,
                                vec_out.data() + offset);
          for (size_t j = 0; j < n; ++j) {
            ASSERT_EQ(vec_out[offset + j], scalar_out[offset + j])
                << "m=" << m << " v=" << values[offset + j]
                << " path=" << vec->name;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, AddSubModMatchScalarHelpers) {
  for (uint64_t m : kModuli) {
    for (size_t n : kLengths) {
      for (size_t offset : kOffsets) {
        const auto acc0 =
            UnsignedValues(m, n + offset, 31 * m + n, /*reduced_only=*/true);
        const auto b = UnsignedValues(m, n + offset, 37 * m + n,
                                      /*reduced_only=*/false);
        for (bool subtract : {false, true}) {
          std::vector<uint64_t> scalar_acc = acc0;
          if (subtract) {
            ScalarKernels().sub_mod_vec(scalar_acc.data() + offset,
                                        b.data() + offset, n, m);
          } else {
            ScalarKernels().add_mod_vec(scalar_acc.data() + offset,
                                        b.data() + offset, n, m);
          }
          for (size_t j = 0; j < n; ++j) {
            const uint64_t expected =
                subtract
                    ? smm::SubMod(acc0[offset + j], b[offset + j] % m, m)
                    : smm::AddMod(acc0[offset + j], b[offset + j] % m, m);
            ASSERT_EQ(scalar_acc[offset + j], expected)
                << "m=" << m << " a=" << acc0[offset + j]
                << " b=" << b[offset + j] << " sub=" << subtract;
          }
          for (const Kernels* vec : VectorTables()) {
            std::vector<uint64_t> vec_acc = acc0;
            if (subtract) {
              vec->sub_mod_vec(vec_acc.data() + offset, b.data() + offset, n,
                               m);
            } else {
              vec->add_mod_vec(vec_acc.data() + offset, b.data() + offset, n,
                               m);
            }
            EXPECT_EQ(vec_acc, scalar_acc)
                << "m=" << m << " n=" << n << " sub=" << subtract
                << " path=" << vec->name;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, ModReduceIntoMatchesScalarIncludingAliasing) {
  for (uint64_t m : kModuli) {
    for (size_t n : kLengths) {
      for (size_t offset : kOffsets) {
        const auto values = UnsignedValues(m, n + offset, 41 * m + n,
                                           /*reduced_only=*/false);
        std::vector<uint64_t> scalar_out(n + offset, 1);
        ScalarKernels().mod_reduce_into(values.data() + offset, n, m,
                                        scalar_out.data() + offset);
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(scalar_out[offset + j], values[offset + j] % m);
        }
        for (const Kernels* vec : VectorTables()) {
          // Exact-aliased in-place reduction must match the out-of-place
          // result.
          std::vector<uint64_t> in_place = values;
          vec->mod_reduce_into(in_place.data() + offset, n, m,
                               in_place.data() + offset);
          for (size_t j = 0; j < n; ++j) {
            ASSERT_EQ(in_place[offset + j], scalar_out[offset + j])
                << "path=" << vec->name;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, DoubleKernelsAreBitIdenticalAcrossPaths) {
  RandomGenerator rng(51);
  for (size_t n : kLengths) {
    for (size_t offset : kOffsets) {
      std::vector<double> data(n + offset);
      for (auto& v : data) v = rng.Gaussian(0.0, 100.0);
      ExpectPathsAgree(data, offset,
                       [n](const Kernels& k, double* p) {
                         k.scale_inplace(p, n, 1.0 / 3.0);
                       },
                       "scale_inplace");
      ExpectPathsAgree(data, offset,
                       [n](const Kernels& k, double* p) {
                         k.unscale_inplace(p, n, 7.0);
                       },
                       "unscale_inplace");
      std::vector<int64_t> delta(n + offset);
      for (auto& v : delta) v = static_cast<int64_t>(rng.NextBits() >> 8);
      ExpectPathsAgree(delta, offset,
                       [n, &delta](const Kernels& k, int64_t* p) {
                         k.add_i64_inplace(p, delta.data(), n);
                       },
                       "add_i64_inplace");
    }
  }
}

TEST(SimdKernelTest, FloorFractScaledMatchesScalarFloor) {
  RandomGenerator rng(53);
  for (size_t n : kLengths) {
    for (size_t offset : kOffsets) {
      std::vector<double> x(n + offset);
      for (size_t j = 0; j < x.size(); ++j) {
        // Mix negatives, integers, and huge magnitudes (frac == 0 there).
        x[j] = j % 4 == 0 ? std::floor(rng.Gaussian(0.0, 10.0))
                          : rng.Gaussian(0.0, 1e6);
      }
      for (double scale : {1.0, 0.125, 3.7}) {
        std::vector<double> scalar_flr(n), scalar_frac(n);
        ScalarKernels().floor_fract_scaled(x.data() + offset, n, scale,
                                           scalar_flr.data(),
                                           scalar_frac.data());
        for (size_t j = 0; j < n; ++j) {
          const double g = x[offset + j] * scale;
          ASSERT_EQ(scalar_flr[j], std::floor(g));
          ASSERT_EQ(scalar_frac[j], g - std::floor(g));
        }
        for (const Kernels* vec : VectorTables()) {
          std::vector<double> vec_flr(n), vec_frac(n);
          vec->floor_fract_scaled(x.data() + offset, n, scale,
                                  vec_flr.data(), vec_frac.data());
          EXPECT_EQ(vec_flr, scalar_flr)
              << "n=" << n << " s=" << scale << " path=" << vec->name;
          EXPECT_EQ(vec_frac, scalar_frac)
              << "n=" << n << " s=" << scale << " path=" << vec->name;
        }
      }
    }
  }
}

TEST(SimdKernelTest, WhtButterflyPassMatchesAcrossPaths) {
  RandomGenerator rng(59);
  for (size_t d : {2u, 4u, 8u, 64u, 1024u, 4096u}) {
    std::vector<double> data(d);
    for (auto& v : data) v = rng.Gaussian(0.0, 1.0);
    for (size_t h = 1; h < d; h <<= 1) {
      ExpectPathsAgree(data, 0,
                       [d, h](const Kernels& k, double* p) {
                         k.wht_butterfly_pass(p, d, h);
                       },
                       "wht_butterfly_pass");
    }
  }
}

TEST(SimdKernelTest, FullWalshHadamardIsDispatchInvariant) {
  RandomGenerator rng(61);
  for (size_t d : {1u << 4, 1u << 11, 1u << 13}) {  // Below and above the
                                                    // 2048-double block.
    std::vector<double> original(d);
    for (auto& v : original) v = rng.Gaussian(0.0, 1.0);
    SetDispatchModeForTest(DispatchMode::kForceScalar);
    std::vector<double> scalar_run = original;
    ASSERT_TRUE(transform::FastWalshHadamard(scalar_run).ok());
    SetDispatchModeForTest(DispatchMode::kForceAvx2);
    std::vector<double> avx2_run = original;
    ASSERT_TRUE(transform::FastWalshHadamard(avx2_run).ok());
    SetDispatchModeForTest(DispatchMode::kAuto);
    std::vector<double> auto_run = original;
    ASSERT_TRUE(transform::FastWalshHadamard(auto_run).ok());
    EXPECT_EQ(scalar_run, avx2_run) << "d=" << d;
    EXPECT_EQ(scalar_run, auto_run) << "d=" << d;
  }
}

TEST(SimdKernelTest, ScaleRoundStochasticConsumesRngIdenticallyAcrossPaths) {
  RandomGenerator input_rng(67);
  for (size_t n : kLengths) {
    std::vector<double> x(n);
    for (size_t j = 0; j < n; ++j) {
      // Integers every fourth coordinate: zero fraction must skip the draw
      // on both paths or the streams desynchronize. A near-integer-from-
      // below every seventh: its fraction rounds to exactly 1.0, which must
      // round up draw-free (Bernoulli's p >= 1 short-circuit).
      x[j] = j % 4 == 0   ? std::floor(input_rng.Gaussian(0.0, 8.0))
             : j % 7 == 0 ? -1e-300
                          : input_rng.Gaussian(0.0, 8.0);
    }
    for (double scale : {1.0, 2.5}) {
      SetDispatchModeForTest(DispatchMode::kForceScalar);
      RandomGenerator scalar_rng(4242);
      std::vector<int64_t> scalar_out(n);
      ScaleRoundStochasticInto(x.data(), n, scale, scalar_rng,
                               scalar_out.data());
      SetDispatchModeForTest(DispatchMode::kAuto);
      RandomGenerator auto_rng(4242);
      std::vector<int64_t> auto_out(n);
      ScaleRoundStochasticInto(x.data(), n, scale, auto_rng,
                               auto_out.data());
      EXPECT_EQ(scalar_out, auto_out) << "n=" << n << " scale=" << scale;
      // The decisive check: both paths must leave the stream at the same
      // position, or everything encoded after this vector diverges.
      EXPECT_EQ(scalar_rng.NextBits(), auto_rng.NextBits())
          << "n=" << n << " scale=" << scale;
    }
  }
  SetDispatchModeForTest(DispatchMode::kAuto);
}

TEST(SimdKernelTest, VectorModularOpsAreDispatchInvariantThroughPublicApi) {
  // End-to-end through secagg::AddMod/SubMod/ReduceVector/LiftVector — the
  // public entry points the aggregation paths call.
  for (uint64_t m : kModuli) {
    const size_t n = 100;
    const auto a = UnsignedValues(m, n, m + 1, /*reduced_only=*/false);
    const auto b = UnsignedValues(m, n, m + 2, /*reduced_only=*/false);
    const auto s = SignedValues(m, n, m + 3);
    SetDispatchModeForTest(DispatchMode::kForceScalar);
    const auto sum_scalar = secagg::AddMod(a, b, m).value();
    const auto diff_scalar = secagg::SubMod(a, b, m).value();
    const auto reduced_scalar = secagg::ReduceVector(s, m);
    const auto lifted_scalar = secagg::LiftVector(reduced_scalar, m);
    SetDispatchModeForTest(DispatchMode::kAuto);
    EXPECT_EQ(sum_scalar, secagg::AddMod(a, b, m).value()) << "m=" << m;
    EXPECT_EQ(diff_scalar, secagg::SubMod(a, b, m).value()) << "m=" << m;
    EXPECT_EQ(reduced_scalar, secagg::ReduceVector(s, m)) << "m=" << m;
    EXPECT_EQ(lifted_scalar, secagg::LiftVector(reduced_scalar, m))
        << "m=" << m;
  }
}

}  // namespace
}  // namespace smm::simd
