#include "sampling/discrete_gaussian_sampler.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"

namespace smm::sampling {
namespace {

class BernoulliExpMinusTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(BernoulliExpMinusTest, MeanMatchesExpMinusGamma) {
  const auto [num, den] = GetParam();
  const double gamma = static_cast<double>(num) / static_cast<double>(den);
  RandomGenerator rng(static_cast<uint64_t>(31 + num * 7 + den));
  constexpr int kN = 80000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (SampleBernoulliExpMinusExact(num, den, rng)) ++hits;
  }
  const double p = std::exp(-gamma);
  EXPECT_NEAR(static_cast<double>(hits) / kN, p,
              5.0 * std::sqrt(p * (1 - p) / kN) + 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    Gammas, BernoulliExpMinusTest,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 1},
                      std::pair<int64_t, int64_t>{1, 2},
                      std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{3, 2},
                      std::pair<int64_t, int64_t>{5, 2},
                      std::pair<int64_t, int64_t>{4, 1}));

TEST(DiscreteLaplaceExactTest, SymmetricAndGeometricTails) {
  RandomGenerator rng(3);
  constexpr int kN = 120000;
  const int64_t t = 2;
  std::map<int64_t, int> counts;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v = SampleDiscreteLaplaceExact(t, rng);
    counts[v]++;
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  // pmf proportional to exp(-|k|/t): check the ratio of consecutive buckets.
  const double ratio_expected = std::exp(-1.0 / static_cast<double>(t));
  for (int64_t k = 0; k <= 3; ++k) {
    const double ratio = static_cast<double>(counts[k + 1]) /
                         static_cast<double>(counts[k]);
    EXPECT_NEAR(ratio, ratio_expected, 0.05);
  }
  // Symmetry.
  for (int64_t k = 1; k <= 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / counts[-k], 1.0, 0.12);
  }
}

TEST(DiscreteGaussianExactTest, RejectsInvalidSigma) {
  RandomGenerator rng(4);
  EXPECT_FALSE(SampleDiscreteGaussianExact(Rational{0, 1}, rng).ok());
  EXPECT_FALSE(SampleDiscreteGaussianExact(Rational{1, 0}, rng).ok());
}

class DiscreteGaussianExactMomentsTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(DiscreteGaussianExactMomentsTest, MeanZeroVarianceNearSigma2) {
  const auto [num, den] = GetParam();  // sigma^2 = num/den.
  const double sigma2 = static_cast<double>(num) / static_cast<double>(den);
  RandomGenerator rng(static_cast<uint64_t>(7 + num));
  constexpr int kN = 60000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const int64_t v =
        SampleDiscreteGaussianExact(Rational{num, den}, rng).value();
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 5.0 * std::sqrt(sigma2 / kN) + 0.01);
  // The discrete Gaussian variance approaches sigma^2 from below; for
  // sigma^2 >= 1 they differ by well under 2%.
  if (sigma2 >= 1.0) {
    EXPECT_NEAR(var / sigma2, 1.0, 0.05);
  } else {
    EXPECT_LT(var, sigma2 + 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sigmas, DiscreteGaussianExactMomentsTest,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 4},   // sigma = 0.5
                      std::pair<int64_t, int64_t>{1, 1},   // sigma = 1
                      std::pair<int64_t, int64_t>{4, 1},   // sigma = 2
                      std::pair<int64_t, int64_t>{16, 1},  // sigma = 4
                      std::pair<int64_t, int64_t>{32, 1}));

TEST(DiscreteGaussianExactTest, GoodnessOfFit) {
  RandomGenerator rng(5);
  constexpr int kN = 150000;
  const double sigma = 2.0;
  std::map<int64_t, int> counts;
  for (int i = 0; i < kN; ++i) {
    counts[SampleDiscreteGaussianExact(Rational{4, 1}, rng).value()]++;
  }
  double chi2 = 0.0;
  int buckets = 0;
  for (int64_t k = -8; k <= 8; ++k) {
    const double expected =
        std::exp(DiscreteGaussianLogPmf(k, sigma)) * kN;
    if (expected < 5.0) continue;
    const double diff = static_cast<double>(counts[k]) - expected;
    chi2 += diff * diff / expected;
    ++buckets;
  }
  EXPECT_GE(buckets, 10);
  EXPECT_LT(chi2, 55.0);  // Far beyond the 99.9% quantile for ~16 dof.
}

}  // namespace
}  // namespace smm::sampling
