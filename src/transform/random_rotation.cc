#include "transform/random_rotation.h"

#include "common/bit_util.h"
#include "common/random.h"
#include "transform/walsh_hadamard.h"

namespace smm::transform {

StatusOr<RandomRotation> RandomRotation::Create(size_t dim,
                                                uint64_t public_seed) {
  if (dim == 0 || !IsPowerOfTwo(dim)) {
    return InvalidArgumentError(
        "RandomRotation requires a power-of-two dimension");
  }
  RandomGenerator rng(public_seed);
  std::vector<int8_t> signs(dim);
  for (auto& s : signs) s = static_cast<int8_t>(rng.Sign());
  return RandomRotation(std::move(signs));
}

StatusOr<std::vector<double>> RandomRotation::Apply(
    const std::vector<double>& x) const {
  std::vector<double> y;
  SMM_RETURN_IF_ERROR(ApplyInto(x, y));
  return y;
}

Status RandomRotation::ApplyInto(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  if (x.size() != signs_.size()) {
    return InvalidArgumentError("input dimension mismatch");
  }
  y.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = signs_[i] * x[i];
  return FastWalshHadamard(y);
}

StatusOr<std::vector<double>> RandomRotation::Inverse(
    const std::vector<double>& y) const {
  if (y.size() != signs_.size()) {
    return InvalidArgumentError("input dimension mismatch");
  }
  std::vector<double> x = y;
  SMM_RETURN_IF_ERROR(FastWalshHadamard(x));
  for (size_t i = 0; i < x.size(); ++i) x[i] *= signs_[i];
  return x;
}

}  // namespace smm::transform
