#ifndef SMM_COMMON_SIMD_H_
#define SMM_COMMON_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/random.h"

namespace smm::simd {

/// Runtime-dispatched kernels for the dense inner loops that dominate the
/// encode/aggregate cost at large d: rotate/scale/round, the modular wrap
/// and centered lift, the Walsh-Hadamard butterfly, and modular
/// accumulation. Three implementations exist behind one function-pointer
/// table:
///
///  - the *scalar reference* (`ScalarKernels()`): a faithful port of the
///    historical per-element loops — `% m` reductions, the branchy
///    compare-and-correct AddMod/SubMod — whose output defines correctness;
///  - the AVX2 path (`Avx2KernelsIfSupported()`): 4-lane vector kernels
///    that take a division-free fast path on in-range lanes and fall back
///    to the scalar arithmetic on the rare out-of-range lane;
///  - the AVX-512 path (`Avx512KernelsIfSupported()`): the same kernels at
///    8 lanes, using native unsigned 64-bit compares (no sign-flip trick)
///    and mask registers, with the same masked scalar spill for
///    out-of-range lanes.
///
/// The contract is *bit-identity*: for every kernel, every input, and every
/// thread count, the vector paths produce exactly the scalar reference's
/// output (the integer kernels compute the same residues; the double
/// kernels use only IEEE-exact add/sub/mul/div/floor, which vector and
/// scalar units round identically). simd_kernel_test pins this across
/// moduli up to 2^64 - 59, odd/even lengths, and unaligned offsets, and the
/// PR-1 determinism suite pins it end-to-end through the encode pipeline.
///
/// Dispatch: `Active()` resolves once per process — the AVX-512 table when
/// the build has an AVX-512 translation unit and cpuid reports
/// AVX-512F + AVX-512DQ, else the AVX2 table under the analogous probe,
/// else the scalar table. Environment overrides (read before first use):
/// SMM_FORCE_SCALAR=1 pins the scalar reference, SMM_FORCE_AVX2=1 caps
/// resolution at AVX2 (useful for comparing paths on AVX-512 hosts). Tests
/// flip paths in-process with SetDispatchModeForTest.
struct Kernels {
  /// Human-readable path name ("scalar", "avx2" or "avx512") for logs and
  /// the bench JSON artifact.
  const char* name;

  /// v[j] *= factor for j in [0, n).
  void (*scale_inplace)(double* v, size_t n, double factor);

  /// v[j] /= factor for j in [0, n). Kept as a true division (not a
  /// reciprocal multiply): IEEE division rounds identically in scalar and
  /// vector units, so decode stays bit-identical across paths.
  void (*unscale_inplace)(double* v, size_t n, double factor);

  /// One radix-2 Walsh-Hadamard butterfly stage with half-span h over
  /// v[0, n): for every pair block, (a, b) <- (a + b, a - b). Requires h to
  /// divide n/2 in the usual power-of-two transform layout.
  void (*wht_butterfly_pass)(double* v, size_t n, size_t h);

  /// The vectorizable half of stochastic rounding: for j in [0, n),
  /// flr[j] = floor(x[j] * scale) and frac[j] = x[j] * scale - flr[j].
  /// The serial Bernoulli draws happen in ScaleRoundStochasticInto below.
  void (*floor_fract_scaled)(const double* x, size_t n, double scale,
                             double* flr, double* frac);

  /// out[j] = values[j] mod m in {0, ..., m-1} (the centered-representative
  /// wrap ModReduce computes), returning how many values fell outside the
  /// representable centered window {-floor(m/2), ..., ceil(m/2) - 1} — the
  /// irrecoverable wrap-around events RotationCodec accounts.
  size_t (*wrap_centered_into)(const int64_t* values, size_t n, uint64_t m,
                               uint64_t* out);

  /// out[j] = the centered representative of values[j] in
  /// {-floor(m/2), ..., ceil(m/2) - 1}. Requires values[j] < m.
  void (*center_lift_into)(const uint64_t* values, size_t n, uint64_t m,
                           int64_t* out);

  /// out[j] = values[j] % m. out may alias values exactly (in-place).
  void (*mod_reduce_into)(const uint64_t* values, size_t n, uint64_t m,
                          uint64_t* out);

  /// acc[j] = (acc[j] + b[j] % m) mod m. Requires acc[j] < m (the running
  /// accumulator invariant every secagg sum maintains); b is arbitrary.
  /// Exact for every m in [2, 2^64): the AVX2 path never forms a possibly
  /// truncated a + b — it selects between a + b and a - (m - b) with an
  /// unsigned compare, and the lane that would wrap is the lane the blend
  /// discards.
  void (*add_mod_vec)(uint64_t* acc, const uint64_t* b, size_t n, uint64_t m);

  /// acc[j] = (acc[j] - b[j] % m) mod m. Same contract as add_mod_vec.
  void (*sub_mod_vec)(uint64_t* acc, const uint64_t* b, size_t n, uint64_t m);

  /// v[j] += delta[j] (the post-rounding noise-injection add).
  void (*add_i64_inplace)(int64_t* v, const int64_t* delta, size_t n);
};

/// The scalar reference table. Always available; defines correctness.
const Kernels& ScalarKernels();

/// The AVX2 table, or nullptr when the build lacks an AVX2 translation unit
/// or the CPU lacks AVX2. Exposed (rather than private to dispatch) so the
/// property tests and the bench harness can compare paths in one process
/// regardless of how dispatch resolved.
const Kernels* Avx2KernelsIfSupported();

/// The AVX-512 table, or nullptr when the build lacks an AVX-512
/// translation unit or the CPU lacks AVX-512F / AVX-512DQ. Exposed for the
/// same reason as Avx2KernelsIfSupported.
const Kernels* Avx512KernelsIfSupported();

/// The dispatched table: resolved once per process (cpuid probe +
/// SMM_FORCE_SCALAR / SMM_FORCE_AVX2 env overrides + test override), then
/// cached.
const Kernels& Active();

/// In-process dispatch override for tests and benches. kAuto restores the
/// cpuid/env resolution; kForceScalar pins the scalar reference;
/// kForceAvx2 caps resolution at the AVX2 table (falling back to scalar
/// when AVX2 is unavailable), which lets tests pin the AVX2 path on
/// AVX-512 hosts. Resets the cached resolution, so the next Active() call
/// re-resolves. Not thread-safe against concurrent Active() users — flip
/// it only from single-threaded test setup.
enum class DispatchMode { kAuto, kForceScalar, kForceAvx2 };
void SetDispatchModeForTest(DispatchMode mode);

// ---------------------------------------------------------------------------
// Per-kernel dispatch crossover. Vector kernels pay a fixed entry cost
// (lane setup, the tail loop) that only amortizes past some length; the
// calibration harness (bench_matrix --calibrate) measures that length per
// kernel and RuntimeTuning installs it here. Below its crossover a wrapper
// runs the scalar reference table instead of the dispatched one — a pure
// perf decision, since the tables are bit-identical on every input. The
// default crossover is 0 for every kernel: always dispatch, the historical
// behavior.
// ---------------------------------------------------------------------------

/// Stable identifiers for the crossover table, one per Kernels entry.
enum class KernelId : int {
  kScale = 0,
  kUnscale,
  kWhtButterfly,
  kFloorFract,
  kWrapCentered,
  kCenterLift,
  kModReduce,
  kAddMod,
  kSubMod,
  kAddI64,
};
inline constexpr int kNumKernelIds = 10;

/// The tuning-file spelling of a kernel id ("scale", "add_mod", ...).
const char* KernelIdName(KernelId id);

/// Inverse of KernelIdName. Returns false on an unknown spelling.
bool KernelIdFromName(const char* name, KernelId* out);

/// Sets the minimum length at which `id` uses the dispatched table
/// (0 restores always-dispatch). Relaxed-atomic store; safe to call while
/// other threads encode, though intended for startup/test setup.
void SetDispatchCrossover(KernelId id, size_t min_length);

/// The current crossover for `id`.
size_t DispatchCrossover(KernelId id);

/// The crossover table. Internal to the ForLength wrappers; exposed only so
/// the header inlines stay allocation- and lock-free.
extern std::atomic<size_t> g_dispatch_crossover[kNumKernelIds];

/// The table to use for an `n`-element call of kernel `id`: the scalar
/// reference below the kernel's crossover, the dispatched table otherwise.
inline const Kernels& ForLength(KernelId id, size_t n) {
  return n < g_dispatch_crossover[static_cast<int>(id)].load(
                 std::memory_order_relaxed)
             ? ScalarKernels()
             : Active();
}

/// Reduces a signed value into {0, ..., m-1} — the same arithmetic as
/// secagg::ModReduce, re-stated here because common/ sits below secagg/ in
/// the layering. Shared by the scalar reference kernels and the AVX2
/// rare-lane spill paths, so the two can never drift apart. ~value computes
/// -value - 1 without the INT64_MIN negation overflow; the +1 cannot wrap
/// because the magnitude is at most 2^63.
inline uint64_t ModReduceScalarI64(int64_t value, uint64_t m) {
  if (value >= 0) return static_cast<uint64_t>(value) % m;
  const uint64_t magnitude = (static_cast<uint64_t>(~value) + 1) % m;
  return magnitude == 0 ? 0 : m - magnitude;
}

// ---------------------------------------------------------------------------
// Convenience wrappers over the dispatch + crossover resolution. These are
// the entry points the hot paths call; each is a thin forward through
// ForLength except ScaleRoundStochasticInto, which tiles the vectorizable
// floor/fract phase against the inherently serial Bernoulli draws.
// ---------------------------------------------------------------------------

inline void ScaleInPlace(double* v, size_t n, double factor) {
  ForLength(KernelId::kScale, n).scale_inplace(v, n, factor);
}

inline void UnscaleInPlace(double* v, size_t n, double factor) {
  ForLength(KernelId::kUnscale, n).unscale_inplace(v, n, factor);
}

inline void WhtButterflyPass(double* v, size_t n, size_t h) {
  ForLength(KernelId::kWhtButterfly, n).wht_butterfly_pass(v, n, h);
}

inline size_t WrapCenteredInto(const int64_t* values, size_t n, uint64_t m,
                               uint64_t* out) {
  return ForLength(KernelId::kWrapCentered, n)
      .wrap_centered_into(values, n, m, out);
}

inline void CenterLiftInto(const uint64_t* values, size_t n, uint64_t m,
                           int64_t* out) {
  ForLength(KernelId::kCenterLift, n).center_lift_into(values, n, m, out);
}

inline void ModReduceInto(const uint64_t* values, size_t n, uint64_t m,
                          uint64_t* out) {
  ForLength(KernelId::kModReduce, n).mod_reduce_into(values, n, m, out);
}

inline void AddModVec(uint64_t* acc, const uint64_t* b, size_t n,
                      uint64_t m) {
  ForLength(KernelId::kAddMod, n).add_mod_vec(acc, b, n, m);
}

inline void SubModVec(uint64_t* acc, const uint64_t* b, size_t n,
                      uint64_t m) {
  ForLength(KernelId::kSubMod, n).sub_mod_vec(acc, b, n, m);
}

inline void AddI64InPlace(int64_t* v, const int64_t* delta, size_t n) {
  ForLength(KernelId::kAddI64, n).add_i64_inplace(v, delta, n);
}

/// Stochastic rounding of scale * x into out: each coordinate rounds to
/// floor + 1 with probability equal to its fractional part. Consumes `rng`
/// exactly like the historical floor + Bernoulli loop: one UniformDouble
/// per coordinate whose fractional part is in (0, 1) — or NaN — in
/// coordinate order, and *no* draw when the fraction is 0 or rounds to
/// exactly 1.0 (Bernoulli's p <= 0 / p >= 1 short-circuits; the latter
/// happens for inputs a hair below an integer, e.g. -1e-300). The encoding
/// is therefore bit-identical across dispatch paths and thread counts.
/// Pass scale = 1.0 for plain stochastic rounding; multiplying by 1.0 is
/// an IEEE identity, so the fused and unfused forms agree bitwise.
void ScaleRoundStochasticInto(const double* x, size_t n, double scale,
                              RandomGenerator& rng, int64_t* out);

}  // namespace smm::simd

#endif  // SMM_COMMON_SIMD_H_
