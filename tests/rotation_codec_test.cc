#include "mechanisms/rotation_codec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "secagg/modular.h"

namespace smm::mechanisms {
namespace {

RotationCodec::Options BasicOptions() {
  RotationCodec::Options o;
  o.dim = 64;
  o.gamma = 8.0;
  o.modulus = 1 << 12;
  o.rotation_seed = 3;
  return o;
}

TEST(RotationCodecTest, CreateValidates) {
  auto o = BasicOptions();
  o.dim = 48;
  EXPECT_FALSE(RotationCodec::Create(o).ok());
  o = BasicOptions();
  o.gamma = 0.0;
  EXPECT_FALSE(RotationCodec::Create(o).ok());
  o = BasicOptions();
  o.modulus = 1;
  EXPECT_FALSE(RotationCodec::Create(o).ok());
  EXPECT_TRUE(RotationCodec::Create(BasicOptions()).ok());
}

TEST(RotationCodecTest, DecodeInvertsRotateScaleOnIntegerizedValues) {
  auto codec = RotationCodec::Create(BasicOptions());
  ASSERT_TRUE(codec.ok());
  RandomGenerator rng(7);
  std::vector<double> x(64);
  for (double& v : x) v = rng.Gaussian(0.0, 0.5);
  auto g = codec->RotateScale(x);
  ASSERT_TRUE(g.ok());
  // Round to integers (the only lossy step), wrap, sum of one, decode.
  std::vector<int64_t> rounded(64);
  for (size_t j = 0; j < 64; ++j) {
    rounded[j] = static_cast<int64_t>(std::llround((*g)[j]));
  }
  int64_t overflows = 0;
  const auto wrapped = codec->Wrap(rounded, &overflows);
  EXPECT_EQ(overflows, 0);
  auto decoded = codec->Decode(wrapped);
  ASSERT_TRUE(decoded.ok());
  // Error per coordinate bounded by rounding/gamma spread by rotation:
  // ||error||_inf <= ||rounding error vector||_2 / gamma <= sqrt(d)*0.5/8.
  for (size_t j = 0; j < 64; ++j) {
    EXPECT_NEAR((*decoded)[j], x[j], std::sqrt(64.0) * 0.5 / 8.0);
  }
}

TEST(RotationCodecTest, WrapCountsOutOfRangeValues) {
  auto codec = RotationCodec::Create(BasicOptions());
  ASSERT_TRUE(codec.ok());
  const int64_t half = 1 << 11;  // m/2.
  std::vector<int64_t> values = {0, half - 1, half, -half, -half - 1, 42};
  int64_t overflows = 0;
  const auto wrapped = codec->Wrap(values, &overflows);
  EXPECT_EQ(overflows, 2);  // half and -half-1 are outside [-m/2, m/2).
  EXPECT_EQ(wrapped[0], 0u);
  EXPECT_EQ(secagg::CenterLift(wrapped[1], 1 << 12), half - 1);
}

TEST(RotationCodecTest, WrapOverflowAccountingMatchesCenterLiftWindow) {
  // The overflow count must flag exactly the values CenterLift cannot
  // round-trip, for either modulus parity — odd moduli have the symmetric
  // window [-(m-1)/2, (m-1)/2], so both boundary values are representable.
  for (uint64_t m : std::vector<uint64_t>{4, 5, 6, 7, 1021, 1024}) {
    auto o = BasicOptions();
    o.dim = 1;  // Power-of-two dim, modulus free.
    o.modulus = m;
    o.apply_rotation = false;
    auto codec = RotationCodec::Create(o);
    ASSERT_TRUE(codec.ok());
    const int64_t lo = -static_cast<int64_t>(m / 2);
    const int64_t hi = static_cast<int64_t>((m - 1) / 2);
    for (int64_t v = lo - 2; v <= hi + 2; ++v) {
      int64_t overflows = 0;
      const auto wrapped = codec->Wrap({v}, &overflows);
      const bool representable =
          secagg::CenterLift(wrapped[0], m) == v;
      EXPECT_EQ(overflows, representable ? 0 : 1)
          << "m=" << m << " v=" << v;
    }
  }
}

TEST(RotationCodecTest, WrapWithNullCounterDoesNotCrash) {
  auto codec = RotationCodec::Create(BasicOptions());
  ASSERT_TRUE(codec.ok());
  const auto wrapped = codec->Wrap({1, -1, 100000}, nullptr);
  EXPECT_EQ(wrapped.size(), 3u);
}

TEST(RotationCodecTest, GammaScalesEncodedMagnitude) {
  auto small = RotationCodec::Create(BasicOptions());
  auto o = BasicOptions();
  o.gamma = 16.0;
  auto large = RotationCodec::Create(o);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  std::vector<double> x(64, 0.1);
  auto gs = small->RotateScale(x);
  auto gl = large->RotateScale(x);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(gl.ok());
  for (size_t j = 0; j < 64; ++j) {
    EXPECT_NEAR((*gl)[j], 2.0 * (*gs)[j], 1e-9);
  }
}

TEST(RotationCodecTest, NoRotationModeIsPureScaling) {
  auto o = BasicOptions();
  o.apply_rotation = false;
  auto codec = RotationCodec::Create(o);
  ASSERT_TRUE(codec.ok());
  std::vector<double> x(64, 0.25);
  auto g = codec->RotateScale(x);
  ASSERT_TRUE(g.ok());
  for (double v : *g) EXPECT_NEAR(v, 2.0, 1e-12);  // 0.25 * gamma(8).
}

TEST(RotationCodecTest, DimensionMismatchesRejected) {
  auto codec = RotationCodec::Create(BasicOptions());
  ASSERT_TRUE(codec.ok());
  EXPECT_FALSE(codec->RotateScale(std::vector<double>(32, 0.0)).ok());
  EXPECT_FALSE(codec->Decode(std::vector<uint64_t>(32, 0)).ok());
}

}  // namespace
}  // namespace smm::mechanisms
