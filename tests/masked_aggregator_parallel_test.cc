// Thread-count invariance of the parallel masked-aggregation paths: mask
// expansion sharded over pairs, unmasking (with dropouts) sharded over
// survivors and recovery pairs, and the full AggregateParallel round must
// all be bit-identical to the sequential path for every thread count.
//
// SMM_THREADS (when set to a positive integer) adds an extra thread count to
// every invariance sweep, so the sanitizer CI jobs exercise the same tests
// at their configured concurrency.
#include "secagg/secure_aggregator.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"

namespace smm::secagg {
namespace {

std::vector<std::vector<uint64_t>> RandomInputs(int n, size_t dim, uint64_t m,
                                                uint64_t seed) {
  RandomGenerator rng(seed);
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) {
    v.resize(dim);
    for (auto& x : v) x = rng.UniformUint64(m);
  }
  return inputs;
}

std::vector<uint64_t> ExactSum(const std::vector<std::vector<uint64_t>>& in,
                               uint64_t m) {
  std::vector<uint64_t> sum(in[0].size(), 0);
  for (const auto& v : in) {
    for (size_t j = 0; j < v.size(); ++j) sum[j] = (sum[j] + v[j]) % m;
  }
  return sum;
}

/// Thread counts every invariance test sweeps: 1, 2, 8, plus SMM_THREADS
/// when the environment sets it to something else (the CI sanitizer jobs
/// export SMM_THREADS=8).
std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 8};
  const char* env = std::getenv("SMM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long threads = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && threads > 0 && threads <= 4096 &&
        threads != 1 && threads != 2 && threads != 8) {
      counts.push_back(static_cast<int>(threads));
    }
  }
  return counts;
}

MaskedAggregator::Options BasicOptions(int n, int threshold) {
  MaskedAggregator::Options o;
  o.num_participants = n;
  o.threshold = threshold;
  o.session_seed = 33;
  return o;
}

TEST(MaskedAggregatorParallelTest, MaskInputIsThreadCountInvariant) {
  const int n = 10;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 4));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 1 << 16;
  const size_t dim = 257;  // Deliberately not a multiple of the chunk count.
  const auto inputs = RandomInputs(n, dim, m, 11);
  for (int i = 0; i < n; ++i) {
    auto sequential = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(sequential.ok());
    for (int threads : ThreadCounts()) {
      ThreadPool pool(threads);
      auto parallel =
          (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m, &pool);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(*sequential, *parallel)
          << "participant " << i << " at " << threads << " threads";
    }
  }
}

TEST(MaskedAggregatorParallelTest, UnmaskSumWithDropoutsIsThreadCountInvariant) {
  const int n = 9;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 4));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 1 << 14;
  const size_t dim = 65;
  const auto inputs = RandomInputs(n, dim, m, 12);

  // Participants 1, 3, 5, 7 drop out after masking is configured.
  const std::vector<int> survivors = {0, 2, 4, 6, 8};
  std::vector<std::vector<uint64_t>> masked;
  for (int i : survivors) {
    auto mi = (*agg)->MaskInput(i, inputs[static_cast<size_t>(i)], m);
    ASSERT_TRUE(mi.ok());
    masked.push_back(std::move(*mi));
  }
  auto sequential = (*agg)->UnmaskSum(masked, survivors, dim, m);
  ASSERT_TRUE(sequential.ok());

  std::vector<uint64_t> expected(dim, 0);
  for (int i : survivors) {
    for (size_t j = 0; j < dim; ++j) {
      expected[j] = (expected[j] + inputs[static_cast<size_t>(i)][j]) % m;
    }
  }
  EXPECT_EQ(*sequential, expected);

  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    auto parallel = (*agg)->UnmaskSum(masked, survivors, dim, m, &pool);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    EXPECT_EQ(*sequential, *parallel) << threads << " threads";
  }
}

TEST(MaskedAggregatorParallelTest, AggregateParallelMatchesAggregate) {
  const int n = 12;
  auto agg = MaskedAggregator::Create(BasicOptions(n, 6));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 1 << 18;
  const size_t dim = 96;
  const auto inputs = RandomInputs(n, dim, m, 13);
  auto sequential = (*agg)->Aggregate(inputs, m);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(*sequential, ExactSum(inputs, m));
  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    auto parallel = (*agg)->AggregateParallel(inputs, m, &pool);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    EXPECT_EQ(*sequential, *parallel) << threads << " threads";
  }
}

TEST(MaskedAggregatorParallelTest, ParallelErrorsStillPropagate) {
  auto agg = MaskedAggregator::Create(BasicOptions(5, 4));
  ASSERT_TRUE(agg.ok());
  const uint64_t m = 256;
  ThreadPool pool(4);
  // Below the Shamir threshold: must fail identically in parallel mode.
  std::vector<std::vector<uint64_t>> masked(2, std::vector<uint64_t>(4, 0));
  EXPECT_FALSE((*agg)->UnmaskSum(masked, {0, 1}, 4, m, &pool).ok());
  // Dimension mismatch among masked inputs.
  std::vector<std::vector<uint64_t>> ragged(4, std::vector<uint64_t>(4, 0));
  ragged[2].resize(3);
  EXPECT_FALSE((*agg)->UnmaskSum(ragged, {0, 1, 2, 3}, 4, m, &pool).ok());
}

}  // namespace
}  // namespace smm::secagg
