// Ablation: how each method's *rounding strategy* inflates the sensitivity
// its noise must be calibrated to, isolated from the noise distribution.
// For a unit-norm input scaled by gamma in dimension d:
//   - SMM (mixture):          c = gamma^2            (no inflation)
//   - conditional rounding:   Eq. (6) bound^2 ~ gamma^2 + d/4 + ...
//   - stochastic rounding:    worst case (gamma + sqrt(d))^2
// The table prints the effective L2^2 sensitivity and the aggregate noise
// variance each method must inject for (eps = 3, delta = 1e-5), across
// gamma. This is the mechanism behind Figure 1: at small gamma the d/4
// overhead dominates everything.
#include <cmath>
#include <cstdio>
#include <vector>

#include "accounting/calibration.h"
#include "bench_util.h"
#include "mechanisms/conditional_rounding.h"

namespace smm::bench {
namespace {

void Run(Scale scale) {
  const size_t d = scale == Scale::kFull ? 65536 : 4096;
  const double eps = 3.0, delta = 1e-5;
  const std::vector<double> gammas = {4.0, 16.0, 64.0, 256.0, 1024.0};

  std::printf("Ablation: rounding strategy vs sensitivity inflation\n");
  std::printf("d=%zu  eps=%g  delta=%g  (single release, n=100)\n\n", d, eps,
              delta);
  std::printf("%-10s%16s%16s%16s%18s%18s\n", "gamma", "SMM c",
              "cond-round L2^2", "stoch-round L2^2", "SMM noise var",
              "cond-round var");

  for (double gamma : gammas) {
    const double c = gamma * gamma;
    const double cond_bound =
        mechanisms::ConditionalRoundingNormBound(gamma, 1.0, d,
                                                 std::exp(-0.5));
    const double cond_l2sq = cond_bound * cond_bound;
    const double stoch_l2 = gamma + std::sqrt(static_cast<double>(d));
    const double stoch_l2sq = stoch_l2 * stoch_l2;

    auto smm = accounting::CalibrateSmm(c, 1.0, 1, eps, delta);
    auto cond = accounting::CalibrateSkellamAgarwal(
        cond_l2sq, std::min(std::sqrt(static_cast<double>(d)) * cond_bound,
                            cond_l2sq),
        1.0, 1, eps, delta);
    const double smm_var = smm.ok() ? 2.0 * smm->noise_parameter : -1.0;
    const double cond_var = cond.ok() ? 2.0 * cond->noise_parameter : -1.0;

    std::printf("%-10g%16s%16s%16s%18s%18s\n", gamma, FormatSci(c).c_str(),
                FormatSci(cond_l2sq).c_str(), FormatSci(stoch_l2sq).c_str(),
                FormatSci(smm_var).c_str(), FormatSci(cond_var).c_str());
  }
  std::printf(
      "\nReading: noise variance scales with the sensitivity each rounding\n"
      "strategy must defend; SMM's mixture encoding keeps it at gamma^2.\n");
}

}  // namespace
}  // namespace smm::bench

int main(int argc, char** argv) {
  smm::bench::Run(smm::bench::ParseScale(argc, argv));
  return 0;
}
