#include "secagg/sharded_coordinator.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "common/simd.h"

namespace smm::secagg {

namespace {

/// Deterministic binary tree reduction of same-range partials: pairwise
/// AddModVec rounds until one remains. Exact modular addition makes any
/// reduction shape bit-identical; the tree halves the dependency depth for
/// a future parallel merge.
PartialSumMsg ReduceRangeGroup(std::vector<PartialSumMsg> group, uint64_t m) {
  while (group.size() > 1) {
    std::vector<PartialSumMsg> next;
    next.reserve((group.size() + 1) / 2);
    for (size_t i = 0; i + 1 < group.size(); i += 2) {
      PartialSumMsg merged = std::move(group[i]);
      simd::AddModVec(merged.sum.data(), group[i + 1].sum.data(),
                      merged.sum.size(), m);
      merged.num_contributors += group[i + 1].num_contributors;
      next.push_back(std::move(merged));
    }
    if (group.size() % 2 == 1) next.push_back(std::move(group.back()));
    group = std::move(next);
  }
  return std::move(group.front());
}

}  // namespace

StatusOr<SumMsg> MergePartialSums(std::vector<PartialSumMsg> partials,
                                  size_t dim, uint64_t modulus) {
  if (dim < 1) return InvalidArgumentError("merge dimension must be >= 1");
  if (modulus < 2) return InvalidArgumentError("merge modulus must be >= 2");
  if (partials.empty()) {
    return InvalidArgumentError("no partial sums to merge");
  }
  for (const PartialSumMsg& partial : partials) {
    SMM_RETURN_IF_ERROR(ValidateShardSpec(partial.shard));
    if (partial.shard.shard_dim != partial.sum.size()) {
      return InvalidArgumentError(
          "partial sum shard_dim disagrees with its payload size");
    }
    if (partial.modulus != modulus) {
      return InvalidArgumentError(
          "partial sum modulus does not match the round");
    }
    if (uint64_t{partial.shard.dim_offset} + partial.shard.shard_dim > dim) {
      return InvalidArgumentError(
          "partial sum range extends past the round dimension");
    }
  }
  // Group by dimension range, preserving arrival order within a group.
  std::stable_sort(partials.begin(), partials.end(),
                   [](const PartialSumMsg& a, const PartialSumMsg& b) {
                     if (a.shard.dim_offset != b.shard.dim_offset) {
                       return a.shard.dim_offset < b.shard.dim_offset;
                     }
                     return a.shard.shard_dim < b.shard.shard_dim;
                   });
  SumMsg out;
  out.modulus = modulus;
  out.num_contributors = 0;
  out.sum.assign(dim, 0);
  size_t covered = 0;
  size_t i = 0;
  while (i < partials.size()) {
    const uint32_t offset = partials[i].shard.dim_offset;
    const uint32_t width = partials[i].shard.shard_dim;
    size_t j = i + 1;
    while (j < partials.size() && partials[j].shard.dim_offset == offset &&
           partials[j].shard.shard_dim == width) {
      ++j;
    }
    if (offset != covered) {
      return InvalidArgumentError(
          offset < covered
              ? "partial sum ranges overlap"
              : "partial sum ranges leave a gap in the round dimension");
    }
    PartialSumMsg reduced = ReduceRangeGroup(
        std::vector<PartialSumMsg>(std::make_move_iterator(partials.begin() + i),
                                   std::make_move_iterator(partials.begin() + j)),
        modulus);
    // Stitch the reduced range into the zero-initialized output with the
    // same AddModVec the in-group reduction uses — arithmetic stays uniform
    // and exact whether a slot is first-placed or combined.
    simd::AddModVec(out.sum.data() + offset, reduced.sum.data(), width,
                    modulus);
    out.num_contributors =
        std::max(out.num_contributors, reduced.num_contributors);
    covered += width;
    i = j;
  }
  if (covered != dim) {
    return InvalidArgumentError(
        "partial sum ranges leave a gap in the round dimension");
  }
  return out;
}

StatusOr<std::unique_ptr<ShardedCoordinator>> ShardedCoordinator::Open(
    SecureAggregator& aggregator, const Options& options) {
  SMM_ASSIGN_OR_RETURN(ShardPlan plan,
                       ShardPlan::Create(options.dim, options.shard_count));
  std::unique_ptr<ShardedCoordinator> coordinator(new ShardedCoordinator(
      plan, options.modulus, options.pool, aggregator));
  const size_t shards = plan.shard_count();
  coordinator->shard_aggregators_.resize(shards);
  coordinator->sessions_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    AggregationSession::Options session_options;
    session_options.dim = plan.Width(s);
    session_options.modulus = options.modulus;
    session_options.pool = options.pool;
    session_options.tile_rows = options.tile_rows;
    // At one shard the session stays plain and unsharded, so the K = 1
    // round is exactly the pre-shard pipeline (version-1 frames,
    // byte-identical wire bytes and sum).
    if (shards > 1) {
      SMM_ASSIGN_OR_RETURN(
          coordinator->shard_aggregators_[s],
          aggregator.CreateShardAggregator(s, shards));
      session_options.expected_shard = plan.Spec(s);
    }
    SecureAggregator& shard_aggregator =
        coordinator->shard_aggregators_[s] ? *coordinator->shard_aggregators_[s]
                                           : aggregator;
    SMM_ASSIGN_OR_RETURN(
        coordinator->sessions_.emplace_back(),
        AggregationSession::Open(shard_aggregator, session_options));
  }
  return coordinator;
}

StatusOr<std::vector<std::vector<uint8_t>>>
ShardedCoordinator::EncodeShardedContribution(
    int participant, const std::vector<uint64_t>& input) const {
  if (input.size() != plan_.dim()) {
    return InvalidArgumentError(
        "contribution size disagrees with the round dimension");
  }
  const size_t shards = plan_.shard_count();
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(shards);
  if (shards == 1) {
    SMM_ASSIGN_OR_RETURN(auto prepared,
                         base_->PrepareContribution(participant, input,
                                                    modulus_, pool_));
    ContributionMsg msg;
    msg.participant_id = participant;
    msg.modulus = modulus_;
    msg.payload = std::move(prepared);
    SMM_ASSIGN_OR_RETURN(frames.emplace_back(), EncodeFrame(msg));
    return frames;
  }
  for (size_t s = 0; s < shards; ++s) {
    SMM_ASSIGN_OR_RETURN(auto slice, plan_.Slice(input, s));
    SMM_ASSIGN_OR_RETURN(
        auto prepared,
        ShardAggregator(s).PrepareContribution(participant, slice, modulus_,
                                               pool_));
    ContributionMsg msg;
    msg.participant_id = participant;
    msg.modulus = modulus_;
    msg.payload = std::move(prepared);
    msg.shard = plan_.Spec(s);
    SMM_ASSIGN_OR_RETURN(frames.emplace_back(), EncodeFrame(msg));
  }
  return frames;
}

Status ShardedCoordinator::HandleFrame(ByteSpan frame) {
  auto message = DecodeFrame(frame);
  if (!message.ok()) {
    ++rejected_frames_;
    return message.status();
  }
  if (auto* contribution = std::get_if<ContributionMsg>(&*message)) {
    if (plan_.shard_count() == 1) {
      // The single worker enforces the unsharded contract (a sharded frame
      // addressed at a 1-shard round is rejected there).
      return sessions_[0]->HandleContribution(std::move(*contribution));
    }
    if (!contribution->shard.has_value()) {
      ++rejected_frames_;
      return InvalidArgumentError(
          "unsharded contribution sent to a sharded round");
    }
    const uint32_t shard = contribution->shard->shard_index;
    if (shard >= sessions_.size()) {
      ++rejected_frames_;
      return InvalidArgumentError(
          "contribution shard index out of range for the round");
    }
    // The worker validates the full spec (offset/width/count) against its
    // expected_shard; a mismatched spec is rejected there.
    return sessions_[shard]->HandleContribution(std::move(*contribution));
  }
  if (std::get_if<SharesMsg>(&*message) != nullptr) {
    ++shares_received_;
    return OkStatus();
  }
  if (auto* partial = std::get_if<PartialSumMsg>(&*message)) {
    if (partial->modulus != modulus_) {
      ++rejected_frames_;
      return InvalidArgumentError(
          "partial sum modulus does not match the round");
    }
    if (uint64_t{partial->shard.dim_offset} + partial->shard.shard_dim >
        plan_.dim()) {
      ++rejected_frames_;
      return InvalidArgumentError(
          "partial sum range extends past the round dimension");
    }
    remote_partials_.push_back(std::move(*partial));
    return OkStatus();
  }
  ++rejected_frames_;
  return InvalidArgumentError(
      "sum frames are coordinator-outbound and cannot be received");
}

Status ShardedCoordinator::DrainTransport(FrameTransport& transport) {
  while (auto frame = transport.Receive()) {
    SMM_RETURN_IF_ERROR(HandleFrame(*frame));
  }
  return OkStatus();
}

StatusOr<SumMsg> ShardedCoordinator::Finalize() {
  if (plan_.shard_count() == 1 && remote_partials_.empty()) {
    return sessions_[0]->Finalize();
  }
  std::vector<PartialSumMsg> partials = std::move(remote_partials_);
  partials.reserve(partials.size() + sessions_.size());
  for (size_t s = 0; s < sessions_.size(); ++s) {
    SMM_ASSIGN_OR_RETURN(SumMsg shard_sum, sessions_[s]->Finalize());
    PartialSumMsg partial;
    partial.modulus = shard_sum.modulus;
    partial.num_contributors = shard_sum.num_contributors;
    partial.shard = plan_.Spec(s);
    partial.sum = std::move(shard_sum.sum);
    partials.push_back(std::move(partial));
  }
  return MergePartialSums(std::move(partials), plan_.dim(), modulus_);
}

size_t ShardedCoordinator::contributions() const {
  size_t total = 0;
  for (const auto& session : sessions_) total += session->contributions();
  return total;
}

size_t ShardedCoordinator::rejected_frames() const {
  size_t total = rejected_frames_;
  for (const auto& session : sessions_) total += session->rejected_frames();
  return total;
}

}  // namespace smm::secagg
