#include "nn/optimizer.h"

#include <cmath>

namespace smm::nn {

Status SgdOptimizer::Step(std::vector<double>& params,
                          const std::vector<double>& grad) {
  if (grad.size() != params.size()) {
    return InvalidArgumentError("gradient/parameter size mismatch");
  }
  if (momentum_ != 0.0) {
    if (velocity_.empty()) velocity_.assign(params.size(), 0.0);
    for (size_t i = 0; i < params.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] + grad[i];
      params[i] -= learning_rate_ * velocity_[i];
    }
  } else {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i] -= learning_rate_ * grad[i];
    }
  }
  return OkStatus();
}

Status AdamOptimizer::Step(std::vector<double>& params,
                           const std::vector<double>& grad) {
  if (grad.size() != params.size()) {
    return InvalidArgumentError("gradient/parameter size mismatch");
  }
  if (m_.empty()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
  return OkStatus();
}

}  // namespace smm::nn
