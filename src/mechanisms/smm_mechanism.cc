#include "mechanisms/smm_mechanism.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/simd.h"
#include "mechanisms/clipping.h"
#include "mechanisms/conditional_rounding.h"

namespace smm::mechanisms {

StatusOr<SkellamMixtureNoiser> SkellamMixtureNoiser::Create(
    double lambda, sampling::SamplerMode mode) {
  SMM_ASSIGN_OR_RETURN(auto sampler,
                       sampling::SkellamSampler::Create(lambda, mode));
  return SkellamMixtureNoiser(std::move(sampler));
}

int64_t SkellamMixtureNoiser::Perturb(double x, RandomGenerator& rng) {
  const double floor_x = std::floor(x);
  const double p = x - floor_x;  // In [0, 1).
  int64_t base = static_cast<int64_t>(floor_x);
  if (rng.Bernoulli(p)) base += 1;  // ceil(x) branch (Lines 6-7 of Alg. 1).
  return base + sampler_.Sample(rng);
}

std::vector<int64_t> SkellamMixtureNoiser::PerturbVector(
    const std::vector<double>& x, RandomGenerator& rng) {
  std::vector<int64_t> out;
  std::vector<int64_t> noise;
  PerturbVectorInto(x, rng, out, noise);
  return out;
}

void SkellamMixtureNoiser::PerturbVectorInto(const std::vector<double>& x,
                                             RandomGenerator& rng,
                                             std::vector<int64_t>& out,
                                             std::vector<int64_t>& noise) {
  // Phase 1 (Lines 5-8 of Algorithm 2): the floor/ceil Bernoulli mixture is
  // exactly stochastic rounding.
  StochasticRoundInto(x, rng, out);
  // Phase 2 (Line 9): one Skellam block for the whole vector.
  const size_t n = x.size();
  noise.resize(n);
  sampler_.SampleBlock(n, noise.data(), rng);
  simd::AddI64InPlace(out.data(), noise.data(), n);
}

StatusOr<std::unique_ptr<SmmMechanism>> SmmMechanism::Create(
    const Options& options) {
  RotationCodec::Options codec_options;
  codec_options.dim = options.dim;
  codec_options.gamma = options.gamma;
  codec_options.modulus = options.modulus;
  codec_options.rotation_seed = options.rotation_seed;
  codec_options.apply_rotation = options.apply_rotation;
  SMM_ASSIGN_OR_RETURN(auto codec, RotationCodec::Create(codec_options));
  if (!(options.c > 0.0)) {
    return InvalidArgumentError("clip threshold c must be > 0");
  }
  if (!(options.delta_inf > 0.0)) {
    return InvalidArgumentError("delta_inf must be > 0");
  }
  SMM_ASSIGN_OR_RETURN(
      auto noiser,
      SkellamMixtureNoiser::Create(options.lambda, options.sampler_mode));
  return std::unique_ptr<SmmMechanism>(
      new SmmMechanism(options, std::move(codec), std::move(noiser)));
}

SmmMechanism::SmmMechanism(Options options, RotationCodec codec,
                           SkellamMixtureNoiser noiser)
    : RotatedModularMechanism(std::move(codec)),
      options_(options),
      noiser_(std::move(noiser)) {
  // Fused-pipeline description of PerturbRotatedInto: the Algorithm 5 clip
  // with the same floored Linf bound SmmClip derives, then plain stochastic
  // rounding, then Skellam noise. `this` is heap-allocated by Create and
  // never moves, so the callback's capture stays valid for the mechanism's
  // lifetime.
  FusedPerturbSpec spec;
  spec.clip = FusedPerturbSpec::Clip::kSmm;
  spec.smm_c = options_.c;
  spec.smm_delta_inf = std::max(1.0, std::floor(options_.delta_inf));
  spec.sample_block = [this](size_t n, int64_t* out, RandomGenerator& rng) {
    noiser_.SampleNoiseBlock(n, out, rng);
  };
  set_fused_perturb_spec(std::move(spec));
}

Status SmmMechanism::PerturbRotatedInto(RandomGenerator& rng,
                                        EncodeWorkspace& workspace,
                                        EncodeCounters& counters) {
  (void)counters;  // SMM tracks no events beyond the shared overflow count.
  // Line 3 of Algorithm 4: the mixed-sensitivity clip of Algorithm 5.
  SMM_RETURN_IF_ERROR(SmmClip(workspace.real, options_.c, options_.delta_inf));
  // Lines 4-10: the Skellam mixture perturbation.
  noiser_.PerturbVectorInto(workspace.real, rng, workspace.ints,
                            workspace.noise);
  return OkStatus();
}

}  // namespace smm::mechanisms
