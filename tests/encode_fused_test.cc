// Property tests for the fused single-pass blocked encode pipeline: for
// every mechanism, EncodeBatch (the fused three-sweep path) must be
// bit-identical to EncodeBatchUnfused (the historical per-pass path) —
// encodings, overflow accounting, and rounding-rejection accounting — across
// the full modulus range, raw input lengths padded to non-trivial
// power-of-two dims, rows spanning multiple 2048-element fused blocks,
// thread counts {1, 2, 8}, and every SIMD dispatch mode. Two independently
// constructed mechanism instances run the two paths, so the counters can be
// compared as totals without any reset plumbing.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/dgm_mechanism.h"
#include "mechanisms/distributed_mechanism.h"
#include "mechanisms/smm_mechanism.h"

namespace smm::mechanisms {
namespace {

constexpr size_t kNumParticipants = 9;
constexpr uint64_t kStreamSeed = 20220831;

constexpr uint64_t kModuli[] = {
    1ull << 16,
    1ull << 32,
    (1ull << 63) + 1,         // Odd, just past the int64 boundary.
    18446744073709551557ull,  // 2^64 - 59.
};

/// Raw (pre-padding) input lengths, padded below to the next power of two:
/// empty input, sub-lane lengths, one exact power of two, and 257 (a
/// non-power-of-two that pads to 512, leaving a 255-zero tail).
constexpr size_t kRawLengths[] = {0, 1, 5, 64, 257};

size_t PaddedDim(size_t raw) {
  size_t d = 1;
  while (d < raw) d <<= 1;
  return d;
}

/// Inputs of length `dim` whose first `raw` coordinates are Gaussian and
/// whose tail is the zero padding a caller with a raw-length vector would
/// append.
std::vector<std::vector<double>> MakeInputs(size_t raw, size_t dim) {
  RandomGenerator rng(31 * raw + dim);
  std::vector<std::vector<double>> inputs(kNumParticipants,
                                          std::vector<double>(dim, 0.0));
  for (auto& x : inputs) {
    for (size_t j = 0; j < raw; ++j) x[j] = rng.Gaussian(0.0, 0.05);
  }
  return inputs;
}

struct MechanismFactory {
  std::string name;
  std::function<std::unique_ptr<RotatedModularMechanism>(uint64_t m,
                                                         size_t dim)>
      make;
};

std::vector<MechanismFactory> AllFactories() {
  std::vector<MechanismFactory> out;
  out.push_back({"SMM", [](uint64_t m, size_t dim) {
                   SmmMechanism::Options o;
                   o.dim = dim;
                   o.gamma = 16.0;
                   o.c = 256.0;
                   o.delta_inf = 8.0;
                   o.lambda = 1.5;
                   o.modulus = m;
                   o.rotation_seed = 7;
                   return std::unique_ptr<RotatedModularMechanism>(
                       SmmMechanism::Create(o).value());
                 }});
  out.push_back({"DGM", [](uint64_t m, size_t dim) {
                   DgmMechanism::Options o;
                   o.dim = dim;
                   o.gamma = 16.0;
                   o.c = 256.0;
                   o.delta_inf = 8.0;
                   o.sigma = 1.5;
                   o.modulus = m;
                   o.rotation_seed = 7;
                   return std::unique_ptr<RotatedModularMechanism>(
                       DgmMechanism::Create(o).value());
                 }});
  out.push_back({"DDG", [](uint64_t m, size_t dim) {
                   DdgMechanism::Options o;
                   o.dim = dim;
                   o.gamma = 16.0;
                   o.l2_bound = 1.0;
                   o.sigma = 1.5;
                   o.modulus = m;
                   o.rotation_seed = 7;
                   return std::unique_ptr<RotatedModularMechanism>(
                       DdgMechanism::Create(o).value());
                 }});
  out.push_back({"Skellam", [](uint64_t m, size_t dim) {
                   AgarwalSkellamMechanism::Options o;
                   o.dim = dim;
                   o.gamma = 16.0;
                   o.l2_bound = 1.0;
                   o.lambda = 1.5;
                   o.modulus = m;
                   o.rotation_seed = 7;
                   return std::unique_ptr<RotatedModularMechanism>(
                       AgarwalSkellamMechanism::Create(o).value());
                 }});
  out.push_back({"cpSGD", [](uint64_t m, size_t dim) {
                   CpSgdMechanism::Options o;
                   o.dim = dim;
                   o.gamma = 16.0;
                   o.l2_bound = 1.0;
                   o.binomial_trials = 128;
                   o.modulus = m;
                   o.rotation_seed = 7;
                   return std::unique_ptr<RotatedModularMechanism>(
                       CpSgdMechanism::Create(o).value());
                 }});
  return out;
}

struct EncodeRun {
  std::vector<std::vector<uint64_t>> encoded;
  int64_t overflows = 0;
  int64_t rejections = 0;
};

int64_t Rejections(const RotatedModularMechanism& mechanism) {
  if (const auto* ddg = dynamic_cast<const DdgMechanism*>(&mechanism)) {
    return ddg->rounding_rejections();
  }
  return 0;
}

/// Runs the fused EncodeBatch through EncodeBatchParallel (virtual
/// dispatch), with fresh jump-ahead streams.
EncodeRun RunFused(RotatedModularMechanism& mechanism,
                   const std::vector<std::vector<double>>& inputs,
                   ThreadPool* pool) {
  RandomGenerator rng(kStreamSeed);
  std::vector<RandomGenerator> streams =
      MakeParticipantStreams(rng, inputs.size());
  EncodeRun run;
  run.encoded = EncodeBatchParallel(mechanism, inputs, streams, pool).value();
  run.overflows = mechanism.overflow_count();
  run.rejections = Rejections(mechanism);
  return run;
}

/// Runs the historical per-pass EncodeBatchUnfused sequentially with the
/// identical streams.
EncodeRun RunUnfused(RotatedModularMechanism& mechanism,
                     const std::vector<std::vector<double>>& inputs) {
  RandomGenerator rng(kStreamSeed);
  std::vector<RandomGenerator> streams =
      MakeParticipantStreams(rng, inputs.size());
  EncodeRun run;
  run.encoded.resize(inputs.size());
  EncodeWorkspace workspace;
  EXPECT_TRUE(mechanism
                  .EncodeBatchUnfused(inputs, 0, inputs.size(), streams.data(),
                                      workspace, &run.encoded)
                  .ok());
  run.overflows = mechanism.overflow_count();
  run.rejections = Rejections(mechanism);
  return run;
}

TEST(EncodeFusedTest, FusedMatchesUnfusedAcrossModuliAndPaddedDims) {
  for (const auto& factory : AllFactories()) {
    for (uint64_t m : kModuli) {
      for (size_t raw : kRawLengths) {
        const size_t dim = PaddedDim(raw);
        const auto inputs = MakeInputs(raw, dim);
        // Independent instances so the counters compare as totals.
        auto fused = factory.make(m, dim);
        auto unfused = factory.make(m, dim);
        const EncodeRun f = RunFused(*fused, inputs, /*pool=*/nullptr);
        const EncodeRun u = RunUnfused(*unfused, inputs);
        EXPECT_EQ(u.encoded, f.encoded)
            << factory.name << " m=" << m << " raw=" << raw;
        EXPECT_EQ(u.overflows, f.overflows)
            << factory.name << " m=" << m << " raw=" << raw;
        EXPECT_EQ(u.rejections, f.rejections)
            << factory.name << " m=" << m << " raw=" << raw;
      }
    }
  }
}

TEST(EncodeFusedTest, FusedMatchesUnfusedAtEveryThreadAndDispatchMode) {
  constexpr uint64_t kModulus = 1ull << 32;
  for (const auto& factory : AllFactories()) {
    for (size_t dim : {size_t{64}, size_t{512}}) {
      const auto inputs = MakeInputs(dim, dim);
      // Scalar-dispatch unfused run: the reference everything else must hit.
      simd::SetDispatchModeForTest(simd::DispatchMode::kForceScalar);
      auto reference_mechanism = factory.make(kModulus, dim);
      const EncodeRun reference = RunUnfused(*reference_mechanism, inputs);
      for (auto dispatch : {simd::DispatchMode::kForceScalar,
                            simd::DispatchMode::kForceAvx2,
                            simd::DispatchMode::kAuto}) {
        simd::SetDispatchModeForTest(dispatch);
        for (int threads : {1, 2, 8}) {
          ThreadPool pool(threads);
          auto fused = factory.make(kModulus, dim);
          const EncodeRun f = RunFused(*fused, inputs, &pool);
          EXPECT_EQ(reference.encoded, f.encoded)
              << factory.name << " dim=" << dim << " threads=" << threads
              << " dispatch=" << static_cast<int>(dispatch);
          EXPECT_EQ(reference.overflows, f.overflows)
              << factory.name << " dim=" << dim << " threads=" << threads;
          EXPECT_EQ(reference.rejections, f.rejections)
              << factory.name << " dim=" << dim << " threads=" << threads;
        }
      }
      simd::SetDispatchModeForTest(simd::DispatchMode::kAuto);
    }
  }
}

TEST(EncodeFusedTest, MultiBlockRowsChainBitIdentically) {
  // dim 4096 spans two 2048-element fused blocks, so the chained clip
  // reductions, the blockwise rounding, and the blockwise noise sampling
  // all cross a block boundary; 2^16 keeps wrap-around (overflow-count)
  // events in play at this gamma.
  constexpr size_t kDim = 4096;
  for (uint64_t m : {1ull << 16, 18446744073709551557ull}) {
    for (const auto& factory : AllFactories()) {
      const auto inputs = MakeInputs(kDim, kDim);
      auto fused = factory.make(m, kDim);
      auto unfused = factory.make(m, kDim);
      const EncodeRun f = RunFused(*fused, inputs, /*pool=*/nullptr);
      const EncodeRun u = RunUnfused(*unfused, inputs);
      EXPECT_EQ(u.encoded, f.encoded) << factory.name << " m=" << m;
      EXPECT_EQ(u.overflows, f.overflows) << factory.name << " m=" << m;
      EXPECT_EQ(u.rejections, f.rejections) << factory.name << " m=" << m;
    }
  }
}

}  // namespace
}  // namespace smm::mechanisms
