#!/usr/bin/env python3
"""Diffs two bench JSON artifacts and prints per-section speedup lines, so
the per-PR perf trajectory is visible in CI logs.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--fail-below R]

Handles both artifact shapes and picks the diff automatically:

  * bench_matrix artifacts (schema_version + scenarios): runs are matched
    by (scenario, label, params) key. Scenarios marked "stable": true gate
    the merge — with --fail-below R, exits 1 when any stable run's
    items_per_sec ratio (new/old; > 1 is faster) drops below R, or when any
    current run reports bit_identical false. Non-stable scenarios print
    informational ratios only.
  * legacy bench_scaling_threads artifacts: compares, per thread-scaling
    section, the best single-thread seconds and the highest-thread-count
    seconds, and, per SIMD kernel, the dispatched elements/sec; only the
    simd_kernels ratios gate under --fail-below.

In both shapes the gated set is deliberate: those loops are short,
allocation-free, and best-of-N, so a 2x drop means a real kernel
regression, not scheduler noise. The wall-time sections (thread scaling,
end-to-end encode, TCP server) stay informational at any threshold,
because shared CI runners jitter far too much to gate merges on them.

A missing or unreadable baseline is not an error — the first run of a
fresh trajectory prints the current numbers and exits 0, so the CI job
that seeds the baseline cache passes. Mismatched scales or mismatched
artifact shapes are likewise informational-only.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def fmt_ratio(ratio):
    arrow = "+" if ratio >= 1.0 else "-"
    return f"{ratio:6.2f}x ({arrow})"


def section_map(report, key, name_field="name"):
    return {s[name_field]: s for s in report.get(key, [])}


def print_current_only(current):
    print("no readable baseline; current numbers (seeding the trajectory):")
    for s in current.get("sections", []):
        secs = s["seconds"]
        print(f"  BENCH_SECTION section={s['name']} t1={secs[0]:.3e}s "
              f"t{s['threads'][-1]}={secs[-1]:.3e}s")
    for k in current.get("simd_kernels", []):
        print(f"  BENCH_SIMD kernel={k['name']} "
              f"dispatch_eps={k['dispatch_eps']:.3e} "
              f"speedup_vs_scalar={k['speedup']:.2f}x")


def is_matrix(report):
    return report.get("bench") == "bench_matrix" and "scenarios" in report


def run_key(scenario_name, run):
    p = run.get("params", {})
    return (scenario_name, run.get("label"), p.get("dim"),
            p.get("participants"), p.get("dispatch"), p.get("threads"))


def matrix_run_map(report):
    runs = {}
    for scenario in report.get("scenarios", []):
        for run in scenario.get("runs", []):
            runs[run_key(scenario["name"], run)] = run
    return runs


def print_matrix_current_only(current):
    print("no readable baseline; current numbers (seeding the trajectory):")
    for scenario in current.get("scenarios", []):
        tag = "stable" if scenario.get("stable") else "info"
        for run in scenario.get("runs", []):
            print(f"  BENCH_POINT [{tag}] {scenario['name']}/{run['label']} "
                  f"threads={run['params']['threads']} "
                  f"items_per_sec={run['items_per_sec']:.3e} "
                  f"bit_identical={run['bit_identical']}")


def diff_matrix(baseline, current, fail_below):
    """Diffs two bench_matrix artifacts; only stable scenarios gate."""
    print(f"bench matrix regression check: "
          f"baseline scale={baseline.get('scale')} "
          f"vs current scale={current.get('scale')} "
          f"(dispatch {baseline.get('host', {}).get('simd_dispatch', '?')} "
          f"-> {current.get('host', {}).get('simd_dispatch', '?')})")
    if baseline.get("scale") != current.get("scale"):
        print("  scales differ; ratios are not comparable — "
              "printing current only")
        print_matrix_current_only(current)
        return 0

    base_runs = matrix_run_map(baseline)
    worst = None
    broken = []
    for scenario in current.get("scenarios", []):
        stable = bool(scenario.get("stable"))
        tag = "stable" if stable else "info"
        for run in scenario.get("runs", []):
            if not run.get("bit_identical", True):
                broken.append(f"{scenario['name']}/{run['label']}")
            b = base_runs.get(run_key(scenario["name"], run))
            if b is None or not b.get("items_per_sec"):
                print(f"  BENCH_DIFF [{tag}] "
                      f"{scenario['name']}/{run['label']} (new point) "
                      f"items_per_sec={run['items_per_sec']:.3e}")
                continue
            r = run["items_per_sec"] / b["items_per_sec"]
            if stable:
                worst = min(worst, r) if worst is not None else r
            print(f"  BENCH_DIFF [{tag}] "
                  f"{scenario['name']}/{run['label']} "
                  f"threads={run['params']['threads']} "
                  f"throughput_ratio={fmt_ratio(r)} "
                  f"bit_identical={run['bit_identical']}")

    if broken:
        print(f"FAIL: bit-identity violated in current artifact: "
              f"{', '.join(broken)}")
        return 1
    if fail_below is not None and worst is not None and worst < fail_below:
        print(f"FAIL: worst stable-scenario throughput ratio {worst:.2f} "
              f"below threshold {fail_below}")
        return 1
    return 0


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    fail_below = None
    if "--fail-below" in argv:
        fail_below = float(argv[argv.index("--fail-below") + 1])

    try:
        current = load(argv[2])
    except (OSError, ValueError) as e:
        print(f"cannot read current report {argv[2]}: {e}")
        return 1
    try:
        baseline = load(argv[1])
    except (OSError, ValueError):
        if is_matrix(current):
            print_matrix_current_only(current)
        else:
            print_current_only(current)
        return 0

    if is_matrix(current) != is_matrix(baseline):
        print("artifact shapes differ (legacy vs matrix); "
              "not comparable — printing current only")
        if is_matrix(current):
            print_matrix_current_only(current)
        else:
            print_current_only(current)
        return 0
    if is_matrix(current):
        return diff_matrix(baseline, current, fail_below)

    print(f"bench regression check: baseline scale={baseline.get('scale')} "
          f"vs current scale={current.get('scale')} "
          f"(dispatch {baseline.get('simd_dispatch', '?')} -> "
          f"{current.get('simd_dispatch', '?')})")
    if baseline.get("scale") != current.get("scale"):
        print("  scales differ; ratios are not comparable — "
              "printing current only")
        print_current_only(current)
        return 0

    base_sections = section_map(baseline, "sections")
    for s in current.get("sections", []):
        b = base_sections.get(s["name"])
        if b is None or not b["seconds"] or not s["seconds"]:
            print(f"  BENCH_DIFF section={s['name']} (new section)")
            continue
        # Throughput ratio at one thread and at the top thread count;
        # > 1 means the current revision is faster. Informational only.
        r1 = b["seconds"][0] / s["seconds"][0]
        rn = b["seconds"][-1] / s["seconds"][-1]
        print(f"  BENCH_DIFF section={s['name']} "
              f"t1_throughput_ratio={fmt_ratio(r1)} "
              f"t{s['threads'][-1]}_throughput_ratio={fmt_ratio(rn)}")

    base_fused = section_map(baseline, "encode_fused")
    for s in current.get("encode_fused", []):
        b = base_fused.get(s["name"])
        if b is None:
            print(f"  BENCH_DIFF encode_fused={s['name']} (new section) "
                  f"fused_vs_unfused={s['fused_vs_unfused']:.2f}x")
            continue
        r = s["fused_eps"] / b["fused_eps"]
        print(f"  BENCH_DIFF encode_fused={s['name']} "
              f"fused_throughput_ratio={fmt_ratio(r)} "
              f"fused_vs_unfused={s['fused_vs_unfused']:.2f}x "
              f"bit_identical={s['bit_identical']}")

    # TCP server throughput is wall-time over real sockets — informational
    # only, like the other wall-time sections.
    base_server = section_map(baseline, "server_sessions")
    for s in current.get("server_sessions", []):
        b = base_server.get(s["name"])
        if b is None or not b.get("seconds") or not s.get("seconds"):
            print(f"  BENCH_DIFF server_sessions={s['name']} (new section) "
                  f"sessions_per_sec_t{s['threads'][-1]}="
                  f"{s['sessions_per_sec'][-1]:.3e}")
            continue
        r1 = b["seconds"][0] / s["seconds"][0]
        rn = b["seconds"][-1] / s["seconds"][-1]
        print(f"  BENCH_DIFF server_sessions={s['name']} "
              f"t1_throughput_ratio={fmt_ratio(r1)} "
              f"t{s['threads'][-1]}_throughput_ratio={fmt_ratio(rn)} "
              f"frames_per_sec_t{s['threads'][-1]}="
              f"{s['frames_per_sec'][-1]:.3e} "
              f"sums_exact={s['sums_exact']}")

    # Only the simd kernel ratios feed the gate (see module docstring).
    worst = None
    base_kernels = section_map(baseline, "simd_kernels")
    for k in current.get("simd_kernels", []):
        b = base_kernels.get(k["name"])
        if b is None:
            print(f"  BENCH_DIFF simd_kernel={k['name']} (new kernel) "
                  f"dispatch_eps={k['dispatch_eps']:.3e}")
            continue
        r = k["dispatch_eps"] / b["dispatch_eps"]
        worst = min(worst, r) if worst is not None else r
        print(f"  BENCH_DIFF simd_kernel={k['name']} "
              f"dispatch_throughput_ratio={fmt_ratio(r)} "
              f"speedup_vs_scalar={k['speedup']:.2f}x")

    if fail_below is not None and worst is not None and worst < fail_below:
        print(f"FAIL: worst throughput ratio {worst:.2f} "
              f"below threshold {fail_below}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
