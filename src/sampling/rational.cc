#include "sampling/rational.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace smm::sampling {

StatusOr<Rational> Rational::Create(int64_t num, int64_t den) {
  if (num < 0) return InvalidArgumentError("Rational numerator must be >= 0");
  if (den <= 0) return InvalidArgumentError("Rational denominator must be > 0");
  const int64_t g = std::gcd(num, den);
  return Rational{num / g, den / g};
}

Rational Rational::FromDouble(double x, int64_t max_den) {
  assert(x >= 0.0);
  assert(max_den >= 1);
  // Continued-fraction convergents p_k/q_k of x; stop before q exceeds
  // max_den.
  int64_t p_prev = 1, q_prev = 0;  // p_{-1}/q_{-1}
  int64_t p = static_cast<int64_t>(std::floor(x)), q = 1;  // p_0/q_0
  double frac = x - std::floor(x);
  while (frac > 1e-12) {
    const double inv = 1.0 / frac;
    const double a_f = std::floor(inv);
    if (a_f > static_cast<double>(max_den)) break;
    const int64_t a = static_cast<int64_t>(a_f);
    const int64_t p_next = a * p + p_prev;
    const int64_t q_next = a * q + q_prev;
    if (q_next > max_den || p_next < 0 || q_next < 0) break;
    p_prev = p;
    q_prev = q;
    p = p_next;
    q = q_next;
    frac = inv - a_f;
  }
  if (p < 0) p = 0;
  const int64_t g = std::gcd(p, q);
  return Rational{p / g, q / g};
}

}  // namespace smm::sampling
