#ifndef SMM_NET_FRAME_REASSEMBLER_H_
#define SMM_NET_FRAME_REASSEMBLER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/span.h"
#include "common/status.h"

namespace smm::net {

/// Reassembles SMM1 frames from an arbitrary byte stream: TCP delivers
/// bytes with no message boundaries, so reads may split a frame anywhere —
/// mid-magic, mid-length-prefix, mid-checksum — and may glue many frames
/// into one read. Feed every received chunk to Ingest, then pop complete
/// frames with NextFrame until it returns nullopt.
///
/// State machine (per connection; `buffer_` holds the partial frame):
///
///   [header: < 12 bytes buffered]
///      --bytes--> validate magic/version/reserved/length as soon as the
///                 12-byte header is complete; a bad header is FATAL (see
///                 below)                 --ok--> [payload]
///   [payload: header valid, < total bytes buffered]
///      --bytes--> accumulate until header+payload+checksum are all here
///                 --complete--> frame moved to the ready queue, state
///                 resets to [header] for the next frame
///   [failed: any error]
///      every further Ingest returns the same latched error
///
/// Error model: over a byte stream there is no way to resynchronize after
/// garbage — the next frame boundary is only known from the previous
/// frame's length prefix — so any structural header violation (bad magic,
/// version, reserved bytes, oversize length) poisons the stream and is
/// latched: the connection must be dropped (kDataLoss: the byte stream
/// desynchronized). Payload and checksum damage is NOT detected here: the
/// length prefix still frames the bytes correctly, so the completed frame
/// is delivered and DecodeFrame downstream rejects it — exactly the
/// behavior InMemoryTransport has for a corrupt-but-delivered frame, which
/// keeps the two backends byte-identical.
///
/// Memory bound: the partial-frame buffer never exceeds one frame
/// (kFrameOverheadBytes + max_frame_bytes) plus the tail of the read chunk
/// that started the next frame; oversize length prefixes are rejected at
/// header time, before any payload-sized allocation. The ready queue holds
/// whatever the caller has not popped — callers that pop after every
/// Ingest (the server loop does) keep it at O(frames per read chunk).
///
/// Not thread-safe: one connection, one reader.
class FrameReassembler {
 public:
  /// `max_frame_bytes` caps a single frame's payload (a stream-level policy
  /// bound, typically far below the wire format's 1 GiB kMaxPayloadBytes).
  explicit FrameReassembler(size_t max_frame_bytes);

  /// Consumes one received chunk. Returns the latched stream error, if any;
  /// on error the connection is unusable and should be closed.
  Status Ingest(ByteSpan bytes);

  /// Pops the next complete frame in stream order, or nullopt.
  std::optional<std::vector<uint8_t>> NextFrame();

  /// Complete frames ready to pop.
  size_t ready() const { return frames_.size(); }
  /// Bytes buffered toward the current incomplete frame.
  size_t buffered_bytes() const { return buffer_.size(); }
  /// True when the stream stops inside a frame — a clean EOF here means the
  /// peer died mid-frame (kDataLoss for the caller to report).
  bool mid_frame() const { return !buffer_.empty(); }
  size_t max_frame_bytes() const { return max_frame_bytes_; }
  /// The latched stream error (OK while the stream is healthy).
  const Status& stream_error() const { return error_; }

 private:
  /// Validates the 12-byte header at buffer_ offset `at` and returns the
  /// total frame size it announces.
  StatusOr<size_t> ValidateHeader(size_t at) const;

  size_t max_frame_bytes_;
  std::vector<uint8_t> buffer_;
  std::deque<std::vector<uint8_t>> frames_;
  Status error_;
};

}  // namespace smm::net

#endif  // SMM_NET_FRAME_REASSEMBLER_H_
