#include "net/socket_util.h"

#include <cerrno>
#include <cstring>
#include <string>

#if defined(__linux__)
#define SMM_NET_POSIX 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace smm::net {

#if defined(SMM_NET_POSIX)

namespace {

Status ErrnoError(const char* what) {
  return InternalError(std::string(what) + ": " + std::strerror(errno));
}

/// Connect-time failures that mean "the peer is not there right now" map to
/// kUnavailable so retry policies can distinguish them from caller bugs.
Status ConnectError() {
  if (errno == ECONNREFUSED || errno == ECONNRESET || errno == ETIMEDOUT ||
      errno == ENETUNREACH || errno == EHOSTUNREACH) {
    return UnavailableError(std::string("connect: ") + std::strerror(errno));
  }
  return ErrnoError("connect");
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Blocks until `fd` reports `events` (POLLIN/POLLOUT), retrying EINTR.
Status PollFor(int fd, short events) {
  pollfd pfd{fd, events, 0};
  while (true) {
    const int n = ::poll(&pfd, 1, -1);
    if (n >= 1) return OkStatus();
    if (n < 0 && errno != EINTR) return ErrnoError("poll");
  }
}

}  // namespace

bool NetSupported() { return true; }

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

StatusOr<UniqueFd> ListenLoopback(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return ErrnoError("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return ErrnoError("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoError("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return ErrnoError("listen");
  return fd;
}

StatusOr<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoError("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> ConnectLoopback(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return ErrnoError("socket");
  const sockaddr_in addr = LoopbackAddr(port);
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno == EINTR) {
    // An interrupted connect keeps going asynchronously; re-calling
    // connect() would fail with EALREADY even when the handshake
    // succeeds. Wait for completion and read the real outcome.
    SMM_RETURN_IF_ERROR(PollFor(fd.get(), POLLOUT));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return ErrnoError("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      return ConnectError();
    }
  } else if (rc != 0) {
    return ConnectError();
  }
  SMM_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoError("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoError("fcntl(F_SETFL)");
  }
  return OkStatus();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return ErrnoError("setsockopt(TCP_NODELAY)");
  }
  return OkStatus();
}

Status SendAll(int fd, ByteSpan bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer that closed its read side must surface as a
    // Status, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SMM_RETURN_IF_ERROR(PollFor(fd, POLLOUT));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return DataLossError("peer closed the connection mid-send");
    }
    return ErrnoError("send");
  }
  return OkStatus();
}

StatusOr<size_t> RecvSome(int fd, uint8_t* buf, size_t cap) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SMM_RETURN_IF_ERROR(PollFor(fd, POLLIN));
      continue;
    }
    if (errno == ECONNRESET) {
      return DataLossError("connection reset mid-receive");
    }
    return ErrnoError("recv");
  }
}

Status ShutdownSend(int fd) {
  if (::shutdown(fd, SHUT_WR) != 0 && errno != ENOTCONN) {
    return ErrnoError("shutdown");
  }
  return OkStatus();
}

#else  // !SMM_NET_POSIX

namespace {
Status Unsupported() {
  return UnimplementedError("smm::net requires Linux sockets/epoll");
}
}  // namespace

bool NetSupported() { return false; }

void UniqueFd::reset(int fd) { fd_ = fd; }

StatusOr<UniqueFd> ListenLoopback(uint16_t, int) { return Unsupported(); }
StatusOr<uint16_t> BoundPort(int) { return Unsupported(); }
StatusOr<UniqueFd> ConnectLoopback(uint16_t) { return Unsupported(); }
Status SetNonBlocking(int) { return Unsupported(); }
Status SetNoDelay(int) { return Unsupported(); }
Status SendAll(int, ByteSpan) { return Unsupported(); }
StatusOr<size_t> RecvSome(int, uint8_t*, size_t) { return Unsupported(); }
Status ShutdownSend(int) { return Unsupported(); }

#endif  // SMM_NET_POSIX

}  // namespace smm::net
