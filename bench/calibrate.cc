// --calibrate: measures this host's best per-thread tile size, session
// thread count, and per-kernel scalar/SIMD dispatch crossover, and returns
// them as a RuntimeTuning ready to serialize as tuning.json. Every knob it
// tunes is a pure performance parameter — the pinned bit-identity invariant
// means any calibration outcome produces the same results, so a noisy sweep
// can only cost speed, never correctness.
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/tuning.h"
#include "mechanisms/baseline_mechanisms.h"
#include "mechanisms/distributed_mechanism.h"
#include "runner.h"
#include "secagg/secure_aggregator.h"
#include "simd_cases.h"

namespace smm::bench {
namespace {

/// Sweeps tile_rows_per_thread over the batched encode pipeline (the
/// heaviest consumer of the tile knob: EncodeBatch's rotation tiles and the
/// per-thread chunking both derive from it). Installs each candidate via
/// SetRuntimeTuning and times a cheap-noise cpSGD encode, so the sweep
/// exercises exactly the code path production rounds run.
StatusOr<size_t> SweepTileRows(Scale scale, int repeats, bool verbose) {
  const size_t dim = scale == Scale::kFast ? (1u << 10) : (1u << 12);
  const size_t participants = scale == Scale::kFast ? 64 : 128;
  const int threads = std::min(4, std::max(1, ThreadPool::HardwareThreads()));

  mechanisms::CpSgdMechanism::Options o;
  o.dim = dim;
  o.gamma = 64.0;
  o.l2_bound = 1.0;
  o.binomial_trials = 8;
  o.modulus = 1 << 16;
  o.rotation_seed = 101;
  SMM_ASSIGN_OR_RETURN(auto mech, mechanisms::CpSgdMechanism::Create(o));
  RandomGenerator input_rng(17);
  std::vector<std::vector<double>> inputs(participants,
                                          std::vector<double>(dim));
  for (auto& x : inputs) {
    for (auto& v : x) v = input_rng.Gaussian(0.0, 0.01);
  }
  ThreadPool pool(threads);

  const size_t candidates[] = {8, 16, 32, 64, 128};
  size_t best_tile = kTileRowsPerThread;
  double best_seconds = 1e300;
  for (const size_t candidate : candidates) {
    RuntimeTuning tuning;
    tuning.tile_rows_per_thread = candidate;
    SetRuntimeTuning(tuning);
    Status status = OkStatus();
    const double seconds = BestOfN(repeats, [&] {
      RandomGenerator rng(4242);
      std::vector<RandomGenerator> streams =
          MakeParticipantStreams(rng, inputs.size());
      auto encoded =
          mechanisms::EncodeBatchParallel(*mech, inputs, streams, &pool);
      if (!encoded.ok()) status = encoded.status();
    });
    SMM_RETURN_IF_ERROR(status);
    if (verbose) {
      std::printf("  calibrate tile_rows_per_thread=%zu seconds=%.3e\n",
                  candidate, seconds);
    }
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best_tile = candidate;
    }
  }
  return best_tile;
}

/// Sweeps the pool size of a streaming aggregation round (the session-side
/// workload AggregateRound runs when FederatedConfig::num_threads is 0)
/// and returns the fastest thread count on this host.
StatusOr<int> SweepSessionThreads(Scale scale, int repeats, bool verbose) {
  const size_t dim = scale == Scale::kFast ? (1u << 9) : (1u << 10);
  constexpr size_t kTileRows = 256;
  const size_t participants =
      scale == Scale::kFast ? (1u << 11) : (1u << 13);
  const uint64_t m = 18446744073709551557ULL;

  RandomGenerator rng(23);
  std::vector<std::vector<uint64_t>> tile(kTileRows,
                                          std::vector<uint64_t>(dim));
  for (auto& row : tile) {
    for (auto& v : row) v = rng.UniformUint64(m);
  }
  std::vector<int> ids(kTileRows);
  secagg::IdealAggregator aggregator;

  std::vector<int> candidates;
  const int hardware = std::max(1, ThreadPool::HardwareThreads());
  for (int t = 1; t <= hardware && t <= 16; t *= 2) candidates.push_back(t);

  int best_threads = 1;
  double best_seconds = 1e300;
  for (const int threads : candidates) {
    ThreadPool pool(threads);
    Status status = OkStatus();
    const double seconds = BestOfN(repeats, [&] {
      auto stream = aggregator.Open(dim, m, &pool);
      if (!stream.ok()) {
        status = stream.status();
        return;
      }
      for (size_t begin = 0; begin < participants; begin += kTileRows) {
        for (size_t i = 0; i < kTileRows; ++i) {
          ids[i] = static_cast<int>((begin + i) % 1000000);
        }
        auto absorb = (*stream)->AbsorbTile(ids, tile);
        if (!absorb.ok()) {
          status = absorb;
          return;
        }
      }
      auto finalized = (*stream)->Finalize();
      if (!finalized.ok()) status = finalized.status();
    });
    SMM_RETURN_IF_ERROR(status);
    if (verbose) {
      std::printf("  calibrate threads_per_session=%d seconds=%.3e\n",
                  threads, seconds);
    }
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best_threads = threads;
    }
  }
  return best_threads;
}

/// Sweeps vector lengths per kernel and finds the smallest length where the
/// dispatched table is at least as fast as the scalar reference. Times the
/// tables directly (not through ForLength), so the crossovers installed in
/// the process never skew their own measurement.
std::vector<std::pair<std::string, size_t>> SweepDispatchCrossovers(
    int repeats, bool verbose) {
  const size_t lengths[] = {64, 128, 256, 512, 1024, 2048, 4096};
  constexpr size_t kLengthCount = sizeof(lengths) / sizeof(lengths[0]);
  constexpr size_t kWorkPerLength = size_t{1} << 20;

  // crossover_found[case][length]: dispatched >= scalar at that length.
  std::vector<std::array<bool, kLengthCount>> wins;
  std::vector<std::pair<std::string, size_t>> result;

  std::vector<const SimdCase*> case_order;
  std::vector<simd::KernelId> ids;
  std::vector<size_t> crossover;

  for (size_t li = 0; li < kLengthCount; ++li) {
    const size_t n = lengths[li];
    const int iters = static_cast<int>(kWorkPerLength / n);
    SimdCaseSet case_set(n);
    if (li == 0) {
      wins.assign(case_set.cases().size(), {});
      for (const SimdCase& c : case_set.cases()) ids.push_back(c.id);
    }
    for (size_t ci = 0; ci < case_set.cases().size(); ++ci) {
      const SimdCase& c = case_set.cases()[ci];
      // One untimed reset up front; the iteration loop then reuses the
      // buffers (in-place kernels stay in domain mod m; the drifting
      // float kernels only drift, which x86 executes at full speed).
      if (c.reset) c.reset();
      const double scalar = BestOfN(repeats, [&] {
        for (int i = 0; i < iters; ++i) c.run(simd::ScalarKernels());
      });
      if (c.reset) c.reset();
      const double dispatched = BestOfN(repeats, [&] {
        for (int i = 0; i < iters; ++i) c.run(simd::Active());
      });
      wins[ci][li] = dispatched <= scalar;
      if (verbose) {
        std::printf(
            "  calibrate crossover kernel=%s n=%zu scalar=%.3e "
            "dispatch=%.3e\n",
            simd::KernelIdName(c.id), n, scalar, dispatched);
      }
    }
  }

  for (size_t ci = 0; ci < ids.size(); ++ci) {
    // Smallest tested length from which the dispatched table wins and
    // keeps winning; 0 (always dispatch) when it wins from the start,
    // 2x the largest tested length when it never sustainably wins.
    size_t threshold = lengths[kLengthCount - 1] * 2;
    for (size_t li = kLengthCount; li-- > 0;) {
      if (!wins[ci][li]) break;
      threshold = lengths[li];
    }
    if (threshold == lengths[0]) threshold = 0;
    result.emplace_back(simd::KernelIdName(ids[ci]), threshold);
  }
  return result;
}

}  // namespace

StatusOr<RuntimeTuning> RunCalibration(Scale scale, bool verbose) {
  const RuntimeTuning original = GetRuntimeTuning();
  const int repeats = scale == Scale::kFast ? 2 : 3;

  auto tile = SweepTileRows(scale, repeats, verbose);
  // The tile sweep perturbs the process-wide tuning; put it back before
  // any other consumer runs, whether or not the sweep succeeded.
  SetRuntimeTuning(original);
  SMM_RETURN_IF_ERROR(tile.status());
  SMM_ASSIGN_OR_RETURN(const int session_threads,
                       SweepSessionThreads(scale, repeats, verbose));

  RuntimeTuning tuning;
  tuning.tile_rows_per_thread = *tile;
  tuning.threads_per_session = session_threads;
  tuning.simd_crossover = SweepDispatchCrossovers(repeats, verbose);
  tuning.source = "calibrated";
  return tuning;
}

}  // namespace smm::bench
