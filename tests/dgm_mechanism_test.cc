#include "mechanisms/dgm_mechanism.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mechanisms/distributed_mechanism.h"
#include "secagg/secure_aggregator.h"

namespace smm::mechanisms {
namespace {

class DgmNoiserUnbiasednessTest : public ::testing::TestWithParam<double> {};

TEST_P(DgmNoiserUnbiasednessTest, PerturbedValueIsUnbiased) {
  const double x = GetParam();
  auto noiser = DiscreteGaussianMixtureNoiser::Create(1.2);
  ASSERT_TRUE(noiser.ok());
  RandomGenerator rng(static_cast<uint64_t>(std::abs(x) * 997) + 7);
  constexpr int kN = 150000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(noiser->Perturb(x, rng));
  }
  EXPECT_NEAR(sum / kN, x, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Values, DgmNoiserUnbiasednessTest,
                         ::testing::Values(0.0, 0.5, -0.5, 1.75, -2.25));

TEST(DgmNoiserTest, VarianceMatchesTheory) {
  // Var ~ sigma^2 + p(1-p) (discrete Gaussian variance is slightly below
  // sigma^2 but within a couple of percent for sigma >= 1).
  const double x = 0.5, sigma = 2.0;
  auto noiser = DiscreteGaussianMixtureNoiser::Create(sigma);
  ASSERT_TRUE(noiser.ok());
  RandomGenerator rng(3);
  constexpr int kN = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = static_cast<double>(noiser->Perturb(x, rng));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(sum_sq / kN - mean * mean, sigma * sigma + 0.25, 0.12);
}

DgmMechanism::Options BasicOptions() {
  DgmMechanism::Options o;
  o.dim = 128;
  o.gamma = 32.0;
  o.c = o.gamma * o.gamma;
  o.delta_inf = 32.0;
  o.sigma = 1.0;
  o.modulus = 1 << 16;
  o.rotation_seed = 5;
  return o;
}

TEST(DgmMechanismTest, CreateValidates) {
  auto bad = BasicOptions();
  bad.sigma = 0.0;
  EXPECT_FALSE(DgmMechanism::Create(bad).ok());
  EXPECT_TRUE(DgmMechanism::Create(BasicOptions()).ok());
}

TEST(DgmMechanismTest, SumEstimateAccurateWithSmallNoise) {
  auto options = BasicOptions();
  options.sigma = 0.5;
  auto mech = DgmMechanism::Create(options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(11);
  secagg::IdealAggregator agg;
  const int n = 10;
  std::vector<std::vector<double>> inputs(n);
  for (auto& x : inputs) {
    x.assign(128, 0.0);
    for (size_t j = 0; j < 128; ++j) x[j] = rng.Gaussian(0.0, 0.05);
  }
  auto estimate = RunDistributedSum(**mech, agg, inputs, rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LT(MeanSquaredErrorPerDimension(*estimate, inputs).value(), 0.05);
}

TEST(DgmMechanismTest, MatchesSmmPipelineShape) {
  // DGM and SMM differ only in the noise distribution: with equal variance
  // (sigma^2 = 2 lambda), their sum-estimation errors should be comparable.
  auto dgm_options = BasicOptions();
  dgm_options.sigma = 2.0;  // Variance 4.
  auto mech = DgmMechanism::Create(dgm_options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(13);
  secagg::IdealAggregator agg;
  std::vector<std::vector<double>> inputs(
      20, std::vector<double>(128, 0.01));
  auto estimate = RunDistributedSum(**mech, agg, inputs, rng);
  ASSERT_TRUE(estimate.ok());
  const double mse = MeanSquaredErrorPerDimension(*estimate, inputs).value();
  // Predicted: (n * (sigma^2 + ~1/4 Bernoulli)) / gamma^2 ~ 0.083.
  EXPECT_LT(mse, 0.3);
  EXPECT_GT(mse, 0.01);
}

TEST(DgmMechanismTest, OverflowCounterAtTinyModulus) {
  auto options = BasicOptions();
  options.modulus = 4;
  options.sigma = 50.0;
  auto mech = DgmMechanism::Create(options);
  ASSERT_TRUE(mech.ok());
  RandomGenerator rng(17);
  std::vector<double> x(128, 0.0);
  ASSERT_TRUE((*mech)->EncodeParticipant(x, rng).ok());
  EXPECT_GT((*mech)->overflow_count(), 0);
}

}  // namespace
}  // namespace smm::mechanisms
