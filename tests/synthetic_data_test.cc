#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace smm::data {
namespace {

TEST(SyntheticImagesTest, Validates) {
  SyntheticImageOptions o;
  o.feature_dim = 0;
  EXPECT_FALSE(MakeSyntheticImages(o).ok());
  o = SyntheticImageOptions();
  o.num_classes = 1;
  EXPECT_FALSE(MakeSyntheticImages(o).ok());
  o = SyntheticImageOptions();
  o.label_noise = 2.0;
  EXPECT_FALSE(MakeSyntheticImages(o).ok());
}

TEST(SyntheticImagesTest, SizesAndShapes) {
  SyntheticImageOptions o;
  o.num_train = 500;
  o.num_test = 100;
  o.feature_dim = 32;
  auto split = MakeSyntheticImages(o);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 500u);
  EXPECT_EQ(split->test.size(), 100u);
  EXPECT_EQ(split->train.feature_dim, 32);
  EXPECT_EQ(split->train.examples[0].features.size(), 32u);
}

TEST(SyntheticImagesTest, BalancedClasses) {
  SyntheticImageOptions o;
  o.num_train = 1000;
  auto split = MakeSyntheticImages(o);
  ASSERT_TRUE(split.ok());
  std::vector<int> counts(10, 0);
  for (const auto& e : split->train.examples) {
    ASSERT_GE(e.label, 0);
    ASSERT_LT(e.label, 10);
    counts[static_cast<size_t>(e.label)]++;
  }
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(SyntheticImagesTest, DeterministicForSeed) {
  auto a = MakeSyntheticImages(MnistLikeOptions());
  auto b = MakeSyntheticImages(MnistLikeOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->train.examples[0].features, b->train.examples[0].features);
}

// Nearest-prototype accuracy: estimates class prototypes from train data and
// classifies test points by the closest estimate. This upper-bounds the
// separability of the task without training a network.
double NearestCentroidAccuracy(const SyntheticSplit& split) {
  const int k = split.train.num_classes;
  const int d = split.train.feature_dim;
  std::vector<std::vector<double>> centroids(
      static_cast<size_t>(k), std::vector<double>(static_cast<size_t>(d)));
  std::vector<int> counts(static_cast<size_t>(k), 0);
  for (const auto& e : split.train.examples) {
    counts[static_cast<size_t>(e.label)]++;
    for (int j = 0; j < d; ++j) {
      centroids[static_cast<size_t>(e.label)][static_cast<size_t>(j)] +=
          e.features[static_cast<size_t>(j)];
    }
  }
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < d; ++j) {
      centroids[static_cast<size_t>(c)][static_cast<size_t>(j)] /=
          std::max(1, counts[static_cast<size_t>(c)]);
    }
  }
  int correct = 0;
  for (const auto& e : split.test.examples) {
    int best = 0;
    double best_dist = 1e300;
    for (int c = 0; c < k; ++c) {
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff =
            e.features[static_cast<size_t>(j)] -
            centroids[static_cast<size_t>(c)][static_cast<size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (best == e.label) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(split.test.size());
}

TEST(SyntheticImagesTest, MnistLikeIsHighlySeparable) {
  auto split = MakeSyntheticImages(MnistLikeOptions());
  ASSERT_TRUE(split.ok());
  EXPECT_GT(NearestCentroidAccuracy(*split), 0.95);
}

TEST(SyntheticImagesTest, FashionLikeIsHarder) {
  auto mnist = MakeSyntheticImages(MnistLikeOptions());
  auto fashion = MakeSyntheticImages(FashionLikeOptions());
  ASSERT_TRUE(mnist.ok());
  ASSERT_TRUE(fashion.ok());
  const double acc_m = NearestCentroidAccuracy(*mnist);
  const double acc_f = NearestCentroidAccuracy(*fashion);
  EXPECT_LT(acc_f, acc_m);
  EXPECT_GT(acc_f, 0.6);  // Still learnable.
}

TEST(SyntheticImagesTest, LabelNoiseReducesSeparability) {
  SyntheticImageOptions o = MnistLikeOptions();
  o.label_noise = 0.5;
  auto noisy = MakeSyntheticImages(o);
  ASSERT_TRUE(noisy.ok());
  auto clean = MakeSyntheticImages(MnistLikeOptions());
  ASSERT_TRUE(clean.ok());
  EXPECT_LT(NearestCentroidAccuracy(*noisy),
            NearestCentroidAccuracy(*clean));
}

TEST(SphereDatasetTest, NormsEqualRadius) {
  RandomGenerator rng(1);
  const auto points = SampleSphereDataset(50, 128, 2.5, rng);
  ASSERT_EQ(points.size(), 50u);
  for (const auto& p : points) {
    double norm = 0.0;
    for (double v : p) norm += v * v;
    EXPECT_NEAR(std::sqrt(norm), 2.5, 1e-9);
  }
}

TEST(SphereDatasetTest, DirectionsAreSpread) {
  RandomGenerator rng(2);
  const auto points = SampleSphereDataset(100, 64, 1.0, rng);
  // Mean of uniform sphere points concentrates near zero.
  std::vector<double> mean(64, 0.0);
  for (const auto& p : points) {
    for (size_t j = 0; j < 64; ++j) mean[j] += p[j] / 100.0;
  }
  double norm = 0.0;
  for (double v : mean) norm += v * v;
  EXPECT_LT(std::sqrt(norm), 0.35);
}

}  // namespace
}  // namespace smm::data
